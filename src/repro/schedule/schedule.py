"""Schedules: the assignment of jobs to concrete machines, plus exact cost.

A :class:`Schedule` maps every job to a :class:`MachineKey` — a distinct
physical machine identified by ``(type_index, tag)``.  Machines exist only
implicitly through the jobs assigned to them; a machine's *busy time* is the
measure of the union of its jobs' active intervals, and its cost is busy time
times its type's rate (the BSHM objective).

Feasibility (capacity at every instant, every job placed, sizes fit) is
checked by :mod:`repro.schedule.validate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.intervals import IntervalSet
# the oracle import feeds cost_reference() only — Schedule deliberately
# carries its own differential-test twin.  # bshm: ignore[BSHM003]
from ..core.sweep import (
    busy_union_reference,
    sweep_busy_union,
    sweep_grouped_busy_time,
)
from ..core.vectorized import use_vectorized, vec_grouped_busy_time
from ..jobs.job import Job
from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder

__all__ = ["MachineKey", "Schedule"]


@dataclass(frozen=True, slots=True, order=True)
class MachineKey:
    """Identity of one physical machine: its 1-based type index and a
    scheduler-chosen tag that distinguishes machines of the same type
    (e.g. ``("iter3", "strip", 2)`` or ``("A", 7)``)."""

    type_index: int
    tag: tuple

    def __str__(self) -> str:
        inner = "/".join(str(p) for p in self.tag)
        return f"T{self.type_index}[{inner}]"


class Schedule:
    """An immutable job → machine assignment over a ladder."""

    __slots__ = ("ladder", "_assignment", "_jobs", "_memo")

    def __init__(
        self,
        ladder: Ladder,
        assignment: Mapping[Job, MachineKey] | Iterable[tuple[Job, MachineKey]],
    ) -> None:
        pairs = dict(assignment.items()) if isinstance(assignment, Mapping) else dict(assignment)
        for job, key in pairs.items():
            if not 1 <= key.type_index <= ladder.m:
                raise ValueError(f"machine type {key.type_index} not in ladder for {job}")
        object.__setattr__(self, "ladder", ladder)
        object.__setattr__(self, "_assignment", pairs)
        object.__setattr__(self, "_jobs", JobSet(pairs.keys()))
        # memoized derived data; safe because the assignment is immutable —
        # any "placement change" necessarily constructs a new Schedule
        object.__setattr__(self, "_memo", {})

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Schedule is immutable")

    # -- access ----------------------------------------------------------
    @property
    def jobs(self) -> JobSet:
        return self._jobs

    @property
    def assignment(self) -> dict[Job, MachineKey]:
        return dict(self._assignment)

    def machine_of(self, job: Job) -> MachineKey:
        """The machine hosting a job."""
        return self._assignment[job]

    def machines(self) -> list[MachineKey]:
        """All machines that host at least one job, sorted."""
        return sorted(set(self._assignment.values()))

    def jobs_on(self, key: MachineKey) -> JobSet:
        """All jobs assigned to one machine."""
        return JobSet(j for j, k in self._assignment.items() if k == key)

    def by_machine(self) -> dict[MachineKey, list[Job]]:
        """Group jobs by machine in one pass (memoized)."""
        groups = self._memo.get("by_machine")
        if groups is None:
            groups = {}
            for job, key in self._assignment.items():
                groups.setdefault(key, []).append(job)
            self._memo["by_machine"] = groups
        return groups

    # -- cost ---------------------------------------------------------------
    def busy_set(self, key: MachineKey, groups: dict[MachineKey, list[Job]] | None = None) -> IntervalSet:
        """The machine's busy periods: union of its jobs' active intervals
        (event sweep, memoized per machine)."""
        memo = self._memo.setdefault("busy_set", {})
        cached = memo.get(key)
        if cached is None:
            jobs = (groups or self.by_machine()).get(key, [])
            if jobs:
                cached = sweep_busy_union(
                    [j.arrival for j in jobs], [j.departure for j in jobs]
                )
            else:
                cached = IntervalSet()
            memo[key] = cached
        return cached

    def busy_times(self) -> dict[MachineKey, float]:
        """Every machine's busy time from ONE merged event sweep (memoized).

        All machines' intervals go through a single
        :func:`~repro.core.sweep.sweep_grouped_busy_time` call —
        ``O(N log N)`` total instead of one sort per machine.  Above the
        dispatch threshold the grouped union runs on the block-offset
        interval-merge kernel
        (:func:`~repro.core.vectorized.vec_grouped_busy_time`): one stable
        sort, no event queue — this is the busy-cost integration fast path.
        """
        cached = self._memo.get("busy_times")
        if cached is None:
            groups = self.by_machine()
            keys = list(groups)
            starts: list[float] = []
            ends: list[float] = []
            gidx: list[int] = []
            for gi, key in enumerate(keys):
                for job in groups[key]:
                    starts.append(job.arrival)
                    ends.append(job.departure)
                    gidx.append(gi)
            if use_vectorized(len(starts)):
                busy = vec_grouped_busy_time(starts, ends, gidx, len(keys))
            else:
                busy = sweep_grouped_busy_time(starts, ends, gidx, len(keys))
            cached = {key: float(b) for key, b in zip(keys, busy)}
            self._memo["busy_times"] = cached
        return cached

    def machine_cost(self, key: MachineKey, groups: dict[MachineKey, list[Job]] | None = None) -> float:
        """One machine's busy time times its rate."""
        rate = self.ladder.rate(key.type_index)
        return rate * self.busy_times().get(key, 0.0)

    def cost(self) -> float:
        """Total accumulated busy cost — the BSHM objective."""
        return sum(
            self.ladder.rate(key.type_index) * busy
            for key, busy in self.busy_times().items()
        )

    def cost_reference(self) -> float:
        """The pre-sweep busy-cost accounting (naive per-machine interval
        union), kept as the differential-test oracle for :meth:`cost`."""
        groups = self.by_machine()
        total = 0.0
        for key, jobs in groups.items():
            union = busy_union_reference(
                [j.arrival for j in jobs], [j.departure for j in jobs]
            )
            total += self.ladder.rate(key.type_index) * union.length
        return total

    def cost_by_type(self) -> dict[int, float]:
        """Cost decomposition per machine type (for the analysis tables)."""
        out: dict[int, float] = {i: 0.0 for i in range(1, self.ladder.m + 1)}
        for key, busy in self.busy_times().items():
            out[key.type_index] += self.ladder.rate(key.type_index) * busy
        return out

    def machine_count_by_type(self) -> dict[int, int]:
        """Number of machines used per type."""
        counts: dict[int, int] = {i: 0 for i in range(1, self.ladder.m + 1)}
        for key in set(self._assignment.values()):
            counts[key.type_index] += 1
        return counts

    def merge(self, other: "Schedule") -> "Schedule":
        """Disjoint union of two schedules over the same ladder.

        Machine tags are assumed distinct between the two (the iterative
        algorithms namespace tags per iteration); a shared machine key with
        different type indices is impossible and shared keys are allowed —
        jobs simply share the machine.
        """
        if other.ladder != self.ladder:
            raise ValueError("cannot merge schedules over different ladders")
        merged = dict(self._assignment)
        for job, key in other._assignment.items():
            if job in merged:
                raise ValueError(f"job {job} scheduled twice in merge")
            merged[job] = key
        return Schedule(self.ladder, merged)

    # -- dunder ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._assignment)

    def __repr__(self) -> str:
        return (
            f"Schedule({len(self._assignment)} jobs on "
            f"{len(set(self._assignment.values()))} machines, cost={self.cost():.4g})"
        )
