"""Machine-checked feasibility of schedules.

Every algorithm's output passes through :func:`validate_schedule` in the test
suite and the experiment harness.  A schedule is feasible iff

1. every job of the instance is assigned to exactly one machine,
2. every job fits its machine's type (``s(J) <= g_type``), and
3. at every instant, the total size of the jobs concurrently on one machine
   does not exceed the machine's capacity.  Because demand only changes at
   arrivals/departures, one event sweep over each machine's jobs is exact;
   half-open intervals mean a job departing at ``t`` and another arriving at
   ``t`` are sequential, never concurrent (the sweep's merged accumulator
   guarantees this, and a one-ulp float sliver between the two times is
   ignored via a time tolerance).

Violations are collected into :class:`FeasibilityReport` rather than raised,
so tests can assert on the precise failure kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.sweep import sweep_peak_load
from ..core.timecmp import TIME_TOL
from ..core.tolerance import TOLERANCE
from ..jobs.jobset import JobSet
from .schedule import Schedule

__all__ = ["FeasibilityError", "FeasibilityReport", "validate_schedule", "assert_feasible"]


class FeasibilityError(AssertionError):
    """Raised by :func:`assert_feasible` when a schedule is infeasible."""


@dataclass(slots=True)
class FeasibilityReport:
    """Outcome of a feasibility check."""

    ok: bool = True
    missing_jobs: list = field(default_factory=list)
    extra_jobs: list = field(default_factory=list)
    oversize_jobs: list = field(default_factory=list)  # (job, machine)
    overloaded: list = field(default_factory=list)  # (machine, peak, capacity)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.ok:
            return "feasible"
        parts = []
        if self.missing_jobs:
            parts.append(f"{len(self.missing_jobs)} unscheduled jobs")
        if self.extra_jobs:
            parts.append(f"{len(self.extra_jobs)} unknown jobs")
        if self.oversize_jobs:
            parts.append(f"{len(self.oversize_jobs)} jobs larger than their machine")
        if self.overloaded:
            worst = max(self.overloaded, key=lambda x: x[1] / x[2])
            parts.append(
                f"{len(self.overloaded)} overloaded machines "
                f"(worst {worst[0]}: peak {worst[1]:g} > capacity {worst[2]:g})"
            )
        return "; ".join(parts)


_CAP_TOL = TOLERANCE

#: segments of measure <= this are float slivers, not real co-residency: a
#: departure at (mathematical) time t and an arrival at the same t can land
#: one ulp apart after float arithmetic (0.1 + 0.2 vs 0.3); half-open
#: intervals mean such a handoff never overlaps, so the capacity check must
#: not double-count it.  Shared with the time_eq/time_ne comparison helpers.
_TIME_TOL = TIME_TOL


def validate_schedule(schedule: Schedule, instance: JobSet) -> FeasibilityReport:
    """Check a schedule against the instance it claims to solve."""
    report = FeasibilityReport()

    scheduled = schedule.jobs
    inst_uids = {j.uid for j in instance}
    sched_uids = {j.uid for j in scheduled}
    report.missing_jobs = [j for j in instance if j.uid not in sched_uids]
    report.extra_jobs = [j for j in scheduled if j.uid not in inst_uids]

    groups = schedule.by_machine()
    for key, jobs in groups.items():
        capacity = schedule.ladder.capacity(key.type_index)
        for job in jobs:
            if job.size > capacity + _CAP_TOL:
                report.oversize_jobs.append((job, key))
        # event sweep with half-open semantics: a job departing at t and one
        # arriving at t share the machine sequentially, never concurrently
        peak = sweep_peak_load(
            [j.arrival for j in jobs],
            [j.departure for j in jobs],
            [j.size for j in jobs],
            time_tol=_TIME_TOL,
        )
        # tolerance scales with capacity: float sums of many sizes
        if peak > capacity * (1 + TOLERANCE) + _CAP_TOL:
            report.overloaded.append((key, peak, capacity))

    report.ok = not (
        report.missing_jobs
        or report.extra_jobs
        or report.oversize_jobs
        or report.overloaded
    )
    return report


def assert_feasible(schedule: Schedule, instance: JobSet) -> None:
    """Raise :class:`FeasibilityError` unless the schedule is feasible."""
    report = validate_schedule(schedule, instance)
    if not report.ok:
        raise FeasibilityError(report.summary())
