"""Billing models: from the paper's fluid busy-time to real cloud invoices.

The paper charges a machine ``r_i`` per unit time while busy, with no
granularity — the *fluid* model.  Real pay-as-you-go clouds differ:

- **granular billing**: usage is rounded up to whole billing periods
  (historically one hour on EC2, now often one minute with a one-minute
  minimum);
- **minimum charge**: every busy period is billed at least some floor
  duration.

:func:`billed_cost` re-prices any schedule under a configurable
:class:`BillingModel` without touching the scheduling logic, so E20 can ask:
*does billing granularity change which algorithm wins?*  Each maximal busy
period of a machine is priced independently (idle gaps release the machine,
matching the "stop paying when you release the VM" cloud semantics).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.tolerance import FINE_TOL
from .schedule import Schedule

__all__ = ["BillingModel", "FLUID", "billed_cost", "billing_overhead"]


@dataclass(frozen=True, slots=True)
class BillingModel:
    """How a busy period of length L is converted into billed time.

    ``billed(L) = max(minimum, ceil(L / period) * period)`` when ``period``
    is positive; with ``period == 0`` only the minimum applies; the fluid
    model is ``period == 0, minimum == 0``.
    """

    period: float = 0.0  # billing granularity (0 = continuous)
    minimum: float = 0.0  # minimum billed duration per busy period

    def __post_init__(self) -> None:
        if self.period < 0 or self.minimum < 0:
            raise ValueError("billing parameters must be non-negative")

    def billed_duration(self, length: float) -> float:
        """Billed time for one busy period of the given length."""
        if length <= 0:
            return 0.0
        billed = length
        if self.period > 0:
            billed = math.ceil(length / self.period - FINE_TOL) * self.period
        return max(billed, self.minimum)

    def describe(self) -> str:
        """Short human-readable label for tables."""
        if self.period == 0 and self.minimum == 0:
            return "fluid"
        parts = []
        if self.period > 0:
            parts.append(f"per-{self.period:g} rounding")
        if self.minimum > 0:
            parts.append(f"min {self.minimum:g}")
        return ", ".join(parts)


FLUID = BillingModel()


def billed_cost(schedule: Schedule, model: BillingModel = FLUID) -> float:
    """Total invoice for a schedule under a billing model.

    Each machine's busy set is split into maximal busy periods; every period
    is billed independently (release-and-reacquire semantics).  Busy sets
    come from the schedule's memoized event sweep, so re-pricing the same
    schedule under many billing models (E20's sweep) never re-unions
    intervals.
    """
    total = 0.0
    for key in schedule.by_machine():
        rate = schedule.ladder.rate(key.type_index)
        for period in schedule.busy_set(key):
            total += rate * model.billed_duration(period.length)
    return total


def billing_overhead(schedule: Schedule, model: BillingModel) -> float:
    """``billed / fluid`` — how much the granularity inflates the bill."""
    fluid = schedule.cost()
    if fluid <= 0:
        return 1.0
    return billed_cost(schedule, model) / fluid
