"""Schedules: job-to-machine assignments, feasibility, cost and billing.

Public surface: the immutable :class:`Schedule` / :class:`MachineKey`
pair, the feasibility validator, and the billing-model overlays on the
fluid busy-time objective.
"""

from .billing import FLUID, BillingModel, billed_cost, billing_overhead
from .schedule import MachineKey, Schedule
from .validate import (
    FeasibilityError,
    FeasibilityReport,
    assert_feasible,
    validate_schedule,
)

__all__ = [
    "MachineKey",
    "Schedule",
    "FeasibilityError",
    "FeasibilityReport",
    "assert_feasible",
    "validate_schedule",
    "BillingModel",
    "FLUID",
    "billed_cost",
    "billing_overhead",
]
