"""Event-driven sweep-line kernels: the vectorized core of BSHM accounting.

Everything time-varying in this codebase — demand profiles, busy-interval
unions, capacity checks, busy-cost integrals, the nested per-type demands of
the Eq.-(1) lower bound — changes only at job arrivals and departures.  This
module turns those computations into *merged event queues* processed with
numpy in ``O((n + k) log n)`` (``n`` jobs, ``k`` distinct event times),
replacing the per-time-point scans the rest of the code used to do.

Every kernel has a ``*_reference`` twin: the naive per-time-point
implementation it replaced.  References are kept deliberately simple (plain
Python loops over candidate times) and serve as the differential-test oracle
in ``tests/property/test_sweep_oracle.py`` — the refined ratio assertions of
Liu & Tang (arXiv:2105.06287) are only trustworthy if the fast cost
accounting is provably identical to the naive one.

Kernels
-------
- :func:`merged_events` — the shared primitive: sorted unique event times
  plus per-segment accumulated weight (coverage).
- :func:`sweep_demand_profile` / :func:`demand_profile_reference`
- :func:`sweep_busy_union` / :func:`busy_union_reference`
- :func:`sweep_busy_time` — union measure without building interval objects
- :func:`sweep_peak_load` / :func:`peak_load_reference` — capacity checks
  with half-open semantics (a departure at ``t`` never overlaps an arrival
  at ``t``) and an optional ``time_tol`` that ignores zero-measure phantom
  overlaps produced by float arithmetic.
- :func:`sweep_grouped_busy_time` — per-machine busy times in one global
  sweep (the busy-cost integrator behind ``Schedule.cost``).
- :func:`sweep_nested_demand` / :func:`nested_demand_reference` — the
  ``m x k`` demand matrix ``s(J_{>=i}, t)`` for the lower bound, built from
  one shared event queue instead of ``m`` separate profile constructions.
- :class:`BusyIntervalCache` — memoized per-machine busy intervals,
  invalidated on placement changes (incremental/online contexts).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from .intervals import Interval, IntervalSet
from .stepfun import StepFunction
from .tolerance import TOLERANCE

if TYPE_CHECKING:  # pragma: no cover
    from ..jobs.job import Job

__all__ = [
    "merged_events",
    "sweep_demand_profile",
    "demand_profile_reference",
    "sweep_busy_union",
    "busy_union_reference",
    "sweep_busy_time",
    "busy_time_reference",
    "sweep_peak_load",
    "peak_load_reference",
    "sweep_grouped_busy_time",
    "grouped_busy_time_reference",
    "sweep_nested_demand",
    "nested_demand_reference",
    "BusyIntervalCache",
]

#: values smaller than this are float residue of event cancellation, not load
_LOAD_EPS = TOLERANCE


def _as_arrays(
    starts: Sequence[float], ends: Sequence[float], weights: Sequence[float] | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    s = np.asarray(starts, dtype=float)
    e = np.asarray(ends, dtype=float)
    if s.shape != e.shape or s.ndim != 1:
        raise ValueError("starts and ends must be 1-D arrays of equal length")
    if np.any(e <= s):
        raise ValueError("every interval needs start < end")
    if weights is None:
        w = np.ones_like(s)
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != s.shape:
            raise ValueError("weights must match starts/ends")
    return s, e, w


def merged_events(
    starts: Sequence[float],
    ends: Sequence[float],
    weights: Sequence[float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge ``[start, end)`` weighted intervals into one event queue.

    Returns ``(times, cover)`` where ``times`` is the sorted array of the
    ``k+1`` distinct event times and ``cover[j]`` is the total weight active
    on ``[times[j], times[j+1])`` (length ``k``).  Because a ``+w`` at time
    ``t`` and a ``-w`` at the same ``t`` land in the same accumulator slot,
    half-open semantics are automatic: an interval ending at ``t`` never
    overlaps one starting at ``t``.

    This is the shared ``O(n log n)`` primitive behind every sweep kernel.
    """
    s, e, w = _as_arrays(starts, ends, weights)
    if s.size == 0:
        return np.zeros(1), np.zeros(0)
    times = np.concatenate([s, e])
    deltas = np.concatenate([w, -w])
    order = np.argsort(times, kind="stable")
    times = times[order]
    uniq, first = np.unique(times, return_index=True)
    sums = np.add.reduceat(deltas[order], first)
    cover = np.cumsum(sums)[:-1]
    # float cancellation can leave ±1e-16 residue where the true cover is 0
    cover[np.abs(cover) < _LOAD_EPS] = 0.0
    return uniq, cover


# ---------------------------------------------------------------------------
# demand profiles
# ---------------------------------------------------------------------------

def sweep_demand_profile(
    pulses: Sequence[tuple[float, float, float]],
) -> StepFunction:
    """Demand profile of ``(left, right, height)`` pulses via one merged
    event queue — the vectorized engine behind :func:`repro.sum_pulses`."""
    if not pulses:
        return StepFunction.zero()
    arr = np.asarray(pulses, dtype=float)
    times, cover = merged_events(arr[:, 0], arr[:, 1], arr[:, 2])
    return StepFunction(times, cover).compact()


def demand_profile_reference(
    pulses: Sequence[tuple[float, float, float]],
) -> StepFunction:
    """Naive oracle: evaluate the total height at every candidate time by
    scanning all pulses — ``O(n^2)``, kept as the differential-test truth."""
    if not pulses:
        return StepFunction.zero()
    times = sorted({t for left, right, _ in pulses for t in (left, right)})
    values = []
    for t in times[:-1]:
        values.append(sum(h for left, right, h in pulses if left <= t < right))
    return StepFunction(times, values).compact()


# ---------------------------------------------------------------------------
# busy-interval unions
# ---------------------------------------------------------------------------

def sweep_busy_union(
    starts: Sequence[float], ends: Sequence[float]
) -> IntervalSet:
    """Union of ``[start, end)`` intervals as a normalized IntervalSet.

    One merged event queue; consecutive covered spans are collapsed into
    maximal runs *vectorized* (boundary detection on the coverage mask), so
    only the handful of resulting intervals ever become Python objects.
    """
    times, cover = merged_events(starts, ends)
    if cover.size == 0:
        return IntervalSet()
    padded = np.concatenate([[False], cover > 0, [False]])
    edges = np.flatnonzero(padded[1:] != padded[:-1])
    return IntervalSet.from_pairs(
        (float(times[i]), float(times[j])) for i, j in zip(edges[0::2], edges[1::2])
    )


def busy_union_reference(
    starts: Sequence[float], ends: Sequence[float]
) -> IntervalSet:
    """Naive oracle: hand every interval to the sort-and-merge normalizer."""
    return IntervalSet(Interval(float(a), float(b)) for a, b in zip(starts, ends))


def sweep_busy_time(starts: Sequence[float], ends: Sequence[float]) -> float:
    """Measure of the union of ``[start, end)`` intervals — no objects built."""
    times, cover = merged_events(starts, ends)
    if cover.size == 0:
        return 0.0
    return float(np.sum(np.diff(times)[cover > 0]))


def busy_time_reference(starts: Sequence[float], ends: Sequence[float]) -> float:
    """Naive oracle for :func:`sweep_busy_time`."""
    return busy_union_reference(starts, ends).length


# ---------------------------------------------------------------------------
# capacity checks
# ---------------------------------------------------------------------------

def sweep_peak_load(
    starts: Sequence[float],
    ends: Sequence[float],
    sizes: Sequence[float],
    *,
    time_tol: float = 0.0,
) -> float:
    """Peak concurrent load of weighted ``[start, end)`` intervals.

    Half-open semantics come from the shared event accumulator: a job
    departing at ``t`` cancels against a job arriving at ``t`` before the
    segment value is read, so back-to-back jobs never double-count.

    ``time_tol`` additionally ignores segments of measure ``<= time_tol``:
    when a departure and an arrival are *mathematically* simultaneous but an
    ulp apart in float (``0.1 + 0.2`` vs ``0.3``), the phantom sliver they
    span carries both loads; a positive tolerance treats it as the handoff
    it really is.  With ``time_tol=0`` the kernel is exact and matches
    :func:`peak_load_reference` bit-for-bit on shared inputs.
    """
    times, cover = merged_events(starts, ends, sizes)
    if cover.size == 0:
        return 0.0
    if time_tol > 0.0:
        cover = cover[np.diff(times) > time_tol]
        if cover.size == 0:
            return 0.0
    return float(np.max(cover, initial=0.0))


def peak_load_reference(
    starts: Sequence[float], ends: Sequence[float], sizes: Sequence[float]
) -> float:
    """Naive oracle: evaluate the load at every event time by a full scan."""
    triples = list(zip(starts, ends, sizes))
    peak = 0.0
    for t in {t for a, b, _ in triples for t in (a, b)}:
        load = sum(s for a, b, s in triples if a <= t < b)
        peak = max(peak, load)
    return peak


# ---------------------------------------------------------------------------
# grouped busy time (the busy-cost integrator)
# ---------------------------------------------------------------------------

def sweep_grouped_busy_time(
    starts: Sequence[float],
    ends: Sequence[float],
    group_index: Sequence[int],
    n_groups: int,
) -> np.ndarray:
    """Busy time (union measure) of each group's intervals in ONE sweep.

    Instead of one event sort per machine, every machine's intervals are
    translated into a private block of the time line (block width = global
    span), so a single merged event queue yields all unions at once; each
    busy segment is then attributed back to its group by block index.
    ``O(N log N)`` total for ``N`` intervals regardless of machine count.
    """
    s = np.asarray(starts, dtype=float)
    e = np.asarray(ends, dtype=float)
    g = np.asarray(group_index, dtype=np.int64)
    if not (s.shape == e.shape == g.shape):
        raise ValueError("starts, ends and group_index must align")
    out = np.zeros(n_groups)
    if s.size == 0:
        return out
    if np.any(g < 0) or np.any(g >= n_groups):
        raise ValueError("group_index out of range")
    t0 = float(s.min())
    block = float(e.max()) - t0 + 1.0
    offset = g * block
    times, cover = merged_events(s - t0 + offset, e - t0 + offset)
    busy = cover > 0
    lengths = np.diff(times)[busy]
    # a busy segment lies inside its group's block; identify the block by
    # comparing against the same g*block products the offsets were built
    # from (exact float equality — floor(times/block) is NOT safe, since
    # (3*block)/block can round below 3)
    boundaries = np.arange(n_groups, dtype=np.int64) * block
    owners = np.searchsorted(boundaries, times[:-1][busy], side="right") - 1
    np.add.at(out, owners, lengths)
    return out


def grouped_busy_time_reference(
    starts: Sequence[float],
    ends: Sequence[float],
    group_index: Sequence[int],
    n_groups: int,
) -> np.ndarray:
    """Naive oracle: independent interval-set union per group."""
    out = np.zeros(n_groups)
    for gi in range(n_groups):
        members = [
            (a, b) for a, b, g in zip(starts, ends, group_index) if g == gi
        ]
        if members:
            out[gi] = busy_union_reference(*zip(*members)).length
    return out


# ---------------------------------------------------------------------------
# nested demands for the lower bound
# ---------------------------------------------------------------------------

def sweep_nested_demand(
    jobs: Sequence["Job"], capacities: Sequence[float]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The lower bound's demand matrix from ONE shared event queue.

    Returns ``(times, active, demand)`` where ``times`` holds the ``k+1``
    distinct event times, ``active[j]`` the (exact, integer) number of jobs
    active on segment ``j`` and ``demand[i-1, j]`` the total size of the
    active jobs needing type ``>= i`` (``s(J) > g_{i-1}``).

    One stable sort of ``2n`` events replaces the ``m`` independent
    profile constructions the old code did: each job's deltas land in its
    size class's row and nested demands fall out as a reversed cumulative
    sum across rows — ``O(n log n + m k)``.
    """
    m = len(capacities)
    caps = np.asarray(capacities, dtype=float)
    if m == 0 or not jobs:
        return np.zeros(1), np.zeros(0, dtype=np.int64), np.zeros((m, 0))
    arr = np.asarray(
        [(j.arrival, j.departure, j.size) for j in jobs], dtype=float
    )
    sizes = arr[:, 2]
    if np.any(sizes > caps[-1]):
        raise ValueError("job larger than the largest capacity")
    # class c (0-based): smallest type that fits; job demands types 1..c+1
    cls = np.searchsorted(caps, sizes, side="left")

    times = np.concatenate([arr[:, 0], arr[:, 1]])
    uniq, inv = np.unique(times, return_inverse=True)
    k = uniq.size - 1
    n = sizes.size

    grid = np.zeros((m, uniq.size))
    np.add.at(grid, (cls, inv[:n]), sizes)
    np.add.at(grid, (cls, inv[n:]), -sizes)
    per_class = np.cumsum(grid, axis=1)[:, :-1]
    demand = np.cumsum(per_class[::-1], axis=0)[::-1]
    demand[np.abs(demand) < _LOAD_EPS] = 0.0
    # enforce the nesting invariant against float summation noise
    demand = np.maximum.accumulate(demand[::-1], axis=0)[::-1]

    count_grid = np.zeros(uniq.size, dtype=np.int64)
    np.add.at(count_grid, inv[:n], 1)
    np.add.at(count_grid, inv[n:], -1)
    active = np.cumsum(count_grid)[:-1]
    return uniq, active, demand


def nested_demand_reference(
    jobs: Sequence["Job"], capacities: Sequence[float]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Naive oracle: per segment midpoint, scan all jobs for each type."""
    m = len(capacities)
    if m == 0 or not jobs:
        return np.zeros(1), np.zeros(0, dtype=np.int64), np.zeros((m, 0))
    times = sorted({t for j in jobs for t in (j.arrival, j.departure)})
    k = len(times) - 1
    active = np.zeros(k, dtype=np.int64)
    demand = np.zeros((m, k))
    for seg in range(k):
        # probe at the segment's left endpoint: job status is constant on
        # [times[seg], times[seg+1]) and the endpoint is an exact event
        # time, whereas a midpoint probe can round onto the right boundary
        # when the two event times are adjacent floats
        probe = times[seg]
        live = [j for j in jobs if j.arrival <= probe < j.departure]
        active[seg] = len(live)
        for i in range(1, m + 1):
            g_prev = capacities[i - 2] if i >= 2 else 0.0
            demand[i - 1, seg] = sum(j.size for j in live if j.size > g_prev)
    return np.asarray(times), active, demand


# ---------------------------------------------------------------------------
# memoized busy intervals
# ---------------------------------------------------------------------------

class BusyIntervalCache:
    """Per-machine busy intervals with memoized unions.

    Incremental contexts (the online engine, windowed re-planning, the
    streaming service runtime) add and remove intervals as placements
    change; the union/measure of a machine is computed lazily by
    :func:`sweep_busy_union` and cached until the next change to that
    machine invalidates it.  Machines are independent, so an update to one
    never discards another's memo.

    ``on_change`` is an invalidation hook: whenever a machine's memo is
    dropped (add / remove / explicit invalidate) the callback is invoked
    with that machine's key (or ``None`` for a full invalidation), letting
    observers — e.g. the service metrics sampler — track exactly which
    unions went stale without polling every machine.
    """

    __slots__ = ("_raw", "_memo", "on_change")

    def __init__(
        self, on_change: Callable[[object | None], None] | None = None
    ) -> None:
        self._raw: dict[object, list[tuple[float, float]]] = {}
        self._memo: dict[object, IntervalSet] = {}
        #: optional callback ``(key | None) -> None`` fired on invalidation
        self.on_change = on_change

    def _invalidated(self, key: object | None) -> None:
        if key is None:
            self._memo.clear()
        else:
            self._memo.pop(key, None)
        if self.on_change is not None:
            self.on_change(key)

    def add(self, key: object, left: float, right: float) -> None:
        """Record a placed job's active interval on a machine."""
        if not right > left:
            raise ValueError("empty interval")
        self._raw.setdefault(key, []).append((float(left), float(right)))
        self._invalidated(key)

    def remove(self, key: object, left: float, right: float) -> None:
        """Withdraw a previously added interval (placement change)."""
        self._raw[key].remove((float(left), float(right)))
        self._invalidated(key)

    def invalidate(self, key: object | None = None) -> None:
        """Drop memoized unions for one machine (or all of them)."""
        self._invalidated(key)

    def machines(self) -> list[object]:
        """Keys of every machine that ever received an interval."""
        return list(self._raw)

    def busy_set(self, key: object) -> IntervalSet:
        """The machine's busy union (memoized until invalidated)."""
        memo = self._memo.get(key)
        if memo is None:
            pairs = self._raw.get(key, [])
            memo = (
                sweep_busy_union(*zip(*pairs)) if pairs else IntervalSet()
            )
            self._memo[key] = memo
        return memo

    def busy_time(self, key: object) -> float:
        """Measure of the machine's busy union."""
        return self.busy_set(key).length

    def busy_time_with(
        self, key: object, extras: Iterable[tuple[float, float]]
    ) -> float:
        """Busy time of ``key`` with hypothetical extra intervals included.

        The streaming runtime uses this to cost machines whose jobs are
        still running: each open job contributes ``[arrival, now)`` on top
        of the recorded (closed) intervals.  Nothing is mutated and the
        memo is neither consulted for the combined union nor invalidated.
        """
        pairs = list(self._raw.get(key, []))
        pairs.extend((float(a), float(b)) for a, b in extras)
        if not pairs:
            return 0.0
        return sweep_busy_time(*zip(*pairs))

    def total_busy_time(self) -> float:
        """Sum of busy times over all machines."""
        return sum(self.busy_time(key) for key in self._raw)
