"""Piecewise-constant step functions over the real line.

Demand profiles ``s(J, t)`` (total size of active jobs at time ``t``), machine
counts over time and optimal-configuration cost rates are all step functions
with finitely many breakpoints.  :class:`StepFunction` stores them as sorted
breakpoint/value arrays (numpy) and supports exact integration, pointwise
queries, arithmetic and superlevel-set extraction — everything the paper's
lower-bounding scheme (Eq. 1) and the competitive analysis need.

The function is identically zero outside ``[breaks[0], breaks[-1])``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from .intervals import Interval, IntervalSet
from .tolerance import FINE_TOL, TOLERANCE

__all__ = ["StepFunction", "pulse", "sum_pulses", "sum_pulses_reference"]


class StepFunction:
    """A right-continuous piecewise-constant function with compact support.

    ``breaks`` is a strictly increasing 1-D array of n+1 breakpoints;
    ``values`` holds the n constant values, ``values[k]`` on
    ``[breaks[k], breaks[k+1])``.  Outside the support the value is 0.
    """

    __slots__ = ("breaks", "values")

    def __init__(self, breaks: Sequence[float], values: Sequence[float]) -> None:
        b = np.asarray(breaks, dtype=float)
        v = np.asarray(values, dtype=float)
        if b.ndim != 1 or v.ndim != 1 or b.size != v.size + 1:
            raise ValueError("need n+1 breaks for n values")
        if b.size >= 2 and not np.all(np.diff(b) > 0):
            raise ValueError("breaks must be strictly increasing")
        object.__setattr__(self, "breaks", b)
        object.__setattr__(self, "values", v)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("StepFunction is immutable")

    # -- constructors -----------------------------------------------------
    @staticmethod
    def zero() -> "StepFunction":
        """The zero function (trivial support)."""
        return StepFunction(np.array([0.0, 1.0]), np.array([0.0]))

    @staticmethod
    def from_segments(
        segments: Iterable[tuple[float, float, float]],
    ) -> "StepFunction":
        """Build from ``(left, right, value)`` triples covering disjoint spans.

        Gaps between segments are filled with value 0.
        """
        segs = sorted(segments)
        if not segs:
            return StepFunction.zero()
        breaks: list[float] = []
        values: list[float] = []
        for left, right, value in segs:
            if right <= left:
                continue
            if breaks and left < breaks[-1]:
                raise ValueError("segments must be disjoint")
            if breaks and left > breaks[-1]:
                values.append(0.0)
                breaks.append(left)
            if not breaks:
                breaks.append(left)
            values.append(value)
            breaks.append(right)
        if not values:
            return StepFunction.zero()
        return StepFunction(np.array(breaks), np.array(values)).compact()

    # -- queries ----------------------------------------------------------
    def __call__(self, t: float | np.ndarray) -> float | np.ndarray:
        """Pointwise evaluation (0 outside the support)."""
        t_arr = np.asarray(t, dtype=float)
        idx = np.searchsorted(self.breaks, t_arr, side="right") - 1
        inside = (idx >= 0) & (idx < self.values.size)
        out = np.where(inside, self.values[np.clip(idx, 0, self.values.size - 1)], 0.0)
        if np.isscalar(t) or t_arr.ndim == 0:
            return float(out)
        return out

    @property
    def support(self) -> Interval:
        """The interval spanned by the breakpoints."""
        return Interval(float(self.breaks[0]), float(self.breaks[-1]))

    def max(self) -> float:
        """Maximum value attained (0 if the support has only zero values)."""
        return float(max(self.values.max(initial=0.0), 0.0))

    def min_on(self, iv: Interval) -> float:
        """Minimum value over ``iv`` (values outside the support count as 0)."""
        if iv.left < self.breaks[0] or iv.right > self.breaks[-1]:
            return 0.0
        lo = int(np.searchsorted(self.breaks, iv.left, side="right") - 1)
        hi = int(np.searchsorted(self.breaks, iv.right, side="left"))
        return float(self.values[lo:hi].min())

    def integral(self) -> float:
        """Exact integral over the whole line."""
        return float(np.dot(self.values, np.diff(self.breaks)))

    def integral_on(self, ivset: IntervalSet) -> float:
        """Exact integral restricted to an interval set."""
        total = 0.0
        for iv in ivset:
            total += self._integral_on_interval(iv)
        return total

    def _integral_on_interval(self, iv: Interval) -> float:
        lo = max(iv.left, float(self.breaks[0]))
        hi = min(iv.right, float(self.breaks[-1]))
        if hi <= lo:
            return 0.0
        i0 = int(np.searchsorted(self.breaks, lo, side="right") - 1)
        i1 = int(np.searchsorted(self.breaks, hi, side="left"))
        total = 0.0
        for k in range(i0, i1):
            seg_lo = max(lo, float(self.breaks[k]))
            seg_hi = min(hi, float(self.breaks[k + 1]))
            if seg_hi > seg_lo:
                total += float(self.values[k]) * (seg_hi - seg_lo)
        return total

    def superlevel(self, threshold: float, strict: bool = False) -> IntervalSet:
        """Interval set where the function is ``>= threshold`` (or ``>``).

        This extracts the paper's ``\\mathcal{I}_{i,j}`` families: the times at
        which a machine-count step function reaches a given level.
        """
        if strict:
            mask = self.values > threshold
        else:
            mask = self.values >= threshold
        pairs = []
        for k in np.flatnonzero(mask):
            pairs.append((float(self.breaks[k]), float(self.breaks[k + 1])))
        return IntervalSet.from_pairs(pairs)

    def segments(self) -> Iterator_of_segments:
        """Iterate ``(left, right, value)`` triples."""
        for k in range(self.values.size):
            yield float(self.breaks[k]), float(self.breaks[k + 1]), float(self.values[k])

    # -- algebra ------------------------------------------------------------
    def map(self, fn: Callable[[float], float]) -> "StepFunction":
        """Apply ``fn`` to each constant value (``fn(0)`` must be 0 to keep
        the implicit zero extension consistent; this is asserted)."""
        # deliberately stricter than TOLERANCE: fn(0) must be exactly zero
        # up to rounding, or the implicit zero extension drifts
        if abs(fn(0.0)) > FINE_TOL:
            raise ValueError("map requires fn(0) == 0 to preserve zero extension")
        return StepFunction(self.breaks.copy(), np.array([fn(v) for v in self.values]))

    def compact(self) -> "StepFunction":
        """Merge adjacent segments with equal values and trim zero edges."""
        b, v = self.breaks, self.values
        keep = np.empty(v.size, dtype=bool)
        keep[0] = True
        keep[1:] = v[1:] != v[:-1]
        new_breaks = [float(b[0])]
        new_values = []
        for k in range(v.size):
            if keep[k]:
                new_values.append(float(v[k]))
                if k > 0:
                    new_breaks.append(float(b[k]))
        new_breaks.append(float(b[-1]))
        # trim leading/trailing zeros
        while len(new_values) > 1 and new_values[0] == 0.0:
            new_values.pop(0)
            new_breaks.pop(0)
        while len(new_values) > 1 and new_values[-1] == 0.0:
            new_values.pop()
            new_breaks.pop()
        return StepFunction(np.array(new_breaks), np.array(new_values))

    def _binary(self, other: "StepFunction", op: Callable) -> "StepFunction":
        breaks = np.union1d(self.breaks, other.breaks)
        mids = (breaks[:-1] + breaks[1:]) / 2.0
        values = op(self(mids), other(mids))
        return StepFunction(breaks, np.asarray(values, dtype=float)).compact()

    def __add__(self, other: "StepFunction") -> "StepFunction":
        return self._binary(other, np.add)

    def __sub__(self, other: "StepFunction") -> "StepFunction":
        return self._binary(other, np.subtract)

    def maximum(self, other: "StepFunction") -> "StepFunction":
        """Pointwise maximum of two step functions."""
        return self._binary(other, np.maximum)

    def scale(self, c: float) -> "StepFunction":
        """Multiply every value by the constant ``c``."""
        return StepFunction(self.breaks.copy(), self.values * float(c))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StepFunction):
            return NotImplemented
        a, b = self.compact(), other.compact()
        return np.array_equal(a.breaks, b.breaks) and np.array_equal(a.values, b.values)

    def __hash__(self) -> int:  # pragma: no cover - rarely needed
        c = self.compact()
        return hash((c.breaks.tobytes(), c.values.tobytes()))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"[{l:g},{r:g})={v:g}" for l, r, v in list(self.segments())[:6]
        )
        more = "" if self.values.size <= 6 else f", ...({self.values.size} segs)"
        return f"StepFunction({parts}{more})"


from typing import Iterator as _Iterator  # noqa: E402  (typing helper)

Iterator_of_segments = _Iterator[tuple[float, float, float]]


def pulse(left: float, right: float, height: float) -> StepFunction:
    """A single rectangular pulse of the given height on ``[left, right)``."""
    return StepFunction(np.array([left, right], dtype=float), np.array([height], dtype=float))


def sum_pulses(pulses: Sequence[tuple[float, float, float]]) -> StepFunction:
    """Sum of rectangular pulses ``(left, right, height)`` via one sweep.

    This is the workhorse for demand profiles: one vectorized merged event
    queue (O(n log n)) instead of n pairwise additions.  See
    :func:`repro.core.sweep.sweep_demand_profile` for the kernel and
    :func:`sum_pulses_reference` for the retired pure-Python version.
    """
    from .sweep import sweep_demand_profile  # deferred: sweep imports stepfun

    return sweep_demand_profile(pulses)


def sum_pulses_reference(pulses: Sequence[tuple[float, float, float]]) -> StepFunction:
    """The pre-sweep-kernel implementation (dict of event deltas), kept as a
    differential-test oracle for :func:`sum_pulses`."""
    if not pulses:
        return StepFunction.zero()
    events: dict[float, float] = {}
    for left, right, height in pulses:
        if right <= left:
            raise ValueError("pulse with empty support")
        events[left] = events.get(left, 0.0) + height
        events[right] = events.get(right, 0.0) - height
    breaks = np.array(sorted(events))
    deltas = np.array([events[t] for t in breaks])
    values = np.cumsum(deltas)[:-1]
    # tiny negative residue from float cancellation -> clamp to 0
    values[np.abs(values) < TOLERANCE] = 0.0
    return StepFunction(breaks, values).compact()
