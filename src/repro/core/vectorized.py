"""Array-native bulk kernels: the columnar fast path for offline-scale runs.

The event-sweep kernels in :mod:`repro.core.sweep` are asymptotically right,
but every *batch* entry point reached them by walking Python ``Job`` objects:
list comprehensions over a million jobs, one boxed float per endpoint, a
``list -> np.asarray`` conversion per call, and a pure-Python
``StepFunction.compact`` pass over millions of segments.  At the scales the
offline bounds and the e11 scaling experiments care about (10^5-10^6 jobs),
that per-object traffic dominates the actual sorting work.

This module is the second implementation of the bulk kernels, built directly
on contiguous ``float64`` columns (see :meth:`repro.jobs.jobset.JobSet.
to_arrays`): one stable sort of the merged event queue, ``np.cumsum`` for
running loads, ``np.searchsorted`` for segment sampling, and vectorized
compaction — no per-job Python in any hot loop.

Dispatch
--------
Batch entry points (``JobSet.demand_profile``, ``Schedule.busy_times``,
``lower_bound``, DEC-OFFLINE strip peeling, the experiment harness) route
through :func:`use_vectorized`: instances with at least :func:`vec_threshold`
jobs take the columnar path, smaller ones stay on the sweep kernels, and the
``*_reference`` twins remain the ground-truth oracle tier underneath both
(BSHM003 keeps them out of production paths).  The decision is a pure integer
comparison against a process-wide constant — **never** derived from timing,
core counts or platform probes — so a replayed trace picks the same path on
every machine (see ``tests/core/test_vectorized_dispatch.py``).

The threshold comes from ``BSHM_VEC_THRESHOLD`` (read once at import;
default :data:`DEFAULT_VEC_THRESHOLD`); tests pin it temporarily with
:func:`dispatch_threshold`.

Correctness
-----------
Every kernel here is pinned three ways in
``tests/property/test_vectorized_oracle.py``: vectorized vs sweep vs
``*_reference`` — exact on integer inputs, within 1e-9 on floats (only the
summation order differs).  The golden E1-E5 costs are additionally replayed
through this path in ``tests/integration/test_golden_costs.py``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np

from .intervals import IntervalSet
from .stepfun import StepFunction
from .tolerance import TOLERANCE

__all__ = [
    "DEFAULT_VEC_THRESHOLD",
    "vec_threshold",
    "use_vectorized",
    "dispatch_threshold",
    "vec_event_steps",
    "vec_demand_steps",
    "vec_demand_profile",
    "vec_busy_time",
    "vec_busy_union",
    "vec_peak_load",
    "vec_grouped_busy_time",
    "vec_busy_cost",
    "vec_nested_demand",
]

#: values smaller than this are float residue of event cancellation, not load
#: (kept identical to ``repro.core.sweep._LOAD_EPS``)
_LOAD_EPS = TOLERANCE

#: instances with at least this many jobs take the columnar path by default.
#: Chosen where the per-object costs of the sweep entry points (list building,
#: boxed-float conversion) start to dominate the sort; the exact value only
#: moves work between two bit-compatible paths, it never changes results.
DEFAULT_VEC_THRESHOLD = 4096


def _threshold_from_env() -> int:
    """Parse ``BSHM_VEC_THRESHOLD`` once at import (explicit configuration,
    not a platform probe — the same environment replays identically)."""
    raw = os.environ.get("BSHM_VEC_THRESHOLD")
    if raw is None:
        return DEFAULT_VEC_THRESHOLD
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(
            f"BSHM_VEC_THRESHOLD must be an integer, got {raw!r}"
        ) from exc


_threshold: int = _threshold_from_env()


def vec_threshold() -> int:
    """The current dispatch threshold (jobs needed to take the columnar path)."""
    return _threshold


def use_vectorized(n: int) -> bool:
    """Whether a batch of ``n`` jobs dispatches to the vectorized kernels.

    A pure integer comparison: deterministic across platforms, runs and
    replays.  ``BSHM_VEC_THRESHOLD=0`` forces the columnar path everywhere;
    a threshold larger than any instance disables it.
    """
    return n >= _threshold


@contextmanager
def dispatch_threshold(value: int) -> Iterator[None]:
    """Temporarily pin the dispatch threshold (tests, benchmarks).

    ``dispatch_threshold(0)`` forces every entry point onto the vectorized
    path; ``dispatch_threshold(2**63 - 1)`` forces the sweep tier.
    """
    global _threshold
    old = _threshold
    _threshold = int(value)
    try:
        yield
    finally:
        _threshold = old


# ---------------------------------------------------------------------------
# the shared sort-once event engine
# ---------------------------------------------------------------------------

def _stable_order(values: np.ndarray) -> np.ndarray:
    """The stable (mergesort-equivalent) argsort permutation, fast.

    ``np.argsort(kind="stable")`` on float64 is a comparison timsort —
    ~4x slower than numpy's SIMD quicksort.  But stability only matters
    where values *tie*: when the sorted array has no equal neighbours the
    permutation is unique, and any sort kind returns the stable answer.
    So: sort fast, detect ties, and only fall back to the stable kind when
    ties actually exist.  The result is bit-identical to the stable
    permutation on every input and never platform-dependent — the unstable
    kind's tie order is never allowed to leak into the output.
    """
    # ties are repaired below, so the fast unstable kind is safe here
    perm = np.argsort(values)  # bshm: ignore[BSHM007]
    vs = values[perm]
    if bool((vs[1:] == vs[:-1]).any()):
        return np.argsort(values, kind="stable")
    return perm


def _as_columns(
    starts: Sequence[float] | np.ndarray,
    ends: Sequence[float] | np.ndarray,
    weights: Sequence[float] | np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate and coerce to contiguous float64 columns (no copy if already)."""
    s = np.ascontiguousarray(starts, dtype=np.float64)
    e = np.ascontiguousarray(ends, dtype=np.float64)
    if s.shape != e.shape or s.ndim != 1:
        raise ValueError("starts and ends must be 1-D arrays of equal length")
    if np.any(e <= s):
        raise ValueError("every interval needs start < end")
    if weights is None:
        w = np.ones_like(s)
    else:
        w = np.ascontiguousarray(weights, dtype=np.float64)
        if w.shape != s.shape:
            raise ValueError("weights must match starts/ends")
    return s, e, w


def vec_event_steps(
    starts: np.ndarray,
    ends: np.ndarray,
    weights: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(times, cover)`` for weighted ``[start, end)`` intervals, sort-once.

    ``times`` holds the ``k+1`` distinct event times, ``cover[j]`` the total
    weight active on ``[times[j], times[j+1])``.  Unlike
    :func:`repro.core.sweep.merged_events` (argsort + a second sort inside
    ``np.unique`` + ``reduceat``), this sorts the event queue exactly once
    and reads the running ``np.cumsum`` at the last slot of each distinct
    time — half-open semantics fall out because a ``-w`` and a ``+w`` at the
    same instant are both folded into the running sum before it is sampled.
    """
    s, e, w = _as_columns(starts, ends, weights)
    if s.size == 0:
        return np.zeros(1), np.zeros(0)
    times = np.concatenate([s, e])
    deltas = np.concatenate([w, -w])
    order = _stable_order(times)
    t_sorted = times[order]
    run = np.cumsum(deltas[order])
    # last slot of each distinct time: where the next time differs
    boundary = np.empty(t_sorted.size, dtype=bool)
    boundary[:-1] = t_sorted[1:] != t_sorted[:-1]
    boundary[-1] = True
    last = np.flatnonzero(boundary)
    uniq = t_sorted[last]
    cover = run[last][:-1]
    # float cancellation can leave ±1e-16 residue where the true cover is 0
    cover[np.abs(cover) < _LOAD_EPS] = 0.0
    return uniq, cover


# ---------------------------------------------------------------------------
# demand profiles
# ---------------------------------------------------------------------------

def vec_demand_steps(
    starts: np.ndarray, ends: np.ndarray, sizes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Raw ``(breaks, values)`` of the demand profile — no objects built."""
    return vec_event_steps(starts, ends, sizes)


def _compact_steps(
    breaks: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized twin of :meth:`StepFunction.compact`: merge equal adjacent
    segments, trim zero-valued edges (always keep at least one segment)."""
    if values.size == 0:
        return breaks, values
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    keep[1:] = values[1:] != values[:-1]
    idx = np.flatnonzero(keep)
    merged_values = values[idx]
    merged_breaks = np.concatenate([breaks[idx], breaks[-1:]])
    nz = np.flatnonzero(merged_values)
    if nz.size == 0:
        # all-zero profile: the trim loops leave exactly the last segment
        lo = merged_values.size - 1
        hi = lo
    else:
        lo = min(int(nz[0]), merged_values.size - 1)
        hi = max(int(nz[-1]), lo)
    return merged_breaks[lo : hi + 2], merged_values[lo : hi + 1]


def vec_demand_profile(
    starts: np.ndarray, ends: np.ndarray, sizes: np.ndarray
) -> StepFunction:
    """The demand profile ``s(J, ·)`` as a compacted :class:`StepFunction`.

    Identical output to ``sum_pulses`` / :func:`repro.core.sweep.
    sweep_demand_profile`, but compaction happens on whole arrays instead of
    the per-segment Python loop in :meth:`StepFunction.compact` — at 10^6
    jobs that loop alone costs more than the sort.
    """
    if np.asarray(starts).size == 0:
        return StepFunction.zero()
    times, cover = vec_demand_steps(starts, ends, sizes)
    breaks, values = _compact_steps(times, cover)
    return StepFunction(breaks, values)


# ---------------------------------------------------------------------------
# busy time / unions
# ---------------------------------------------------------------------------

def vec_busy_time(starts: np.ndarray, ends: np.ndarray) -> float:
    """Measure of the union of ``[start, end)`` intervals — no permutation.

    With starts and ends *value*-sorted independently, the cover
    ``#\\{starts <= t\\} - #\\{ends <= t\\}`` hits zero exactly on the spans
    ``[ee[k-1], ss[k])`` where the ``k``-th smallest end precedes the
    ``(k+1)``-th smallest start, so

        union  =  (max end - min start) - Σ_k max(0, ss[k] - ee[k-1]).

    Two ``np.sort`` calls (SIMD, no argsort, no gathers) and one reduction —
    the cheapest kernel in the module.
    """
    s, e, _ = _as_columns(starts, ends, None)
    if s.size == 0:
        return 0.0
    ss = np.sort(s)
    ee = np.sort(e)
    gaps = np.maximum(ss[1:] - ee[:-1], 0.0)
    return float(ee[-1] - ss[0] - gaps.sum())


def vec_busy_union(starts: np.ndarray, ends: np.ndarray) -> IntervalSet:
    """Union of ``[start, end)`` intervals as a normalized IntervalSet."""
    times, cover = vec_event_steps(starts, ends)
    if cover.size == 0:
        return IntervalSet()
    padded = np.concatenate([[False], cover > 0, [False]])
    edges = np.flatnonzero(padded[1:] != padded[:-1])
    return IntervalSet.from_pairs(
        (float(times[i]), float(times[j])) for i, j in zip(edges[0::2], edges[1::2])
    )


# ---------------------------------------------------------------------------
# peak load
# ---------------------------------------------------------------------------

def vec_peak_load(
    starts: np.ndarray,
    ends: np.ndarray,
    sizes: np.ndarray,
    *,
    time_tol: float = 0.0,
) -> float:
    """Peak concurrent load of weighted ``[start, end)`` intervals.

    With ``time_tol == 0`` no segment structure is needed: departures are
    ordered *before* arrivals at tied instants (the ``[ends, starts]``
    concatenation under a stable sort), so every prefix of the running sum
    is at most the true segment cover and the prefix maximum equals the
    half-open peak — one sort, one ``cumsum``, one ``max``.

    A positive ``time_tol`` ignores zero-measure phantom slivers exactly like
    :func:`repro.core.sweep.sweep_peak_load` and needs the deduplicated
    segment view.
    """
    s, e, w = _as_columns(starts, ends, sizes)
    if s.size == 0:
        return 0.0
    if time_tol > 0.0:
        times, cover = vec_event_steps(s, e, w)
        cover = cover[np.diff(times) > time_tol]
        if cover.size == 0:
            return 0.0
        return float(np.max(cover, initial=0.0))
    times = np.concatenate([e, s])
    deltas = np.concatenate([-w, w])
    run = np.cumsum(deltas[_stable_order(times)])
    return float(max(run.max(initial=0.0), 0.0))


# ---------------------------------------------------------------------------
# grouped busy time and busy-cost integration
# ---------------------------------------------------------------------------

def vec_grouped_busy_time(
    starts: Sequence[float] | np.ndarray,
    ends: Sequence[float] | np.ndarray,
    group_index: Sequence[int] | np.ndarray,
    n_groups: int,
) -> np.ndarray:
    """Busy time (union measure) of each group's intervals in ONE sort.

    Every group's intervals are shifted into a private block of the time
    line (block width = global span) and merged with the running-maximum
    interval sweep of :func:`vec_busy_time`; per-group totals come from one
    ``np.bincount``.  Unlike :func:`repro.core.sweep.sweep_grouped_busy_time`
    there is no event queue, no ``np.unique`` re-sort and no ``np.add.at``
    scatter — ``O(N log N)`` with a single stable argsort.
    """
    s = np.ascontiguousarray(starts, dtype=np.float64)
    e = np.ascontiguousarray(ends, dtype=np.float64)
    g = np.ascontiguousarray(group_index, dtype=np.int64)
    if not (s.shape == e.shape == g.shape) or s.ndim != 1:
        raise ValueError("starts, ends and group_index must align")
    out = np.zeros(n_groups)
    if s.size == 0:
        return out
    if np.any(e <= s):
        raise ValueError("every interval needs start < end")
    if np.any(g < 0) or np.any(g >= n_groups):
        raise ValueError("group_index out of range")
    t0 = float(s.min())
    block = float(e.max()) - t0 + 1.0
    offset = g.astype(np.float64) * block
    ss = s - t0 + offset
    ee = e - t0 + offset
    order = _stable_order(ss)
    ss = ss[order]
    ee = ee[order]
    gg = g[order]
    runmax = np.maximum.accumulate(ee)
    covered_to = np.empty(ss.size)
    covered_to[0] = ss[0]
    # a group's block ends strictly below the next group's offset, so the
    # running maximum never leaks coverage across group boundaries
    covered_to[1:] = np.maximum(runmax[:-1], ss[1:])
    contrib = np.maximum(ee - covered_to, 0.0)
    return np.bincount(gg, weights=contrib, minlength=n_groups)


def vec_busy_cost(
    starts: Sequence[float] | np.ndarray,
    ends: Sequence[float] | np.ndarray,
    group_index: Sequence[int] | np.ndarray,
    group_rates: Sequence[float] | np.ndarray,
) -> float:
    """Total busy cost ``Σ_machine rate(machine) · busy_time(machine)``.

    The BSHM objective for a fully materialized assignment: grouped busy
    times from :func:`vec_grouped_busy_time` contracted against per-group
    rates in one dot product.
    """
    rates = np.ascontiguousarray(group_rates, dtype=np.float64)
    busy = vec_grouped_busy_time(starts, ends, group_index, rates.size)
    return float(np.dot(busy, rates))


# ---------------------------------------------------------------------------
# the nested lower-bound matrix
# ---------------------------------------------------------------------------

def vec_nested_demand(
    starts: np.ndarray,
    ends: np.ndarray,
    sizes: np.ndarray,
    capacities: Sequence[float] | np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The Eq.-(1) demand matrix ``s(J_{>=i}, t)`` from columnar inputs.

    Returns ``(times, active, demand)`` shaped exactly like
    :func:`repro.core.sweep.sweep_nested_demand`: ``k+1`` distinct event
    times, integer active counts per segment, and the ``m x k`` nested
    demand rows.

    Construction: ONE stable sort of the ``2n`` merged events; the running
    load of each size class is the ``np.cumsum`` of the class-masked deltas
    in that shared global order, sampled at the last slot of each distinct
    time (exactly the :func:`vec_event_steps` engine, ``m`` cumsums instead
    of one).  Nested rows are the suffix sums across classes.  No second
    sort anywhere — ``np.unique``/``np.lexsort`` would each re-sort the
    event queue, which is the dominant cost at 10^6 jobs.
    """
    caps = np.ascontiguousarray(capacities, dtype=np.float64)
    m = caps.size
    s = np.ascontiguousarray(starts, dtype=np.float64)
    e = np.ascontiguousarray(ends, dtype=np.float64)
    z = np.ascontiguousarray(sizes, dtype=np.float64)
    if m == 0 or s.size == 0:
        return np.zeros(1), np.zeros(0, dtype=np.int64), np.zeros((m, 0))
    if not (s.shape == e.shape == z.shape) or s.ndim != 1:
        raise ValueError("starts, ends and sizes must align")
    if np.any(e <= s):
        raise ValueError("every interval needs start < end")
    if np.any(z > caps[-1]):
        raise ValueError("job larger than the largest capacity")
    # class c (0-based): smallest type that fits; job demands types 1..c+1
    cls = np.searchsorted(caps, z, side="left")

    times = np.concatenate([s, e])
    deltas = np.concatenate([z, -z])
    cls2 = np.concatenate([cls, cls])
    order = _stable_order(times)
    t_sorted = times[order]
    d_sorted = deltas[order]
    c_sorted = cls2[order]
    boundary = np.empty(t_sorted.size, dtype=bool)
    boundary[:-1] = t_sorted[1:] != t_sorted[:-1]
    boundary[-1] = True
    last = np.flatnonzero(boundary)
    uniq = t_sorted[last]
    sample = last[:-1]

    k = uniq.size - 1
    per_class = np.empty((m, k))
    for c in range(m):
        # running class-c load in the global event order, read at the last
        # slot of each distinct time (all deltas at that instant folded in)
        run_c = np.cumsum(np.where(c_sorted == c, d_sorted, 0.0))
        per_class[c] = run_c[sample]
    demand = np.cumsum(per_class[::-1], axis=0)[::-1]
    demand[np.abs(demand) < _LOAD_EPS] = 0.0
    # enforce the nesting invariant against float summation noise
    demand = np.maximum.accumulate(demand[::-1], axis=0)[::-1]

    signs = np.where(order < s.size, 1, -1)  # arrival events come first
    active = np.cumsum(signs)[sample]
    return uniq, active, demand
