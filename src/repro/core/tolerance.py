"""The single source of truth for the repo's float-noise tolerance.

Three independent ``1e-9`` constants used to coexist — ``TIME_TOL`` in
:mod:`repro.core.timecmp` plus private ``_TOL`` copies in
:mod:`repro.machines.fleet` and :mod:`repro.machines.machine` — which is
exactly the kind of drift the BSHM002 lint rule exists to prevent on the
time axis: a one-sided edit would silently change which jobs "fit" a
machine without changing which events "coincide".  Every tolerance now
derives from :data:`TOLERANCE`; the named aliases say which axis a call
site is guarding.

The value is deliberately generous against accumulated float rounding
(sums of job sizes, window arithmetic) yet far below any meaningful job
size or duration in the experiment suite.
"""

from __future__ import annotations

__all__ = ["TOLERANCE", "SIZE_TOL", "TIME_TOL", "FINE_TOL"]

#: the repo-wide absolute tolerance for float comparisons
TOLERANCE = 1e-9

#: the deliberately finer slack for exact-arithmetic guards (the placement
#: gap search, ladder rate-ratio classification, oversize rejection): sites
#: that must only forgive the last few ulps of a single operation, never
#: accumulated rounding — using :data:`TOLERANCE` there would make two
#: genuinely different altitudes or ratios compare equal
FINE_TOL = 1e-12

#: tolerance for capacity/size comparisons (machine fits, pool admission)
SIZE_TOL = TOLERANCE

#: tolerance for time comparisons (re-exported by :mod:`repro.core.timecmp`)
TIME_TOL = TOLERANCE
