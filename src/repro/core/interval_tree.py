"""A static interval tree (augmented, array-backed) for stabbing and overlap
queries.

Built once over a set of half-open intervals, it answers

- ``stab(t)`` — all intervals containing ``t`` — in O(log n + k), and
- ``overlapping(lo, hi)`` — all intervals intersecting ``[lo, hi)`` — in
  O(log n + k),

which accelerates coexistence queries in large placements and analyses
(the naive scan is O(n)).  The tree is a balanced BST over interval left
endpoints with subtree-max-right augmentation, stored in arrays for cache
friendliness (per the hpc-parallel guide: simple, measurable, no pointer
chasing).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["StaticIntervalTree"]


class StaticIntervalTree:
    """Immutable interval tree over ``(left, right, payload_index)`` rows."""

    __slots__ = ("lefts", "rights", "order", "max_right")

    def __init__(self, lefts: Sequence[float], rights: Sequence[float]) -> None:
        lefts_arr = np.asarray(lefts, dtype=float)
        rights_arr = np.asarray(rights, dtype=float)
        if lefts_arr.shape != rights_arr.shape or lefts_arr.ndim != 1:
            raise ValueError("lefts and rights must be equal-length 1-D arrays")
        if np.any(lefts_arr >= rights_arr):
            raise ValueError("intervals must be non-empty half-open [l, r)")
        order = np.argsort(lefts_arr, kind="stable")
        self.lefts = lefts_arr[order]
        self.rights = rights_arr[order]
        self.order = order  # original indices, aligned with sorted arrays
        self.max_right = self._build_max_right()

    def _build_max_right(self) -> np.ndarray:
        """``max_right[i]`` = max right endpoint over the implicit BST subtree
        rooted at sorted position ``i`` (midpoint recursion)."""
        n = self.lefts.size
        out = np.empty(n, dtype=float)

        def build(lo: int, hi: int) -> float:
            if lo >= hi:
                return -np.inf
            mid = (lo + hi) // 2
            best = max(
                float(self.rights[mid]), build(lo, mid), build(mid + 1, hi)
            )
            out[mid] = best
            return best

        import sys

        old = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old, 2 * int(np.log2(n + 2)) + 50))
        try:
            build(0, n)
        finally:
            sys.setrecursionlimit(old)
        return out

    def __len__(self) -> int:
        return int(self.lefts.size)

    # -- queries ------------------------------------------------------------
    def stab(self, t: float) -> list[int]:
        """Original indices of intervals with ``left <= t < right``."""
        return self.overlapping(t, np.nextafter(t, np.inf))

    def overlapping(self, lo: float, hi: float) -> list[int]:
        """Original indices of intervals intersecting ``[lo, hi)``."""
        if hi <= lo:
            return []
        out: list[int] = []
        n = len(self)
        stack = [(0, n)]
        while stack:
            a, b = stack.pop()
            if a >= b:
                continue
            mid = (a + b) // 2
            if self.max_right[mid] <= lo:
                continue  # nothing in this subtree ends after lo
            # left subtree can always contain hits (its lefts are smaller)
            stack.append((a, mid))
            left = float(self.lefts[mid])
            right = float(self.rights[mid])
            if left < hi and lo < right:
                out.append(int(self.order[mid]))
            if left < hi:  # right subtree only if its lefts can be < hi
                stack.append((mid + 1, b))
        return out
