"""Tolerance-explicit comparisons for float time coordinates.

Event times in this codebase are floats, and two conventions coexist:

- **Exact** comparisons where bit-identity is the contract (event
  dedup in the sweep kernels, checkpoint replay verification).
- **Tolerant** comparisons where times arrive from arithmetic (window
  boundaries, billing roundups) and a ``time_tol`` guard absorbs float
  noise, mirroring the ``time_tol`` parameter of
  :func:`repro.core.sweep.sweep_peak_load`.

Bare ``==`` / ``!=`` on time coordinates hides which convention is in
play, which is how zero-measure phantom segments sneak in; the BSHM002
lint rule therefore requires time equality to go through this module
(or to carry a justified ``# bshm: ignore[BSHM002]`` when exactness is
the point).  ``time_eq(a, b, tol=0.0)`` *is* exact equality — the win
is that the tolerance is now part of the call site's vocabulary.
"""

from __future__ import annotations

from .tolerance import TIME_TOL

__all__ = ["TIME_TOL", "time_eq", "time_ne", "time_lt", "time_le"]


def time_eq(a: float, b: float, tol: float = TIME_TOL) -> bool:
    """Whether two time coordinates coincide up to ``tol``."""
    return abs(a - b) <= tol


def time_ne(a: float, b: float, tol: float = TIME_TOL) -> bool:
    """Whether two time coordinates differ by more than ``tol``."""
    return abs(a - b) > tol


def time_lt(a: float, b: float, tol: float = TIME_TOL) -> bool:
    """Whether ``a`` precedes ``b`` by strictly more than ``tol``."""
    return a < b - tol


def time_le(a: float, b: float, tol: float = TIME_TOL) -> bool:
    """Whether ``a`` precedes or equals ``b`` up to ``tol``."""
    return a <= b + tol
