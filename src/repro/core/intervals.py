"""Half-open time intervals and disjoint interval sets.

The paper (Section II) works with half-open intervals ``I = [I^-, I^+)``.
This module provides the two primitives every other subsystem builds on:

- :class:`Interval` — an immutable half-open interval with endpoint access
  matching the paper's ``I^-`` / ``I^+`` notation.
- :class:`IntervalSet` — a normalized union of pairwise-disjoint intervals,
  supporting union, intersection, containment and total length ``len(I)``.

All endpoints are floats; degenerate (empty) intervals are rejected at
construction except through :meth:`Interval.maybe`, which returns ``None``
for an empty span.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

__all__ = ["Interval", "IntervalSet", "union_length"]


class Interval:
    """A half-open interval ``[left, right)`` with ``left < right``.

    Mirrors the paper's notation: ``I.minus`` is ``I^-`` (left endpoint),
    ``I.plus`` is ``I^+`` (right endpoint) and ``I.length`` is ``len(I)``.
    """

    __slots__ = ("left", "right")

    def __init__(self, left: float, right: float) -> None:
        left = float(left)
        right = float(right)
        if not (left < right):
            raise ValueError(f"empty or inverted interval [{left}, {right})")
        if not (math.isfinite(left) and math.isfinite(right)):
            raise ValueError(f"non-finite interval endpoints [{left}, {right})")
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Interval is immutable")

    @staticmethod
    def maybe(left: float, right: float) -> "Interval | None":
        """Return ``Interval(left, right)`` or ``None`` when the span is empty."""
        if left < right:
            return Interval(left, right)
        return None

    # -- paper notation -------------------------------------------------
    @property
    def minus(self) -> float:
        """Left endpoint ``I^-``."""
        return self.left

    @property
    def plus(self) -> float:
        """Right endpoint ``I^+``."""
        return self.right

    @property
    def length(self) -> float:
        """``len(I) = I^+ - I^-``."""
        return self.right - self.left

    # -- relations ------------------------------------------------------
    def contains(self, t: float) -> bool:
        """Whether time point ``t`` lies in ``[left, right)``."""
        return self.left <= t < self.right

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two half-open intervals share at least one point."""
        return self.left < other.right and other.left < self.right

    def intersect(self, other: "Interval") -> "Interval | None":
        """Intersection as an Interval, or ``None`` if disjoint."""
        return Interval.maybe(max(self.left, other.left), min(self.right, other.right))

    def covers(self, other: "Interval") -> bool:
        """Whether ``other`` is fully contained in this interval."""
        return self.left <= other.left and other.right <= self.right

    def shift(self, delta: float) -> "Interval":
        """Interval translated by ``delta``."""
        return Interval(self.left + delta, self.right + delta)

    def extend_right(self, amount: float) -> "Interval":
        """Interval with the right endpoint pushed out by ``amount >= 0``."""
        if amount < 0:
            raise ValueError("extend_right expects a non-negative amount")
        return Interval(self.left, self.right + amount)

    # -- dunder ----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Interval)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash((self.left, self.right))

    def __lt__(self, other: "Interval") -> bool:
        return (self.left, self.right) < (other.left, other.right)

    def __repr__(self) -> str:
        return f"Interval({self.left!r}, {self.right!r})"


class IntervalSet:
    """A normalized finite union of pairwise-disjoint half-open intervals.

    Construction merges touching/overlapping members, so two IntervalSets
    covering the same point set compare equal.  Used for the paper's
    ``\\mathcal{I}_{i,j}`` interval families and for busy-period accounting.
    """

    __slots__ = ("_ivs",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        object.__setattr__(self, "_ivs", _normalize(intervals))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IntervalSet is immutable")

    @staticmethod
    def from_pairs(pairs: Iterable[tuple[float, float]]) -> "IntervalSet":
        """Build from ``(left, right)`` pairs, silently dropping empty spans."""
        ivs = []
        for left, right in pairs:
            iv = Interval.maybe(left, right)
            if iv is not None:
                ivs.append(iv)
        return IntervalSet(ivs)

    # -- queries ----------------------------------------------------------
    @property
    def intervals(self) -> tuple[Interval, ...]:
        """The disjoint members, sorted by left endpoint."""
        return self._ivs

    @property
    def length(self) -> float:
        """Total measure ``len(IntervalSet)`` (sum of member lengths)."""
        return sum(iv.length for iv in self._ivs)

    @property
    def empty(self) -> bool:
        return not self._ivs

    def contains(self, t: float) -> bool:
        """Membership test for a single time point (binary search)."""
        ivs = self._ivs
        lo, hi = 0, len(ivs)
        while lo < hi:
            mid = (lo + hi) // 2
            if ivs[mid].right <= t:
                lo = mid + 1
            else:
                hi = mid
        return lo < len(ivs) and ivs[lo].contains(t)

    def covers(self, iv: Interval) -> bool:
        """Whether a whole interval is contained in the set."""
        for member in self._ivs:
            if member.covers(iv):
                return True
            if member.left > iv.left:
                break
        return False

    def member_containing(self, t: float) -> Interval | None:
        """The contiguous member interval containing ``t``, if any."""
        for member in self._ivs:
            if member.contains(t):
                return member
            if member.left > t:
                return None
        return None

    # -- algebra ----------------------------------------------------------
    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Point-set union (re-normalized)."""
        return IntervalSet(self._ivs + other._ivs)

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """Point-set intersection via a linear merge of sorted members."""
        out: list[Interval] = []
        i = j = 0
        a, b = self._ivs, other._ivs
        while i < len(a) and j < len(b):
            iv = a[i].intersect(b[j])
            if iv is not None:
                out.append(iv)
            if a[i].right <= b[j].right:
                i += 1
            else:
                j += 1
        return IntervalSet(out)

    def extend_members_right(self, factor: float) -> "IntervalSet":
        """Paper's ``I'`` construction: extend each contiguous member ``I`` to
        ``[I^-, I^+ + factor * len(I))`` (Theorem 2 proof), then re-normalize.
        """
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return IntervalSet(
            iv.extend_right(factor * iv.length) for iv in self._ivs
        )

    # -- dunder -------------------------------------------------------------
    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivs)

    def __len__(self) -> int:
        return len(self._ivs)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntervalSet) and self._ivs == other._ivs

    def __hash__(self) -> int:
        return hash(self._ivs)

    def __repr__(self) -> str:
        inner = ", ".join(f"[{iv.left:g},{iv.right:g})" for iv in self._ivs)
        return f"IntervalSet({inner})"


def _normalize(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
    """Sort and merge overlapping/touching intervals into disjoint form."""
    ivs = sorted(intervals, key=lambda iv: (iv.left, iv.right))
    if not ivs:
        return ()
    merged: list[Interval] = [ivs[0]]
    for iv in ivs[1:]:
        last = merged[-1]
        # '<=' is deliberate: a normalized union merges *touching* members
        # ([0,1) U [1,2) = [0,2)); this is set normalization, not an
        # overlap test between two jobs.  # bshm: ignore[BSHM001]
        if iv.left <= last.right:  # touching counts as mergeable
            if iv.right > last.right:
                merged[-1] = Interval(last.left, iv.right)
        else:
            merged.append(iv)
    return tuple(merged)


def union_length(intervals: Sequence[Interval]) -> float:
    """Measure of the union of (possibly overlapping) intervals.

    Convenience wrapper used for busy-time accounting:
    ``len(U_{J in jobs} I(J))``.
    """
    return IntervalSet(intervals).length
