"""Sweep-line event machinery shared by schedulers and analyzers.

Everything time-varying in BSHM (demand, machine busy states, costs) changes
only at job arrivals and departures.  This module turns a set of jobs into

- a sorted stream of :class:`Event` records (arrival before departure at equal
  times, so a job departing exactly when another arrives does not overlap it
  under half-open semantics), and
- the list of *elementary segments*: maximal spans between consecutive event
  times, on which every quantity of interest is constant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from .intervals import Interval

if TYPE_CHECKING:  # pragma: no cover
    from ..jobs.job import Job

__all__ = ["EventKind", "Event", "event_stream", "elementary_segments"]


class EventKind(enum.IntEnum):
    """Departure sorts before arrival at the same instant: half-open
    intervals mean a job with ``I^+ == t`` is *not* active at ``t``, so its
    capacity must be released before a job with ``I^- == t`` is placed."""

    DEPART = 0
    ARRIVE = 1


@dataclass(frozen=True, slots=True)
class Event:
    """A single arrival or departure."""

    time: float
    kind: EventKind
    job: "Job"

    @property
    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, int(self.kind), self.job.uid)


def event_stream(jobs: Iterable["Job"]) -> list[Event]:
    """All arrivals and departures in processing order.

    Ties at one instant are ordered DEPART < ARRIVE (capacity released before
    reuse), then by job uid for determinism.
    """
    events: list[Event] = []
    for job in jobs:
        events.append(Event(job.arrival, EventKind.ARRIVE, job))
        events.append(Event(job.departure, EventKind.DEPART, job))
    events.sort(key=lambda e: e.sort_key)
    return events


def elementary_segments(jobs: Sequence["Job"]) -> list[Interval]:
    """Maximal intervals between consecutive event times.

    Every job-derived quantity (demand, active set, optimal configuration) is
    constant on each returned segment; integrating segment-by-segment is
    therefore exact.  Segments where no job is active are omitted.
    """
    if not jobs:
        return []
    import numpy as np

    arrivals = np.sort(np.array([j.arrival for j in jobs], dtype=float))
    departures = np.sort(np.array([j.departure for j in jobs], dtype=float))
    times = np.unique(np.concatenate([arrivals, departures]))
    lefts, rights = times[:-1], times[1:]
    # active count on segment (l, r): arrivals <= l minus departures <= l
    started = np.searchsorted(arrivals, lefts, side="right")
    ended = np.searchsorted(departures, lefts, side="right")
    active = started - ended
    return [
        Interval(float(l), float(r))
        for l, r, count in zip(lefts, rights, active)
        if count > 0
    ]
