"""Decision journals: observable traces of online scheduling runs.

Wrap any online scheduler in :class:`JournalingScheduler` and every
decision is recorded as a :class:`Decision` — which machine was chosen, how
many machines were busy, what the load looked like.  Render the journal
with :func:`render_journal` for debugging/teaching, or assert on it in
tests (e.g. "the scheduler never placed a big job in Group A").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..schedule.schedule import MachineKey
from .engine import JobView

__all__ = ["Decision", "Journal", "JournalingScheduler", "render_journal"]


@dataclass(frozen=True, slots=True)
class Decision:
    """One arrival decision."""

    time: float
    job_name: str
    job_size: float
    machine: MachineKey
    active_jobs_after: int


@dataclass(slots=True)
class Journal:
    decisions: list[Decision] = field(default_factory=list)
    #: one entry per departure, in delivery order, appended as
    #: ``(active_after, uid)`` — the number of jobs still active *after* the
    #: departed job (identified by ``uid``) released its capacity.  Note the
    #: count comes first; there is no timestamp (non-clairvoyant schedulers
    #: are not told departure times ahead, and the journal records exactly
    #: what the scheduler observed).
    departures: list[tuple[int, int]] = field(default_factory=list)

    def machines_used(self) -> list[MachineKey]:
        """Every machine that received at least one job."""
        return sorted({d.machine for d in self.decisions})

    def decisions_on(self, machine: MachineKey) -> list[Decision]:
        """All decisions that chose the given machine."""
        return [d for d in self.decisions if d.machine == machine]


class JournalingScheduler:
    """Transparent wrapper: delegates to the inner scheduler, records all."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.ladder = inner.ladder
        self.journal = Journal()
        self._active = 0

    def on_arrival(self, job: JobView) -> MachineKey:
        """Delegate to the inner scheduler and record the decision."""
        key = self.inner.on_arrival(job)
        self._active += 1
        self.journal.decisions.append(
            Decision(
                time=job.arrival,
                job_name=job.name,
                job_size=job.size,
                machine=key,
                active_jobs_after=self._active,
            )
        )
        return key

    def on_departure(self, uid: int) -> None:
        """Release the departed job's capacity."""
        self.inner.on_departure(uid)
        self._active -= 1
        self.journal.departures.append((self._active, uid))


def render_journal(journal: Journal, *, limit: int = 40) -> str:
    """Human-readable decision log."""
    lines = [f"{len(journal.decisions)} placements on {len(journal.machines_used())} machines"]
    for d in journal.decisions[:limit]:
        lines.append(
            f"t={d.time:8.3f}  {d.job_name:12s} (s={d.job_size:6.3g}) -> {d.machine}"
            f"   [{d.active_jobs_after} active]"
        )
    if len(journal.decisions) > limit:
        lines.append(f"... {len(journal.decisions) - limit} more placements")
    return "\n".join(lines)
