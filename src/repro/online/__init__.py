"""Online (non-clairvoyant) schedulers and the batch replay engine.

Public surface: the :class:`OnlineScheduler` protocol and engine, the
paper's DEC/INC/general online algorithms, baselines, the clairvoyant
comparison scheduler, windowed re-planning and decision journaling.
"""

from .clairvoyant import DurationClassScheduler, run_clairvoyant
from .dec_online import DecOnlineScheduler
from .engine import JobView, OnlineScheduler, run_online
from .first_fit import FirstFitScheduler
from .general_online import GeneralOnlineScheduler
from .inc_online import IncOnlineScheduler
from .journal import Decision, Journal, JournalingScheduler, render_journal
from .windowed import windowed_schedule

__all__ = [
    "JobView",
    "OnlineScheduler",
    "run_online",
    "FirstFitScheduler",
    "DecOnlineScheduler",
    "IncOnlineScheduler",
    "GeneralOnlineScheduler",
    "DurationClassScheduler",
    "run_clairvoyant",
    "windowed_schedule",
    "Decision",
    "Journal",
    "JournalingScheduler",
    "render_journal",
]
