"""The non-clairvoyant online simulation engine.

The engine replays an instance's arrival/departure events in time order and
drives an :class:`OnlineScheduler`.  Non-clairvoyance is enforced
structurally: the scheduler only ever sees a :class:`JobView` — size,
arrival time, uid — never the departure time.  Departures are delivered as
they happen, after which the capacity they held is reusable (half-open
interval semantics: a departure at ``t`` precedes an arrival at ``t``).

:func:`run_online` is a thin *batch adapter* over the streaming
:class:`~repro.service.runtime.SchedulerRuntime`: it unrolls the clairvoyant
:class:`~repro.jobs.jobset.JobSet` into the canonical event order and feeds
the runtime one call at a time, so the batch engine, the experiments and
the live ``bshm serve`` service all execute the same code path (their cost
equality is pinned by ``tests/service/test_differential.py``).

The result is an ordinary :class:`~repro.schedule.schedule.Schedule`, so
online and offline algorithms are costed and validated identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..core.events import EventKind, event_stream
from ..core.sweep import BusyIntervalCache
from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..schedule.schedule import MachineKey, Schedule

__all__ = ["JobView", "OnlineScheduler", "run_online"]


@dataclass(frozen=True, slots=True)
class JobView:
    """What a non-clairvoyant scheduler is allowed to know at arrival."""

    uid: int
    size: float
    arrival: float
    name: str


class OnlineScheduler(Protocol):
    """The contract an online algorithm implements."""

    ladder: Ladder

    def on_arrival(self, job: JobView) -> MachineKey:
        """Choose a machine for the arriving job, immediately and irrevocably."""
        ...

    def on_departure(self, uid: int) -> None:
        """Release the job's capacity."""
        ...


def run_online(
    jobs: JobSet,
    scheduler: OnlineScheduler,
    *,
    busy_cache: BusyIntervalCache | None = None,
    metrics=None,
) -> Schedule:
    """Replay the instance through the scheduler and collect the schedule.

    A batch adapter: the clairvoyant job set is unrolled into the canonical
    event order (departure before arrival at equal times) and streamed
    through a :class:`~repro.service.runtime.SchedulerRuntime` call by call,
    with each job's departure revealed only when it happens.

    When a :class:`~repro.core.sweep.BusyIntervalCache` is supplied, every
    placement is recorded into it as it happens — with its full (clairvoyant)
    interval, since the batch driver knows departures upfront — so callers
    can watch per-machine busy time accumulate incrementally.  ``metrics``
    optionally names a :class:`~repro.service.metrics.MetricsRegistry` the
    runtime samples during the replay (arrivals, active jobs, per-decision
    latency).
    """
    from ..service.runtime import SchedulerRuntime  # deferred: avoids a cycle

    runtime = SchedulerRuntime(scheduler, metrics=metrics)
    for event in event_stream(jobs):
        if event.kind is EventKind.ARRIVE:
            admission = runtime.submit(
                event.job.size,
                event.job.arrival,
                name=event.job.name,
                uid=event.job.uid,
            )
            if busy_cache is not None:
                busy_cache.add(
                    admission.machine, event.job.arrival, event.job.departure
                )
        else:
            runtime.depart(event.job.uid, event.job.departure)
    return runtime.schedule()
