"""The non-clairvoyant online simulation engine.

The engine replays an instance's arrival/departure events in time order and
drives an :class:`OnlineScheduler`.  Non-clairvoyance is enforced
structurally: the scheduler only ever sees a :class:`JobView` — size,
arrival time, uid — never the departure time.  Departures are delivered as
they happen, after which the capacity they held is reusable (half-open
interval semantics: a departure at ``t`` precedes an arrival at ``t``).

The result is an ordinary :class:`~repro.schedule.schedule.Schedule`, so
online and offline algorithms are costed and validated identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..core.events import EventKind, event_stream
from ..core.sweep import BusyIntervalCache
from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..schedule.schedule import MachineKey, Schedule

__all__ = ["JobView", "OnlineScheduler", "run_online"]


@dataclass(frozen=True, slots=True)
class JobView:
    """What a non-clairvoyant scheduler is allowed to know at arrival."""

    uid: int
    size: float
    arrival: float
    name: str


class OnlineScheduler(Protocol):
    """The contract an online algorithm implements."""

    ladder: Ladder

    def on_arrival(self, job: JobView) -> MachineKey:
        """Choose a machine for the arriving job, immediately and irrevocably."""
        ...

    def on_departure(self, uid: int) -> None:
        """Release the job's capacity."""
        ...


def run_online(
    jobs: JobSet,
    scheduler: OnlineScheduler,
    *,
    busy_cache: BusyIntervalCache | None = None,
) -> Schedule:
    """Replay the instance through the scheduler and collect the schedule.

    When a :class:`~repro.core.sweep.BusyIntervalCache` is supplied, every
    placement is recorded into it as it happens, so callers can watch
    per-machine busy time accumulate incrementally (the memoized unions are
    invalidated machine-by-machine as placements land) instead of
    re-deriving it from the finished schedule.
    """
    assignment = {}
    for event in event_stream(jobs):
        if event.kind is EventKind.ARRIVE:
            view = JobView(
                uid=event.job.uid,
                size=event.job.size,
                arrival=event.job.arrival,
                name=event.job.name,
            )
            key = scheduler.on_arrival(view)
            if not isinstance(key, MachineKey):
                raise TypeError("scheduler must return a MachineKey")
            assignment[event.job] = key
            if busy_cache is not None:
                busy_cache.add(key, event.job.arrival, event.job.departure)
        else:
            scheduler.on_departure(event.job.uid)
    return Schedule(scheduler.ladder, assignment)
