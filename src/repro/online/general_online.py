"""GEN-ONLINE: our concrete instantiation of the Section-V online sketch.

The paper only says the general online algorithm "follows the style of
DEC-ONLINE" over the type forest and conjectures ``O(sqrt(m) · μ)``
competitiveness.  Our instantiation (documented as a substitution in
DESIGN.md):

- every forest node ``j`` owns Group-A and Group-B pools of type-``j``
  machines, exactly as in DEC-ONLINE;
- a non-root node's per-group concurrency budget is
  ``2 * ceil(r_k / (r_j * sqrt(|C(k)|)))`` with ``k`` its parent — the
  online analogue of GEN-OFFLINE's bottom-strip budget (the DEC-ONLINE
  budget ``4 (r_{i+1}/r_i - 1)`` plays this role on path forests);
- root nodes are unbounded;
- an arriving job of size class ``c`` walks the path
  ``c → parent(c) → … → root``; at each node ``j`` it tries Group B when
  ``s(J) > g_j / 2`` and Group A otherwise, settling at the first success.
  The root always succeeds.

On an INC ladder every node is a root, so this degenerates to INC-ONLINE;
on a normalized DEC ladder the walk order matches DEC-ONLINE's type order.
"""

from __future__ import annotations

import math

from ..core.tolerance import FINE_TOL, TOLERANCE
from ..machines.fleet import FleetState, IndexedPool
from ..machines.ladder import Ladder
from ..schedule.schedule import MachineKey
from .engine import JobView

__all__ = ["GeneralOnlineScheduler", "node_group_budget"]


def node_group_budget(ladder: Ladder, node: int, parent: int, siblings: int) -> int:
    """``2 * ceil(r_k / (r_j * sqrt(|C(k)|)))`` for a non-root node."""
    ratio = ladder.rate(parent) / ladder.rate(node)
    return max(1, 2 * math.ceil(ratio / math.sqrt(siblings) - TOLERANCE))


class GeneralOnlineScheduler:
    """Forest-guided Group-A/Group-B First-Fit."""

    def __init__(self, ladder: Ladder) -> None:
        self.ladder = ladder
        self.forest = ladder.forest()
        self.state = FleetState()
        self.group_a: dict[int, IndexedPool] = {}
        self.group_b: dict[int, IndexedPool] = {}
        stats = self.state.stats  # fleet-wide probe accounting
        for j in range(1, ladder.m + 1):
            parent = self.forest.parent[j]
            if parent is None:
                budget = None
            else:
                budget = node_group_budget(
                    ladder, j, parent, self.forest.num_children(parent)
                )
            g = ladder.capacity(j)
            self.group_a[j] = IndexedPool(
                "A", j, g, size_limit=g / 2.0, budget=budget, stats=stats
            )
            self.group_b[j] = IndexedPool(
                "B", j, g, budget=budget, single_job=True, stats=stats
            )

    def on_arrival(self, job: JobView) -> MachineKey:
        """Walk the job up its class's root path through the A/B pools."""
        c = self._size_class(job.size)
        for j in self.forest.path_to_root(c):
            g_j = self.ladder.capacity(j)
            if job.size > g_j / 2.0:
                machine = self.group_b[j].first_fit(job.uid, job.size)
            else:
                machine = self.group_a[j].first_fit(job.uid, job.size)
                if machine is None:
                    # Group A full at this node; a half-large job may still
                    # ride a Group-B machine here before climbing.
                    machine = self.group_b[j].first_fit(job.uid, job.size)
            if machine is not None:
                return self.state.record(job.uid, machine)
        raise RuntimeError("GEN-ONLINE failed to place a job; root pool missing?")

    def on_departure(self, uid: int) -> None:
        """Release the departed job's capacity."""
        self.state.depart(uid)

    def iter_pools(self) -> list[tuple[str, IndexedPool]]:
        """Labelled pools in a fixed order (state-snapshot contract)."""
        out: list[tuple[str, IndexedPool]] = []
        for j in range(1, self.ladder.m + 1):
            out.append((f"A{j}", self.group_a[j]))
            out.append((f"B{j}", self.group_b[j]))
        return out

    def _size_class(self, size: float) -> int:
        for i in range(1, self.ladder.m + 1):
            if size <= self.ladder.capacity(i) * (1 + FINE_TOL):
                return i
        raise ValueError(f"size {size} exceeds the largest capacity")
