"""Homogeneous First-Fit ([14]) — the (μ+3)-competitive building block.

First-Fit on a single machine type: place each arriving job on the
lowest-indexed machine with enough residual capacity, opening a fresh machine
when none fits.  This is the per-class engine inside INC-ONLINE and a
baseline in its own right (run on the smallest type that fits everything).
"""

from __future__ import annotations

from ..machines.fleet import FleetState, IndexedPool
from ..machines.ladder import Ladder
from ..schedule.schedule import MachineKey
from .engine import JobView

__all__ = ["FirstFitScheduler"]


class FirstFitScheduler:
    """First-Fit on one fixed type of a ladder."""

    def __init__(self, ladder: Ladder, type_index: int) -> None:
        self.ladder = ladder
        self.type_index = type_index
        self.state = FleetState()
        self.pool = IndexedPool(
            "FF", type_index, ladder.capacity(type_index), budget=None,
            stats=self.state.stats,
        )

    def on_arrival(self, job: JobView) -> MachineKey:
        """First-Fit on the pool of this type."""
        machine = self.pool.first_fit(job.uid, job.size)
        if machine is None:
            raise ValueError(
                f"job {job.name} (size {job.size:g}) does not fit type "
                f"{self.type_index} (capacity {self.pool.capacity:g})"
            )
        return self.state.record(job.uid, machine)

    def on_departure(self, uid: int) -> None:
        """Release the departed job's capacity."""
        self.state.depart(uid)

    def iter_pools(self) -> list[tuple[str, IndexedPool]]:
        """Labelled pools in a fixed order (state-snapshot contract)."""
        return [("FF", self.pool)]
