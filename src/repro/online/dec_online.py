"""DEC-ONLINE: the 32(μ+1)-competitive algorithm for BSHM-DEC (Theorem 2).

Two machine groups per type:

- **Group A** type-``i`` machines admit only jobs of size ``<= g_i / 2`` and
  pack them First-Fit (lowest index first);
- **Group B** type-``i`` machines host **one job at a time**, reserved for
  jobs of size in ``(g_i / 2, g_i]``.

In each group at most ``4 (r_{i+1}/r_i - 1)`` type-``i`` machines
(``i < m``) may be busy concurrently; type ``m`` is unbounded.

Placement rule for an arriving job ``J`` of size class ``i``
(``s(J) in (g_{i-1}, g_i]``):

- if ``s(J) > g_i / 2``: take the lowest-indexed *empty* Group-B type-``i``
  machine if the budget allows, otherwise First-Fit through Group A on types
  ``i+1, i+2, …``;
- else (``s(J) <= g_i / 2``): First-Fit through Group A on types
  ``i, i+1, …``.

Because the type-``m`` pools are unbounded, a placement always exists.  For
ladders outside Section-II normal form a final Group-B fallback on higher
types keeps the scheduler total (documented deviation; the competitive bound
assumes normal form).
"""

from __future__ import annotations

import math

from ..core.tolerance import FINE_TOL, TOLERANCE
from ..machines.fleet import FleetState, IndexedPool
from ..machines.ladder import Ladder
from ..schedule.schedule import MachineKey
from .engine import JobView

__all__ = ["DecOnlineScheduler", "group_budget"]


def group_budget(rate_ratio: float, factor: float = 4.0) -> int:
    """Per-group concurrency budget ``factor * (r_{i+1}/r_i - 1)``.

    Integral for power-of-2 rates; rounded up otherwise.  ``factor`` is the
    E10 ablation knob (the paper uses 4).
    """
    if rate_ratio <= 1:
        raise ValueError("rate ratio must exceed 1 between consecutive types")
    return max(1, math.ceil(factor * (rate_ratio - 1.0) - TOLERANCE))


class DecOnlineScheduler:
    """The Group-A/Group-B First-Fit scheduler of Section III-B."""

    def __init__(self, ladder: Ladder, *, budget_factor: float = 4.0) -> None:
        self.ladder = ladder
        self.state = FleetState()
        self.group_a: dict[int, IndexedPool] = {}
        self.group_b: dict[int, IndexedPool] = {}
        stats = self.state.stats  # fleet-wide probe accounting
        for i in range(1, ladder.m + 1):
            if i < ladder.m:
                budget = group_budget(ladder.rate(i + 1) / ladder.rate(i), budget_factor)
            else:
                budget = None
            g = ladder.capacity(i)
            self.group_a[i] = IndexedPool(
                "A", i, g, size_limit=g / 2.0, budget=budget, stats=stats
            )
            self.group_b[i] = IndexedPool(
                "B", i, g, budget=budget, single_job=True, stats=stats
            )

    # -- scheduler protocol -------------------------------------------------
    def on_arrival(self, job: JobView) -> MachineKey:
        """Apply the Group-A/Group-B placement rule of Section III-B."""
        i = self._size_class(job.size)
        g_i = self.ladder.capacity(i)
        if job.size > g_i / 2.0:
            machine = self.group_b[i].first_fit(job.uid, job.size)
            if machine is not None:
                return self.state.record(job.uid, machine)
            start = i + 1
        else:
            start = i
        # First-Fit upward through Group A
        for j in range(start, self.ladder.m + 1):
            machine = self.group_a[j].first_fit(job.uid, job.size)
            if machine is not None:
                return self.state.record(job.uid, machine)
        # Non-normal-form fallback: Group B upward (type m is unbounded, and
        # every job fits g_m, so this always terminates successfully).
        for j in range(i + 1, self.ladder.m + 1):
            machine = self.group_b[j].first_fit(job.uid, job.size)
            if machine is not None:
                return self.state.record(job.uid, machine)
        raise RuntimeError("DEC-ONLINE failed to place a job; ladder invalid?")

    def on_departure(self, uid: int) -> None:
        """Release the departed job's capacity."""
        self.state.depart(uid)

    def iter_pools(self) -> list[tuple[str, IndexedPool]]:
        """Labelled pools in a fixed order (state-snapshot contract)."""
        out: list[tuple[str, IndexedPool]] = []
        for i in range(1, self.ladder.m + 1):
            out.append((f"A{i}", self.group_a[i]))
            out.append((f"B{i}", self.group_b[i]))
        return out

    # -- internals ---------------------------------------------------------
    def _size_class(self, size: float) -> int:
        for i in range(1, self.ladder.m + 1):
            if size <= self.ladder.capacity(i) * (1 + FINE_TOL):
                return i
        raise ValueError(f"size {size} exceeds the largest capacity")

    def busy_counts(self) -> dict[tuple[str, int], int]:
        """Diagnostics: concurrently busy machines per (group, type)."""
        out = {}
        for i in range(1, self.ladder.m + 1):
            out[("A", i)] = self.group_a[i].busy_count()
            out[("B", i)] = self.group_b[i].busy_count()
        return out
