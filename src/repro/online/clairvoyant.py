"""Clairvoyant online scheduling: departure times revealed at arrival.

The paper's related work contrasts the non-clairvoyant setting (this
paper's Theorem 2, lower bound Omega(mu) [11]) with the clairvoyant setting
where Azar & Vainstein [5] achieve Theta(sqrt(log mu)) for the homogeneous
problem.  As an extension we implement the classical *duration-classified
First-Fit*: jobs are grouped into geometric duration classes
``[2^k d_min, 2^(k+1) d_min)`` and each class is packed First-Fit on its own
machines.  Within one class mu is at most 2, so the non-clairvoyant
First-Fit bound (mu + 3) gives at most 5 per class — the classification
trades a log(mu) factor for mu.  On heterogeneous DEC ladders we layer the
classification on top of the DEC-ONLINE type selection.

A separate :func:`run_clairvoyant` engine entry point passes full job
objects (including departures) to clairvoyant schedulers, keeping the
non-clairvoyant engine's `JobView` guarantee intact.
"""

from __future__ import annotations

import math

from ..core.tolerance import FINE_TOL
from ..jobs.job import Job
from ..jobs.jobset import JobSet
from ..core.events import EventKind, event_stream
from ..machines.fleet import FleetState, IndexedPool
from ..machines.ladder import Ladder
from ..schedule.schedule import MachineKey, Schedule

__all__ = ["ClairvoyantScheduler", "DurationClassScheduler", "run_clairvoyant"]


class ClairvoyantScheduler:
    """Protocol-by-convention: ``on_arrival(job: Job)`` sees departures."""

    ladder: Ladder

    def on_arrival(self, job: Job) -> MachineKey:  # pragma: no cover - interface

        """Place into the (size class, duration class) First-Fit pool."""
        raise NotImplementedError

    def on_departure(self, uid: int) -> None:  # pragma: no cover - interface

        """Release the departed job's capacity."""
        raise NotImplementedError


def run_clairvoyant(jobs: JobSet, scheduler) -> Schedule:
    """Replay the instance, revealing each job's departure at its arrival."""
    assignment = {}
    for event in event_stream(jobs):
        if event.kind is EventKind.ARRIVE:
            key = scheduler.on_arrival(event.job)
            if not isinstance(key, MachineKey):
                raise TypeError("scheduler must return a MachineKey")
            assignment[event.job] = key
        else:
            scheduler.on_departure(event.job.uid)
    return Schedule(scheduler.ladder, assignment)


class DurationClassScheduler(ClairvoyantScheduler):
    """Duration-classified First-Fit over a ladder.

    Jobs are keyed by ``(size class, duration class)``; each key gets its own
    unbounded First-Fit pool on the smallest fitting machine type.  The
    duration class of a job is ``floor(log2(duration / base))`` where
    ``base`` is a caller-supplied (or first-seen) minimum duration estimate.

    On homogeneous ladders this is the classical clairvoyant DBP strategy;
    heterogeneous ladders inherit the INC-style per-size-class separation.
    """

    def __init__(self, ladder: Ladder, *, base_duration: float | None = None) -> None:
        self.ladder = ladder
        self.state = FleetState()
        self.pools: dict[tuple[int, int], IndexedPool] = {}
        self._base = base_duration

    def _duration_class(self, duration: float) -> int:
        if self._base is None:
            # first arrival pins the base; later shorter jobs get negative
            # classes, which is fine (classes are just dict keys)
            self._base = duration
        return int(math.floor(math.log2(duration / self._base) + FINE_TOL))

    def on_arrival(self, job: Job) -> MachineKey:
        size_class = job.size_class(self.ladder.capacities)
        dur_class = self._duration_class(job.duration)
        key = (size_class, dur_class)
        pool = self.pools.get(key)
        if pool is None:
            pool = IndexedPool(
                f"T{size_class}D{dur_class}",
                size_class,
                self.ladder.capacity(size_class),
                budget=None,
                stats=self.state.stats,
            )
            self.pools[key] = pool
        machine = pool.first_fit(job.uid, job.size)
        assert machine is not None  # unbounded pool, size fits its class
        return self.state.record(job.uid, machine)

    def on_departure(self, uid: int) -> None:
        self.state.depart(uid)
