"""Semi-online scheduling: batch arrivals into windows, plan each window
offline.

A practical middle ground between the paper's two settings: the scheduler
may delay *placement decisions* (not job starts — that would violate the
model) by grouping jobs that arrive within the same planning window and
placing the whole batch with the offline machinery.  Formally this is still
an online algorithm over batches: jobs are placed at their arrival times
(each batch is processed the moment its last member arrives, but since
placement within a window cannot use information beyond the window, we
realize it by running the offline algorithm on the *batch* and namespacing
its machines per window).

Because machines are never shared across windows, feasibility is inherited
from the offline algorithm applied per batch; the cost question — how much
does batching recover of the offline advantage? — is measured in E19.
"""

from __future__ import annotations

import math
from typing import Callable

from ..core.tolerance import FINE_TOL
from ..jobs.job import Job
from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..schedule.schedule import MachineKey, Schedule

__all__ = ["windowed_schedule"]

OfflineFn = Callable[[JobSet, Ladder], Schedule]


def windowed_schedule(
    jobs: JobSet,
    ladder: Ladder,
    offline_fn: OfflineFn,
    *,
    window: float,
) -> Schedule:
    """Partition jobs by arrival window and plan each batch offline.

    ``window`` is the batch width in time units; batch ``k`` holds the jobs
    with ``arrival in [k*window, (k+1)*window)``.  Machine tags are
    namespaced per batch, so batches never share machines (the conservative
    realization — measured, not assumed, to be the main cost of batching).
    """
    if window <= 0:
        raise ValueError("window must be positive")
    batches: dict[int, list[Job]] = {}
    for job in jobs:
        batches.setdefault(int(math.floor(job.arrival / window + FINE_TOL)), []).append(job)

    assignment: dict[Job, MachineKey] = {}
    for k in sorted(batches):
        sub = offline_fn(JobSet(batches[k]), ladder)
        for job, key in sub.assignment.items():
            assignment[job] = MachineKey(key.type_index, ("w", k) + key.tag)
    return Schedule(ladder, assignment)
