"""INC-ONLINE: partition + First-Fit, ((9/4)μ + 27/4)-competitive (Section IV).

Each arriving job of size class ``i`` (``s(J) in (g_{i-1}, g_i]``) is placed
First-Fit among the type-``i`` machines of its own class; classes never
share machines.  Lemma 4 bounds the partitioning loss by 9/4 per instant and
the [14] First-Fit analysis contributes the ``μ + 3`` factor per class.
"""

from __future__ import annotations

from ..core.tolerance import FINE_TOL
from ..machines.fleet import FleetState, IndexedPool
from ..machines.ladder import Ladder
from ..schedule.schedule import MachineKey
from .engine import JobView

__all__ = ["IncOnlineScheduler"]


class IncOnlineScheduler:
    """Per-size-class First-Fit over the ladder."""

    def __init__(self, ladder: Ladder) -> None:
        self.ladder = ladder
        self.state = FleetState()
        self.pools = {
            i: IndexedPool(
                f"class{i}", i, ladder.capacity(i), budget=None,
                stats=self.state.stats,
            )
            for i in range(1, ladder.m + 1)
        }

    def on_arrival(self, job: JobView) -> MachineKey:
        """First-Fit within the job's size class."""
        i = self._size_class(job.size)
        machine = self.pools[i].first_fit(job.uid, job.size)
        assert machine is not None  # unbounded pool, job fits its class type
        return self.state.record(job.uid, machine)

    def on_departure(self, uid: int) -> None:
        """Release the departed job's capacity."""
        self.state.depart(uid)

    def iter_pools(self) -> list[tuple[str, IndexedPool]]:
        """Labelled pools in a fixed order (state-snapshot contract)."""
        return [(f"class{i}", self.pools[i]) for i in range(1, self.ladder.m + 1)]

    def _size_class(self, size: float) -> int:
        for i in range(1, self.ladder.m + 1):
            if size <= self.ladder.capacity(i) * (1 + FINE_TOL):
                return i
        raise ValueError(f"size {size} exceeds the largest capacity")
