"""Executable Theorem-2 proof machinery: competitive-ratio certificates.

The proof of Theorem 2 is constructive; this module implements each object
it builds so the argument can be *checked on actual runs*:

1. ``reference_configuration`` — the machine family ``M(t)`` built from the
   parameters ``p_1(t)`` (type forced by the largest active job) and
   ``p_2(t)`` (type suggested by the total active size).  Lemma 1: its cost
   rate is at most ``4 * sum_i w*(i, t) r_i``.
2. ``interval_families`` — ``I_{i,j}``: the times when ``M(t)`` contains at
   least ``j`` type-``i`` machines, and their extensions
   ``I'_{i,j} = U [I^-, I^+ + mu * len(I))``.
3. ``certify_dec_online`` — for a DEC-ONLINE run, groups machines into the
   paper's ``M_{i,j}`` (indices ``4j-3..4j`` in both groups) and checks
   Lemma 3: every job on an ``M_{i,j}`` machine has its active interval
   inside ``I'_{i,j}``.  When the check passes, the run's cost is certified
   to be at most ``8 * sum_{i,j} len(I'_{i,j}) * r_i <= 32 (mu+1) OPT``.

The certificate is a *sufficient* bound — it can fail to certify (Lemma 3's
hypothesis needs the exact Group-A/B discipline) without the ratio actually
being violated; the E13-style tests measure how often it certifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.intervals import IntervalSet
from ..core.stepfun import StepFunction
from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..lowerbound.bound import LowerBoundResult, lower_bound
from ..schedule.schedule import Schedule

__all__ = [
    "ReferenceConfiguration",
    "reference_configuration",
    "interval_families",
    "CertificateResult",
    "certify_dec_online",
]


@dataclass(frozen=True, slots=True)
class ReferenceConfiguration:
    """``M(t)`` as per-type machine-count step functions plus its cost rate."""

    ladder: Ladder
    counts: tuple[StepFunction, ...]  # counts[i-1] = type-i machines in M(t)
    cost_rate: StepFunction

    def count_at(self, i: int, t: float) -> int:
        return int(round(float(self.counts[i - 1](t))))


def _p1(ladder: Ladder, sizes: list[float]) -> int:
    """Type forced by the largest active job: ``s_max in (g_{i-1}, g_i]``."""
    s_max = max(sizes)
    for i in range(1, ladder.m + 1):
        if s_max <= ladder.capacity(i) * (1 + 1e-12):
            return i
    raise ValueError("active job exceeds largest capacity")


def _p2(ladder: Ladder, total: float) -> int:
    """Type suggested by the total size (the paper's threshold sequence).

    ``p_2(t) = m`` when ``s(J,t) > (r_m/r_{m-1} - 1) g_{m-1}``; otherwise the
    type ``i`` with ``s(J,t) in ((r_i/r_{i-1} - 1) g_{i-1}, (r_{i+1}/r_i - 1) g_i]``
    (with ``g_0 = 0``, so the sequence starts at 0 and is increasing for
    normal-form DEC ladders).
    """
    m = ladder.m
    if m == 1:
        return 1
    thresholds = []
    for i in range(1, m):
        thresholds.append((ladder.rate(i + 1) / ladder.rate(i) - 1.0) * ladder.capacity(i))
    # thresholds[i-1] = upper limit of the p2 = i region
    for i in range(1, m):
        if total <= thresholds[i - 1] * (1 + 1e-12):
            return i
    return m


def _m_counts(ladder: Ladder, p1: int, p2: int, total: float) -> list[int]:
    """Machine counts of ``M(t)`` for one instant."""
    counts = [0] * ladder.m
    if p1 > p2:
        for i in range(1, p1):
            counts[i - 1] = int(round(ladder.rate(i + 1) / ladder.rate(i))) - 1
        counts[p1 - 1] = 1
    else:
        for i in range(1, p2):
            counts[i - 1] = int(round(ladder.rate(i + 1) / ladder.rate(i))) - 1
        counts[p2 - 1] = max(1, math.ceil(total / ladder.capacity(p2) - 1e-12))
    return counts


def reference_configuration(jobs: JobSet, ladder: Ladder) -> ReferenceConfiguration:
    """Build ``M(t)`` over the whole timeline (normal-form DEC ladders)."""
    segments = jobs.segments()
    per_type_segments: list[list[tuple[float, float, float]]] = [
        [] for _ in range(ladder.m)
    ]
    rate_segments: list[tuple[float, float, float]] = []
    for seg in segments:
        mid = (seg.left + seg.right) / 2.0
        sizes = [j.size for j in jobs if j.active_at(mid)]
        if not sizes:
            continue
        counts = _m_counts(ladder, _p1(ladder, sizes), _p2(ladder, sum(sizes)), sum(sizes))
        for i, w in enumerate(counts):
            if w:
                per_type_segments[i].append((seg.left, seg.right, float(w)))
        rate = sum(w * ladder.rate(i + 1) for i, w in enumerate(counts))
        rate_segments.append((seg.left, seg.right, rate))
    counts_fns = tuple(
        StepFunction.from_segments(segs) if segs else StepFunction.zero()
        for segs in per_type_segments
    )
    rate_fn = (
        StepFunction.from_segments(rate_segments)
        if rate_segments
        else StepFunction.zero()
    )
    return ReferenceConfiguration(ladder=ladder, counts=counts_fns, cost_rate=rate_fn)


def interval_families(
    config: ReferenceConfiguration, mu: float
) -> dict[tuple[int, int], tuple[IntervalSet, IntervalSet]]:
    """``(I_{i,j}, I'_{i,j})`` for every type ``i`` and level ``j >= 1``."""
    out: dict[tuple[int, int], tuple[IntervalSet, IntervalSet]] = {}
    for i in range(1, config.ladder.m + 1):
        profile = config.counts[i - 1]
        level = 1
        while True:
            base = profile.superlevel(float(level))
            if base.empty:
                break
            out[(i, level)] = (base, base.extend_members_right(mu))
            level += 1
    return out


@dataclass(slots=True)
class CertificateResult:
    """Outcome of running the Theorem-2 certificate on a schedule."""

    certified: bool
    lemma1_holds: bool
    lemma1_worst_factor: float  # max over segments of rate(M)/rate(w*)
    lemma3_violations: list  # (job, machine_key, (i, j))
    certified_bound: float  # 8 * sum len(I'_{i,j}) r_i  (valid iff certified)
    actual_cost: float
    lower_bound: float

    @property
    def certified_ratio(self) -> float:
        return self.certified_bound / self.lower_bound if self.lower_bound > 0 else float("inf")


def certify_dec_online(
    jobs: JobSet,
    ladder: Ladder,
    schedule: Schedule,
    *,
    lb: LowerBoundResult | None = None,
) -> CertificateResult:
    """Run the full Theorem-2 argument against an actual DEC-ONLINE run.

    The schedule's machine keys must carry the DEC-ONLINE tag shape
    ``(group, index)`` with group in {"A", "B"}.
    """
    lb_result = lb if lb is not None else lower_bound(jobs, ladder)
    config = reference_configuration(jobs, ladder)

    # Lemma 1: rate(M(t)) <= 4 * optimal configuration rate, at every segment
    lemma1_worst = 0.0
    for seg, opt_rate in zip(lb_result.segments, lb_result.rates):
        mid = (seg.left + seg.right) / 2.0
        m_rate = float(config.cost_rate(mid))
        if opt_rate > 0:
            lemma1_worst = max(lemma1_worst, m_rate / opt_rate)
    lemma1_holds = lemma1_worst <= 4.0 + 1e-9

    mu = jobs.mu
    families = interval_families(config, mu)

    # Lemma 3: each job on machine slot (i, j) has I(J) inside I'_{i,j};
    # machine index within its group maps to j = ceil(index / 4)
    violations = []
    for job, key in schedule.assignment.items():
        group, index = key.tag[0], key.tag[1]
        if group not in ("A", "B"):
            raise ValueError("schedule does not carry DEC-ONLINE machine tags")
        i = key.type_index
        j = (int(index) + 3) // 4
        family = families.get((i, j))
        covered = family is not None and family[1].covers(job.interval)
        if not covered:
            violations.append((job, key, (i, j)))

    certified_bound = 8.0 * sum(
        prime.length * ladder.rate(i) for (i, _j), (_base, prime) in families.items()
    )
    certified = lemma1_holds and not violations
    return CertificateResult(
        certified=certified,
        lemma1_holds=lemma1_holds,
        lemma1_worst_factor=lemma1_worst,
        lemma3_violations=violations,
        certified_bound=certified_bound,
        actual_cost=schedule.cost(),
        lower_bound=lb_result.value,
    )
