"""Crossover analysis: where does one strategy overtake another?

The E6 tables show *who wins* at fixed load; this module finds *where the
lead changes* as a workload parameter sweeps.  :func:`find_crossover` scans
a monotone parameter (e.g. arrival intensity), evaluates two schedulers at
each point, and brackets the crossing of their cost curves; E21 uses it to
locate the load level at which "just rent big boxes" overtakes the
type-aware algorithms on DEC ladders — the quantitative version of the
paper's motivation that heterogeneity matters at *low* utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..schedule.schedule import Schedule
from ..schedule.validate import assert_feasible

__all__ = ["CrossoverResult", "find_crossover"]

SchedulerFn = Callable[[JobSet, Ladder], Schedule]
InstanceFn = Callable[[float, np.random.Generator], JobSet]


@dataclass(frozen=True, slots=True)
class CrossoverResult:
    """Outcome of a crossover scan between schedulers A and B."""

    parameter_values: tuple[float, ...]
    cost_a: tuple[float, ...]
    cost_b: tuple[float, ...]
    #: parameter values bracketing each sign change of (cost_a - cost_b);
    #: empty when one scheduler dominates throughout
    crossings: tuple[tuple[float, float], ...]

    def winner_at(self, idx: int) -> str:
        """Which scheduler was cheaper at sweep index ``idx``."""
        return "A" if self.cost_a[idx] <= self.cost_b[idx] else "B"

    def rows(self, name_a: str = "A", name_b: str = "B") -> list[dict]:
        """Dict rows for table rendering, one per sweep point."""
        out = []
        for value, ca, cb in zip(self.parameter_values, self.cost_a, self.cost_b):
            out.append(
                {
                    "parameter": value,
                    name_a: round(ca, 2),
                    name_b: round(cb, 2),
                    "winner": name_a if ca <= cb else name_b,
                    "margin": round(abs(ca - cb) / min(ca, cb), 4),
                }
            )
        return out


def find_crossover(
    scheduler_a: SchedulerFn,
    scheduler_b: SchedulerFn,
    make_instance: InstanceFn,
    ladder: Ladder,
    parameter_values: list[float],
    *,
    seeds: int = 3,
    base_seed: int = 7,
    check: bool = True,
) -> CrossoverResult:
    """Evaluate both schedulers along the sweep (seed-averaged costs) and
    report the parameter intervals where the cheaper one changes."""
    values = sorted(parameter_values)
    cost_a: list[float] = []
    cost_b: list[float] = []
    for value in values:
        totals = [0.0, 0.0]
        for s in range(seeds):
            rng = np.random.default_rng(base_seed + 104729 * s)
            jobs = make_instance(value, rng)
            for slot, fn in enumerate((scheduler_a, scheduler_b)):
                sched = fn(jobs, ladder)
                if check:
                    assert_feasible(sched, jobs)
                totals[slot] += sched.cost()
        cost_a.append(totals[0] / seeds)
        cost_b.append(totals[1] / seeds)

    crossings = []
    diffs = [a - b for a, b in zip(cost_a, cost_b)]
    for k in range(len(values) - 1):
        if diffs[k] == 0:
            continue
        if diffs[k] * diffs[k + 1] < 0:
            crossings.append((values[k], values[k + 1]))
    return CrossoverResult(
        parameter_values=tuple(values),
        cost_a=tuple(cost_a),
        cost_b=tuple(cost_b),
        crossings=tuple(crossings),
    )
