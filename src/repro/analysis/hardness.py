"""Hard-instance search: empirically probing the approximation ratios.

The paper proves worst-case bounds (14, 9, 32(μ+1), …) but gives no
lower-bound instances for the *offline* algorithms, and only conjectures the
general-case O(√m).  This module mounts a randomized search for instances
maximizing ``cost(ALG) / LB``:

1. sample a batch of random instances from a configurable generator space
   (n, size law, duration law, burstiness),
2. keep the instance with the worst ratio,
3. *mutate* it (perturb sizes/intervals, duplicate the worst-overlap jobs)
   for several rounds of local search.

The result quantifies how far the measured constants can be pushed — E18
reports the hardest instances found per algorithm within a fixed search
budget.  (A ratio approaching the proven bound would be remarkable; in
practice the search plateaus early, which is itself evidence that the
paper's constants are loose for non-adversarial inputs.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..jobs.job import Job
from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..lowerbound.bound import lower_bound
from ..schedule.validate import assert_feasible

__all__ = ["HardInstance", "search_hard_instance"]


@dataclass(frozen=True, slots=True)
class HardInstance:
    """The worst instance found and its measured ratio."""

    jobs: JobSet
    ratio: float
    generation: int  # search round that produced it


def _random_instance(rng: np.random.Generator, n: int, gmax: float) -> JobSet:
    """One random instance from a deliberately spiky generator space."""
    style = rng.integers(0, 3)
    if style == 0:  # uniform chaos
        arrivals = rng.uniform(0, 30, size=n)
        durations = rng.uniform(0.2, 15, size=n)
        sizes = rng.uniform(0.02, 1.0, size=n) * gmax
    elif style == 1:  # big-small mix (stresses type choice)
        arrivals = rng.uniform(0, 30, size=n)
        durations = rng.choice([0.5, 10.0], size=n, p=[0.7, 0.3]) * rng.uniform(
            0.8, 1.2, size=n
        )
        sizes = rng.choice([0.05, 0.55, 1.0], size=n) * gmax * rng.uniform(
            0.9, 1.0, size=n
        )
    else:  # staircase-ish
        arrivals = np.sort(rng.uniform(0, 10, size=n))
        durations = np.linspace(1, 20, n) * rng.uniform(0.8, 1.2, size=n)
        sizes = rng.uniform(0.1, 0.6, size=n) * gmax
    return JobSet(
        Job(float(s), float(a), float(a + d))
        for s, a, d in zip(sizes, arrivals, durations)
    )


def _mutate(jobs: JobSet, rng: np.random.Generator, gmax: float) -> JobSet:
    """Local perturbation: jitter some jobs, occasionally clone one."""
    out = []
    job_list = list(jobs)
    for job in job_list:
        if rng.random() < 0.3:
            size = float(np.clip(job.size * rng.uniform(0.7, 1.4), 0.01, gmax))
            arrival = max(0.0, job.arrival + rng.normal(0, 1.0))
            duration = max(0.1, job.duration * rng.uniform(0.6, 1.6))
            out.append(Job(size, arrival, arrival + duration))
        else:
            out.append(Job(job.size, job.arrival, job.departure))
    if rng.random() < 0.5 and job_list:
        donor = job_list[int(rng.integers(0, len(job_list)))]
        out.append(
            Job(
                donor.size,
                max(0.0, donor.arrival + rng.normal(0, 0.5)),
                donor.departure + rng.uniform(0, 2),
            )
        )
    return JobSet(out)


def search_hard_instance(
    algorithm: Callable[[JobSet, Ladder], object],
    ladder: Ladder,
    *,
    seed: int = 0,
    n_jobs: int = 30,
    random_rounds: int = 30,
    mutate_rounds: int = 30,
    check: bool = True,
) -> HardInstance:
    """Randomized + local search for an instance maximizing cost/LB."""
    rng = np.random.default_rng(seed)
    gmax = ladder.capacity(ladder.m)

    def ratio_of(jobs: JobSet) -> float:
        lb = lower_bound(jobs, ladder).value
        if lb <= 0:
            return 0.0
        sched = algorithm(jobs, ladder)
        if check:
            assert_feasible(sched, jobs)
        return sched.cost() / lb

    best = HardInstance(jobs=_random_instance(rng, n_jobs, gmax), ratio=0.0, generation=-1)
    best = HardInstance(best.jobs, ratio_of(best.jobs), -1)
    for round_idx in range(random_rounds):
        cand = _random_instance(rng, n_jobs, gmax)
        r = ratio_of(cand)
        if r > best.ratio:
            best = HardInstance(cand, r, round_idx)
    for round_idx in range(mutate_rounds):
        cand = _mutate(best.jobs, rng, gmax)
        r = ratio_of(cand)
        if r > best.ratio:
            best = HardInstance(cand, r, random_rounds + round_idx)
    return best
