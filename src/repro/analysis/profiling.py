"""Lightweight instrumentation: timers and counters ("no optimization
without measuring" — the hpc-parallel guide).

:class:`Profiler` is a process-local registry of named counters and
accumulated wall-clock timers with a context-manager interface::

    prof = Profiler()
    with prof.timer("placement"):
        place_jobs(jobs)
    prof.count("conflict-pairs", 42)
    print(prof.table())

The experiment harness attaches one per run; algorithms stay uninstrumented
by default (zero overhead), but hot paths accept an optional profiler.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Profiler"]


@dataclass(slots=True)
class _Timer:
    total: float = 0.0
    calls: int = 0


@dataclass(slots=True)
class Profiler:
    """Named counters + accumulated timers."""

    counters: dict[str, float] = field(default_factory=dict)
    timers: dict[str, _Timer] = field(default_factory=dict)

    def count(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to a named counter."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    @contextmanager
    def timer(self, name: str):
        """Context manager accumulating wall-clock time under ``name``."""
        rec = self.timers.setdefault(name, _Timer())
        start = time.perf_counter()
        try:
            yield
        finally:
            rec.total += time.perf_counter() - start
            rec.calls += 1

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's counters and timers into this one."""
        for name, value in other.counters.items():
            self.count(name, value)
        for name, rec in other.timers.items():
            mine = self.timers.setdefault(name, _Timer())
            mine.total += rec.total
            mine.calls += rec.calls

    def reset(self) -> None:
        """Clear all counters and timers."""
        self.counters.clear()
        self.timers.clear()

    def table(self) -> str:
        """Human-readable dump, timers sorted by total time."""
        lines = []
        if self.timers:
            lines.append("timers:")
            for name, rec in sorted(self.timers.items(), key=lambda kv: -kv[1].total):
                mean = rec.total / rec.calls if rec.calls else 0.0
                lines.append(
                    f"  {name:30s} total={rec.total:9.4f}s calls={rec.calls:6d} "
                    f"mean={mean * 1e3:9.3f}ms"
                )
        if self.counters:
            lines.append("counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name:30s} {value:g}")
        return "\n".join(lines) if lines else "(empty profiler)"
