"""Plain-text table rendering for experiment output.

No third-party table dependency: fixed-width columns inferred from content,
CSV export for downstream plotting.  Every experiment runner funnels its
rows through :func:`render_table` so EXPERIMENTS.md and the bench output
share formatting.
"""

from __future__ import annotations

import io
from typing import Iterable, Mapping, Sequence

__all__ = ["render_table", "to_csv"]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[k]) for r in rendered)) for k, c in enumerate(cols)
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    out.write(header + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for r in rendered:
        out.write("  ".join(v.ljust(w) for v, w in zip(r, widths)) + "\n")
    return out.getvalue()


def to_csv(rows: Iterable[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """CSV export (no quoting needs expected in our numeric tables)."""
    rows = list(rows)
    if not rows:
        return ""
    cols = list(columns) if columns is not None else list(rows[0].keys())
    lines = [",".join(cols)]
    for row in rows:
        lines.append(",".join(_fmt(row.get(c, "")) for c in cols))
    return "\n".join(lines) + "\n"
