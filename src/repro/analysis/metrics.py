"""Schedule metrics beyond raw cost.

Utilities the experiment tables and the gantt/ascii visualizations share:

- machine-count time series per type (how many machines of each type are
  busy at every instant),
- utilization (useful volume / paid capacity-time),
- cost decomposition per machine type,
- concurrency peaks (for checking the online budgets empirically).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.stepfun import StepFunction, sum_pulses
from ..jobs.jobset import JobSet
from ..schedule.schedule import Schedule

__all__ = ["ScheduleMetrics", "busy_machine_profile", "compute_metrics"]


def busy_machine_profile(schedule: Schedule, type_index: int | None = None) -> StepFunction:
    """Number of busy machines over time (optionally one type only)."""
    pulses = []
    groups = schedule.by_machine()
    for key, jobs in groups.items():
        if type_index is not None and key.type_index != type_index:
            continue
        for iv in JobSet(jobs).busy_span():
            pulses.append((iv.left, iv.right, 1.0))
    if not pulses:
        return StepFunction.zero()
    return sum_pulses(pulses)


@dataclass(frozen=True, slots=True)
class ScheduleMetrics:
    """Aggregate quality measures of one schedule."""

    cost: float
    machines: int
    cost_by_type: dict[int, float]
    machines_by_type: dict[int, int]
    peak_busy_by_type: dict[int, int]
    utilization: float  # job volume / paid capacity-time

    def row(self) -> dict:
        return {
            "cost": round(self.cost, 3),
            "machines": self.machines,
            "utilization": round(self.utilization, 4),
            **{f"cost_T{i}": round(c, 2) for i, c in self.cost_by_type.items() if c > 0},
        }


def compute_metrics(schedule: Schedule) -> ScheduleMetrics:
    """All metrics in one pass over the schedule."""
    groups = schedule.by_machine()
    paid_capacity_time = 0.0
    for key, jobs in groups.items():
        busy = JobSet(jobs).busy_span().length
        paid_capacity_time += busy * schedule.ladder.capacity(key.type_index)
    volume = schedule.jobs.total_volume()
    peak_busy = {}
    for i in range(1, schedule.ladder.m + 1):
        profile = busy_machine_profile(schedule, i)
        peak_busy[i] = int(round(profile.max()))
    return ScheduleMetrics(
        cost=schedule.cost(),
        machines=len(groups),
        cost_by_type=schedule.cost_by_type(),
        machines_by_type=schedule.machine_count_by_type(),
        peak_busy_by_type=peak_busy,
        utilization=volume / paid_capacity_time if paid_capacity_time > 0 else 0.0,
    )
