"""Markdown schedule reports.

``schedule_report`` turns one schedule (plus its instance and lower bound)
into a self-contained markdown document: headline numbers, per-type
breakdown, busiest machines, and an ASCII demand chart.  Exposed on the CLI
as ``bshm schedule ... --report out.md``.
"""

from __future__ import annotations

from ..jobs.jobset import JobSet
from ..lowerbound.bound import lower_bound
from ..schedule.schedule import Schedule
from ..viz.ascii_chart import render_profile
from .metrics import compute_metrics

__all__ = ["schedule_report"]


def schedule_report(
    schedule: Schedule,
    jobs: JobSet,
    *,
    title: str = "BSHM schedule report",
    algorithm: str = "?",
) -> str:
    """Render a markdown report for one schedule."""
    ladder = schedule.ladder
    lb = lower_bound(jobs, ladder).value
    metrics = compute_metrics(schedule)
    lines = [f"# {title}", ""]
    lines.append(f"- algorithm: **{algorithm}**")
    lines.append(
        f"- instance: {len(jobs)} jobs, peak demand {jobs.peak_demand():.3g}, "
        f"mu = {jobs.mu:.3g}"
    )
    lines.append(
        f"- ladder: {ladder.m} types, regime **{ladder.regime.value}** "
        f"(capacities {', '.join(f'{g:g}' for g in ladder.capacities)})"
    )
    lines.append(f"- total cost: **{metrics.cost:.4f}**")
    ratio = metrics.cost / lb if lb > 0 else float("inf")
    lines.append(f"- lower bound (Eq. 1): {lb:.4f} — measured ratio **{ratio:.4f}**")
    lines.append(f"- machines used: {metrics.machines}")
    lines.append(f"- utilization (volume / paid capacity-time): {metrics.utilization:.3f}")
    lines.append("")

    lines.append("## Cost by machine type")
    lines.append("")
    lines.append("| type | capacity | rate | machines | peak busy | cost | share |")
    lines.append("|---|---|---|---|---|---|---|")
    for i in range(1, ladder.m + 1):
        cost = metrics.cost_by_type[i]
        share = cost / metrics.cost if metrics.cost > 0 else 0.0
        lines.append(
            f"| {i} | {ladder.capacity(i):g} | {ladder.rate(i):g} "
            f"| {metrics.machines_by_type[i]} | {metrics.peak_busy_by_type[i]} "
            f"| {cost:.3f} | {share:.1%} |"
        )
    lines.append("")

    lines.append("## Busiest machines")
    lines.append("")
    groups = schedule.by_machine()
    busiest = sorted(
        groups, key=lambda key: -schedule.machine_cost(key, groups)
    )[:10]
    lines.append("| machine | jobs | busy time | cost |")
    lines.append("|---|---|---|---|")
    for key in busiest:
        busy = schedule.busy_set(key, groups).length
        lines.append(
            f"| {key} | {len(groups[key])} | {busy:.3f} "
            f"| {busy * ladder.rate(key.type_index):.3f} |"
        )
    lines.append("")

    lines.append("## Demand profile")
    lines.append("")
    lines.append("```")
    lines.append(render_profile(jobs.demand_profile(), width=68, height=10))
    lines.append("```")
    lines.append("")
    return "\n".join(lines)
