"""Parameter-sweep utilities with seed replication.

Experiments that report a trend (ratio vs mu, vs m, vs n) should average
over several seeds and report dispersion; this module centralizes that:

    sweep = Sweep(parameter="mu", values=[1, 2, 4, 8], seeds=5)
    rows = sweep.run(make_instance, algorithms)

Each row carries mean/min/max ratio per (parameter value, algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..lowerbound.bound import lower_bound
from ..schedule.validate import assert_feasible

__all__ = ["Sweep", "SweepRow"]

InstanceMaker = Callable[[object, np.random.Generator], tuple[JobSet, Ladder]]


@dataclass(frozen=True, slots=True)
class SweepRow:
    """Aggregated result for one (parameter value, algorithm) cell."""

    parameter: str
    value: object
    algorithm: str
    mean_ratio: float
    min_ratio: float
    max_ratio: float
    mean_cost: float
    seeds: int

    def row(self) -> dict:
        """Dict form for table rendering."""
        return {
            self.parameter: self.value,
            "algorithm": self.algorithm,
            "ratio(mean)": round(self.mean_ratio, 4),
            "ratio(min)": round(self.min_ratio, 4),
            "ratio(max)": round(self.max_ratio, 4),
            "cost(mean)": round(self.mean_cost, 2),
            "seeds": self.seeds,
        }


@dataclass(frozen=True, slots=True)
class Sweep:
    """A one-dimensional parameter sweep with seed replication."""

    parameter: str
    values: tuple
    seeds: int = 3
    base_seed: int = 1234

    def run(
        self,
        make_instance: InstanceMaker,
        algorithms: dict[str, Callable[[JobSet, Ladder], object]],
        *,
        check: bool = True,
    ) -> list[SweepRow]:
        """``make_instance(value, rng) -> (jobs, ladder)``; algorithms map a
        name to ``fn(jobs, ladder) -> Schedule``."""
        rows: list[SweepRow] = []
        for value in self.values:
            per_algo: dict[str, list[tuple[float, float]]] = {
                name: [] for name in algorithms
            }
            for s in range(self.seeds):
                rng = np.random.default_rng(self.base_seed + 7919 * s)
                jobs, ladder = make_instance(value, rng)
                lb = lower_bound(jobs, ladder).value
                for name, fn in algorithms.items():
                    sched = fn(jobs, ladder)
                    if check:
                        assert_feasible(sched, jobs)
                    cost = sched.cost()
                    ratio = cost / lb if lb > 0 else float("inf")
                    per_algo[name].append((ratio, cost))
            for name, samples in per_algo.items():
                ratios = [r for r, _ in samples]
                costs = [c for _, c in samples]
                rows.append(
                    SweepRow(
                        parameter=self.parameter,
                        value=value,
                        algorithm=name,
                        mean_ratio=float(np.mean(ratios)),
                        min_ratio=float(np.min(ratios)),
                        max_ratio=float(np.max(ratios)),
                        mean_cost=float(np.mean(costs)),
                        seeds=self.seeds,
                    )
                )
        return rows
