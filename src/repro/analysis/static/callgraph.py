"""Conservative static call graph over a :class:`~.project.Project`.

Resolution strategy, most-precise first:

1. plain names resolve through the module's local defs and import
   aliases (chasing ``__init__`` re-exports);
2. dotted names resolve alias-by-attribute (``sweep.busy_time`` through
   an imported module, ``Cls.method`` through a local class);
3. ``self.m()`` / ``cls.m()`` resolve within the enclosing class and its
   in-project bases;
4. any other attribute call (``obj.m()``) conservatively links to
   *every* project function named ``m`` — class-hierarchy-analysis
   style.  Over-approximation is the point: the oracle-reachability rule
   (BSHM008) must not miss a path because a receiver type was unknown;
5. a function *referenced* (not called) in an argument position becomes
   a ``ref`` edge — callbacks like ``start_server(self._handle)`` keep
   the handler reachable.

Unresolvable callees (builtins, numpy, stdlib) produce no edge.  The
graph never claims an edge is *taken*, only that it *may* be — rules
built on it report reachability, and suppressions carry the burden of
proof for deliberate exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from .project import Project

__all__ = ["CallEdge", "CallGraph", "build_callgraph", "iter_call_events"]


@dataclass(frozen=True, slots=True)
class CallEdge:
    """One may-call edge, anchored at its source call site."""

    caller: str
    callee: str
    line: int
    col: int
    #: "call" for a direct call, "ref" for a function reference argument
    kind: str = "call"


def iter_call_events(block: list[dict[str, Any]]) -> Iterator[dict[str, Any]]:
    """Every ``call`` event in an event-tree block, depth-first."""
    for event in block:
        kind = event["k"]
        if kind == "call":
            yield event
        elif kind == "branch":
            for arm in event["arms"]:
                yield from iter_call_events(arm)
        elif kind == "loop":
            yield from iter_call_events(event["body"])


class CallGraph:
    """Adjacency over fully-qualified function names."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.edges: dict[str, list[CallEdge]] = {}

    def add_edge(self, edge: CallEdge) -> None:
        self.edges.setdefault(edge.caller, []).append(edge)

    def callees(self, qual: str) -> list[CallEdge]:
        return self.edges.get(qual, [])

    # -- resolution ----------------------------------------------------------
    def resolve_call(
        self, module: str, cls: str | None, fn: str
    ) -> list[str]:
        """Fully-qualified may-call targets for a callee string."""
        project = self.project
        if fn in ("", "?"):
            return []
        if fn.startswith("."):
            return self._methods_named(fn[1:])
        parts = fn.split(".")
        head = parts[0]
        if head in ("self", "cls") and cls is not None:
            if len(parts) == 2:
                owner = f"{module}.{cls}"
                resolved = project.class_method(owner, parts[1])
                if resolved is not None:
                    return [resolved]
                return self._methods_named(parts[1])
            # ``self.attr.m()``: receiver type unknown -> CHA on the tail
            return self._methods_named(parts[-1])
        resolved = project.resolve_symbol(module, head)
        if resolved is None:
            if len(parts) > 1:
                # unknown receiver (a local variable, an external module
                # that shadows nothing): CHA on the attribute name
                return self._methods_named(parts[-1])
            return []
        for attr in parts[1:]:
            if resolved is None:
                return self._methods_named(parts[-1])
            if resolved.endswith(":<module>"):
                resolved = project.resolve_symbol(resolved.split(":", 1)[0], attr)
            elif resolved in project.classes:
                method = project.class_method(resolved, attr)
                if method is not None:
                    return [method]
                resolved = None
            else:
                resolved = None
        if resolved is None:
            return self._methods_named(parts[-1]) if len(parts) > 1 else []
        if resolved.endswith(":<module>"):
            return []  # a bare module is not callable
        if resolved in project.classes:
            init = project.class_method(resolved, "__init__")
            post = project.class_method(resolved, "__post_init__")
            return [q for q in (init, post) if q is not None]
        if resolved in project.functions:
            return [resolved]
        return []

    def _methods_named(self, name: str) -> list[str]:
        # CHA on dunders is pure noise: ``super().__init__(...)`` would
        # link every constructor in the project to every other
        if name.startswith("__") and name.endswith("__"):
            return []
        return list(self.project.by_name.get(name, ()))

    # -- reachability --------------------------------------------------------
    def reachable(self, roots: Iterable[str]) -> dict[str, CallEdge | None]:
        """BFS closure from ``roots``; maps each reached function to the
        edge that first discovered it (None for a root)."""
        tree: dict[str, CallEdge | None] = {}
        queue: list[str] = []
        for root in roots:
            if root in self.project.functions and root not in tree:
                tree[root] = None
                queue.append(root)
        while queue:
            cur = queue.pop(0)
            for edge in self.callees(cur):
                if edge.callee not in tree:
                    tree[edge.callee] = edge
                    queue.append(edge.callee)
        return tree

    def path_to(self, tree: dict[str, CallEdge | None], target: str) -> list[str]:
        """The discovery path root -> ... -> target from a BFS tree."""
        path = [target]
        cur = target
        while True:
            edge = tree.get(cur)
            if edge is None:
                return list(reversed(path))
            path.append(edge.caller)
            cur = edge.caller


def build_callgraph(project: Project) -> CallGraph:
    """Resolve every call event of every function into may-call edges."""
    graph = CallGraph(project)
    for qual, fn in project.functions.items():
        module = fn["module"]
        cls = fn["cls"]
        for event in iter_call_events(fn["body"]):
            for callee in graph.resolve_call(module, cls, event["fn"]):
                graph.add_edge(
                    CallEdge(qual, callee, event["line"], event["col"])
                )
            # function references in argument position: callback edges
            for arg in event["args"]:
                for var in arg["vars"]:
                    for callee in _ref_targets(graph, module, cls, var):
                        graph.add_edge(
                            CallEdge(
                                qual, callee, event["line"], event["col"], "ref"
                            )
                        )
    return graph


def _ref_targets(
    graph: CallGraph, module: str, cls: str | None, var: str
) -> list[str]:
    """Project functions a bare argument reference may denote."""
    parts = var.split(".")
    head = parts[0]
    if head in ("self", "cls") and cls is not None and len(parts) == 2:
        resolved = graph.project.class_method(f"{module}.{cls}", parts[1])
        return [resolved] if resolved is not None else []
    if len(parts) == 1:
        resolved = graph.project.resolve_symbol(module, head)
        if resolved is not None and resolved in graph.project.functions:
            return [resolved]
    return []
