"""Whole-program facts: the package parsed once into an analysis IR.

The per-file AST rules (BSHM001-007) see one module at a time, so an
invariant violation that crosses a module boundary — an oracle called
transitively from the serving path, an unseeded RNG value flowing into
the shard router — is invisible to them.  This module parses every
source file into :func:`extract_module_facts`: a plain JSON-serializable
dict capturing exactly what the interprocedural rules need —

- the module's import aliases (absolute and relative, resolved to
  absolute dotted names),
- its classes (method names, base names),
- its functions, each with a nested *event tree* summarizing the body:
  calls (with per-argument variable/call summaries), assignments,
  returns, raises, branches and loops, in control-flow order.

Facts being plain dicts is load-bearing: the incremental cache
(``.bshm_cache/``) persists them per file keyed by content hash, so a
warm run rebuilds the project symbol table and call graph without
re-parsing a single unchanged file — that is where the >=5x warm
speedup pinned by ``BENCH_check.json`` comes from.

A :class:`Project` aggregates the facts of every non-test module into
the symbol table the call graph (:mod:`.callgraph`) and the
interprocedural rules (:mod:`.interprocedural`) resolve against.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from .rules import dotted_name, module_parts

__all__ = [
    "FACTS_VERSION",
    "Project",
    "build_project",
    "extract_module_facts",
    "module_name",
    "project_from_sources",
]

#: bump when the facts schema changes; stale caches are discarded on mismatch
FACTS_VERSION = 1

#: event kinds in a function body block (documentation of the IR)
EVENT_KINDS = ("call", "assign", "ret", "raise", "branch", "loop")


def module_name(path: str) -> str:
    """Absolute dotted module name for a source path.

    ``src/repro/core/sweep.py`` -> ``repro.core.sweep``; package
    ``__init__.py`` files name the package itself.  Ad-hoc snippet paths
    (``core/foo.py``) resolve as if rooted at the package, so rule tests
    can fabricate modules without a checkout.
    """
    parts = list(module_parts(path))
    if not parts:
        return "repro"
    last = parts[-1]
    if last.endswith(".py"):
        last = last[:-3]
    if last == "__init__":
        parts = parts[:-1]
    else:
        parts[-1] = last
    if parts and parts[0] == "repro":
        parts = parts[1:]
    return ".".join(["repro", *parts])


def _is_package(path: str) -> bool:
    parts = module_parts(path)
    return bool(parts) and parts[-1] == "__init__.py"


def _callee_str(func: ast.expr) -> str:
    """The callee as written: ``a.b.c``, ``name``, or ``.attr`` when the
    base is not a plain name chain (call result, subscript, ...)."""
    dotted = dotted_name(func)
    if dotted is not None:
        return dotted
    if isinstance(func, ast.Attribute):
        return "." + func.attr
    return "?"


_SKIP_NESTED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _summarize_expr(node: ast.expr | None) -> dict[str, Any]:
    """``{"vars": [dotted names read], "fns": [{"fn", "nargs"}]}`` for one
    expression, skipping nested function/class bodies."""
    out_vars: list[str] = []
    out_fns: list[dict[str, Any]] = []
    if node is not None:
        _walk_expr(node, out_vars, out_fns)
    return {"vars": out_vars, "fns": out_fns}


def _walk_expr(
    node: ast.AST, out_vars: list[str], out_fns: list[dict[str, Any]]
) -> None:
    if isinstance(node, ast.Call):
        out_fns.append(
            {
                "fn": _callee_str(node.func),
                "nargs": len(node.args) + len(node.keywords),
            }
        )
        if isinstance(node.func, ast.Attribute) and dotted_name(node.func) is None:
            _walk_expr(node.func.value, out_vars, out_fns)
        for arg in node.args:
            _walk_expr(arg, out_vars, out_fns)
        for kw in node.keywords:
            _walk_expr(kw.value, out_vars, out_fns)
        return
    if isinstance(node, ast.Name):
        out_vars.append(node.id)
        return
    if isinstance(node, ast.Attribute):
        dotted = dotted_name(node)
        if dotted is not None:
            out_vars.append(dotted)
        else:
            _walk_expr(node.value, out_vars, out_fns)
        return
    if isinstance(node, _SKIP_NESTED):
        return
    for child in ast.iter_child_nodes(node):
        _walk_expr(child, out_vars, out_fns)


def _collect_calls(node: ast.AST | None) -> list[dict[str, Any]]:
    """Every call in ``node`` as a ``call`` event (outer before inner),
    with per-argument summaries for the taint rules."""
    events: list[dict[str, Any]] = []
    if node is None:
        return events
    for sub in ast.walk(node):
        if isinstance(sub, _SKIP_NESTED):
            continue
        if not isinstance(sub, ast.Call):
            continue
        args = [_summarize_expr(a) for a in sub.args]
        args.extend(_summarize_expr(kw.value) for kw in sub.keywords)
        events.append(
            {
                "k": "call",
                "fn": _callee_str(sub.func),
                "line": sub.lineno,
                "col": sub.col_offset,
                "nargs": len(sub.args) + len(sub.keywords),
                "args": args,
            }
        )
    return events


def _walk_calls_shallow(node: ast.AST) -> Iterator[ast.Call]:
    """ast.walk that does not descend into nested defs/lambdas."""
    stack: list[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, _SKIP_NESTED):
            continue
        if isinstance(cur, ast.Call):
            yield cur
        stack.extend(ast.iter_child_nodes(cur))


def _calls_in(*nodes: ast.AST | None) -> list[dict[str, Any]]:
    events: list[dict[str, Any]] = []
    for node in nodes:
        if node is None:
            continue
        for call in _walk_calls_shallow(node):
            args = [_summarize_expr(a) for a in call.args]
            args.extend(_summarize_expr(kw.value) for kw in call.keywords)
            events.append(
                {
                    "k": "call",
                    "fn": _callee_str(call.func),
                    "line": call.lineno,
                    "col": call.col_offset,
                    "nargs": len(call.args) + len(call.keywords),
                    "args": args,
                }
            )
    events.sort(key=lambda e: (e["line"], e["col"]))
    return events


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Attribute):
        dotted = dotted_name(target)
        return [dotted] if dotted is not None else []
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _is_set_expr(node: ast.expr) -> bool:
    """Iteration order of this expression is hash-order (a set)."""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_success_dict(node: ast.expr | None) -> bool:
    """A ``{"ok": True, ...}`` literal — a wire-protocol success ack."""
    if not isinstance(node, ast.Dict):
        return False
    for key, value in zip(node.keys, node.values):
        if (
            isinstance(key, ast.Constant)
            and key.value == "ok"
            and isinstance(value, ast.Constant)
            and value.value is True
        ):
            return True
    return False


def _build_block(stmts: Iterable[ast.stmt]) -> list[dict[str, Any]]:
    """The event tree for one statement block."""
    events: list[dict[str, Any]] = []
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # nested defs get their own FunctionFacts
        if isinstance(stmt, ast.Return):
            events.extend(_calls_in(stmt.value))
            summary = _summarize_expr(stmt.value)
            events.append(
                {
                    "k": "ret",
                    "line": stmt.lineno,
                    "success": _is_success_dict(stmt.value),
                    **summary,
                }
            )
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            events.extend(_calls_in(value))
            if isinstance(stmt, ast.Assign):
                targets: list[str] = []
                for t in stmt.targets:
                    targets.extend(_target_names(t))
            else:
                targets = _target_names(stmt.target)
            summary = _summarize_expr(value)
            if isinstance(stmt, ast.AugAssign):
                summary["vars"] = summary["vars"] + targets
            events.append(
                {"k": "assign", "targets": targets, "line": stmt.lineno, **summary}
            )
        elif isinstance(stmt, ast.If):
            events.extend(_calls_in(stmt.test))
            events.append(
                {
                    "k": "branch",
                    "arms": [_build_block(stmt.body), _build_block(stmt.orelse)],
                }
            )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            events.extend(_calls_in(stmt.iter))
            events.append(
                {
                    "k": "loop",
                    "line": stmt.lineno,
                    "col": stmt.col_offset,
                    "body": _build_block(stmt.body),
                    "targets": _target_names(stmt.target),
                    "set_iter": _is_set_expr(stmt.iter),
                    "iter": _summarize_expr(stmt.iter),
                }
            )
            events.extend(_build_block(stmt.orelse))
        elif isinstance(stmt, ast.While):
            events.extend(_calls_in(stmt.test))
            events.append(
                {
                    "k": "loop",
                    "line": stmt.lineno,
                    "col": stmt.col_offset,
                    "body": _build_block(stmt.body),
                    "targets": [],
                    "set_iter": False,
                    "iter": {"vars": [], "fns": []},
                }
            )
            events.extend(_build_block(stmt.orelse))
        elif isinstance(stmt, ast.Try):
            arms = [_build_block([*stmt.body, *stmt.orelse])]
            arms.extend(_build_block(h.body) for h in stmt.handlers)
            events.append({"k": "branch", "arms": arms})
            events.extend(_build_block(stmt.finalbody))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                events.extend(_calls_in(item.context_expr))
            events.extend(_build_block(stmt.body))
        elif isinstance(stmt, ast.Raise):
            events.extend(_calls_in(stmt.exc, stmt.cause))
            events.append({"k": "raise", "line": stmt.lineno})
        elif isinstance(stmt, ast.Match):
            events.extend(_calls_in(stmt.subject))
            events.append(
                {
                    "k": "branch",
                    "arms": [*(_build_block(c.body) for c in stmt.cases), []],
                }
            )
        else:
            events.extend(_calls_in(stmt))
    return events


def _resolve_relative(module: str, is_pkg: bool, level: int, target: str | None) -> str:
    """Absolute module for a ``from ...x import y`` with ``level`` dots."""
    parts = module.split(".")
    if not is_pkg:
        parts = parts[:-1]
    if level > 1:
        parts = parts[: max(0, len(parts) - (level - 1))]
    if target:
        parts.extend(target.split("."))
    return ".".join(parts)


class _FunctionCollector:
    """Collects FunctionFacts for every def in a module, nesting-aware."""

    def __init__(self) -> None:
        self.functions: list[dict[str, Any]] = []
        self.classes: dict[str, dict[str, Any]] = {}

    def collect(self, tree: ast.Module) -> None:
        self._visit_body(tree.body, prefix="", cls=None)
        module_body = _build_block(tree.body)
        self.functions.append(
            {
                "qual": "<module>",
                "name": "<module>",
                "line": 1,
                "cls": None,
                "is_async": False,
                "body": module_body,
            }
        )

    def _visit_body(
        self, stmts: Iterable[ast.stmt], prefix: str, cls: str | None
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{stmt.name}"
                self.functions.append(
                    {
                        "qual": qual,
                        "name": stmt.name,
                        "line": stmt.lineno,
                        "cls": cls,
                        "is_async": isinstance(stmt, ast.AsyncFunctionDef),
                        "body": _build_block(stmt.body),
                    }
                )
                self._visit_body(stmt.body, prefix=f"{qual}.", cls=cls)
            elif isinstance(stmt, ast.ClassDef):
                bases = [b for b in (dotted_name(x) for x in stmt.bases) if b]
                methods = [
                    s.name
                    for s in stmt.body
                    if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
                ]
                self.classes[f"{prefix}{stmt.name}"] = {
                    "line": stmt.lineno,
                    "bases": bases,
                    "methods": methods,
                }
                self._visit_body(
                    stmt.body, prefix=f"{prefix}{stmt.name}.", cls=f"{prefix}{stmt.name}"
                )
            elif isinstance(stmt, (ast.If, ast.Try)):
                # defs behind version/feature guards still exist
                self._visit_body(getattr(stmt, "body", []), prefix, cls)
                self._visit_body(getattr(stmt, "orelse", []), prefix, cls)
                for handler in getattr(stmt, "handlers", []):
                    self._visit_body(handler.body, prefix, cls)


def extract_module_facts(source: str, path: str) -> dict[str, Any] | None:
    """Parse one file into its ModuleFacts dict (None on syntax error)."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    mod = module_name(path)
    is_pkg = _is_package(path)
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                imports[name] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = (
                _resolve_relative(mod, is_pkg, node.level, node.module)
                if node.level
                else (node.module or "")
            )
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{base}:{alias.name}"
    collector = _FunctionCollector()
    collector.collect(tree)
    return {
        "version": FACTS_VERSION,
        "module": mod,
        "path": path,
        "is_package": is_pkg,
        "imports": imports,
        "classes": collector.classes,
        "functions": collector.functions,
    }


@dataclass
class Project:
    """The package-wide symbol table over every module's facts."""

    #: module name -> ModuleFacts
    modules: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: fully-qualified function name -> FunctionFacts (+ "module"/"path")
    functions: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: fully-qualified class name -> class facts (+ "module")
    classes: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: simple function name -> fully-qualified candidates (CHA matching)
    by_name: dict[str, list[str]] = field(default_factory=dict)

    def add_module(self, facts: dict[str, Any]) -> None:
        mod = facts["module"]
        self.modules[mod] = facts
        for fn in facts["functions"]:
            if fn["qual"] == "<module>":
                qual = f"{mod}.<module>"
            else:
                qual = f"{mod}.{fn['qual']}"
            entry = dict(fn)
            entry["module"] = mod
            entry["path"] = facts["path"]
            self.functions[qual] = entry
            self.by_name.setdefault(fn["name"], []).append(qual)
        for cname, cfacts in facts["classes"].items():
            entry = dict(cfacts)
            entry["module"] = mod
            entry["path"] = facts["path"]
            self.classes[f"{mod}.{cname}"] = entry

    # -- symbol resolution ---------------------------------------------------
    def resolve_symbol(
        self, module: str, name: str, _seen: frozenset[tuple[str, str]] = frozenset()
    ) -> str | None:
        """Resolve ``name`` in ``module``'s scope to a fully-qualified
        function or class, chasing import aliases and re-exports."""
        if (module, name) in _seen or module not in self.modules:
            return None
        seen = _seen | {(module, name)}
        facts = self.modules[module]
        for cand in (f"{module}.{name}",):
            if cand in self.functions or cand in self.classes:
                return cand
        target = facts["imports"].get(name)
        if target is None:
            return None
        if ":" in target:
            src_mod, sym = target.split(":", 1)
            if src_mod in self.modules:
                return self.resolve_symbol(src_mod, sym, seen)
            # ``from repro.machines import fleet`` spelling: the "symbol"
            # may itself be a submodule
            if f"{src_mod}.{sym}" in self.modules:
                return f"{src_mod}.{sym}:<module>"
            return None
        if target in self.modules:
            return f"{target}:<module>"
        return None

    def class_method(self, class_qual: str, method: str) -> str | None:
        """``Cls.method`` resolution, walking base classes in-project."""
        seen: set[str] = set()
        queue = [class_qual]
        while queue:
            cur = queue.pop(0)
            if cur in seen or cur not in self.classes:
                continue
            seen.add(cur)
            cls = self.classes[cur]
            if method in cls["methods"]:
                # the method qual is the class qual + method under its module
                mod = cls["module"]
                local = cur[len(mod) + 1 :]
                return f"{mod}.{local}.{method}"
            for base in cls["bases"]:
                resolved = self.resolve_symbol(cls["module"], base.split(".")[0])
                if resolved and "." in base:
                    # e.g. ``module.Base``: re-resolve the tail
                    tail = base.split(".", 1)[1]
                    if resolved.endswith(":<module>"):
                        resolved = self.resolve_symbol(
                            resolved.split(":", 1)[0], tail
                        )
                if resolved and resolved in self.classes:
                    queue.append(resolved)
        return None


def build_project(facts_iter: Iterable[dict[str, Any] | None]) -> Project:
    """Aggregate per-module facts (skipping unparseable files)."""
    project = Project()
    for facts in facts_iter:
        if facts is not None:
            project.add_module(facts)
    return project


def project_from_sources(sources: dict[str, str]) -> Project:
    """Test helper: a Project from ``{path: source}`` in-memory files."""
    return build_project(
        extract_module_facts(src, path) for path, src in sources.items()
    )
