"""Content-hash incremental cache for ``bshm check``.

Per file the cache stores the sha256 of the source bytes together with
everything one analysis pass produced: the file-rule diagnostics, the
suppression map and the project-analysis facts IR.  A warm run hashes
every file, loads cache hits without parsing, and only re-analyzes files
whose content changed — the whole-project rules then rebuild the call
graph from (mostly cached) facts.  This is what makes the interprocedural
tier cheap enough to run on every commit.

The cache key covers :data:`~.project.FACTS_VERSION`, the registered
rule ids and a salt bumped on analyzer-logic changes, so a stale cache
can never mask a rule change — the whole cache is discarded instead.
The cache lives in ``.bshm_cache/`` (gitignored); deleting the directory
is always safe.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from .diagnostics import Diagnostic
from .project import FACTS_VERSION
from .rules import RULES

__all__ = ["CACHE_SALT", "AnalysisCache", "content_hash", "engine_key"]

#: bump when analyzer logic changes in a way the key does not capture
CACHE_SALT = 2

_CACHE_FILE = "cache.json"


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def engine_key() -> str:
    """Cache-invalidation key: facts IR version + rule catalogue + salt."""
    payload = json.dumps(
        {
            "facts": FACTS_VERSION,
            "salt": CACHE_SALT,
            "rules": sorted(RULES),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _encode_entry(
    sha: str,
    diags: list[Diagnostic],
    suppressions: dict[int, set[str]],
    facts: dict[str, Any] | None,
) -> dict[str, Any]:
    return {
        "sha": sha,
        "diags": [d.to_dict() for d in diags],
        "supp": {str(line): sorted(ids) for line, ids in suppressions.items()},
        "facts": facts,
    }


def _decode_entry(
    entry: dict[str, Any],
) -> tuple[list[Diagnostic], dict[int, set[str]], dict[str, Any] | None]:
    diags = [Diagnostic.from_dict(d) for d in entry["diags"]]
    supp = {int(line): set(ids) for line, ids in entry["supp"].items()}
    return diags, supp, entry["facts"]


class AnalysisCache:
    """Per-file analysis results keyed by content hash.

    ``get``/``put`` use the file's path string as the map key and the
    content hash as the validity check; ``save`` persists the merged
    entry set so a narrow run (one file) never evicts the rest.
    """

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_dir = Path(cache_dir)
        self.path = self.cache_dir / _CACHE_FILE
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, dict[str, Any]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(data, dict) or data.get("key") != engine_key():
            return  # analyzer changed (or garbage): discard wholesale
        entries = data.get("files")
        if isinstance(entries, dict):
            self._entries = entries

    def get(
        self, path: str, sha: str
    ) -> tuple[list[Diagnostic], dict[int, set[str]], dict[str, Any] | None] | None:
        """Cached ``(diags, suppressions, facts)`` for an unchanged file."""
        entry = self._entries.get(path)
        if entry is None or entry.get("sha") != sha:
            self.misses += 1
            return None
        try:
            decoded = _decode_entry(entry)
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None  # corrupted entry: recompute
        self.hits += 1
        return decoded

    def put(
        self,
        path: str,
        sha: str,
        diags: list[Diagnostic],
        suppressions: dict[int, set[str]],
        facts: dict[str, Any] | None,
    ) -> None:
        self._entries[path] = _encode_entry(sha, diags, suppressions, facts)
        self._dirty = True

    def save(self) -> None:
        """Persist the merged entry set (best-effort; cache is advisory)."""
        if not self._dirty and self.path.exists():
            return
        doc = {"key": engine_key(), "files": self._entries}
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(".tmp")
            tmp.write_text(json.dumps(doc, sort_keys=True))
            tmp.replace(self.path)
        except OSError:
            pass
