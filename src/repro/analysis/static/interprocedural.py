"""Interprocedural rules: invariants that cross module boundaries.

These rules run over the whole-program :class:`~.project.Project` and
its conservative :class:`~.callgraph.CallGraph` instead of a single
file's AST:

- :class:`OracleReachability` (BSHM008) — a ``*_reference`` oracle
  kernel reachable, transitively, from a hot-path entry point.  This is
  BSHM003's same-file heuristic upgraded to true reachability: BSHM003
  bans the direct call/import; BSHM008 walks the call graph from the
  serving entry points (``serve_forever``, ``serve_sharded``,
  ``run_online``, ``worker_main``, ``SchedulerRuntime.submit/depart/
  advance``) and flags any oracle the closure can reach through helpers.
- :class:`NondeterminismTaint` (BSHM009) — a value produced by an
  unseeded RNG, a wall-clock read, ``id()`` or set iteration flowing
  into a replay-critical sink (WAL/StoreWriter appends, checkpoint and
  trace serialization, shard routing), *across function boundaries*: a
  helper that returns a tainted value taints every call site, to a
  fixpoint over the call graph.
- :class:`DurabilityOrdering` (BSHM011) — a service code path that emits
  a success acknowledgement where the durable append is not ordered
  before it: either an ack reached with no append on any path so far, or
  an append executed *after* the ack on the same path.  This is the
  fsync-before-ack contract of ``docs/operations.md`` made mechanical.

Suppressions work exactly as for the file rules: ``# bshm:
ignore[<RULE>]`` on the diagnostic's line (project-rule diagnostics
anchor at the offending def, sink call, or ack).
"""

from __future__ import annotations

from typing import Any, Iterator

from .callgraph import CallGraph, build_callgraph, iter_call_events
from .diagnostics import Diagnostic
from .project import Project
from .rules import Rule, register_rule

__all__ = [
    "HOT_ENTRY_NAMES",
    "ProjectRule",
    "OracleReachability",
    "NondeterminismTaint",
    "DurabilityOrdering",
    "check_project",
]


class ProjectRule(Rule):
    """A rule that inspects the whole project, not one file.

    ``check`` (the per-file hook) never runs; the engine calls
    :meth:`check_project` once per analysis with the shared project and
    call graph.
    """

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def project_diag(
        self, path: str, line: int, col: int, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=path,
            line=line,
            col=col + 1,
            rule_id=self.id,
            message=message,
            severity=self.severity,
        )


def check_project(project: Project) -> list[Diagnostic]:
    """Run every registered project rule over one project (unsuppressed;
    the runner applies per-file suppressions)."""
    from .rules import all_rules

    graph = build_callgraph(project)
    findings: list[Diagnostic] = []
    for rule in all_rules():
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(project, graph))
    return sorted(findings)


# ---------------------------------------------------------------------------
# BSHM008 — oracle kernels reachable from hot-path entry points
# ---------------------------------------------------------------------------

#: functions that anchor the serving/online hot path, wherever they live
HOT_ENTRY_NAMES = frozenset(
    {"serve_forever", "serve_sharded", "run_online", "worker_main"}
)
#: methods that are hot-path entries on runtime-like classes
_HOT_ENTRY_METHODS = frozenset({"submit", "depart", "advance"})


def hot_entry_points(project: Project) -> list[str]:
    """Fully-qualified hot-path entry functions present in the project."""
    entries: list[str] = []
    for qual, fn in project.functions.items():
        if fn["name"] in HOT_ENTRY_NAMES and fn["cls"] is None:
            entries.append(qual)
        elif (
            fn["name"] in _HOT_ENTRY_METHODS
            and fn["cls"] is not None
            and fn["cls"].endswith("Runtime")
        ):
            entries.append(qual)
    return sorted(entries)


@register_rule
class OracleReachability(ProjectRule):
    """A ``*_reference`` oracle transitively reachable from a hot path.

    BSHM003 catches the direct call; this rule catches the laundered
    one — a helper (or a chain of helpers) that ends at a quadratic
    oracle kernel, silently reintroducing the per-time-point complexity
    the sweep kernels removed from the serving path.  The call graph is
    conservative (unknown receivers match by method name), so a finding
    means "no type information rules this path out", and a suppression
    must argue why the path is dead.
    """

    id = "BSHM008"
    title = "oracle kernel reachable from a hot-path entry point"
    rationale = "serving paths stay sweep-kernel-only; oracles are test-only"
    scopes = None

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Diagnostic]:
        entries = hot_entry_points(project)
        if not entries:
            return
        tree = graph.reachable(entries)
        for qual in sorted(tree):
            fn = project.functions.get(qual)
            if fn is None or not fn["name"].endswith("_reference"):
                continue
            path = graph.path_to(tree, qual)
            if any(
                project.functions[q]["name"].endswith("_reference")
                for q in path[:-1]
                if q in project.functions
            ):
                continue  # inner twin of an already-reported oracle
            chain = " -> ".join(q.split(".")[-1] for q in path)
            yield self.project_diag(
                fn["path"],
                fn["line"],
                0,
                f"oracle kernel {fn['name']!r} is reachable from hot-path "
                f"entry point {path[0]!r} via {chain}; the serving path "
                "must stay on the sweep kernels (see BSHM003 for the "
                "direct-call form)",
            )


# ---------------------------------------------------------------------------
# BSHM009 — nondeterminism taint reaching replay-critical sinks
# ---------------------------------------------------------------------------

#: wall-clock reads (mirrors BSHM004's set)
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    }
)
_DATETIME_NOW = frozenset({"now", "utcnow", "today"})

#: calls whose results are deterministic even over unordered inputs
_CLEANSERS = frozenset({"sorted", "len"})

#: replay-critical sink call names: durable appends, checkpoint/trace
#: serialization, shard routing
SINK_NAMES = frozenset(
    {
        "append_new",
        "append_events",
        "write_checkpoint",
        "write_trace",
        "record_trace",
        "write_snapshot",
        "shard_for_uid",
        "shard_for_submit",
    }
)


def _is_source_call(fn_entry: dict[str, Any]) -> bool:
    """Is this call facts entry a nondeterminism source by itself?"""
    fn = fn_entry["fn"]
    nargs = fn_entry.get("nargs", 0)
    name = fn.lstrip(".")
    parts = name.split(".")
    last = parts[-1]
    if name in _WALL_CLOCK:
        return True
    if last in _DATETIME_NOW and any(p in ("datetime", "date") for p in parts[:-1]):
        return True
    if name == "id" and nargs == 1:
        return True
    if len(parts) >= 2 and parts[-2] == "random":
        if last != "default_rng":
            return True
        return nargs == 0
    if last == "default_rng" and nargs == 0:
        return True
    return False


def _summary_tainted(
    summary: dict[str, Any], tainted_vars: set[str], tainted_fns: set[str],
    resolve: "_Resolver",
) -> bool:
    """Is an expression summary tainted?  A cleanser anywhere in the
    expression is (coarsely) taken to launder it — ``sorted(s)`` over a
    set is exactly the blessed idiom."""
    fns = summary.get("fns", ())
    if any(f["fn"].lstrip(".").split(".")[-1] in _CLEANSERS for f in fns):
        return False
    if any(v in tainted_vars for v in summary.get("vars", ())):
        return True
    for f in fns:
        if _is_source_call(f):
            return True
        if resolve(f["fn"]) & tainted_fns:
            return True
    return False


class _Resolver:
    """Memoized call-string -> callee-qual-set resolution for one function."""

    def __init__(self, graph: CallGraph, module: str, cls: str | None) -> None:
        self._graph = graph
        self._module = module
        self._cls = cls
        self._memo: dict[str, frozenset[str]] = {}

    def __call__(self, fn: str) -> frozenset[str]:
        hit = self._memo.get(fn)
        if hit is None:
            hit = frozenset(self._graph.resolve_call(self._module, self._cls, fn))
            self._memo[fn] = hit
        return hit


def _walk_taint(
    block: list[dict[str, Any]],
    tainted: set[str],
    tainted_fns: set[str],
    resolve: _Resolver,
    sink_hits: list[dict[str, Any]] | None,
) -> bool:
    """Propagate taint through one block; returns True if a tainted value
    reaches a ``return``.  ``sink_hits`` collects sink calls fed taint."""
    returns_tainted = False
    for event in block:
        kind = event["k"]
        if kind == "call":
            if sink_hits is not None and event["fn"].lstrip(".").split(".")[
                -1
            ] in SINK_NAMES:
                for arg in event["args"]:
                    if _summary_tainted(arg, tainted, tainted_fns, resolve):
                        sink_hits.append(event)
                        break
        elif kind == "assign":
            if _summary_tainted(event, tainted, tainted_fns, resolve):
                tainted.update(event["targets"])
            else:
                for target in event["targets"]:
                    tainted.discard(target)
        elif kind == "ret":
            if _summary_tainted(event, tainted, tainted_fns, resolve):
                returns_tainted = True
        elif kind == "branch":
            merged: set[str] = set()
            for arm in event["arms"]:
                arm_tainted = set(tainted)
                if _walk_taint(arm, arm_tainted, tainted_fns, resolve, sink_hits):
                    returns_tainted = True
                merged |= arm_tainted
            tainted |= merged
        elif kind == "loop":
            if event["set_iter"]:
                tainted.update(event["targets"])
            elif _summary_tainted(event["iter"], tainted, tainted_fns, resolve):
                tainted.update(event["targets"])
            # two passes so taint introduced late in the body reaches uses
            # at the top on the next iteration
            for _ in range(2):
                if _walk_taint(
                    event["body"], tainted, tainted_fns, resolve, sink_hits
                ):
                    returns_tainted = True
    return returns_tainted


@register_rule
class NondeterminismTaint(ProjectRule):
    """Nondeterministic values reaching replay-critical sinks.

    BSHM004 bans the *calls* in deterministic scopes; this rule follows
    the *values*: a helper anywhere in the package that returns
    ``time.time()`` (or an unseeded RNG draw, ``id()``, a set-ordered
    list) taints its call sites, and any tainted argument handed to a
    WAL/StoreWriter append, checkpoint/trace serializer or shard-routing
    function is a replay hazard no matter how many modules it crossed.
    """

    id = "BSHM009"
    title = "nondeterministic value reaches a replay-critical sink"
    rationale = "byte-identical replay: sinks must see deterministic inputs"
    scopes = None

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Diagnostic]:
        # fixpoint: which functions return tainted values?
        tainted_fns: set[str] = set()
        resolvers = {
            qual: _Resolver(graph, fn["module"], fn["cls"])
            for qual, fn in project.functions.items()
        }
        changed = True
        rounds = 0
        while changed and rounds < 20:
            changed = False
            rounds += 1
            for qual, fn in project.functions.items():
                if qual in tainted_fns:
                    continue
                if _walk_taint(
                    fn["body"], set(), tainted_fns, resolvers[qual], None
                ):
                    tainted_fns.add(qual)
                    changed = True
        for qual in sorted(project.functions):
            fn = project.functions[qual]
            sink_hits: list[dict[str, Any]] = []
            _walk_taint(fn["body"], set(), tainted_fns, resolvers[qual], sink_hits)
            seen: set[tuple[int, int]] = set()
            for event in sink_hits:
                key = (event["line"], event["col"])
                if key in seen:
                    continue  # the loop walker passes twice by design
                seen.add(key)
                sink = event["fn"].lstrip(".").split(".")[-1]
                yield self.project_diag(
                    fn["path"],
                    event["line"],
                    event["col"],
                    f"nondeterministic value flows into replay-critical "
                    f"sink {sink!r} (in {fn['name']}); values reaching the "
                    "journal/WAL/checkpoint/shard-router must be "
                    "deterministic functions of the event stream",
                )


# ---------------------------------------------------------------------------
# BSHM011 — durability-contract ordering: append before ack
# ---------------------------------------------------------------------------

#: direct durable-append call names (WALWriter / StoreWriter / StateStore)
APPEND_NAMES = frozenset({"append_new", "append_events"})
#: call names that transmit a response to the client
_ACK_CALL_NAMES = frozenset({"_send", "send_response"})
#: calls whose result is a client-visible response document
_HANDLER_NAMES = frozenset(
    {"handle_line", "handle_request", "route", "_dispatch"}
)
#: an ack whose payload is built from these is an *error* response — the
#: durability contract only covers success acks
_ERROR_MARKERS = frozenset(
    {"to_wire", "error_payload", "ServiceError", "OverloadError"}
)

_NO, _MAYBE, _YES = 0, 1, 2


def _durable_functions(project: Project, graph: CallGraph) -> set[str]:
    """Functions that (transitively) perform a durable append."""
    direct = {
        qual
        for qual, fn in project.functions.items()
        if any(
            ev["fn"].lstrip(".").split(".")[-1] in APPEND_NAMES
            for ev in iter_call_events(fn["body"])
        )
    }
    # propagate up the call graph: callers of durable functions are durable
    callers: dict[str, set[str]] = {}
    for caller, edges in graph.edges.items():
        for edge in edges:
            callers.setdefault(edge.callee, set()).add(caller)
    durable = set(direct)
    queue = list(direct)
    while queue:
        cur = queue.pop()
        for caller in callers.get(cur, ()):
            if caller not in durable:
                durable.add(caller)
                queue.append(caller)
    return durable


class _DurableCallPred:
    """Does a callee string resolve exclusively to durable functions?

    Requiring *every* conservative target to be durable keeps CHA noise
    (``.apply`` matching unrelated methods) from counting as an append.
    """

    def __init__(self, resolver: _Resolver, durable: frozenset[str]) -> None:
        self._resolver = resolver
        self._durable = durable

    def __call__(self, callee: str) -> bool:
        targets = self._resolver(callee)
        return bool(targets) and targets <= self._durable


class _OrderState:
    __slots__ = ("appended", "acked_lines")

    def __init__(self, appended: int = _NO) -> None:
        self.appended = appended
        self.acked_lines: list[int] = []


def _walk_order(
    block: list[dict[str, Any]],
    state: _OrderState,
    response_vars: set[str],
    is_durable_call: "Any",
    problems: list[tuple[int, int, str]],
) -> bool:
    """Walk one block tracking append-vs-ack order.  Returns True when the
    block terminates the path (return/raise)."""
    for event in block:
        kind = event["k"]
        if kind == "call":
            name = event["fn"].lstrip(".").split(".")[-1]
            durable = name in APPEND_NAMES or is_durable_call(event["fn"])
            if durable:
                if state.acked_lines:
                    problems.append(
                        (
                            event["line"],
                            event["col"],
                            "durable append executes after the success "
                            "acknowledgement on this path; an acked event "
                            "must already be on the durable prefix",
                        )
                    )
                state.appended = _YES
            elif name in _ACK_CALL_NAMES:
                is_error_response = any(
                    f["fn"].lstrip(".").split(".")[-1] in _ERROR_MARKERS
                    for arg in event["args"]
                    for f in arg.get("fns", ())
                )
                if is_error_response:
                    continue
                if state.appended == _NO:
                    problems.append(
                        (
                            event["line"],
                            event["col"],
                            "success response sent with no durable append "
                            "on any path before it; apply-append-ack is the "
                            "required order",
                        )
                    )
                state.acked_lines.append(event["line"])
        elif kind == "assign":
            handler_result = any(
                f["fn"].lstrip(".").split(".")[-1] in _HANDLER_NAMES
                for f in event["fns"]
            )
            if handler_result:
                response_vars.update(event["targets"])
        elif kind == "ret":
            is_ack = event["success"] or any(
                v in response_vars for v in event["vars"]
            )
            if is_ack:
                if state.appended == _NO:
                    problems.append(
                        (
                            event["line"],
                            0,
                            "success response returned with no durable "
                            "append on any path before it; apply-append-ack "
                            "is the required order",
                        )
                    )
                state.acked_lines.append(event["line"])
            return True
        elif kind == "raise":
            return True
        elif kind == "branch":
            live_states: list[_OrderState] = []
            for arm in event["arms"]:
                arm_state = _OrderState(state.appended)
                arm_state.acked_lines = list(state.acked_lines)
                terminated = _walk_order(
                    arm, arm_state, response_vars, is_durable_call, problems
                )
                if not terminated:
                    live_states.append(arm_state)
            if not live_states:
                return True
            if any(s.appended != _NO for s in live_states):
                state.appended = max(s.appended for s in live_states)
                if not all(s.appended == _YES for s in live_states):
                    state.appended = _MAYBE
            for s in live_states:
                for line in s.acked_lines:
                    if line not in state.acked_lines:
                        state.acked_lines.append(line)
        elif kind == "loop":
            body_state = _OrderState(state.appended)
            body_state.acked_lines = list(state.acked_lines)
            _walk_order(
                event["body"], body_state, response_vars, is_durable_call, problems
            )
            if body_state.appended != _NO:
                state.appended = max(state.appended, _MAYBE)
            for line in body_state.acked_lines:
                if line not in state.acked_lines:
                    state.acked_lines.append(line)
    return False


@register_rule
class DurabilityOrdering(ProjectRule):
    """Success acks must be ordered after the durable append.

    Scope: functions in ``service/`` that perform (or transitively
    reach) a WAL/StoreWriter append.  Two shapes fire: an ack emitted on
    a path where *no* append has run yet, and an append that runs
    *after* the ack on the same path.  A conditional append (``if wal is
    not None: append``) counts as satisfying the contract — servers
    without durability attached have no ordering obligation.
    """

    id = "BSHM011"
    title = "success ack not ordered after the durable append"
    rationale = "fsync-before-ack durability contract, docs/operations.md"
    scopes = ("service",)

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Diagnostic]:
        durable = _durable_functions(project, graph)
        for qual in sorted(project.functions):
            fn = project.functions[qual]
            if not fn["module"].startswith("repro.service"):
                continue
            if qual not in durable or fn["name"] == "<module>":
                continue
            pred = _DurableCallPred(
                _Resolver(graph, fn["module"], fn["cls"]), frozenset(durable)
            )
            # gate with the same strict predicate the walk uses: a call
            # with one durable target among many is CHA noise, and walking
            # such a function would flag acks it has no contract over
            has_direct_or_called_append = any(
                ev["fn"].lstrip(".").split(".")[-1] in APPEND_NAMES
                or pred(ev["fn"])
                for ev in iter_call_events(fn["body"])
            )
            if not has_direct_or_called_append:
                continue
            problems: list[tuple[int, int, str]] = []
            _walk_order(fn["body"], _OrderState(), set(), pred, problems)
            for line, col, message in problems:
                yield self.project_diag(
                    fn["path"], line, col, f"{message} (in {fn['name']})"
                )
