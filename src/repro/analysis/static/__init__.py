"""Invariant-aware static analysis: the checker behind ``bshm check``.

AST-based lint rules enforcing the semantic invariants the paper's
guarantees rest on (half-open intervals, ``time_tol`` comparisons,
test-only oracle kernels, replay-safe determinism, frozen structures,
checkpoint schema versioning), plus a whole-program tier — import/call
graph, interprocedural reachability/taint/ordering rules — with SARIF
output, a committed baseline and a content-hash incremental cache.
See ``docs/invariants.md`` for the rule catalogue.

Usage::

    from repro.analysis.static import run_check
    report = run_check(["src"])
    for diag in report.findings:
        print(diag.format())
"""

from .diagnostics import Diagnostic, Severity
from .engine import (
    PARSE_ERROR_ID,
    UNKNOWN_SUPPRESSION_ID,
    analyze_source,
    check_file,
    check_paths,
    check_source,
    iter_python_files,
)
from .rules import RULES, FileContext, Rule, all_rules, register_rule
from . import invariants as invariants  # noqa: F401  (rule registration)
from . import interprocedural as interprocedural  # noqa: F401  (rule registration)
from .invariants import SCHEMA_MANIFEST_NAME, compute_schema_manifest
from .project import Project, build_project, extract_module_facts, project_from_sources
from .callgraph import CallGraph, build_callgraph
from .interprocedural import ProjectRule, check_project, hot_entry_points
from .baseline import (
    BaselineError,
    line_text_from_disk,
    load_baseline,
    split_baseline,
    write_baseline,
)
from .cache import AnalysisCache
from .emitters import FORMATS, render
from .runner import CheckReport, git_changed_lines, run_check

__all__ = [
    "Diagnostic",
    "Severity",
    "Rule",
    "RULES",
    "FileContext",
    "register_rule",
    "all_rules",
    "analyze_source",
    "check_source",
    "check_file",
    "check_paths",
    "iter_python_files",
    "PARSE_ERROR_ID",
    "UNKNOWN_SUPPRESSION_ID",
    "SCHEMA_MANIFEST_NAME",
    "compute_schema_manifest",
    "Project",
    "build_project",
    "extract_module_facts",
    "project_from_sources",
    "CallGraph",
    "build_callgraph",
    "ProjectRule",
    "check_project",
    "hot_entry_points",
    "BaselineError",
    "line_text_from_disk",
    "load_baseline",
    "split_baseline",
    "write_baseline",
    "AnalysisCache",
    "FORMATS",
    "render",
    "CheckReport",
    "git_changed_lines",
    "run_check",
]
