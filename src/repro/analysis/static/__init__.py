"""Invariant-aware static analysis: the checker behind ``bshm check``.

AST-based lint rules enforcing the semantic invariants the paper's
guarantees rest on (half-open intervals, ``time_tol`` comparisons,
test-only oracle kernels, replay-safe determinism, frozen structures,
checkpoint schema versioning).  See ``docs/invariants.md`` for the rule
catalogue and :mod:`repro.analysis.static.invariants` for the rules
themselves.

Usage::

    from repro.analysis.static import check_paths
    findings, n_files = check_paths(["src"])
    for diag in findings:
        print(diag.format())
"""

from .diagnostics import Diagnostic, Severity
from .engine import (
    PARSE_ERROR_ID,
    UNKNOWN_SUPPRESSION_ID,
    check_file,
    check_paths,
    check_source,
    iter_python_files,
)
from .rules import RULES, FileContext, Rule, all_rules, register_rule
from . import invariants as invariants  # noqa: F401  (rule registration)
from .invariants import SCHEMA_MANIFEST_NAME, compute_schema_manifest

__all__ = [
    "Diagnostic",
    "Severity",
    "Rule",
    "RULES",
    "FileContext",
    "register_rule",
    "all_rules",
    "check_source",
    "check_file",
    "check_paths",
    "iter_python_files",
    "PARSE_ERROR_ID",
    "UNKNOWN_SUPPRESSION_ID",
    "SCHEMA_MANIFEST_NAME",
    "compute_schema_manifest",
]
