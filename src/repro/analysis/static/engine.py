"""Checker engine: file discovery, suppressions, file-rule execution.

The engine parses each ``.py`` file once, runs every registered
file-scoped rule whose scope accepts the file, and filters the findings
through ``# bshm: ignore[<RULE>, <RULE>]`` suppressions.  A suppression
covers the physical line it sits on; written on a comment-only line it
covers the next *statement* — skipping blank lines, further comment
lines and, crucially, decorator lines, so an annotation above a
decorated ``def``/``class`` suppresses findings on the statement itself
rather than silently covering only the ``@decorator`` line.

Suppressions referencing an unknown rule id are themselves findings
(:data:`UNKNOWN_SUPPRESSION_ID`): a typo'd ignore silently disables a
tripwire, which is exactly the failure mode this layer exists to prevent.
Unparseable files are reported as :data:`PARSE_ERROR_ID` findings rather
than crashing the run.

Whole-project analysis (the interprocedural rules, the incremental
cache, baselines and diff mode) is orchestrated by
:mod:`repro.analysis.static.runner` on top of :func:`analyze_source`.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Any, Iterable, Sequence

from .diagnostics import Diagnostic, Severity
from .project import extract_module_facts
from .rules import RULES, FileContext, Rule, all_rules, module_parts

__all__ = [
    "PARSE_ERROR_ID",
    "UNKNOWN_SUPPRESSION_ID",
    "analyze_source",
    "check_source",
    "check_file",
    "check_paths",
    "file_rules",
    "iter_python_files",
]

PARSE_ERROR_ID = "BSHM900"
UNKNOWN_SUPPRESSION_ID = "BSHM901"

_IGNORE_RE = re.compile(r"#\s*bshm:\s*ignore\[([A-Za-z0-9_,\s]+)\]")
_COMMENT_ONLY_RE = re.compile(r"^\s*#")
_BLANK_RE = re.compile(r"^\s*$")


def file_rules(rules: Sequence[Rule] | None = None) -> list[Rule]:
    """The file-scoped rules (project rules run in the runner instead)."""
    from .interprocedural import ProjectRule

    candidates = list(rules) if rules is not None else all_rules()
    return [r for r in candidates if not isinstance(r, ProjectRule)]


def _decorator_targets(tree: ast.AST) -> dict[int, int]:
    """Map every decorator line to the line of the statement it decorates."""
    mapping: dict[int, int] = {}
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and node.decorator_list:
            first = min(d.lineno for d in node.decorator_list)
            for line in range(first, node.lineno):
                mapping[line] = node.lineno
    return mapping


def _suppressions(
    source: str, path: str, tree: ast.AST | None
) -> tuple[dict[int, set[str]], list[Diagnostic]]:
    """Map line number -> suppressed rule ids; flag unknown ids."""
    by_line: dict[int, set[str]] = {}
    problems: list[Diagnostic] = []
    known = set(RULES) | {PARSE_ERROR_ID, UNKNOWN_SUPPRESSION_ID}
    decorated = _decorator_targets(tree) if tree is not None else {}
    lines = source.splitlines()
    for lineno, line in enumerate(lines, start=1):
        match = _IGNORE_RE.search(line)
        if not match:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        for rule_id in sorted(ids - known):
            problems.append(
                Diagnostic(
                    path=path,
                    line=lineno,
                    col=match.start() + 1,
                    rule_id=UNKNOWN_SUPPRESSION_ID,
                    message=(
                        f"suppression names unknown rule id {rule_id!r}; "
                        "a typo here silently disables nothing — fix the id"
                    ),
                    severity=Severity.ERROR,
                )
            )
        target: int | None = lineno
        if _COMMENT_ONLY_RE.match(line):
            # a standalone suppression comment covers the next statement:
            # skip blank/comment lines, then hop over decorators so the
            # annotation lands on the decorated def/class itself
            target = None
            probe = lineno + 1
            while probe <= len(lines):
                text = lines[probe - 1]
                if _BLANK_RE.match(text) or _COMMENT_ONLY_RE.match(text):
                    probe += 1
                    continue
                target = decorated.get(probe, probe)
                break
        if target is not None:
            by_line.setdefault(target, set()).update(ids & known)
    return by_line, problems


def analyze_source(
    source: str,
    path: str = "<snippet>",
    rules: Sequence[Rule] | None = None,
    *,
    want_facts: bool = False,
) -> tuple[list[Diagnostic], dict[int, set[str]], dict[str, Any] | None]:
    """One parse of one file: ``(file findings, suppressions, facts)``.

    ``facts`` (the project-analysis IR, see
    :func:`repro.analysis.static.project.extract_module_facts`) is only
    computed when ``want_facts`` is set; it is ``None`` for unparseable
    files either way.
    """
    ctx = FileContext(path=path, parts=module_parts(path), source=source)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        diag = Diagnostic(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule_id=PARSE_ERROR_ID,
            message=f"cannot parse file: {exc.msg}",
            severity=Severity.ERROR,
        )
        return [diag], {}, None
    suppressed, problems = _suppressions(source, path, tree)
    findings: list[Diagnostic] = list(problems)
    for rule in file_rules(rules):
        if not rule.applies_to(ctx):
            continue
        for diag in rule.check(tree, ctx):
            if diag.rule_id in suppressed.get(diag.line, ()):
                continue
            findings.append(diag)
    facts = extract_module_facts(source, path) if want_facts else None
    return sorted(findings), suppressed, facts


def check_source(
    source: str,
    path: str = "<snippet>",
    rules: Sequence[Rule] | None = None,
) -> list[Diagnostic]:
    """Run the file rules over one source string (``path`` drives scoping)."""
    findings, _suppressed, _facts = analyze_source(source, path, rules)
    return findings


def check_file(
    path: str | Path, rules: Sequence[Rule] | None = None
) -> list[Diagnostic]:
    """Run the file rules over one file."""
    p = Path(path)
    return check_source(p.read_text(), path=str(p), rules=rules)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                seen.setdefault(sub, None)
        else:
            seen.setdefault(p, None)
    return sorted(seen)


def check_paths(
    paths: Iterable[str | Path], rules: Sequence[Rule] | None = None
) -> tuple[list[Diagnostic], int]:
    """Check every ``.py`` under ``paths`` with the *file* rules; return
    ``(findings, files checked)``.  The full engine — interprocedural
    rules, cache, baseline — is :func:`repro.analysis.static.runner.run_check`.
    """
    files = iter_python_files(paths)
    findings: list[Diagnostic] = []
    for f in files:
        findings.extend(check_file(f, rules=rules))
    return findings, len(files)
