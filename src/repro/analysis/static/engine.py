"""Checker engine: file discovery, suppressions, rule execution.

The engine parses each ``.py`` file once, runs every registered rule
whose scope accepts the file, and filters the findings through
``# bshm: ignore[<RULE>, <RULE>]`` suppressions.  A suppression covers the
physical line it sits on, or — when written on a comment-only line — the
first following line (so multi-clause statements can be annotated above).

Suppressions referencing an unknown rule id are themselves findings
(:data:`UNKNOWN_SUPPRESSION_ID`): a typo'd ignore silently disables a
tripwire, which is exactly the failure mode this layer exists to prevent.
Unparseable files are reported as :data:`PARSE_ERROR_ID` findings rather
than crashing the run.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Sequence

from .diagnostics import Diagnostic, Severity
from .rules import RULES, FileContext, Rule, all_rules, module_parts

__all__ = [
    "PARSE_ERROR_ID",
    "UNKNOWN_SUPPRESSION_ID",
    "check_source",
    "check_file",
    "check_paths",
    "iter_python_files",
]

PARSE_ERROR_ID = "BSHM900"
UNKNOWN_SUPPRESSION_ID = "BSHM901"

_IGNORE_RE = re.compile(r"#\s*bshm:\s*ignore\[([A-Za-z0-9_,\s]+)\]")
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


def _suppressions(
    source: str, path: str
) -> tuple[dict[int, set[str]], list[Diagnostic]]:
    """Map line number -> suppressed rule ids; flag unknown ids."""
    by_line: dict[int, set[str]] = {}
    problems: list[Diagnostic] = []
    known = set(RULES) | {PARSE_ERROR_ID, UNKNOWN_SUPPRESSION_ID}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(line)
        if not match:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        for rule_id in sorted(ids - known):
            problems.append(
                Diagnostic(
                    path=path,
                    line=lineno,
                    col=match.start() + 1,
                    rule_id=UNKNOWN_SUPPRESSION_ID,
                    message=(
                        f"suppression names unknown rule id {rule_id!r}; "
                        "a typo here silently disables nothing — fix the id"
                    ),
                    severity=Severity.ERROR,
                )
            )
        target = lineno
        if _COMMENT_ONLY_RE.match(line):
            # a standalone suppression comment covers the next line
            target = lineno + 1
        by_line.setdefault(target, set()).update(ids & known)
    return by_line, problems


def check_source(
    source: str,
    path: str = "<snippet>",
    rules: Sequence[Rule] | None = None,
) -> list[Diagnostic]:
    """Run the rules over one source string (``path`` drives scoping)."""
    ctx = FileContext(path=path, parts=module_parts(path), source=source)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule_id=PARSE_ERROR_ID,
                message=f"cannot parse file: {exc.msg}",
                severity=Severity.ERROR,
            )
        ]
    suppressed, problems = _suppressions(source, path)
    findings: list[Diagnostic] = list(problems)
    for rule in rules if rules is not None else all_rules():
        if not rule.applies_to(ctx):
            continue
        for diag in rule.check(tree, ctx):
            if diag.rule_id in suppressed.get(diag.line, ()):
                continue
            findings.append(diag)
    return sorted(findings)


def check_file(
    path: str | Path, rules: Sequence[Rule] | None = None
) -> list[Diagnostic]:
    """Run the rules over one file."""
    p = Path(path)
    return check_source(p.read_text(), path=str(p), rules=rules)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                seen.setdefault(sub, None)
        else:
            seen.setdefault(p, None)
    return sorted(seen)


def check_paths(
    paths: Iterable[str | Path], rules: Sequence[Rule] | None = None
) -> tuple[list[Diagnostic], int]:
    """Check every ``.py`` under ``paths``; return (findings, files checked)."""
    files = iter_python_files(paths)
    findings: list[Diagnostic] = []
    for f in files:
        findings.extend(check_file(f, rules=rules))
    return findings, len(files)
