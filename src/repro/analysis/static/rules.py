"""Rule base class and registry for the invariant checker.

A rule is a small, stateless object with an id (``BSHM0xx``), a default
severity, a one-line title, a rationale, and a scope predicate deciding
which files it inspects.  Concrete rules implement :meth:`Rule.check`
over a parsed ``ast`` tree and return :class:`Diagnostic` values.

Rules register themselves via :func:`register_rule`; the engine runs
every registered rule whose :meth:`Rule.applies_to` accepts the file.
Rule ids are stable public API — they appear in ``# bshm: ignore[<RULE>]``
suppressions and in ``docs/invariants.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Callable, Iterator, Type, TypeVar

from .diagnostics import Diagnostic, Severity

__all__ = ["FileContext", "Rule", "RULES", "register_rule", "all_rules", "module_parts"]


def module_parts(path: str) -> tuple[str, ...]:
    """Path components relative to the ``repro`` package root.

    ``src/repro/core/sweep.py`` -> ``("core", "sweep.py")`` so scope
    predicates can say "files under ``core/``" without caring where the
    checkout lives.  Falls back to the raw components when the path does
    not mention ``repro`` or ``src`` (ad-hoc snippets, test fixtures).
    """
    parts = PurePosixPath(PurePosixPath(path).as_posix()).parts
    for anchor in ("repro", "src"):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            if idx + 1 < len(parts):
                return parts[idx + 1 :]
    return parts


@dataclass(frozen=True, slots=True)
class FileContext:
    """Everything a rule may need to know about the file under analysis."""

    path: str
    #: components relative to the package root (see :func:`module_parts`)
    parts: tuple[str, ...]
    source: str

    @property
    def in_tests(self) -> bool:
        # benchmarks count: the perf guardrails time oracle kernels against
        # the sweep (and read wall clocks) by design, like the tests do
        raw = PurePosixPath(PurePosixPath(self.path).as_posix()).parts
        return "tests" in raw or "benchmarks" in raw or "conftest.py" in raw

    @property
    def filename(self) -> str:
        return self.parts[-1] if self.parts else self.path

    def top_package(self) -> str | None:
        """First package directory under ``repro`` (``core``, ``online``, ...).

        Test files resolve to the package they exercise — for
        ``tests/service/test_server.py`` this is ``service`` — so rules
        that opt into tests (``include_tests=True``) keep their scope
        meaning across the wider ``tests/``+``benchmarks/`` default.
        """
        raw = PurePosixPath(PurePosixPath(self.path).as_posix()).parts
        for anchor in ("tests", "benchmarks"):
            if anchor in raw:
                idx = len(raw) - 1 - raw[::-1].index(anchor)
                return raw[idx + 1] if idx + 2 < len(raw) else None
        return self.parts[0] if len(self.parts) > 1 else None


class Rule:
    """Base class: one invariant, one stable id."""

    id: str = ""
    title: str = ""
    rationale: str = ""
    severity: Severity = Severity.ERROR
    #: package directories the rule inspects; ``None`` means everywhere
    scopes: tuple[str, ...] | None = None
    #: whether the rule also runs on test files
    include_tests: bool = False

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.in_tests and not self.include_tests:
            return False
        if self.scopes is None:
            return True
        return ctx.top_package() in self.scopes

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            message=message,
            severity=self.severity,
        )


#: registry of all known rules, keyed by id (import order = id order)
RULES: dict[str, Rule] = {}

_R = TypeVar("_R", bound=Type[Rule])


def register_rule(cls: _R) -> _R:
    """Class decorator: instantiate and register a rule by its id."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Registered rules in id order."""
    return [RULES[k] for k in sorted(RULES)]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


class FunctionStackVisitor(ast.NodeVisitor):
    """NodeVisitor that tracks the enclosing function-name stack."""

    def __init__(self) -> None:
        self.func_stack: list[str] = []

    def _visit_func(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func_stack.append(node.name)
        self.generic_visit(node)
        self.func_stack.pop()

    # both spellings share the handler
    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    @property
    def current_function(self) -> str | None:
        return self.func_stack[-1] if self.func_stack else None


def compare_pairs(
    node: ast.Compare,
) -> Iterator[tuple[ast.expr, ast.cmpop, ast.expr]]:
    """Decompose a (possibly chained) comparison into binary pairs."""
    left = node.left
    for op, right in zip(node.ops, node.comparators):
        yield left, op, right
        left = right


Checker = Callable[[ast.AST, FileContext], Iterator[Diagnostic]]
