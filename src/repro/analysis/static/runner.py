"""Full-analysis orchestration: cache -> file rules -> project rules ->
baseline -> diff filter.

:func:`run_check` is the engine behind ``bshm check``:

1. expand the target paths to ``.py`` files and sha256 their contents;
2. for each file, reuse the cached ``(diagnostics, suppressions,
   facts)`` triple when the hash matches, otherwise run
   :func:`~.engine.analyze_source` once and cache the result;
3. build the whole-program :class:`~.project.Project` from the facts of
   every non-test, non-benchmark file and run the interprocedural rules
   (BSHM008/009/011) over its call graph, applying the same per-line
   suppressions as the file rules;
4. split the findings against the committed baseline (new findings fail,
   baselined ones are reported as suppressed);
5. in ``--diff`` mode, keep only findings on lines changed since the
   given git ref.

Tests and benchmarks are analyzed by the *file* rules (each rule's
``include_tests`` decides) but excluded from the project call graph:
tests call ``*_reference`` oracles on purpose, and letting their edges
into the graph would poison reachability for the serving code.
"""

from __future__ import annotations

import re
import subprocess
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Any, Iterable, Sequence

from .baseline import load_baseline, split_baseline
from .cache import AnalysisCache, content_hash
from .diagnostics import Diagnostic
from .engine import analyze_source, iter_python_files
from .interprocedural import check_project
from .project import build_project
from .rules import Rule

__all__ = ["CheckReport", "run_check", "git_changed_lines"]

DEFAULT_CACHE_DIR = ".bshm_cache"


@dataclass
class CheckReport:
    """Everything one ``bshm check`` run produced."""

    findings: list[Diagnostic] = field(default_factory=list)
    baselined: list[Diagnostic] = field(default_factory=list)
    n_files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def _in_tests(path: str) -> bool:
    parts = PurePosixPath(PurePosixPath(path).as_posix()).parts
    return (
        "tests" in parts or "benchmarks" in parts or parts[-1] == "conftest.py"
    )


_HUNK_RE = re.compile(r"^@@ -\d+(?:,\d+)? \+(\d+)(?:,(\d+))? @@")


def git_changed_lines(
    base: str, cwd: str | Path = "."
) -> dict[str, set[int]] | None:
    """``{posix path: changed line numbers}`` vs ``base`` (None when git
    is unavailable or the ref does not resolve)."""
    try:
        proc = subprocess.run(
            ["git", "diff", "--unified=0", "--no-color", base, "--", "*.py"],
            cwd=str(cwd),
            capture_output=True,
            text=True,
            timeout=60,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    changed: dict[str, set[int]] = {}
    current: str | None = None
    for line in proc.stdout.splitlines():
        if line.startswith("+++ b/"):
            current = line[len("+++ b/") :].strip()
            changed.setdefault(current, set())
        elif line.startswith("+++ "):
            current = None  # /dev/null: file deleted
        elif current is not None:
            match = _HUNK_RE.match(line)
            if match:
                start = int(match.group(1))
                count = int(match.group(2)) if match.group(2) is not None else 1
                changed[current].update(range(start, start + count))
    return changed


def _norm(path: str) -> str:
    return PurePosixPath(PurePosixPath(path).as_posix()).as_posix()


def _diff_filter(
    findings: list[Diagnostic], changed: dict[str, set[int]]
) -> list[Diagnostic]:
    by_path = {_norm(p): lines for p, lines in changed.items()}
    return [d for d in findings if d.line in by_path.get(_norm(d.path), ())]


def run_check(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    *,
    use_cache: bool = True,
    cache_dir: str | Path = DEFAULT_CACHE_DIR,
    baseline_path: str | Path | None = None,
    diff_base: str | None = None,
    project_rules: bool = True,
) -> CheckReport:
    """Run the full analysis over ``paths``; see the module docstring.

    Raises :class:`~.baseline.BaselineError` for an unreadable baseline
    and :class:`ValueError` when ``diff_base`` cannot be resolved.
    """
    files = iter_python_files(paths)
    cache = AnalysisCache(cache_dir) if use_cache else None

    findings: list[Diagnostic] = []
    sources: dict[str, list[str]] = {}
    supp_by_path: dict[str, dict[int, set[str]]] = {}
    facts_list: list[dict[str, Any] | None] = []
    for f in files:
        path = str(f)
        try:
            raw = f.read_bytes()
        except OSError:
            continue
        source = raw.decode("utf-8", errors="replace")
        sources[_norm(path)] = source.splitlines()
        sha = content_hash(raw)
        cached = cache.get(path, sha) if cache is not None else None
        if cached is not None:
            diags, supp, facts = cached
        else:
            diags, supp, facts = analyze_source(
                source, path, rules, want_facts=True
            )
            if cache is not None:
                cache.put(path, sha, diags, supp, facts)
        findings.extend(diags)
        supp_by_path[_norm(path)] = supp
        if not _in_tests(path):
            facts_list.append(facts)

    if project_rules:
        project = build_project(facts_list)
        for diag in check_project(project):
            supp = supp_by_path.get(_norm(diag.path), {})
            if diag.rule_id in supp.get(diag.line, ()):
                continue
            findings.append(diag)

    if cache is not None:
        cache.save()

    def line_text(diag: Diagnostic) -> str:
        lines = sources.get(_norm(diag.path), [])
        return lines[diag.line - 1] if 0 < diag.line <= len(lines) else ""

    baselined: list[Diagnostic] = []
    if baseline_path is not None:
        fps = load_baseline(baseline_path)
        findings, baselined = split_baseline(findings, fps, line_text)

    if diff_base is not None:
        changed = git_changed_lines(diff_base)
        if changed is None:
            raise ValueError(
                f"cannot diff against {diff_base!r}: git unavailable or "
                "the ref does not resolve"
            )
        findings = _diff_filter(findings, changed)
        baselined = _diff_filter(baselined, changed)

    report = CheckReport(
        findings=sorted(findings),
        baselined=sorted(baselined),
        n_files=len(files),
    )
    if cache is not None:
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses
    return report
