"""Domain rules: the repo's semantic invariants, enforced mechanically.

Each rule guards one invariant the paper's guarantees depend on (see
``docs/invariants.md`` for the catalogue and the history of the bugs
these rules would have caught):

- :class:`ClosedBoundaryComparison` (BSHM001) — half-open intervals
- :class:`FloatTimeEquality` (BSHM002) — ``time_tol``-guarded comparisons
- :class:`ReferenceKernelCall` (BSHM003) — oracle kernels are test-only
- :class:`Nondeterminism` (BSHM004) — replay safety in core/online/service
- :class:`FrozenMutation` (BSHM005) — Schedule/Interval/Job immutability
- :class:`CheckpointSchemaDrift` (BSHM006) — schema-version bumps
- :class:`UnstableArgsort` (BSHM007) — stable sorts in order-sensitive kernels
- :class:`AsyncBlockingCall` (BSHM010) — no sync blocking in ``async def``
- :class:`ToleranceDrift` (BSHM012) — tolerances come from ``core/tolerance.py``

The interprocedural tier (BSHM008/009/011) lives in
:mod:`repro.analysis.static.interprocedural` and runs over the whole
project graph rather than one file.

Suppress a finding with ``# bshm: ignore[<RULE>]`` on the offending
line (or on a comment-only line directly above) plus a justification.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Iterator

from .diagnostics import Diagnostic
from .rules import (
    FileContext,
    FunctionStackVisitor,
    Rule,
    compare_pairs,
    dotted_name,
    register_rule,
)

__all__ = [
    "START_ATTRS",
    "END_ATTRS",
    "TIME_ATTRS",
    "ClosedBoundaryComparison",
    "FloatTimeEquality",
    "ReferenceKernelCall",
    "Nondeterminism",
    "FrozenMutation",
    "CheckpointSchemaDrift",
    "UnstableArgsort",
    "AsyncBlockingCall",
    "ToleranceDrift",
    "compute_schema_manifest",
    "SCHEMA_MANIFEST_NAME",
]

#: attribute names denoting the *left* (closed) end of a half-open span
START_ATTRS = frozenset({"arrival", "left", "minus", "start"})
#: attribute names denoting the *right* (open) end of a half-open span
END_ATTRS = frozenset({"departure", "right", "plus", "end"})
#: attributes that hold time coordinates (float equality is suspect)
TIME_ATTRS = START_ATTRS | END_ATTRS | {"clock"}

#: packages where time/interval semantics are load-bearing
_TIME_SCOPES = ("core", "online", "offline", "placement", "schedule", "service")
#: packages that must stay deterministic for byte-identical replay
_DETERMINISTIC_SCOPES = ("core", "online", "service")

#: comparison dunders where structural ``==`` on endpoints is the point
_COMPARISON_DUNDERS = frozenset(
    {"__eq__", "__ne__", "__hash__", "__lt__", "__le__", "__gt__", "__ge__"}
)
#: methods allowed to call ``object.__setattr__`` (frozen construction)
_CONSTRUCTORS = frozenset({"__init__", "__new__", "__post_init__", "__setstate__"})


def _is_attr_in(node: ast.expr, names: frozenset[str]) -> bool:
    return isinstance(node, ast.Attribute) and node.attr in names


@register_rule
class ClosedBoundaryComparison(Rule):
    """``start <= end`` treats half-open intervals as closed.

    Two half-open intervals ``[a1, d1)`` and ``[a2, d2)`` overlap iff
    ``a1 < d2 and a2 < d1`` — *strict* ``<``.  Writing ``<=`` between a
    start boundary and an end boundary manufactures a zero-measure
    "overlap" at a departure/arrival handoff, the exact shape of the
    PR 1 boundary bug.  (Disjointness ``d1 <= a2`` compares end-to-start
    and is fine.)
    """

    id = "BSHM001"
    title = "closed-interval comparison on half-open time boundaries"
    rationale = "half-open [arrival, departure) semantics, paper Section II"
    scopes = _TIME_SCOPES

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            for left, op, right in compare_pairs(node):
                bad = (
                    isinstance(op, ast.LtE)
                    and _is_attr_in(left, START_ATTRS)
                    and _is_attr_in(right, END_ATTRS)
                ) or (
                    isinstance(op, ast.GtE)
                    and _is_attr_in(left, END_ATTRS)
                    and _is_attr_in(right, START_ATTRS)
                )
                if bad:
                    yield self.diag(
                        ctx,
                        node,
                        "closed-interval comparison between a start and an end "
                        "boundary; half-open [arrival, departure) overlap tests "
                        "must use strict '<' (a departure at t never overlaps "
                        "an arrival at t)",
                    )


@register_rule
class FloatTimeEquality(Rule):
    """Bare ``==`` / ``!=`` on float time coordinates.

    Equality of event times must state its tolerance explicitly through
    :mod:`repro.core.timecmp` (``time_eq`` / ``time_ne``); bit-exact
    comparisons that are *meant* to be exact (replay verification,
    memo keys) carry a justified ``# bshm: ignore[BSHM002]``.
    Structural dunders (``__eq__`` and friends) are exempt.
    """

    id = "BSHM002"
    title = "bare float equality on time coordinates"
    rationale = "time_tol-guarded comparisons; sweep kernel tolerance contract"
    scopes = _TIME_SCOPES

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        rule = self
        out: list[Diagnostic] = []

        class V(FunctionStackVisitor):
            def visit_Compare(self, node: ast.Compare) -> None:
                exempt = bool(_COMPARISON_DUNDERS & set(self.func_stack))
                if not exempt:
                    for left, op, right in compare_pairs(node):
                        if isinstance(op, (ast.Eq, ast.NotEq)) and (
                            _is_attr_in(left, TIME_ATTRS)
                            or _is_attr_in(right, TIME_ATTRS)
                        ):
                            out.append(
                                rule.diag(
                                    ctx,
                                    node,
                                    "bare float equality on a time coordinate; "
                                    "use repro.core.timecmp.time_eq/time_ne (or "
                                    "justify exactness with an ignore comment)",
                                )
                            )
                            break
                self.generic_visit(node)

        V().visit(tree)
        yield from out


@register_rule
class ReferenceKernelCall(Rule):
    """Production code must not lean on the ``*_reference`` oracles.

    The naive ``*_reference`` twins exist as differential-test oracles:
    quadratic scans kept deliberately simple.  Calling one outside
    ``tests/`` (except from inside another ``*_reference`` definition,
    which is how the twins compose) silently reintroduces the per-time-
    point complexity the sweep kernels removed.  Re-exports in
    ``__init__.py`` are allowed — the oracles are public API *for tests*.
    """

    id = "BSHM003"
    title = "reference oracle kernel used outside tests"
    rationale = "sweep kernels are the production path; references are oracles"
    scopes = None  # everywhere in the package

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        rule = self
        out: list[Diagnostic] = []
        in_init = ctx.filename == "__init__.py"

        class V(FunctionStackVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                name = None
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                enclosing = self.current_function or ""
                if (
                    name
                    and name.endswith("_reference")
                    and not enclosing.endswith("_reference")
                ):
                    out.append(
                        rule.diag(
                            ctx,
                            node,
                            f"call to oracle kernel {name!r} outside tests/; "
                            "use the sweep kernel on the production path",
                        )
                    )
                self.generic_visit(node)

            def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
                if not in_init:
                    for alias in node.names:
                        if alias.name.endswith("_reference"):
                            out.append(
                                rule.diag(
                                    ctx,
                                    node,
                                    f"import of oracle kernel {alias.name!r} "
                                    "outside tests/ (re-exports in __init__.py "
                                    "are exempt)",
                                )
                            )
                self.generic_visit(node)

        V().visit(tree)
        yield from out


#: wall-clock reads that break byte-identical replay
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    }
)
_DATETIME_NOW = frozenset({"now", "utcnow", "today"})


@register_rule
class Nondeterminism(Rule):
    """Unseeded randomness or wall-clock reads in replay-critical code.

    ``core/``, ``online/`` and ``service/`` must be deterministic
    functions of the event stream — checkpoint replay re-executes the
    recorded events and asserts byte-identical state, and the online
    engines' non-clairvoyance argument assumes decisions depend only on
    revealed inputs.  Randomness must come from an explicitly seeded
    ``numpy.random.default_rng(seed)`` owned by the *caller*.
    """

    id = "BSHM004"
    title = "nondeterminism in replay-critical code"
    rationale = "byte-identical checkpoint replay; non-clairvoyance"
    scopes = _DETERMINISTIC_SCOPES

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.diag(
                            ctx,
                            node,
                            "import of the global-state 'random' module; pass "
                            "a seeded numpy Generator in from the caller",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.diag(
                        ctx,
                        node,
                        "import from the global-state 'random' module; pass "
                        "a seeded numpy Generator in from the caller",
                    )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if dotted in _WALL_CLOCK or (
                    parts[-1] in _DATETIME_NOW
                    and any(p in ("datetime", "date") for p in parts[:-1])
                ):
                    yield self.diag(
                        ctx,
                        node,
                        f"wall-clock read {dotted!r}; scheduler state must be "
                        "a function of event times only (replay safety)",
                    )
                elif len(parts) >= 2 and parts[-2] == "random":
                    if parts[-1] != "default_rng":
                        yield self.diag(
                            ctx,
                            node,
                            f"global/unseeded RNG call {dotted!r}; use an "
                            "explicitly seeded numpy.random.default_rng(seed)",
                        )
                    elif not node.args and not node.keywords:
                        yield self.diag(
                            ctx,
                            node,
                            "default_rng() without a seed is entropy-seeded "
                            "and breaks replay; pass an explicit seed",
                        )


@register_rule
class FrozenMutation(Rule):
    """Mutation of frozen schedule/interval/job structures.

    ``Interval``, ``Job``, ``Schedule`` and friends are immutable by
    contract — every memo in the codebase (busy-time caches, grouped
    sweeps) is sound only because a "placement change" must construct a
    new object.  ``object.__setattr__`` is the blessed constructor-time
    backdoor; anywhere else it is a mutation of a frozen value, as is a
    plain assignment to a time/geometry field.
    """

    id = "BSHM005"
    title = "mutation of a frozen structure"
    rationale = "memoization soundness: Schedule/Interval/Job are immutable"
    scopes = None
    # tests mutating a frozen Interval/Job corrupt the same memo caches
    # production code would; fixtures construct new objects instead
    include_tests = True

    _FROZEN_FIELDS = frozenset({"arrival", "departure", "size", "left", "right"})

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        rule = self
        out: list[Diagnostic] = []

        class V(FunctionStackVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                if (
                    dotted_name(node.func) == "object.__setattr__"
                    and not (_CONSTRUCTORS & set(self.func_stack))
                ):
                    out.append(
                        rule.diag(
                            ctx,
                            node,
                            "object.__setattr__ outside a constructor mutates "
                            "a frozen structure; build a new object instead",
                        )
                    )
                self.generic_visit(node)

            def _check_target(self, target: ast.expr) -> None:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in rule._FROZEN_FIELDS
                    and not (_CONSTRUCTORS & set(self.func_stack))
                ):
                    out.append(
                        rule.diag(
                            ctx,
                            target,
                            f"assignment to frozen field {target.attr!r}; "
                            "Interval/Job/Schedule values are immutable — "
                            "construct a new one",
                        )
                    )

            def visit_Assign(self, node: ast.Assign) -> None:
                for t in node.targets:
                    self._check_target(t)
                self.generic_visit(node)

            def visit_AugAssign(self, node: ast.AugAssign) -> None:
                self._check_target(node.target)
                self.generic_visit(node)

        V().visit(tree)
        yield from out


SCHEMA_MANIFEST_NAME = "schema_manifest.json"


def _checkpoint_schema_facts(tree: ast.AST) -> tuple[dict[str, int], list[str]]:
    """(version constants, sorted record-field keys) from checkpoint.py's AST.

    Record fields are every string dict-literal key inside the two
    serializer functions (``record_trace`` headers, ``snapshot``
    documents) — exactly the wire surface a reader must understand.
    """
    versions: dict[str, int] = {}
    fields: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and target.id in ("TRACE_VERSION", "CHECKPOINT_VERSION")
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)
            ):
                versions[target.id] = node.value.value
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            node.name in ("record_trace", "snapshot")
        ):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Dict):
                    for key in sub.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            fields.add(f"{node.name}:{key.value}")
    return versions, sorted(fields)


def compute_schema_manifest(checkpoint_path: str | Path) -> dict:
    """The manifest dict that makes BSHM006 pass for the current source."""
    source = Path(checkpoint_path).read_text()
    tree = ast.parse(source)
    versions, fields = _checkpoint_schema_facts(tree)
    digest = hashlib.sha256("\n".join(fields).encode()).hexdigest()
    return {
        "trace_version": versions.get("TRACE_VERSION"),
        "checkpoint_version": versions.get("CHECKPOINT_VERSION"),
        "record_fields": fields,
        "fields_sha256": digest,
    }


@register_rule
class CheckpointSchemaDrift(Rule):
    """Checkpoint/trace record fields changed without a version bump.

    The wire schema of ``service/checkpoint.py`` is pinned by
    ``service/schema_manifest.json``: the set of record fields the
    serializers emit plus the schema version constants.  Editing the
    fields without bumping ``TRACE_VERSION`` / ``CHECKPOINT_VERSION``
    *and* refreshing the manifest (``bshm check --refresh-schema-manifest``)
    fails here — readers reject unknown versions, so an unbumped edit
    would silently desynchronize old traces instead.
    """

    id = "BSHM006"
    title = "checkpoint schema drift without a version bump"
    rationale = "schema versioning policy, docs/algorithms.md"
    scopes = ("service",)

    def applies_to(self, ctx: FileContext) -> bool:
        return super().applies_to(ctx) and ctx.filename == "checkpoint.py"

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        versions, fields = _checkpoint_schema_facts(tree)
        digest = hashlib.sha256("\n".join(fields).encode()).hexdigest()
        manifest_path = Path(ctx.path).resolve().parent / SCHEMA_MANIFEST_NAME
        if not manifest_path.exists():
            yield self.diag(
                ctx,
                tree,
                f"schema manifest {SCHEMA_MANIFEST_NAME} is missing next to "
                "checkpoint.py; generate it with "
                "'bshm check --refresh-schema-manifest'",
            )
            return
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError:
            yield self.diag(
                ctx, tree, f"schema manifest {manifest_path} is not valid JSON"
            )
            return
        if manifest.get("fields_sha256") != digest or manifest.get(
            "record_fields"
        ) != fields:
            recorded = set(manifest.get("record_fields") or ())
            added = sorted(set(fields) - recorded)
            removed = sorted(recorded - set(fields))
            delta = "; ".join(
                part
                for part in (
                    f"added {added}" if added else "",
                    f"removed {removed}" if removed else "",
                )
                if part
            )
            yield self.diag(
                ctx,
                tree,
                "checkpoint/trace record fields changed without a schema "
                f"bump ({delta or 'field set differs'}); bump TRACE_VERSION/"
                "CHECKPOINT_VERSION and run "
                "'bshm check --refresh-schema-manifest'",
            )
        for const, key in (
            ("TRACE_VERSION", "trace_version"),
            ("CHECKPOINT_VERSION", "checkpoint_version"),
        ):
            if versions.get(const) != manifest.get(key):
                yield self.diag(
                    ctx,
                    tree,
                    f"{const} = {versions.get(const)} disagrees with the "
                    f"manifest ({key} = {manifest.get(key)}); refresh the "
                    "manifest alongside the version bump",
                )


#: sort kinds that guarantee a deterministic permutation on ties
_STABLE_SORT_KINDS = frozenset({"stable", "mergesort"})


@register_rule
class UnstableArgsort(Rule):
    """``argsort`` without ``kind="stable"`` in order-sensitive kernels.

    The sweep and vectorized kernels sample running sums produced by
    sorting *event permutations*; numpy's default introsort breaks ties
    in a platform/size-dependent order, so two runs of the same instance
    can disagree in the last float bit — enough to flip a segment
    boundary and break both byte-identical replay and the exactness
    argument of the differential tests (vectorized vs sweep match
    bit-for-bit on integer inputs *because* both use the same stable
    permutation).  ``np.lexsort`` is always stable and is exempt.
    """

    id = "BSHM007"
    title = "argsort without a stable kind in an order-sensitive kernel"
    rationale = "deterministic event permutations; vectorized/sweep bit-parity"
    scopes = _DETERMINISTIC_SCOPES

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None or dotted.split(".")[-1] != "argsort":
                continue
            kind = next(
                (kw.value for kw in node.keywords if kw.arg == "kind"), None
            )
            if (
                isinstance(kind, ast.Constant)
                and kind.value in _STABLE_SORT_KINDS
            ):
                continue
            yield self.diag(
                ctx,
                node,
                "argsort without kind='stable'; tie order is platform-"
                "dependent under the default introsort — event-queue "
                "permutations must be stable for replay and for the "
                "vectorized/sweep bit-parity contract",
            )


#: calls that block the event loop when made from an ``async def`` body
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "socket.create_connection",
    }
)
_SUBPROCESS_CALLS = frozenset(
    {"run", "call", "check_call", "check_output", "Popen", "getoutput"}
)


@register_rule
class AsyncBlockingCall(Rule):
    """Synchronous blocking calls inside ``async def`` bodies.

    The service is a single asyncio loop: one ``time.sleep`` or
    ``subprocess.run`` in a handler stalls *every* connection, turns the
    read-timeout guarantees into fiction and (under load shedding) makes
    the in-flight gauge lie.  Blocking work belongs in
    ``loop.run_in_executor`` or an ``await``-able equivalent; tests that
    deliberately stall a server to probe timeouts carry a justified
    suppression.
    """

    id = "BSHM010"
    title = "blocking call inside an async def body"
    rationale = "single-loop service latency; read-timeout/shedding honesty"
    scopes = ("service",)
    include_tests = True

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        rule = self

        class V(ast.NodeVisitor):
            def __init__(self) -> None:
                self.async_depth = 0
                self.out: list[Diagnostic] = []

            def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
                self.async_depth += 1
                self.generic_visit(node)
                self.async_depth -= 1

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                # a nested sync def is not executed by the enclosing
                # coroutine's await chain
                depth, self.async_depth = self.async_depth, 0
                self.generic_visit(node)
                self.async_depth = depth

            def visit_Call(self, node: ast.Call) -> None:
                if self.async_depth > 0:
                    dotted = dotted_name(node.func)
                    if dotted is not None:
                        parts = dotted.split(".")
                        blocking = dotted in _BLOCKING_CALLS or (
                            len(parts) >= 2
                            and parts[-2] == "subprocess"
                            and parts[-1] in _SUBPROCESS_CALLS
                        )
                        if blocking:
                            self.out.append(
                                rule.diag(
                                    ctx,
                                    node,
                                    f"blocking call {dotted!r} inside an "
                                    "async def stalls the whole event loop; "
                                    "use an awaitable (asyncio.sleep, "
                                    "run_in_executor) instead",
                                )
                            )
                self.generic_visit(node)

        visitor = V()
        visitor.visit(tree)
        yield from visitor.out


#: magnitude at or below which a float literal reads as a tolerance
_TOLERANCE_MAGNITUDE = 1e-4
#: approximate-comparison helpers whose tolerance kwargs must not be literals
_ISCLOSE_NAMES = frozenset({"isclose", "allclose"})
_TOL_KWARGS = frozenset({"atol", "rtol", "abs_tol", "rel_tol"})
#: assignment-target substrings that mark a binding as a tolerance alias
_TOL_NAME_MARKERS = ("tol", "eps")


def _is_tolerance_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and 0.0 < abs(node.value) <= _TOLERANCE_MAGNITUDE
    )


@register_rule
class ToleranceDrift(Rule):
    """Float comparisons, slack arithmetic or aliases of ad-hoc tolerance literals.

    Three independent ``1e-9`` copies is how the pre-PR4 codebase ended
    up with fits/coincidence drift — :mod:`repro.core.tolerance` is the
    single source of truth now, and any comparison against a raw
    tolerance-magnitude literal (or a literal ``atol=``/``abs_tol=``)
    outside that module reintroduces the drift one edit at a time.
    The rule also catches the two ways such a literal usually sneaks back
    in without a direct comparison: **additive slack** (``x + 1e-12``,
    ``ratio - 1e-9``, ``1 + 1e-12`` inside a larger expression) and
    **private aliases** (``_EPS = 1e-9``, ``_TOL = 1e-9``) that fork the
    constant under a local name.  Import ``TOLERANCE``/``SIZE_TOL``/
    ``TIME_TOL``/``FINE_TOL`` instead.
    """

    id = "BSHM012"
    title = "ad-hoc tolerance literal instead of core.tolerance constants"
    rationale = "single tolerance source: repro.core.tolerance"
    scopes = ("core", "online", "offline", "placement", "schedule", "service",
              "machines", "lowerbound")

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.filename == "tolerance.py":
            return False  # the source of truth defines the literal
        return super().applies_to(ctx)

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Compare):
                for left, _op, right in compare_pairs(node):
                    if _is_tolerance_literal(left) or _is_tolerance_literal(
                        right
                    ):
                        yield self.diag(
                            ctx,
                            node,
                            "comparison against a raw tolerance-magnitude "
                            "float literal; use repro.core.tolerance "
                            "(TOLERANCE / SIZE_TOL / TIME_TOL) so the "
                            "noise floor cannot drift between modules",
                        )
                        break
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                if _is_tolerance_literal(node.left) or _is_tolerance_literal(
                    node.right
                ):
                    yield self.diag(
                        ctx,
                        node,
                        "additive slack from a raw tolerance-magnitude float "
                        "literal; use repro.core.tolerance (TOLERANCE for "
                        "accumulated noise, FINE_TOL for ulp-level guards) "
                        "so the slack cannot drift between modules",
                    )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                names = [t.id for t in targets if isinstance(t, ast.Name)]
                if (
                    names
                    and node.value is not None
                    and _is_tolerance_literal(node.value)
                    and any(
                        marker in name.lower()
                        for name in names
                        for marker in _TOL_NAME_MARKERS
                    )
                ):
                    yield self.diag(
                        ctx,
                        node,
                        f"local tolerance alias {names[0]!r} bound to a raw "
                        "float literal forks the noise floor; alias a "
                        "repro.core.tolerance constant instead",
                    )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None or dotted.split(".")[-1] not in _ISCLOSE_NAMES:
                    continue
                for kw in node.keywords:
                    if kw.arg in _TOL_KWARGS and _is_tolerance_literal(kw.value):
                        yield self.diag(
                            ctx,
                            node,
                            f"literal {kw.arg}= tolerance in {dotted}(); "
                            "pass a repro.core.tolerance constant instead",
                        )
                        break
