"""Baseline (warn-then-enforce) support for ``bshm check``.

A baseline file records the fingerprints of known, accepted findings so
new rules can be rolled out without an immediate fix-everything gate:
baselined findings are demoted to informational output (and marked
``suppressed`` in SARIF), while anything *not* in the baseline fails the
run.  Shrink the baseline over time; never grow it silently.

Fingerprints are content-anchored, not line-anchored: the hash covers
the repo-relative path, the rule id and the *stripped text of the
offending line*, so pure line-shifts (adding code above) do not
invalidate the baseline while any edit to the flagged line itself does —
an edited line must re-earn its exemption.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path, PurePosixPath
from typing import Callable, Iterable

from .diagnostics import Diagnostic

__all__ = [
    "BASELINE_VERSION",
    "BaselineError",
    "fingerprint",
    "line_text_from_disk",
    "load_baseline",
    "write_baseline",
    "split_baseline",
]

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is unreadable or malformed."""


def _norm_path(path: str) -> str:
    return PurePosixPath(PurePosixPath(path).as_posix()).as_posix()


def fingerprint(diag: Diagnostic, line_text: str) -> str:
    """Stable fingerprint of one finding (path | rule | stripped line)."""
    payload = f"{_norm_path(diag.path)}|{diag.rule_id}|{line_text.strip()}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


_DISK_LINES: dict[str, list[str]] = {}


def line_text_from_disk(diag: Diagnostic) -> str:
    """The flagged line's text, reading (and memoizing) the file from disk."""
    lines = _DISK_LINES.get(diag.path)
    if lines is None:
        try:
            lines = Path(diag.path).read_text(errors="replace").splitlines()
        except OSError:
            lines = []
        _DISK_LINES[diag.path] = lines
    return lines[diag.line - 1] if 0 < diag.line <= len(lines) else ""


def load_baseline(path: str | Path) -> set[str]:
    """The fingerprint set from a baseline file."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {str(path)!r}: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {str(path)!r} has unsupported version "
            f"{data.get('version') if isinstance(data, dict) else '?'!r} "
            f"(expected {BASELINE_VERSION})"
        )
    entries = data.get("findings")
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {str(path)!r} has no findings list")
    fps: set[str] = set()
    for entry in entries:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise BaselineError(
                f"baseline {str(path)!r} entry missing a fingerprint: {entry!r}"
            )
        fps.add(str(entry["fingerprint"]))
    return fps


def write_baseline(
    path: str | Path,
    findings: Iterable[Diagnostic],
    line_text: Callable[[Diagnostic], str],
) -> int:
    """Write a baseline covering ``findings``; returns the entry count.

    Entries carry the human-readable context (path, rule, message) next
    to the fingerprint so baseline diffs are reviewable, but only the
    fingerprint is matched at check time.
    """
    entries = [
        {
            "fingerprint": fingerprint(diag, line_text(diag)),
            "path": _norm_path(diag.path),
            "rule_id": diag.rule_id,
            "message": diag.message,
        }
        for diag in sorted(findings)
    ]
    # one fingerprint may cover several identical lines; keep one entry each
    unique: dict[str, dict[str, str]] = {}
    for entry in entries:
        unique.setdefault(entry["fingerprint"], entry)
    doc = {
        "version": BASELINE_VERSION,
        "findings": sorted(unique.values(), key=lambda e: (e["path"], e["rule_id"])),
    }
    Path(path).write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return len(unique)


def split_baseline(
    findings: Iterable[Diagnostic],
    baseline_fps: set[str],
    line_text: Callable[[Diagnostic], str],
) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """``(new, baselined)`` — new findings fail the run, baselined do not."""
    new: list[Diagnostic] = []
    old: list[Diagnostic] = []
    for diag in findings:
        if fingerprint(diag, line_text(diag)) in baseline_fps:
            old.append(diag)
        else:
            new.append(diag)
    return new, old
