"""Diagnostics emitted by the invariant checker.

A :class:`Diagnostic` is one finding: a rule id, a severity, a file
position and a human-readable message.  Diagnostics are plain frozen
values so rule implementations stay side-effect free and the engine can
sort, dedup and filter them freely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Severity", "Diagnostic"]


class Severity(enum.Enum):
    """How bad a finding is.  Every finding fails ``bshm check``; the
    severity only affects presentation (warnings may become errors, never
    the reverse)."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True, order=True)
class Diagnostic:
    """One finding at ``path:line:col`` from rule ``rule_id``."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = Severity.ERROR

    def format(self) -> str:
        """The canonical one-line rendering (``path:line:col: error[ID] msg``)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value}[{self.rule_id}] {self.message}"
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (incremental cache, ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "message": self.message,
            "severity": self.severity.value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (raises on malformed input)."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            rule_id=str(data["rule_id"]),
            message=str(data["message"]),
            severity=Severity(data["severity"]),
        )
