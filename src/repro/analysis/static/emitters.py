"""Output emitters for ``bshm check``: text, JSON, SARIF 2.1.0.

The text format is the canonical terminal rendering.  The JSON format is
the machine-readable twin (same fields as :meth:`Diagnostic.to_dict`,
plus run metadata) and round-trips through the baseline tooling.  The
SARIF output follows the 2.1.0 schema closely enough for GitHub code
scanning: one run, one driver, the full rule catalogue as
``reportingDescriptor`` entries, one ``result`` per finding, and
baselined findings carried with an ``external`` suppression so they
render as suppressed instead of vanishing.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from .diagnostics import Diagnostic, Severity
from .rules import RULES

__all__ = ["FORMATS", "SARIF_VERSION", "render"]

FORMATS = ("text", "json", "sarif")
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def render_text(
    findings: Iterable[Diagnostic],
    baselined: Iterable[Diagnostic],
    n_files: int,
) -> str:
    lines = [diag.format() for diag in findings]
    n_base = sum(1 for _ in baselined)
    n_new = len(lines)
    if n_new:
        lines.append(f"bshm check: {n_new} finding(s) in {n_files} files")
    else:
        lines.append(f"bshm check: {n_files} files clean")
    if n_base:
        lines.append(f"bshm check: {n_base} baselined finding(s) not shown")
    return "\n".join(lines)


def render_json(
    findings: Iterable[Diagnostic],
    baselined: Iterable[Diagnostic],
    n_files: int,
) -> str:
    doc = {
        "version": 1,
        "n_files": n_files,
        "findings": [d.to_dict() for d in findings],
        "baselined": [d.to_dict() for d in baselined],
    }
    return json.dumps(doc, indent=1, sort_keys=True)


def _sarif_rules() -> list[dict[str, Any]]:
    descriptors: list[dict[str, Any]] = []
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        descriptors.append(
            {
                "id": rule.id,
                "name": type(rule).__name__,
                "shortDescription": {"text": rule.title},
                "fullDescription": {"text": rule.rationale},
                "helpUri": "https://example.invalid/docs/invariants.md",
                "defaultConfiguration": {"level": _LEVELS[rule.severity]},
            }
        )
    return descriptors


def _sarif_result(
    diag: Diagnostic, rule_index: dict[str, int], suppressed: bool
) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": diag.rule_id,
        "level": _LEVELS[diag.severity],
        "message": {"text": diag.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diag.path.replace("\\", "/"),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": diag.line,
                        "startColumn": max(diag.col, 1),
                    },
                }
            }
        ],
    }
    if diag.rule_id in rule_index:
        result["ruleIndex"] = rule_index[diag.rule_id]
    if suppressed:
        result["suppressions"] = [
            {"kind": "external", "justification": "accepted in bshm-baseline.json"}
        ]
    return result


def render_sarif(
    findings: Iterable[Diagnostic],
    baselined: Iterable[Diagnostic],
    n_files: int,
) -> str:
    rules = _sarif_rules()
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results = [_sarif_result(d, rule_index, suppressed=False) for d in findings]
    results += [_sarif_result(d, rule_index, suppressed=True) for d in baselined]
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "bshm-check",
                        "informationUri": "https://example.invalid/bshm",
                        "rules": rules,
                    }
                },
                "results": results,
                "properties": {"n_files": n_files},
            }
        ],
    }
    return json.dumps(doc, indent=1, sort_keys=True)


def render(
    fmt: str,
    findings: list[Diagnostic],
    baselined: list[Diagnostic],
    n_files: int,
) -> str:
    """Render one run's findings in ``fmt`` (one of :data:`FORMATS`)."""
    if fmt == "text":
        return render_text(findings, baselined, n_files)
    if fmt == "json":
        return render_json(findings, baselined, n_files)
    if fmt == "sarif":
        return render_sarif(findings, baselined, n_files)
    raise ValueError(f"unknown format {fmt!r}; choose from {FORMATS}")
