"""Empirical ratio computation against the Eq.-(1) lower bound.

The central quantity of every experiment: ``cost(ALG) / LB`` per instance.
Since ``LB <= OPT``, the measured ratio upper-bounds the true approximation
ratio on that instance, so a measured ratio below the paper's bound is
consistent with (and evidence for) the theorem.

:func:`evaluate` runs one algorithm on one instance, validates feasibility,
and returns an :class:`AlgorithmRun`; :func:`evaluate_suite` sweeps an
algorithm matrix over a workload matrix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..lowerbound.bound import lower_bound
from ..schedule.schedule import Schedule
from ..schedule.validate import assert_feasible

__all__ = ["AlgorithmRun", "evaluate", "evaluate_suite", "theoretical_bounds"]

SchedulerFn = Callable[[JobSet, Ladder], Schedule]


@dataclass(frozen=True, slots=True)
class AlgorithmRun:
    """One (algorithm, instance) measurement."""

    algorithm: str
    workload: str
    n_jobs: int
    mu: float
    cost: float
    lower_bound: float
    ratio: float
    machines: int
    runtime_s: float

    def row(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "workload": self.workload,
            "n": self.n_jobs,
            "mu": round(self.mu, 3),
            "cost": round(self.cost, 3),
            "LB": round(self.lower_bound, 3),
            "ratio": round(self.ratio, 4),
            "machines": self.machines,
            "sec": round(self.runtime_s, 4),
        }


def evaluate(
    name: str,
    fn: SchedulerFn,
    jobs: JobSet,
    ladder: Ladder,
    *,
    workload: str = "?",
    lb_value: float | None = None,
    check: bool = True,
) -> AlgorithmRun:
    """Run, validate and measure one algorithm on one instance."""
    start = time.perf_counter()
    schedule = fn(jobs, ladder)
    elapsed = time.perf_counter() - start
    if check:
        assert_feasible(schedule, jobs)
    lb = lb_value if lb_value is not None else lower_bound(jobs, ladder).value
    cost = schedule.cost()
    return AlgorithmRun(
        algorithm=name,
        workload=workload,
        n_jobs=len(jobs),
        mu=jobs.mu,
        cost=cost,
        lower_bound=lb,
        ratio=cost / lb if lb > 0 else float("inf"),
        machines=len(schedule.machines()),
        runtime_s=elapsed,
    )


def evaluate_suite(
    algorithms: dict[str, SchedulerFn],
    instances: dict[str, tuple[JobSet, Ladder]],
    *,
    check: bool = True,
) -> list[AlgorithmRun]:
    """Cross product of algorithms × instances, sharing one LB per instance."""
    runs: list[AlgorithmRun] = []
    for wname, (jobs, ladder) in instances.items():
        lb = lower_bound(jobs, ladder).value
        for aname, fn in algorithms.items():
            runs.append(
                evaluate(
                    aname, fn, jobs, ladder, workload=wname, lb_value=lb, check=check
                )
            )
    return runs


def theoretical_bounds(mu: float, m: int) -> dict[str, float]:
    """The paper's proven (or conjectured) ratio for each algorithm.

    Conjectured Section-V bounds are reported with a generous constant 14
    (the paper gives only the asymptotic order).
    """
    import math

    return {
        "DEC-OFFLINE": 14.0,
        "DEC-ONLINE": 32.0 * (mu + 1.0),
        "INC-OFFLINE": 9.0,
        "INC-ONLINE": 2.25 * mu + 6.75,
        "GEN-OFFLINE": 14.0 * math.sqrt(m),
        "GEN-ONLINE": 32.0 * math.sqrt(m) * (mu + 1.0),
    }
