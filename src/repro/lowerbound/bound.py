"""The integral lower bound of Eq. (1) and the analysis machine profiles.

``lower_bound(jobs, ladder)`` integrates the optimal configuration cost rate
over the busy span of the instance:

    OPT_BSHM(J)  >=  ∫ (sum_i w*(i, t) r_i) dt.

Because every quantity is constant on elementary segments, the integral is a
finite exact sum.  The module also exposes the per-type machine-count step
functions ``w*(i, ·)`` and the interval families ``I_{i,j}`` (times when at
least ``j`` type-``i`` machines appear in the configuration), which power the
Theorem-2 analysis benches.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from ..analysis.profiling import Profiler
from ..core.intervals import Interval, IntervalSet
from ..core.stepfun import StepFunction
from ..core.sweep import sweep_nested_demand
from ..core.vectorized import use_vectorized, vec_nested_demand
from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from .config import ConfigSolver

__all__ = ["LowerBoundResult", "lower_bound", "configuration_profile"]


@dataclass(frozen=True, slots=True)
class LowerBoundResult:
    """Lower bound value plus the per-segment optimal configurations."""

    value: float
    ladder: Ladder
    segments: tuple  # tuple[Interval, ...]
    rates: tuple[float, ...]  # optimal cost rate per segment
    counts: tuple[tuple[int, ...], ...]  # w*(i, t) per segment

    def rate_profile(self) -> StepFunction:
        """Optimal configuration cost rate as a step function of time."""
        return StepFunction.from_segments(
            (seg.left, seg.right, rate)
            for seg, rate in zip(self.segments, self.rates)
        )

    def count_profile(self, i: int) -> StepFunction:
        """``w*(i, ·)`` for one machine type (1-based)."""
        return StepFunction.from_segments(
            (seg.left, seg.right, float(counts[i - 1]))
            for seg, counts in zip(self.segments, self.counts)
        )

    def interval_family(self, i: int, j: int) -> IntervalSet:
        """``I_{i,j}``: times when the configuration holds >= j type-i
        machines (Theorem 2 proof machinery)."""
        return self.count_profile(i).superlevel(float(j))

    def max_count(self, i: int) -> int:
        """Peak ``w*(i, .)`` over all segments."""
        return max((c[i - 1] for c in self.counts), default=0)


def lower_bound(
    jobs: JobSet, ladder: Ladder, *, profiler: Profiler | None = None
) -> LowerBoundResult:
    """Exact evaluation of the Eq.-(1) lower bound for an instance.

    The nested per-type demands ``s(J_{>=i}, t)`` come from ONE merged event
    sweep (:func:`~repro.core.sweep.sweep_nested_demand`) instead of ``m``
    independent profile constructions; segments where no job is active are
    skipped, exactly as :meth:`JobSet.segments` used to do.

    Instances of at least :func:`~repro.core.vectorized.vec_threshold` jobs
    build the demand matrix on the columnar path
    (:func:`~repro.core.vectorized.vec_nested_demand`) and deduplicate the
    per-segment demand columns before solving — each distinct configuration
    is solved once and the integral is one dot product, instead of ``k``
    Python loop iterations through the solver cache.
    """
    if jobs.empty:
        return LowerBoundResult(0.0, ladder, (), (), ())
    vectorized = use_vectorized(len(jobs))
    if vectorized:
        a = jobs.to_arrays()
        times, active, demand_matrix = vec_nested_demand(
            a.starts, a.ends, a.sizes, ladder.capacities
        )
    else:
        times, active, demand_matrix = sweep_nested_demand(
            list(jobs), ladder.capacities
        )
    live = np.flatnonzero(active > 0)
    if live.size == 0:
        return LowerBoundResult(0.0, ladder, (), (), ())
    segments = [
        Interval(float(times[k]), float(times[k + 1])) for k in live
    ]
    if profiler is not None:
        profiler.count("lb.segments", len(segments))
        profiler.count("lb.jobs", len(jobs))

    solver = ConfigSolver(ladder)
    rates: list[float] = []
    counts: list[tuple[int, ...]] = []
    total = 0.0
    ctx = profiler.timer("lb.config-solve") if profiler is not None else nullcontext()
    with ctx:
        if vectorized:
            # solve each *distinct* demand column once (exact float match,
            # the same keying the solver cache uses), then contract rates
            # against segment lengths in one dot product
            cols = np.ascontiguousarray(demand_matrix[:, live].T)
            uniq_cols, inverse = np.unique(cols, axis=0, return_inverse=True)
            configs = [solver.solve(tuple(col)) for col in uniq_cols]
            inverse = inverse.ravel()
            rate_arr = np.array([c.rate for c in configs])[inverse]
            lengths = np.diff(times)[live]
            total = float(np.dot(rate_arr, lengths))
            rates = [float(r) for r in rate_arr]
            counts = [configs[i].counts for i in inverse]
        else:
            for k, seg in zip(live, segments):
                config = solver.solve(tuple(demand_matrix[:, k]))
                rates.append(config.rate)
                counts.append(config.counts)
                total += config.rate * seg.length
    return LowerBoundResult(
        value=total,
        ladder=ladder,
        segments=tuple(segments),
        rates=tuple(rates),
        counts=tuple(counts),
    )


def configuration_profile(jobs: JobSet, ladder: Ladder) -> StepFunction:
    """Convenience: the optimal cost-rate step function for an instance."""
    return lower_bound(jobs, ladder).rate_profile()
