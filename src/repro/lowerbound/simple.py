"""Simpler lower bounds, for context and cross-checking.

The Eq.-(1) bound is the paper's; two coarser classics are implemented here
because they are what practitioners usually reach for, and because proving
(in tests) that Eq. (1) dominates both on every instance is a meaningful
validation of the optimal-configuration solver:

- **span bound** — whenever any job is active, at least one machine is busy
  and the cheapest rate is ``r_1``:   ``LB_span = len(U I(J)) * r_1``.
- **volume bound** — every unit of demand must be served by *some* machine;
  serving one unit for one time unit costs at least the best amortized rate
  *among the types that can legally serve it* (a job of class ``c`` can only
  run on types ``>= c``):
  ``LB_vol = integral_t sum_c s(J_c, t) * min_{i >= c}(r_i / g_i) dt``.

Both are valid lower bounds on OPT; ``lower_bound`` (Eq. 1) is provably at
least as strong as each (see tests/lowerbound/test_simple.py).
"""

from __future__ import annotations

from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder

__all__ = ["span_bound", "volume_bound", "all_bounds"]


def span_bound(jobs: JobSet, ladder: Ladder) -> float:
    """``len(busy span) * r_1``."""
    return jobs.busy_span().length * ladder.rate(1)


def volume_bound(jobs: JobSet, ladder: Ladder) -> float:
    """Class-aware volume bound (see module docstring)."""
    total = 0.0
    best_amortized_from = []
    # best (smallest) amortized rate among types >= i, per class i
    for i in range(1, ladder.m + 1):
        best_amortized_from.append(
            min(ladder.type(j).amortized_rate for j in range(i, ladder.m + 1))
        )
    for i, cls in enumerate(jobs.size_partition(ladder.capacities), start=1):
        if cls.empty:
            continue
        total += cls.total_volume() * best_amortized_from[i - 1]
    return total


def all_bounds(jobs: JobSet, ladder: Ladder) -> dict[str, float]:
    """All three lower bounds side by side (Eq. 1 last, always largest)."""
    from .bound import lower_bound

    return {
        "span": span_bound(jobs, ladder),
        "volume": volume_bound(jobs, ladder),
        "eq1": lower_bound(jobs, ladder).value,
    }
