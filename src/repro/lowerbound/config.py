"""Optimal machine configurations (paper Section II, Eq. 1).

At a fixed time ``t`` let ``D_i = s(J_{>=i}(t), t)`` be the total size of the
active jobs that must run on machines of type at least ``i`` (those with
``s(J) > g_{i-1}``).  Any feasible BSHM solution uses machine counts
``w(i, t)`` with

    sum_{j >= i} w(j, t) * g_j  >=  D_i     for every i,

and the *optimal machine configuration* ``w*(., t)`` minimizes the cost rate
``sum_i w(i, t) * r_i`` subject to these nested constraints.  This module
solves that small integer program **exactly** with a memoized depth-first
search over types from ``m`` down to ``1``; the suffix capacity bought so far
is the only state.  Branching is bounded because buying more capacity than
``D_1`` is never useful.

The solver is cross-checked against ``scipy.optimize.milp`` in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.tolerance import FINE_TOL, TOLERANCE
from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder

__all__ = ["OptimalConfig", "optimal_config", "demands_at", "ConfigSolver"]

_TOL = TOLERANCE


def _ceil_div(x: float, g: float) -> int:
    """``ceil(x / g)`` robust to float noise; 0 for non-positive ``x``."""
    if x <= _TOL:
        return 0
    return int(math.ceil(x / g - FINE_TOL))


@dataclass(frozen=True, slots=True)
class OptimalConfig:
    """An optimal configuration: per-type counts and the optimal cost rate."""

    counts: tuple[int, ...]  # counts[i-1] = w*(i, t)
    rate: float  # sum_i w*(i,t) * r_i

    def count(self, i: int) -> int:
        """``w*(i, t)`` for one 1-based type index."""
        return self.counts[i - 1]


def demands_at(jobs: JobSet, t: float, ladder: Ladder) -> tuple[float, ...]:
    """The nested demand vector ``(D_1, ..., D_m)`` at time ``t``.

    ``D_i`` sums the sizes of active jobs with ``s(J) > g_{i-1}``; the vector
    is non-increasing by construction.
    """
    active = [(j.size) for j in jobs if j.active_at(t)]
    return demands_from_sizes(active, ladder)


def demands_from_sizes(sizes: Sequence[float], ladder: Ladder) -> tuple[float, ...]:
    """Demand vector for a multiset of active job sizes."""
    out = []
    for i in range(1, ladder.m + 1):
        g_prev = ladder.capacity(i - 1)
        out.append(sum(s for s in sizes if s > g_prev))
    return tuple(out)


class ConfigSolver:
    """Exact solver for optimal machine configurations over one ladder.

    Caches solutions across calls (keyed on the demand vector), which pays
    off because an instance has many elementary segments with identical
    active-size multisets.
    """

    def __init__(self, ladder: Ladder) -> None:
        self.ladder = ladder
        self._cache: dict[tuple[float, ...], OptimalConfig] = {}

    def solve(self, demands: Sequence[float]) -> OptimalConfig:
        """Optimal configuration for a non-increasing demand vector."""
        demands = tuple(float(d) for d in demands)
        if len(demands) != self.ladder.m:
            raise ValueError("demand vector length must equal the number of types")
        for a, b in zip(demands[:-1], demands[1:]):
            if b > a + _TOL:
                raise ValueError("demand vector must be non-increasing")
        if demands[0] <= _TOL:
            return OptimalConfig(counts=(0,) * self.ladder.m, rate=0.0)
        cached = self._cache.get(demands)
        if cached is None:
            cached = self._solve_uncached(demands)
            self._cache[demands] = cached
        return cached

    def _solve_uncached(self, demands: tuple[float, ...]) -> OptimalConfig:
        g = self.ladder.capacities
        r = self.ladder.rates
        m = self.ladder.m
        d_top = demands[0]
        best_cost = math.inf
        best_counts: tuple[int, ...] | None = None
        memo: dict[tuple[int, float], tuple[float, tuple[int, ...]]] = {}

        def rec(i: int, suffix_cap: float) -> tuple[float, tuple[int, ...]]:
            """Best cost/counts for types i..1 given capacity bought above."""
            if suffix_cap >= d_top - _TOL:
                return 0.0, (0,) * i
            if i == 0:
                # all constraints i>=1 were enforced on the way down; reaching
                # here with suffix_cap < D_1 means constraint 1 was enforced
                # at i==1 already, so this is unreachable, but guard anyway.
                return math.inf, ()
            key = (i, round(suffix_cap, 9))
            hit = memo.get(key)
            if hit is not None:
                return hit
            w_min = _ceil_div(demands[i - 1] - suffix_cap, g[i - 1])
            w_max = max(w_min, _ceil_div(d_top - suffix_cap, g[i - 1]))
            best: tuple[float, tuple[int, ...]] = (math.inf, ())
            for w in range(w_min, w_max + 1):
                sub_cost, sub_counts = rec(i - 1, suffix_cap + w * g[i - 1])
                cost = w * r[i - 1] + sub_cost
                if cost < best[0] - _TOL:
                    best = (cost, sub_counts + (w,))
                if w * r[i - 1] >= best[0]:
                    break  # buying more of type i alone already beats nothing
            memo[key] = best
            return best

        best_cost, counts_rev = rec(m, 0.0)
        if not math.isfinite(best_cost):
            raise RuntimeError("optimal configuration search failed (infeasible?)")
        # counts_rev is ordered (type 1, ..., type m) already: rec(i, .) returns
        # a tuple of length i for types 1..i, appended from the bottom up.
        best_counts = counts_rev
        return OptimalConfig(counts=best_counts, rate=best_cost)


def optimal_config(demands: Sequence[float], ladder: Ladder) -> OptimalConfig:
    """One-shot convenience wrapper around :class:`ConfigSolver`."""
    return ConfigSolver(ladder).solve(demands)
