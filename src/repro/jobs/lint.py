"""Instance linting: catch trace problems before they become mysteries.

``lint_instance`` inspects a job set (optionally against a ladder) and
returns human-readable warnings for the patterns that most often indicate a
broken trace or a mis-scaled catalogue:

- jobs that do not fit the largest machine (hard error downstream),
- near-zero durations (numerically fragile, blow up mu),
- extreme mu (online guarantees degrade linearly in mu),
- sizes far below the smallest capacity (suspected unit mismatch),
- duplicate (size, arrival, departure) triples (suspected double export).

Used by the CLI before scheduling; returns a list of warning strings
(empty = clean).
"""

from __future__ import annotations

from collections import Counter

from ..machines.ladder import Ladder
from .jobset import JobSet

__all__ = ["lint_instance"]


def lint_instance(jobs: JobSet, ladder: Ladder | None = None) -> list[str]:
    """Return a list of warnings (empty when the instance looks healthy)."""
    warnings: list[str] = []
    if jobs.empty:
        return ["instance is empty"]

    durations = [j.duration for j in jobs]
    min_dur, max_dur = min(durations), max(durations)
    if min_dur < 1e-6 * max_dur:
        warnings.append(
            f"duration spread is extreme: shortest {min_dur:g} vs longest "
            f"{max_dur:g} (mu = {jobs.mu:.3g}); check the trace's time units"
        )
    elif jobs.mu > 1e4:
        warnings.append(
            f"mu = {jobs.mu:.3g} is very large; online guarantees degrade "
            "linearly in mu"
        )

    triples = Counter((j.size, j.arrival, j.departure) for j in jobs)
    dupes = sum(c - 1 for c in triples.values() if c > 1)
    if dupes:
        warnings.append(
            f"{dupes} jobs are exact duplicates of another (size, arrival, "
            "departure); double export?"
        )

    if ladder is not None:
        oversize = [j for j in jobs if j.size > ladder.capacity(ladder.m)]
        if oversize:
            warnings.append(
                f"{len(oversize)} jobs exceed the largest capacity "
                f"{ladder.capacity(ladder.m):g} and cannot be scheduled"
            )
        tiny = [j for j in jobs if j.size < 0.001 * ladder.capacity(1)]
        if len(tiny) > len(jobs) // 2:
            warnings.append(
                "most job sizes are below 0.1% of the smallest capacity; "
                "suspected unit mismatch between trace and catalogue"
            )
    return warnings
