"""Instance and schedule I/O: CSV traces in, CSV/JSON reports out.

Formats:

- **Job trace CSV** — header ``size,arrival,departure[,name]``; one job per
  row.  This is the interchange format of the ``bshm schedule`` CLI and the
  natural target for converting real cluster traces.
- **Ladder CSV** — header ``capacity,rate``; one machine type per row.
- **Schedule CSV** — ``job,size,arrival,departure,type,machine``; written by
  :func:`write_schedule_csv` for downstream analysis.
- **Instance JSON** — a single document with jobs + ladder, round-trippable
  via :func:`write_instance_json` / :func:`read_instance_json`.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from ..jobs.job import Job
from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..machines.types import MachineType
from ..schedule.schedule import Schedule

__all__ = [
    "read_jobs_csv",
    "write_jobs_csv",
    "read_ladder_csv",
    "write_ladder_csv",
    "write_schedule_csv",
    "write_instance_json",
    "read_instance_json",
]


def read_jobs_csv(path: str | Path) -> JobSet:
    """Load a job trace; raises ValueError with row context on bad data."""
    jobs = []
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        required = {"size", "arrival", "departure"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(
                f"trace must have columns {sorted(required)}, got {reader.fieldnames}"
            )
        for lineno, row in enumerate(reader, start=2):
            try:
                jobs.append(
                    Job(
                        size=float(row["size"]),
                        arrival=float(row["arrival"]),
                        departure=float(row["departure"]),
                        name=row.get("name") or None,
                    )
                )
            except (ValueError, KeyError) as exc:
                raise ValueError(f"{path}:{lineno}: bad job row {row}: {exc}") from exc
    return JobSet(jobs)


def write_jobs_csv(jobs: JobSet, path: str | Path) -> None:
    """Write a job trace CSV (columns size,arrival,departure,name)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["size", "arrival", "departure", "name"])
        for job in jobs:
            writer.writerow([job.size, job.arrival, job.departure, job.name])


def read_ladder_csv(path: str | Path) -> Ladder:
    """Load a machine ladder from CSV (columns capacity,rate)."""
    types = []
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or not {"capacity", "rate"} <= set(reader.fieldnames):
            raise ValueError("ladder CSV must have columns capacity,rate")
        for lineno, row in enumerate(reader, start=2):
            try:
                types.append(MachineType(float(row["capacity"]), float(row["rate"])))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: bad type row {row}: {exc}") from exc
    return Ladder(types)


def write_ladder_csv(ladder: Ladder, path: str | Path) -> None:
    """Write a ladder CSV (columns capacity,rate)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["capacity", "rate"])
        for t in ladder.types:
            writer.writerow([t.capacity, t.rate])


def write_schedule_csv(schedule: Schedule, path: str | Path) -> None:
    """Write one row per job: its data plus the machine it runs on."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["job", "size", "arrival", "departure", "type", "machine"])
        for job, key in sorted(
            schedule.assignment.items(), key=lambda kv: (kv[0].arrival, kv[0].uid)
        ):
            writer.writerow(
                [job.name, job.size, job.arrival, job.departure, key.type_index, str(key)]
            )


def write_instance_json(jobs: JobSet, ladder: Ladder, path: str | Path) -> None:
    """Write jobs + ladder as one round-trippable JSON document."""
    doc = {
        "ladder": [{"capacity": t.capacity, "rate": t.rate} for t in ladder.types],
        "jobs": [
            {
                "size": j.size,
                "arrival": j.arrival,
                "departure": j.departure,
                "name": j.name,
            }
            for j in jobs
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=2))


def read_instance_json(path: str | Path) -> tuple[JobSet, Ladder]:
    """Load ``(jobs, ladder)`` from an instance JSON document."""
    doc = json.loads(Path(path).read_text())
    ladder = Ladder(
        MachineType(t["capacity"], t["rate"]) for t in doc["ladder"]
    )
    jobs = JobSet(
        Job(j["size"], j["arrival"], j["departure"], name=j.get("name"))
        for j in doc["jobs"]
    )
    return jobs, ladder
