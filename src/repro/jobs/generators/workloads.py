"""Synthetic interval-job workloads (the paper has no traces — DESIGN.md,
substitution 2).

Every generator takes an explicit ``numpy.random.Generator`` so experiments
are reproducible bit-for-bit.  Sizes are expressed as fractions of a caller-
supplied maximum (usually the ladder's largest capacity), so the same
generator serves any ladder.
"""

from __future__ import annotations

import numpy as np

from ...jobs.job import Job
from ...jobs.jobset import JobSet

__all__ = [
    "uniform_workload",
    "poisson_workload",
    "bounded_mu_workload",
    "day_night_workload",
    "bursty_workload",
    "adversarial_staircase",
]


def _make_jobs(
    arrivals: np.ndarray, durations: np.ndarray, sizes: np.ndarray, prefix: str
) -> JobSet:
    return JobSet(
        Job(size=float(s), arrival=float(a), departure=float(a + d), name=f"{prefix}{k}")
        for k, (a, d, s) in enumerate(zip(arrivals, durations, sizes))
    )


def uniform_workload(
    n: int,
    rng: np.random.Generator,
    *,
    horizon: float = 100.0,
    max_size: float = 1.0,
    min_size_frac: float = 0.05,
    duration_range: tuple[float, float] = (1.0, 10.0),
) -> JobSet:
    """Arrivals uniform on the horizon, sizes and durations uniform."""
    arrivals = rng.uniform(0.0, horizon, size=n)
    durations = rng.uniform(*duration_range, size=n)
    sizes = rng.uniform(min_size_frac * max_size, max_size, size=n)
    return _make_jobs(arrivals, durations, sizes, "U")


def poisson_workload(
    n: int,
    rng: np.random.Generator,
    *,
    rate: float = 1.0,
    mean_duration: float = 5.0,
    max_size: float = 1.0,
    min_size_frac: float = 0.05,
) -> JobSet:
    """Poisson arrivals, exponential durations, uniform sizes.

    Durations are floored at 1% of the mean so ``μ`` stays finite.
    """
    gaps = rng.exponential(1.0 / rate, size=n)
    arrivals = np.cumsum(gaps)
    durations = np.maximum(rng.exponential(mean_duration, size=n), 0.01 * mean_duration)
    sizes = rng.uniform(min_size_frac * max_size, max_size, size=n)
    return _make_jobs(arrivals, durations, sizes, "P")


def bounded_mu_workload(
    n: int,
    rng: np.random.Generator,
    *,
    mu: float = 4.0,
    base_duration: float = 2.0,
    horizon: float = 100.0,
    max_size: float = 1.0,
    min_size_frac: float = 0.05,
) -> JobSet:
    """Durations uniform in ``[d, μ·d]`` — the knob for the Theorem-2 sweeps.

    The realized max/min duration ratio is at most ``μ`` (generically close
    to it for moderate ``n``).
    """
    if mu < 1:
        raise ValueError("mu must be at least 1")
    arrivals = rng.uniform(0.0, horizon, size=n)
    durations = rng.uniform(base_duration, mu * base_duration, size=n)
    sizes = rng.uniform(min_size_frac * max_size, max_size, size=n)
    return _make_jobs(arrivals, durations, sizes, "M")


def day_night_workload(
    n: int,
    rng: np.random.Generator,
    *,
    period: float = 24.0,
    days: float = 4.0,
    peak_to_trough: float = 5.0,
    mean_duration: float = 3.0,
    max_size: float = 1.0,
    heavy_tail: bool = True,
) -> JobSet:
    """Cloud-like diurnal workload: sinusoidal arrival intensity over several
    days, lognormal-ish heavy-tailed sizes, exponential durations.

    Arrival times are drawn by rejection from the intensity
    ``1 + (peak_to_trough-1)/2 * (1 + sin(2πt/period))``.
    """
    horizon = days * period
    amp = (peak_to_trough - 1.0) / 2.0
    out: list[float] = []
    ceiling = 1.0 + 2 * amp
    while len(out) < n:
        t = rng.uniform(0.0, horizon, size=2 * n)
        u = rng.uniform(0.0, ceiling, size=2 * n)
        lam = 1.0 + amp * (1.0 + np.sin(2 * np.pi * t / period))
        out.extend(t[u < lam].tolist())
    arrivals = np.array(out[:n])
    durations = np.maximum(rng.exponential(mean_duration, size=n), 0.05 * mean_duration)
    if heavy_tail:
        raw = rng.lognormal(mean=-1.5, sigma=1.0, size=n)
        sizes = np.clip(raw, 0.02, 1.0) * max_size
    else:
        sizes = rng.uniform(0.05 * max_size, max_size, size=n)
    return _make_jobs(arrivals, durations, sizes, "D")


def bursty_workload(
    n: int,
    rng: np.random.Generator,
    *,
    bursts: int = 5,
    horizon: float = 100.0,
    burst_width: float = 2.0,
    mean_duration: float = 4.0,
    max_size: float = 1.0,
) -> JobSet:
    """Jobs arrive in tight bursts — stresses the concurrency budgets of the
    online algorithms (many simultaneous placements)."""
    centers = rng.uniform(0.0, horizon, size=bursts)
    which = rng.integers(0, bursts, size=n)
    arrivals = centers[which] + rng.uniform(0.0, burst_width, size=n)
    durations = np.maximum(rng.exponential(mean_duration, size=n), 0.05 * mean_duration)
    sizes = rng.uniform(0.05 * max_size, max_size, size=n)
    return _make_jobs(arrivals, durations, sizes, "B")


def adversarial_staircase(
    levels: int,
    *,
    base_duration: float = 1.0,
    size: float = 0.3,
    max_size: float = 1.0,
) -> JobSet:
    """A deterministic staircase: level ``k`` holds one job arriving at
    ``k * base_duration / levels`` and departing at ``base_duration * (k+2)``.

    Demand ramps up then drains one job at a time — the pattern that forces
    First-Fit style algorithms to keep many machines barely busy, probing the
    μ-dependence of the online bounds.
    """
    jobs = []
    for k in range(levels):
        arrival = k * base_duration / levels
        departure = base_duration * (k + 2.0)
        jobs.append(
            Job(size=size * max_size, arrival=arrival, departure=departure, name=f"S{k}")
        )
    return JobSet(jobs)
