"""Advanced workload generators: correlated arrivals and trace replay.

Complements :mod:`repro.jobs.generators.workloads` with processes whose
burstiness is *structured* rather than i.i.d.:

- :func:`mmpp_workload` — Markov-modulated Poisson process (two hidden
  states, quiet/busy) — the standard teletraffic model for correlated load;
- :func:`flash_crowd_workload` — baseline Poisson traffic plus one flash
  crowd: a surge of short jobs arriving within a narrow window;
- :func:`sawtooth_workload` — deterministic ramp-and-drop demand used for
  worst-case probing of budgeted online pools;
- :func:`replay_arrays` — build a JobSet from parallel arrays (the bridge
  from any external trace already loaded via numpy/pandas).
"""

from __future__ import annotations

import numpy as np

from ..job import Job
from ..jobset import JobSet

__all__ = [
    "mmpp_workload",
    "flash_crowd_workload",
    "sawtooth_workload",
    "replay_arrays",
]


def mmpp_workload(
    n: int,
    rng: np.random.Generator,
    *,
    quiet_rate: float = 0.5,
    busy_rate: float = 5.0,
    switch_rate: float = 0.05,
    mean_duration: float = 4.0,
    max_size: float = 1.0,
) -> JobSet:
    """Two-state MMPP arrivals: exponential sojourns in quiet/busy states
    with state-dependent Poisson intensity."""
    arrivals: list[float] = []
    t = 0.0
    busy = False
    while len(arrivals) < n:
        sojourn = rng.exponential(1.0 / switch_rate)
        rate = busy_rate if busy else quiet_rate
        # thin a homogeneous process within the sojourn
        clock = t
        while True:
            clock += rng.exponential(1.0 / rate)
            if clock >= t + sojourn or len(arrivals) >= n:
                break
            arrivals.append(clock)
        t += sojourn
        busy = not busy
    arrivals_arr = np.array(arrivals[:n])
    durations = np.maximum(rng.exponential(mean_duration, size=n), 0.05 * mean_duration)
    sizes = rng.uniform(0.05 * max_size, max_size, size=n)
    return JobSet(
        Job(float(s), float(a), float(a + d), name=f"MM{k}")
        for k, (a, d, s) in enumerate(zip(arrivals_arr, durations, sizes))
    )


def flash_crowd_workload(
    n: int,
    rng: np.random.Generator,
    *,
    horizon: float = 100.0,
    crowd_fraction: float = 0.4,
    crowd_center: float | None = None,
    crowd_width: float = 3.0,
    crowd_duration: float = 1.0,
    mean_duration: float = 5.0,
    max_size: float = 1.0,
) -> JobSet:
    """Poisson base load with one flash crowd of short small jobs."""
    n_crowd = int(n * crowd_fraction)
    n_base = n - n_crowd
    center = crowd_center if crowd_center is not None else horizon / 2.0
    base_arr = rng.uniform(0.0, horizon, size=n_base)
    base_dur = np.maximum(rng.exponential(mean_duration, size=n_base), 0.05 * mean_duration)
    base_sz = rng.uniform(0.05 * max_size, max_size, size=n_base)
    crowd_arr = rng.normal(center, crowd_width / 3.0, size=n_crowd).clip(0.0, horizon)
    crowd_dur = np.maximum(
        rng.exponential(crowd_duration, size=n_crowd), 0.05 * crowd_duration
    )
    crowd_sz = rng.uniform(0.02 * max_size, 0.3 * max_size, size=n_crowd)
    jobs = [
        Job(float(s), float(a), float(a + d), name=f"base{k}")
        for k, (a, d, s) in enumerate(zip(base_arr, base_dur, base_sz))
    ] + [
        Job(float(s), float(a), float(a + d), name=f"crowd{k}")
        for k, (a, d, s) in enumerate(zip(crowd_arr, crowd_dur, crowd_sz))
    ]
    return JobSet(jobs)


def sawtooth_workload(
    teeth: int,
    jobs_per_tooth: int,
    *,
    tooth_period: float = 10.0,
    job_duration: float = 3.0,
    size: float = 0.5,
    max_size: float = 1.0,
) -> JobSet:
    """Deterministic sawtooth: each tooth ramps up ``jobs_per_tooth`` jobs
    at equal spacing, then all of them expire together — repeated demand
    cliffs that stress machine-reuse logic."""
    jobs = []
    for tooth in range(teeth):
        start = tooth * tooth_period
        spacing = (tooth_period - job_duration) / max(1, jobs_per_tooth)
        for k in range(jobs_per_tooth):
            arrival = start + k * spacing
            jobs.append(
                Job(
                    size * max_size,
                    arrival,
                    arrival + job_duration,
                    name=f"T{tooth}J{k}",
                )
            )
    return JobSet(jobs)


def replay_arrays(
    sizes: np.ndarray,
    arrivals: np.ndarray,
    departures: np.ndarray,
    *,
    name_prefix: str = "trace",
) -> JobSet:
    """Build a JobSet from parallel arrays (external trace bridge)."""
    sizes = np.asarray(sizes, dtype=float)
    arrivals = np.asarray(arrivals, dtype=float)
    departures = np.asarray(departures, dtype=float)
    if not (sizes.shape == arrivals.shape == departures.shape):
        raise ValueError("arrays must have identical shapes")
    return JobSet(
        Job(float(s), float(a), float(d), name=f"{name_prefix}{k}")
        for k, (s, a, d) in enumerate(zip(sizes, arrivals, departures))
    )
