"""Adaptive adversaries: executable lower-bound constructions.

Li et al. [11] prove that **no** deterministic non-clairvoyant algorithm
beats mu-competitiveness for MinUsageTime DBP (and hence for BSHM-DEC, its
generalization).  The construction: release one large batch of small jobs;
any algorithm must spread them over ~K machines by capacity; at time ``d``
the adversary kills every job *except one per opened machine* and keeps the
survivors alive until ``mu * d``.  The algorithm is stuck paying K busy
machines for the long tail; the optimum, knowing the future, would have
co-located the survivors and pays ~1 machine for the tail.  With K ~ mu the
ratio is Theta(mu).

:func:`batch_trap` runs that adversary *adaptively* against any online
scheduler factory (it inspects the scheduler's actual placement before
choosing departures, which is exactly what the lower-bound adversary is
allowed to do).  :func:`ff_trap` layers several batches.  The E16 experiment
shows DEC-ONLINE's measured ratio growing linearly in mu on these traps —
the Omega(mu) lower-bound *shape* — demonstrating that Theorem 2's O(mu)
guarantee is asymptotically tight, exactly as the paper claims.
"""

from __future__ import annotations

from ...machines.ladder import Ladder
from ...online.engine import JobView
from ...schedule.schedule import MachineKey
from ..job import Job
from ..jobset import JobSet

__all__ = ["batch_trap", "ff_trap"]

_UID_BASE = 10_000_000


def batch_trap(
    scheduler_factory,
    ladder: Ladder,
    *,
    mu: float = 16.0,
    target_machines: int | None = None,
    jobs_per_machine: int = 12,
    short_duration: float = 1.0,
    start: float = 0.0,
    uid_base: int = _UID_BASE,
) -> JobSet:
    """One adversarial batch against a non-clairvoyant scheduler.

    ``target_machines`` (default ``ceil(mu)``) controls how many top-type
    machines the batch is sized to force open; job size is
    ``g_m / jobs_per_machine`` so each machine fills with about
    ``jobs_per_machine`` jobs.  After probing the scheduler's placement, one
    resident per opened machine survives to ``start + mu * short_duration``;
    the rest die at ``start + short_duration``.
    """
    import math

    if mu < 1:
        raise ValueError("mu must be at least 1")
    scheduler = scheduler_factory(ladder)
    k = target_machines if target_machines is not None else max(1, math.ceil(mu))
    g_top = ladder.capacity(ladder.m)
    size = g_top / jobs_per_machine
    n = k * jobs_per_machine

    placements: dict[MachineKey, list[int]] = {}
    uids = []
    for i in range(n):
        uid = uid_base + i
        view = JobView(uid=uid, size=size, arrival=start, name=f"trap{i}")
        key = scheduler.on_arrival(view)
        placements.setdefault(key, []).append(uid)
        uids.append(uid)

    survivors = {resident[0] for resident in placements.values()}
    jobs = []
    for uid in uids:
        tail = mu * short_duration if uid in survivors else short_duration
        jobs.append(
            Job(size, start, start + tail, name=f"trap{uid - uid_base}", uid=uid)
        )
    return JobSet(jobs)


def ff_trap(
    scheduler_factory,
    ladder: Ladder,
    *,
    batches: int = 1,
    mu: float = 16.0,
    jobs_per_machine: int = 12,
    short_duration: float = 1.0,
) -> JobSet:
    """Several far-apart adversarial batches (each probes a fresh scheduler
    state — batches are spaced beyond the long tail, so they are
    independent; the union keeps the overall max/min duration ratio at
    ``mu``)."""
    all_jobs: list[Job] = []
    gap = (mu + 2.0) * short_duration
    for b in range(batches):
        batch = batch_trap(
            scheduler_factory,
            ladder,
            mu=mu,
            jobs_per_machine=jobs_per_machine,
            short_duration=short_duration,
            start=b * gap,
            uid_base=_UID_BASE * (b + 1),
        )
        all_jobs.extend(batch)
    return JobSet(all_jobs)
