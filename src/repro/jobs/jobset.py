"""Collections of interval jobs with the aggregate queries the paper uses.

:class:`JobSet` wraps an immutable sequence of :class:`~repro.jobs.job.Job`
and provides:

- ``s(J, t)`` — total active size at a time point (``demand_at``),
- the full demand profile as a step function (``demand_profile``),
- the active-job set ``J(t)`` and the size-filtered ``J_{>=i}(t)``,
- the max/min duration ratio ``mu`` that parametrizes the online bounds,
- partitions by size class for the INC algorithms,
- the busy span ``U_{J} I(J)`` used in the lower-bound integral.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..core.intervals import Interval, IntervalSet
from ..core.stepfun import StepFunction, sum_pulses
from ..core.events import elementary_segments
from ..core.sweep import sweep_busy_union, sweep_peak_load
from ..core.vectorized import (
    use_vectorized,
    vec_busy_union,
    vec_demand_profile,
    vec_peak_load,
)
from .job import Job

__all__ = ["JobArrays", "JobSet"]


class JobArrays:
    """Columnar view of a :class:`JobSet`: contiguous, read-only float64/int64
    columns in the set's canonical ``(arrival, uid)`` order.

    This is the input format of the :mod:`repro.core.vectorized` bulk
    kernels: one attribute access per *column* instead of one per job.  The
    arrays are marked non-writeable — the view shares the JobSet's
    immutability contract, so it can be cached and handed out freely.
    """

    __slots__ = ("starts", "ends", "sizes", "uids")

    def __init__(self, jobs: Sequence[Job]) -> None:
        n = len(jobs)
        starts = np.fromiter((j.arrival for j in jobs), dtype=np.float64, count=n)
        ends = np.fromiter((j.departure for j in jobs), dtype=np.float64, count=n)
        sizes = np.fromiter((j.size for j in jobs), dtype=np.float64, count=n)
        uids = np.fromiter((j.uid for j in jobs), dtype=np.int64, count=n)
        for arr in (starts, ends, sizes, uids):
            arr.setflags(write=False)
        self.starts: np.ndarray = starts
        self.ends: np.ndarray = ends
        self.sizes: np.ndarray = sizes
        self.uids: np.ndarray = uids

    def __len__(self) -> int:
        return int(self.starts.size)


class JobSet:
    """An immutable set of interval jobs."""

    __slots__ = ("_jobs", "_by_uid", "_arrays")

    def __init__(self, jobs: Iterable[Job] = (), *, _presorted: bool = False) -> None:
        if _presorted:
            # internal fast path: the caller guarantees (arrival, uid) order
            # with unique uids (subsets of an existing JobSet keep both)
            ordered = tuple(jobs)
        else:
            ordered = tuple(sorted(jobs, key=lambda j: (j.arrival, j.uid)))
        by_uid = {job.uid: job for job in ordered}
        if len(by_uid) != len(ordered):
            raise ValueError("duplicate job uids in JobSet")
        object.__setattr__(self, "_jobs", ordered)
        object.__setattr__(self, "_by_uid", by_uid)
        object.__setattr__(self, "_arrays", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("JobSet is immutable")

    # -- basic access -----------------------------------------------------
    @property
    def jobs(self) -> tuple[Job, ...]:
        """Jobs sorted by (arrival, uid)."""
        return self._jobs

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job: Job) -> bool:
        return job.uid in self._by_uid

    def __getitem__(self, uid: int) -> Job:
        return self._by_uid[uid]

    @property
    def empty(self) -> bool:
        return not self._jobs

    def to_arrays(self) -> JobArrays:
        """Columnar ``(starts, ends, sizes, uids)`` view of the set.

        Built lazily on first use and cached for the set's lifetime: JobSet
        is immutable, so the view can never go stale — every "mutation"
        (filter / minus / union / transform) constructs a *new* JobSet whose
        cache starts empty, which is what invalidation means here.  The
        arrays themselves are read-only.
        """
        cached = self._arrays
        if cached is None:
            cached = JobArrays(self._jobs)
            # memo on an immutable structure: the blessed lazy-cache backdoor,
            # same pattern as Schedule._memo.  # bshm: ignore[BSHM005]
            object.__setattr__(self, "_arrays", cached)
        return cached

    # -- aggregate queries ---------------------------------------------------
    def active_at(self, t: float) -> "JobSet":
        """``J(t)`` — the jobs active at time ``t``."""
        return JobSet(j for j in self._jobs if j.active_at(t))

    def demand_at(self, t: float) -> float:
        """``s(J, t)`` — total size of the jobs active at ``t``."""
        return sum(j.size for j in self._jobs if j.active_at(t))

    def demand_profile(self) -> StepFunction:
        """``s(J, ·)`` as a step function (the paper's *demand chart* height).

        Batches of at least :func:`~repro.core.vectorized.vec_threshold` jobs
        dispatch to the columnar kernel (identical output, no per-job Python);
        smaller sets stay on the sweep path.
        """
        if not self._jobs:
            return StepFunction.zero()
        if use_vectorized(len(self._jobs)):
            a = self.to_arrays()
            return vec_demand_profile(a.starts, a.ends, a.sizes)
        return sum_pulses([(j.arrival, j.departure, j.size) for j in self._jobs])

    def at_least_class(self, i: int, capacities: Sequence[float]) -> "JobSet":
        """``J_{>= i}`` — jobs that must run on type ``>= i``: ``s(J) > g_{i-1}``.

        ``i`` is 1-based; ``i == 1`` returns every job (``g_0 = 0``).
        """
        if i <= 1:
            return self
        g_prev = capacities[i - 2]
        return JobSet(j for j in self._jobs if j.size > g_prev)

    def size_partition(self, capacities: Sequence[float]) -> list["JobSet"]:
        """Partition into classes ``J_i = {J : s(J) ∈ (g_{i-1}, g_i]}``.

        Returns a list of ``m`` JobSets (possibly empty), 0-indexed so that
        element ``i-1`` is the paper's ``J_i``.
        """
        buckets: list[list[Job]] = [[] for _ in capacities]
        for job in self._jobs:
            buckets[job.size_class(tuple(capacities)) - 1].append(job)
        return [JobSet(b) for b in buckets]

    def busy_span(self) -> IntervalSet:
        """``U_{J in set} I(J)`` — the union of all active intervals."""
        if not self._jobs:
            return IntervalSet()
        if use_vectorized(len(self._jobs)):
            a = self.to_arrays()
            return vec_busy_union(a.starts, a.ends)
        return sweep_busy_union(
            [j.arrival for j in self._jobs], [j.departure for j in self._jobs]
        )

    def segments(self) -> list[Interval]:
        """Elementary segments on which every aggregate is constant."""
        return elementary_segments(self._jobs)

    # -- scalar statistics ----------------------------------------------------
    @property
    def max_size(self) -> float:
        return max((j.size for j in self._jobs), default=0.0)

    @property
    def min_duration(self) -> float:
        return min((j.duration for j in self._jobs), default=0.0)

    @property
    def max_duration(self) -> float:
        return max((j.duration for j in self._jobs), default=0.0)

    @property
    def mu(self) -> float:
        """Max/min job-duration ratio ``μ`` (1.0 for an empty set)."""
        if not self._jobs:
            return 1.0
        return self.max_duration / self.min_duration

    def total_volume(self) -> float:
        """``Σ_J s(J) · len(I(J))`` — the size-time volume of the workload."""
        return sum(j.size * j.duration for j in self._jobs)

    def peak_demand(self) -> float:
        """``max_t s(J, t)`` (event sweep; no profile object built)."""
        if not self._jobs:
            return 0.0
        if use_vectorized(len(self._jobs)):
            a = self.to_arrays()
            return vec_peak_load(a.starts, a.ends, a.sizes)
        return sweep_peak_load(
            [j.arrival for j in self._jobs],
            [j.departure for j in self._jobs],
            [j.size for j in self._jobs],
        )

    # -- transformations -------------------------------------------------------
    def filter(self, predicate: Callable[[Job], bool]) -> "JobSet":
        """Subset of jobs satisfying the predicate."""
        return JobSet(j for j in self._jobs if predicate(j))

    def filter_max_size(self, limit: float) -> "JobSet":
        """Jobs with ``s(J) <= limit`` (the DEC strip-peeling eligibility cut).

        Above the dispatch threshold the cut is a single vectorized mask over
        the cached size column — no per-job predicate calls — and the subset
        reuses the canonical order, skipping the constructor's re-sort.
        """
        if use_vectorized(len(self._jobs)):
            mask = self.to_arrays().sizes <= limit
            if bool(mask.all()):
                return self
            picked = tuple(job for job, m in zip(self._jobs, mask) if m)
            return JobSet(picked, _presorted=True)
        return self.filter(lambda j: j.size <= limit)

    def minus(self, other: "JobSet") -> "JobSet":
        """Set difference by uid (the paper's ``J̈_i = ... - U J̌_k``)."""
        gone = other._by_uid.keys()
        # a subset keeps the canonical order, so the re-sort is skipped
        return JobSet(
            tuple(j for j in self._jobs if j.uid not in gone), _presorted=True
        )

    def union(self, other: "JobSet") -> "JobSet":
        """Union by uid; raises on conflicting jobs sharing a uid."""
        merged = dict(self._by_uid)
        for job in other:
            existing = merged.get(job.uid)
            if existing is not None and existing is not job:
                raise ValueError(f"uid clash on union: {job.uid}")
            merged[job.uid] = job
        return JobSet(merged.values())

    def sizes_array(self) -> np.ndarray:
        """Job sizes as a numpy array (arrival order)."""
        return np.array([j.size for j in self._jobs], dtype=float)

    # -- dunder -----------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, JobSet) and self._by_uid.keys() == other._by_uid.keys()

    def __hash__(self) -> int:
        return hash(frozenset(self._by_uid))

    def __repr__(self) -> str:
        return f"JobSet({len(self._jobs)} jobs, mu={self.mu:.3g})"
