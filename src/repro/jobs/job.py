"""The interval-job model of BSHM (paper Section II).

A job ``J`` is specified by a size ``s(J)``, an arrival time ``I(J)^-`` and a
departure time ``I(J)^+``.  Its *active interval* ``I(J)`` is half-open; its
*duration* is ``len(I(J))``.  Jobs are immutable and carry an integer ``uid``
used for deterministic tie-breaking and schedule bookkeeping.
"""

from __future__ import annotations

import itertools
import math

from ..core.intervals import Interval

__all__ = ["Job"]

_uid_counter = itertools.count()


class Job:
    """An immutable interval job.

    Parameters
    ----------
    size:
        Resource demand ``s(J) > 0`` (same unit as machine capacities).
    arrival, departure:
        Endpoints of the half-open active interval ``[arrival, departure)``;
        ``arrival < departure`` is required.
    name:
        Optional human-readable label (defaults to ``J<uid>``).
    uid:
        Optional explicit unique id; auto-assigned when omitted.
    """

    __slots__ = ("size", "arrival", "departure", "name", "uid")

    def __init__(
        self,
        size: float,
        arrival: float,
        departure: float,
        name: str | None = None,
        uid: int | None = None,
    ) -> None:
        size = float(size)
        arrival = float(arrival)
        departure = float(departure)
        if not (size > 0 and math.isfinite(size)):
            raise ValueError(f"job size must be positive and finite, got {size}")
        if not (arrival < departure):
            raise ValueError(
                f"job must have arrival < departure, got [{arrival}, {departure})"
            )
        if not (math.isfinite(arrival) and math.isfinite(departure)):
            raise ValueError("job endpoints must be finite")
        object.__setattr__(self, "size", size)
        object.__setattr__(self, "arrival", arrival)
        object.__setattr__(self, "departure", departure)
        object.__setattr__(self, "uid", next(_uid_counter) if uid is None else int(uid))
        object.__setattr__(self, "name", name if name is not None else f"J{self.uid}")

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Job is immutable")

    # -- paper notation ---------------------------------------------------
    @property
    def interval(self) -> Interval:
        """The active interval ``I(J)``."""
        return Interval(self.arrival, self.departure)

    @property
    def duration(self) -> float:
        """``len(I(J))``."""
        return self.departure - self.arrival

    def active_at(self, t: float) -> bool:
        """Whether ``t ∈ I(J) = [arrival, departure)``."""
        return self.arrival <= t < self.departure

    def size_class(self, capacities: "list[float] | tuple[float, ...]") -> int:
        """The 1-based machine-type index ``i`` with ``s(J) ∈ (g_{i-1}, g_i]``.

        ``capacities`` must be strictly increasing; raises if the job does not
        fit the largest type.
        """
        for i, g in enumerate(capacities, start=1):
            if self.size <= g:
                return i
        raise ValueError(
            f"job size {self.size} exceeds the largest capacity {capacities[-1]}"
        )

    # -- dunder -------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Job) and self.uid == other.uid

    def __hash__(self) -> int:
        return hash(self.uid)

    def __repr__(self) -> str:
        return (
            f"Job({self.name}: s={self.size:g}, "
            f"I=[{self.arrival:g},{self.departure:g}))"
        )
