"""Instance transformations.

First-class transforms over job sets, used by the scale-invariance property
tests, the hard-instance mutator and anyone preparing traces:

- :func:`shift_time` / :func:`scale_time` — affine time maps (BSHM cost is
  equivariant: shifting is free, scaling time scales every cost),
- :func:`scale_sizes` — demand re-unit (pair with a capacity-scaled ladder),
- :func:`crop` — restrict to jobs fully inside a window,
- :func:`clip_to_window` — truncate active intervals to a window (keeps
  partially-overlapping jobs, shortening them),
- :func:`concatenate` — place several instances one after another with a
  gap, preserving per-instance structure.

Each returns fresh jobs (new uids) unless stated otherwise.
"""

from __future__ import annotations

from ..core.intervals import Interval
from .job import Job
from .jobset import JobSet

__all__ = [
    "shift_time",
    "scale_time",
    "scale_sizes",
    "crop",
    "clip_to_window",
    "concatenate",
]


def shift_time(jobs: JobSet, delta: float) -> JobSet:
    """Translate every active interval by ``delta`` (uids preserved)."""
    return JobSet(
        Job(j.size, j.arrival + delta, j.departure + delta, name=j.name, uid=j.uid)
        for j in jobs
    )


def scale_time(jobs: JobSet, factor: float, *, origin: float = 0.0) -> JobSet:
    """Scale time about ``origin`` by ``factor > 0`` (uids preserved).

    Busy-time costs of any fixed assignment scale by exactly ``factor``.
    """
    if factor <= 0:
        raise ValueError("time scale factor must be positive")
    return JobSet(
        Job(
            j.size,
            origin + (j.arrival - origin) * factor,
            origin + (j.departure - origin) * factor,
            name=j.name,
            uid=j.uid,
        )
        for j in jobs
    )


def scale_sizes(jobs: JobSet, factor: float) -> JobSet:
    """Scale every size by ``factor > 0`` (uids preserved).

    Pair with a ladder whose capacities are scaled identically and all
    schedules/costs are unchanged.
    """
    if factor <= 0:
        raise ValueError("size scale factor must be positive")
    return JobSet(
        Job(j.size * factor, j.arrival, j.departure, name=j.name, uid=j.uid)
        for j in jobs
    )


def crop(jobs: JobSet, window: Interval) -> JobSet:
    """Keep only jobs fully contained in the window (uids preserved)."""
    return jobs.filter(lambda j: window.covers(j.interval))


def clip_to_window(jobs: JobSet, window: Interval) -> JobSet:
    """Truncate jobs to the window; jobs disjoint from it are dropped.

    Clipped jobs get fresh uids (their intervals changed identity).
    """
    out = []
    for j in jobs:
        iv = j.interval.intersect(window)
        if iv is not None:
            out.append(Job(j.size, iv.left, iv.right, name=j.name))
    return JobSet(out)


def concatenate(instances: list[JobSet], *, gap: float = 1.0) -> JobSet:
    """Lay instances end to end, separated by ``gap`` idle time.

    Jobs get fresh uids (several instances may share uid ranges).
    """
    out = []
    cursor = 0.0
    for inst in instances:
        if inst.empty:
            continue
        span = inst.busy_span()
        offset = cursor - span.intervals[0].left
        for j in inst:
            out.append(Job(j.size, j.arrival + offset, j.departure + offset, name=j.name))
        cursor = span.intervals[-1].right + offset + gap
    return JobSet(out)
