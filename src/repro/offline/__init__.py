"""Offline BSHM algorithms (Sections III–V) and their columnar engines.

Each algorithm module keeps its own full surface; this package re-exports
the schedule entry points plus the engine-dispatch helpers so callers can
write ``from repro.offline import dec_offline`` and pick an execution
engine (``"object"``, ``"columnar"`` or ``"auto"``) uniformly.
"""

from .columnar_peel import (
    dec_offline_columnar,
    general_offline_columnar,
    inc_offline_columnar,
    resolve_engine,
)
from .dec_offline import dec_offline, strip_budget
from .dual_coloring import dual_coloring_assign, dual_coloring_schedule
from .general_offline import general_offline, node_strip_budget
from .inc_offline import inc_offline, partitioned_assign

__all__ = [
    "dec_offline",
    "dec_offline_columnar",
    "dual_coloring_assign",
    "dual_coloring_schedule",
    "general_offline",
    "general_offline_columnar",
    "inc_offline",
    "inc_offline_columnar",
    "node_strip_budget",
    "partitioned_assign",
    "resolve_engine",
    "strip_budget",
]
