"""Columnar strip-peeling engines for the offline algorithms.

The object implementations of DEC/INC/GEN-OFFLINE and Dual-Coloring
re-materialize a ``JobSet`` per iteration, place Python ``Band`` objects one
at a time and walk dicts of band lists to emit machine keys.  The engines
here run the same pipeline — place, slice into ``g_i / 2`` strips, charge
the bottom ``B_i`` strips, roll the rest over — entirely on the
``JobSet.to_arrays()`` columns: roll-over sets are index arrays into the
canonical columns, altitudes come from
:func:`~repro.placement.columnar.columnar_altitudes`, and ``Job`` objects
are only touched once at the very end when the assignment dict is built for
:class:`~repro.schedule.schedule.Schedule`.

**Emission order is part of the contract.**  ``Schedule.cost()`` sums busy
times in assignment insertion order, so to stay byte-identical to the object
path each iteration emits all inside-strip keys first (strips in first-seen
order over the canonical band order, filtered by budget) and then the
crossing keys boundary by boundary — exactly the dict-iteration order of
``StripAssignment.bands_touching_bottom`` plus ``two_color``.

Dispatch between the object and columnar engines reuses the PR-7
size-threshold machinery (:func:`~repro.core.vectorized.use_vectorized`):
a pure integer compare, replay-deterministic, with the object path kept as
the differential oracle (``tests/property/test_columnar_parity.py``).
"""

from __future__ import annotations

import numpy as np

from ..core.tolerance import FINE_TOL
from ..core.vectorized import use_vectorized
from ..jobs.job import Job
from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..placement.columnar import (
    columnar_altitudes,
    columnar_strip_slices,
    columnar_two_color,
)
from ..schedule.schedule import MachineKey, Schedule

__all__ = [
    "resolve_engine",
    "columnar_dual_assign",
    "dec_offline_columnar",
    "inc_offline_columnar",
    "general_offline_columnar",
]


def resolve_engine(engine: str, n_jobs: int, placement_order: str = "arrival") -> str:
    """Pick the object or columnar engine for an offline run.

    ``"auto"`` (the default everywhere) takes the columnar path exactly when
    the PR-7 dispatch would: at least :func:`~repro.core.vectorized.
    vec_threshold` jobs — a pure integer compare, decided once per call, so
    a replayed trace picks the same engine on every machine.  The columnar
    engine only implements the arrival-order (Dual-Coloring) convention;
    other placement orders stay on the object path under ``"auto"`` and are
    rejected when forced.
    """
    if engine == "auto":
        if placement_order == "arrival" and use_vectorized(n_jobs):
            return "columnar"
        return "object"
    if engine not in ("object", "columnar"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "columnar" and placement_order != "arrival":
        raise ValueError("the columnar engine only supports arrival-order placement")
    return engine


def _peel_emit(
    arrivals: list[float],
    departures: list[float],
    strip_index: np.ndarray,
    boundary: np.ndarray,
    budget: int | None,
    type_index: int,
    tag_prefix: tuple,
) -> list[tuple[int, MachineKey]]:
    """Emit ``(local_index, machine_key)`` pairs in the object path's exact
    insertion order; ``budget=None`` means unbounded strips (Dual-Coloring).
    """
    inside_groups: dict[int, list[int]] = {}
    cross_groups: dict[int, list[int]] = {}
    strips = strip_index.tolist()
    bounds = boundary.tolist()
    for i, k in enumerate(bounds):
        if k:
            cross_groups.setdefault(k, []).append(i)
        else:
            inside_groups.setdefault(strips[i], []).append(i)

    pairs: list[tuple[int, MachineKey]] = []
    for k, members in inside_groups.items():
        if budget is not None and not k < budget:
            continue
        key = MachineKey(type_index, tag_prefix + ("strip", k))
        for i in members:
            pairs.append((i, key))
    for k, members in cross_groups.items():
        if budget is not None and not k <= budget:
            continue
        colors = columnar_two_color(
            [arrivals[i] for i in members], [departures[i] for i in members]
        )
        for i, color in zip(members, colors):
            pairs.append((i, MachineKey(type_index, tag_prefix + ("cross", k, color))))
    return pairs


def _dual_emit(
    starts: np.ndarray,
    ends: np.ndarray,
    sizes: np.ndarray,
    idx: np.ndarray,
    capacity: float,
    type_index: int,
    tag_prefix: tuple,
    strip_divisor: float = 2.0,
) -> list[tuple[int, MachineKey]]:
    """Dual-Coloring one index subset; returns ``(global_index, key)`` pairs."""
    sub_sizes = sizes[idx]
    oversize = int(np.count_nonzero(sub_sizes > capacity * (1 + FINE_TOL)))
    if oversize:
        raise ValueError(f"{oversize} jobs exceed capacity {capacity}")
    if idx.size == 0:
        return []
    sub_starts = starts[idx]
    sub_ends = ends[idx]
    alts = columnar_altitudes(sub_starts, sub_ends, sub_sizes)
    strip_index, boundary = columnar_strip_slices(
        alts, alts + sub_sizes, capacity / strip_divisor
    )
    pairs = _peel_emit(
        sub_starts.tolist(),
        sub_ends.tolist(),
        strip_index,
        boundary,
        None,
        type_index,
        tag_prefix,
    )
    globals_ = idx.tolist()
    return [(globals_[local], key) for local, key in pairs]


def columnar_dual_assign(
    jobs: JobSet,
    capacity: float,
    type_index: int,
    tag_prefix: tuple = (),
    strip_divisor: float = 2.0,
) -> dict[Job, MachineKey]:
    """Columnar twin of :func:`~repro.offline.dual_coloring.
    dual_coloring_assign` (arrival-order placement only)."""
    if strip_divisor < 2.0:
        raise ValueError("strip_divisor below 2 would overload strip machines")
    arrays = jobs.to_arrays()
    idx = np.arange(len(jobs), dtype=np.int64)
    emitted = _dual_emit(
        arrays.starts,
        arrays.ends,
        arrays.sizes,
        idx,
        capacity,
        type_index,
        tuple(tag_prefix),
        strip_divisor,
    )
    seq = jobs.jobs
    return {seq[g]: key for g, key in emitted}


def dec_offline_columnar(
    jobs: JobSet,
    ladder: Ladder,
    *,
    budget_factor: float = 2.0,
    strip_divisor: float = 2.0,
) -> Schedule:
    """Columnar DEC-OFFLINE iteration loop (caller validates the instance).

    Roll-over jobs are carried as an index array into the canonical columns;
    the per-iteration ``filter_max_size`` cut is one boolean mask, and no
    ``Job`` object is touched until the final assignment dict.
    """
    from .dec_offline import strip_budget  # deferred: dec_offline dispatches here

    arrays = jobs.to_arrays()
    starts, ends, sizes = arrays.starts, arrays.ends, arrays.sizes
    seq = jobs.jobs
    n = len(seq)
    remaining = np.arange(n, dtype=np.int64)
    emitted: list[tuple[int, MachineKey]] = []

    for i in range(1, ladder.m):
        # the strip-peeling eligibility cut: same mask filter_max_size applies
        eligible = remaining[sizes[remaining] <= ladder.capacity(i)]
        if eligible.size == 0:
            continue
        sub_starts = starts[eligible]
        sub_ends = ends[eligible]
        sub_sizes = sizes[eligible]
        alts = columnar_altitudes(sub_starts, sub_ends, sub_sizes)
        strip_index, boundary = columnar_strip_slices(
            alts, alts + sub_sizes, ladder.capacity(i) / strip_divisor
        )
        budget = strip_budget(
            ladder.rate(i + 1) / ladder.rate(i),
            budget_factor * strip_divisor / 2.0,
        )
        pairs = _peel_emit(
            sub_starts.tolist(),
            sub_ends.tolist(),
            strip_index,
            boundary,
            budget,
            i,
            ("it", i),
        )
        if not pairs:
            continue
        eligible_l = eligible.tolist()
        scheduled = np.empty(len(pairs), dtype=np.int64)
        for row, (local, key) in enumerate(pairs):
            emitted.append((eligible_l[local], key))
            scheduled[row] = local
        gone = np.zeros(n, dtype=bool)
        gone[eligible[scheduled]] = True
        remaining = remaining[~gone[remaining]]

    # final iteration: everything left goes to type m, unbounded strips
    if remaining.size:
        emitted.extend(
            _dual_emit(
                starts,
                ends,
                sizes,
                remaining,
                ladder.capacity(ladder.m),
                ladder.m,
                ("it", ladder.m),
                strip_divisor,
            )
        )
    assignment = {seq[g]: key for g, key in emitted}
    return Schedule(ladder, assignment)


def inc_offline_columnar(jobs: JobSet, ladder: Ladder) -> Schedule:
    """Columnar INC-OFFLINE (caller validates the instance).

    The size-class partition is one ``searchsorted`` against the capacity
    ladder — the vector twin of ``Job.size_class`` — and each class runs the
    columnar Dual-Coloring on its index subset.
    """
    arrays = jobs.to_arrays()
    caps = np.asarray(ladder.capacities, dtype=np.float64)
    cls = np.searchsorted(caps, arrays.sizes, side="left")
    seq = jobs.jobs
    emitted: list[tuple[int, MachineKey]] = []
    for i in range(1, ladder.m + 1):
        members = np.flatnonzero(cls == i - 1)
        if members.size == 0:
            continue
        emitted.extend(
            _dual_emit(
                arrays.starts,
                arrays.ends,
                arrays.sizes,
                members,
                ladder.capacity(i),
                i,
                ("class", i),
            )
        )
    assignment = {seq[g]: key for g, key in emitted}
    return Schedule(ladder, assignment)


def general_offline_columnar(jobs: JobSet, ladder: Ladder) -> Schedule:
    """Columnar GEN-OFFLINE post-order traversal (caller validates)."""
    from .general_offline import node_strip_budget  # deferred: dispatch cycle

    arrays = jobs.to_arrays()
    starts, ends, sizes = arrays.starts, arrays.ends, arrays.sizes
    seq = jobs.jobs
    n = len(seq)
    forest = ladder.forest()
    remaining = np.arange(n, dtype=np.int64)
    emitted: list[tuple[int, MachineKey]] = []

    for j in forest.postorder():
        lo, hi = forest.subtree_span(j)
        assert hi == j, "subtree roots carry the highest index of their span"
        g_lo_prev = ladder.capacity(lo - 1)
        g_j = ladder.capacity(j)
        rem_sizes = sizes[remaining]
        eligible = remaining[(rem_sizes > g_lo_prev) & (rem_sizes <= g_j)]
        if eligible.size == 0:
            continue

        parent = forest.parent[j]
        if parent is None:
            # tree root: schedule everything on type j, unbounded strips
            emitted.extend(
                _dual_emit(starts, ends, sizes, eligible, g_j, j, ("node", j))
            )
            gone = np.zeros(n, dtype=bool)
            gone[eligible] = True
            remaining = remaining[~gone[remaining]]
            continue

        sub_starts = starts[eligible]
        sub_ends = ends[eligible]
        sub_sizes = sizes[eligible]
        alts = columnar_altitudes(sub_starts, sub_ends, sub_sizes)
        strip_index, boundary = columnar_strip_slices(
            alts, alts + sub_sizes, g_j / 2.0
        )
        budget = node_strip_budget(ladder, j, parent, forest.num_children(parent))
        pairs = _peel_emit(
            sub_starts.tolist(),
            sub_ends.tolist(),
            strip_index,
            boundary,
            budget,
            j,
            ("node", j),
        )
        if not pairs:
            continue
        eligible_l = eligible.tolist()
        scheduled = np.empty(len(pairs), dtype=np.int64)
        for row, (local, key) in enumerate(pairs):
            emitted.append((eligible_l[local], key))
            scheduled[row] = local
        gone = np.zeros(n, dtype=bool)
        gone[eligible[scheduled]] = True
        remaining = remaining[~gone[remaining]]

    if remaining.size:  # pragma: no cover - every job reaches some root
        raise RuntimeError("GEN-OFFLINE left jobs unscheduled")
    assignment = {seq[g]: key for g, key in emitted}
    return Schedule(ladder, assignment)
