"""INC-OFFLINE: the 9-approximation for offline BSHM-INC (Section IV).

The partitioning strategy: split the instance into size classes
``J_i = {J : s(J) in (g_{i-1}, g_i]}`` and schedule each class independently
on type-``i`` machines with the homogeneous Dual-Coloring algorithm.

Lemma 4 bounds the partitioned configuration cost by ``9/4`` times the
optimal configuration at every instant; combined with the Dual-Coloring
``4 ceil(s/g)`` machine bound this yields the 9-approximation.
"""

from __future__ import annotations

from ..jobs.job import Job
from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..schedule.schedule import MachineKey, Schedule
from .columnar_peel import inc_offline_columnar, resolve_engine
from .dual_coloring import dual_coloring_assign

__all__ = ["inc_offline", "partitioned_assign"]


def partitioned_assign(
    jobs: JobSet, ladder: Ladder, engine: str = "auto"
) -> dict[Job, MachineKey]:
    """Dual-Coloring each size class on its own machine type."""
    assignment: dict[Job, MachineKey] = {}
    for i, cls in enumerate(jobs.size_partition(ladder.capacities), start=1):
        if cls.empty:
            continue
        assignment.update(
            dual_coloring_assign(
                cls, ladder.capacity(i), i, tag_prefix=("class", i), engine=engine
            )
        )
    return assignment


def inc_offline(
    jobs: JobSet,
    ladder: Ladder,
    *,
    require_regime: bool = True,
    engine: str = "auto",
) -> Schedule:
    """Run INC-OFFLINE on an instance.

    ``engine`` selects the object or columnar partition-and-peel pipeline
    (``"auto"``: columnar above the PR-7 dispatch threshold; the schedules
    are byte-identical either way).
    """
    if require_regime and not ladder.is_inc:
        raise ValueError(
            f"ladder regime is {ladder.regime.value}, not BSHM-INC; "
            "use the matching algorithm or pass require_regime=False"
        )
    if not jobs.empty and not ladder.fits(jobs.max_size):
        raise ValueError("an instance job exceeds the largest machine capacity")
    if resolve_engine(engine, len(jobs)) == "columnar":
        return inc_offline_columnar(jobs, ladder)
    # this run resolved to the object engine: keep the oracle pure instead of
    # re-dispatching per size class on the subset sizes
    return Schedule(ladder, partitioned_assign(jobs, ladder, engine="object"))
