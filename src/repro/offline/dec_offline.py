"""DEC-OFFLINE: the 14-approximation for offline BSHM-DEC (Theorem 1).

Iteration ``i`` (for ``i = 1..m-1``):

1. Collect the still-unscheduled jobs of size at most ``g_i``  (the paper's
   ``J̈_i``) and place them in a fresh demand chart.
2. Slice into strips of height ``g_i / 2``.
3. Schedule every job *touching the bottom* ``B_i = 2 (r_{i+1}/r_i - 1)``
   strips onto type-``i`` machines: one machine per bottom strip for the
   fully-inside jobs, two machines per crossed boundary ``1..B_i`` for the
   crossing jobs — at most ``3 B_i = 6 (r_{i+1}/r_i - 1)`` type-``i``
   machines busy at any time.
4. Everything above the bottom region rolls over to iteration ``i + 1``.

The final iteration ``m`` schedules every remaining job with unbounded
strips (the homogeneous Dual-Coloring step).

The ladder should be in Section-II normal form (power-of-2 rates) for the
paper's constants to apply; :func:`strip_budget` gracefully handles general
ladders by rounding the budget up.
"""

from __future__ import annotations

import math

from ..core.tolerance import TOLERANCE
from ..jobs.job import Job
from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..placement.greedy import place_jobs
from ..placement.strips import split_into_strips, two_color
from ..schedule.schedule import MachineKey, Schedule
from .columnar_peel import dec_offline_columnar, resolve_engine
from .dual_coloring import dual_coloring_assign

__all__ = ["dec_offline", "strip_budget"]


def strip_budget(rate_ratio: float, factor: float = 2.0) -> int:
    """The bottom-region width ``factor * (r_{i+1}/r_i - 1)`` in strips.

    Exact (and integral) for power-of-2 rates; rounded up otherwise so the
    bottom region never shrinks below the paper's.  ``factor`` is exposed for
    the E10 ablation.
    """
    if rate_ratio <= 1:
        raise ValueError("rate ratio must exceed 1 between consecutive types")
    return max(1, math.ceil(factor * (rate_ratio - 1.0) - TOLERANCE))


def dec_offline(
    jobs: JobSet,
    ladder: Ladder,
    *,
    budget_factor: float = 2.0,
    strip_divisor: float = 2.0,
    placement_order: str = "arrival",
    require_regime: bool = True,
    engine: str = "auto",
) -> Schedule:
    """Run DEC-OFFLINE on an instance.

    Parameters
    ----------
    budget_factor:
        The ``2`` in ``B_i = 2 (r_{i+1}/r_i - 1)``; ablation knob (E10).
    strip_divisor:
        Strip height is ``g_i / strip_divisor`` (paper: 2); must be >= 2
        so a strip machine's load stays within capacity.
    require_regime:
        When true (default), reject ladders that are not BSHM-DEC.
    engine:
        ``"auto"`` (default) peels columnar above the PR-7 dispatch
        threshold and stays on the object path below; ``"object"`` /
        ``"columnar"`` force one engine.  Both produce byte-identical
        schedules (pinned by the parity suite).
    """
    if strip_divisor < 2.0:
        raise ValueError("strip_divisor below 2 would overload strip machines")
    if require_regime and not ladder.is_dec:
        raise ValueError(
            f"ladder regime is {ladder.regime.value}, not BSHM-DEC; "
            "use the matching algorithm or pass require_regime=False"
        )
    if not jobs.empty and not ladder.fits(jobs.max_size):
        raise ValueError("an instance job exceeds the largest machine capacity")
    if resolve_engine(engine, len(jobs), placement_order) == "columnar":
        return dec_offline_columnar(
            jobs, ladder, budget_factor=budget_factor, strip_divisor=strip_divisor
        )

    assignment: dict[Job, MachineKey] = {}
    remaining = jobs
    for i in range(1, ladder.m):
        # strip-peeling eligibility cut: above the dispatch threshold this is
        # one vectorized mask over the cached size column (core.vectorized),
        # below it the per-job predicate — identical subsets either way
        eligible = remaining.filter_max_size(ladder.capacity(i))
        if eligible.empty:
            continue
        placement = place_jobs(eligible, order=placement_order)
        strips = split_into_strips(placement, ladder.capacity(i) / strip_divisor)
        budget = strip_budget(
            ladder.rate(i + 1) / ladder.rate(i),
            budget_factor * strip_divisor / 2.0,
        )
        inside_pairs, crossing_pairs = strips.bands_touching_bottom(budget)

        for k, band in inside_pairs:
            assignment[band.job] = MachineKey(i, ("it", i, "strip", k))
        # two-color the crossing jobs boundary by boundary
        by_boundary: dict[int, list] = {}
        for k, band in crossing_pairs:
            by_boundary.setdefault(k, []).append(band)
        for k, bands in by_boundary.items():
            colors = two_color(bands)
            for band in bands:
                assignment[band.job] = MachineKey(
                    i, ("it", i, "cross", k, colors[band.job])
                )
        scheduled_now = JobSet(band.job for _, band in inside_pairs + crossing_pairs)
        remaining = remaining.minus(scheduled_now)

    # final iteration: everything left goes to type m, unbounded strips
    if not remaining.empty:
        assignment.update(
            dual_coloring_assign(
                remaining,
                ladder.capacity(ladder.m),
                ladder.m,
                tag_prefix=("it", ladder.m),
                strip_divisor=strip_divisor,
                placement_order=placement_order,
                # this run already resolved to the object engine; keep the
                # oracle pure instead of re-dispatching on the subset size
                engine="object",
            )
        )
    return Schedule(ladder, assignment)
