"""GEN-OFFLINE: the Section-V algorithm for general BSHM ladders.

The machine types form a forest (:class:`~repro.machines.ladder.TypeForest`):
``parent(i)`` is the lowest-indexed type ``j > i`` whose amortized rate is at
most type ``i``'s.  Jobs are scheduled by traversing the forest in
post-order.  At node ``j``:

- collect the not-yet-scheduled jobs of ``J_j`` — size in
  ``(g_{lo(j)-1}, g_j]`` where the subtree rooted at ``j`` spans
  ``lo(j)..j``;
- place them in a demand chart and slice into strips of height ``g_j / 2``;
- if ``j`` is a tree root, schedule everything (unbounded strips);
- otherwise schedule the jobs touching the bottom
  ``B_j = ceil(r_k / (r_j * sqrt(|C(k)|)))`` strips onto type-``j`` machines
  (``k`` = parent, ``|C(k)|`` = its child count) and pass the rest to ``k``.

The paper conjectures an ``O(sqrt(m))`` approximation; E5 measures the
empirical shape.  On a DEC ladder the forest is a path and this reduces to a
DEC-OFFLINE variant; on an INC ladder every node is a root and the algorithm
coincides with INC-OFFLINE exactly.
"""

from __future__ import annotations

import math

from ..core.tolerance import TOLERANCE
from ..jobs.job import Job
from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..placement.greedy import place_jobs
from ..placement.strips import split_into_strips, two_color
from ..schedule.schedule import MachineKey, Schedule
from .columnar_peel import general_offline_columnar, resolve_engine
from .dual_coloring import dual_coloring_assign

__all__ = ["general_offline", "node_strip_budget"]


def node_strip_budget(ladder: Ladder, node: int, parent: int, siblings: int) -> int:
    """``ceil((1 / sqrt(|C(k)|)) * r_k / r_j)`` strips for a non-root node."""
    ratio = ladder.rate(parent) / ladder.rate(node)
    return max(1, math.ceil(ratio / math.sqrt(siblings) - TOLERANCE))


def general_offline(jobs: JobSet, ladder: Ladder, *, engine: str = "auto") -> Schedule:
    """Run GEN-OFFLINE on an instance over an arbitrary ladder.

    ``engine`` selects the object or columnar forest traversal (``"auto"``:
    columnar above the PR-7 dispatch threshold; byte-identical schedules).
    """
    if not jobs.empty and not ladder.fits(jobs.max_size):
        raise ValueError("an instance job exceeds the largest machine capacity")
    if resolve_engine(engine, len(jobs)) == "columnar":
        return general_offline_columnar(jobs, ladder)

    forest = ladder.forest()
    capacities = ladder.capacities
    assignment: dict[Job, MachineKey] = {}
    remaining = jobs

    for j in forest.postorder():
        lo, hi = forest.subtree_span(j)
        assert hi == j, "subtree roots carry the highest index of their span"
        g_lo_prev = ladder.capacity(lo - 1)
        g_j = ladder.capacity(j)
        eligible = remaining.filter(lambda job: g_lo_prev < job.size <= g_j)
        if eligible.empty:
            continue

        parent = forest.parent[j]
        if parent is None:
            # tree root: schedule everything on type j, unbounded strips
            # (engine pinned: this run already resolved to the object path)
            assignment.update(
                dual_coloring_assign(
                    eligible, g_j, j, tag_prefix=("node", j), engine="object"
                )
            )
            remaining = remaining.minus(eligible)
            continue

        placement = place_jobs(eligible)
        strips = split_into_strips(placement, g_j / 2.0)
        budget = node_strip_budget(ladder, j, parent, forest.num_children(parent))
        inside_pairs, crossing_pairs = strips.bands_touching_bottom(budget)

        for k, band in inside_pairs:
            assignment[band.job] = MachineKey(j, ("node", j, "strip", k))
        by_boundary: dict[int, list] = {}
        for k, band in crossing_pairs:
            by_boundary.setdefault(k, []).append(band)
        for k, bands in by_boundary.items():
            colors = two_color(bands)
            for band in bands:
                assignment[band.job] = MachineKey(
                    j, ("node", j, "cross", k, colors[band.job])
                )
        scheduled_now = JobSet(band.job for _, band in inside_pairs + crossing_pairs)
        remaining = remaining.minus(scheduled_now)

    if not remaining.empty:  # pragma: no cover - every job reaches some root
        raise RuntimeError("GEN-OFFLINE left jobs unscheduled")
    return Schedule(ladder, assignment)
