"""The uniform-size special case: interval scheduling with bounded parallelism.

The paper's related work (Winkler & Zhang; Flammini et al.; Shalom et al.)
studies BSHM's ancestor problem: all jobs have the same size, one machine
type, each machine runs at most ``g`` jobs concurrently, minimize total
machine busy time.  Two classical facts make this case special:

1. Interval graphs are perfect: the jobs can be **colored with exactly
   ``omega`` colors** (``omega`` = max number of concurrently active jobs)
   by the greedy sweep, i.e. a zero-overlap placement into ``omega`` unit
   tracks exists — no 2-overlap slack needed.
2. Packing ``g`` consecutive tracks per machine yields the classical
   ``track-packing`` schedule whose machine count at any time is
   ``ceil(active/g)`` only for *nested* track usage; in general it is a
   2-approximation-style heuristic (Flammini et al.'s First-Fit gives 4).

This module provides the exact greedy coloring (`color_tracks`), the
track-packing scheduler (`uniform_track_schedule`) and the uniform-case
online First-Fit for comparison; tests verify the coloring optimality and
feasibility.  These are substrates: BSHM with one type and unit sizes
reduces to this problem, and the E14 bench compares the specialized
machinery against the general pipeline on its home turf.
"""

from __future__ import annotations

import heapq

from ..core.tolerance import SIZE_TOL
from ..jobs.job import Job
from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..schedule.schedule import MachineKey, Schedule

__all__ = ["color_tracks", "uniform_track_schedule", "max_concurrency"]


def max_concurrency(jobs: JobSet) -> int:
    """``omega``: the maximum number of simultaneously active jobs."""
    events: list[tuple[float, int]] = []
    for job in jobs:
        events.append((job.arrival, 1))
        events.append((job.departure, -1))
    events.sort()
    depth = worst = 0
    for _, delta in events:
        depth += delta
        worst = max(worst, depth)
    return worst


def color_tracks(jobs: JobSet) -> dict[Job, int]:
    """Greedy interval-graph coloring: assign each job a track (0-based) so
    that no two concurrent jobs share a track, using exactly
    ``max_concurrency`` tracks (optimal — interval graphs are perfect).

    Jobs are processed in arrival order; the lowest free track is taken;
    freed tracks are recycled through a min-heap.
    """
    free: list[int] = []  # min-heap of released track ids
    next_track = 0
    active: list[tuple[float, int]] = []  # (departure, track) min-heap
    colors: dict[Job, int] = {}
    for job in jobs:  # arrival order
        while active and active[0][0] <= job.arrival:
            _, released = heapq.heappop(active)
            heapq.heappush(free, released)
        if free:
            track = heapq.heappop(free)
        else:
            track = next_track
            next_track += 1
        colors[job] = track
        heapq.heappush(active, (job.departure, track))
    return colors


def uniform_track_schedule(
    jobs: JobSet,
    ladder: Ladder,
    slots: int,
    *,
    type_index: int | None = None,
) -> Schedule:
    """Schedule uniform-size jobs by packing ``slots`` tracks per machine.

    ``slots`` is the per-machine parallelism ``g`` of the bounded-parallelism
    problem.  For BSHM use, pass the machine type whose capacity holds
    ``slots`` jobs of the common size; the schedule is feasible whenever
    ``slots * common_size <= capacity``.

    Raises if job sizes are not uniform (within float tolerance).
    """
    if slots < 1:
        raise ValueError("slots must be at least 1")
    if jobs.empty:
        return Schedule(ladder, {})
    sizes = {round(j.size, 12) for j in jobs}
    if len(sizes) != 1:
        raise ValueError("uniform_track_schedule requires uniform job sizes")
    common = next(iter(sizes))
    idx = type_index if type_index is not None else ladder.smallest_fitting(common * slots)
    if ladder.capacity(idx) + SIZE_TOL < common * slots:
        raise ValueError(
            f"type {idx} (capacity {ladder.capacity(idx)}) cannot hold "
            f"{slots} jobs of size {common}"
        )
    colors = color_tracks(jobs)
    assignment = {
        job: MachineKey(idx, ("tracks", track // slots))
        for job, track in colors.items()
    }
    return Schedule(ladder, assignment)
