"""Homogeneous Dual-Coloring scheduling ([13], used as a subroutine).

For a single machine type of capacity ``g``, the Dual Coloring algorithm

1. places all jobs in the demand chart (placement phase, ≤ 2-fold overlap),
2. slices the chart into strips of height ``g / 2``,
3. assigns the jobs fully inside strip ``k`` to one machine ``("strip", k)``
   and splits the jobs whose lowest crossed boundary is ``k`` across two
   machines ``("cross", k, 0|1)``.

[13] shows this uses at most ``4 * ceil(s(J, t) / g)`` machines at any time,
which yields the 4-approximation for MinUsageTime DBP and powers both
INC-OFFLINE (per size class) and the final iteration of DEC-OFFLINE.
"""

from __future__ import annotations

from ..core.tolerance import FINE_TOL
from ..jobs.job import Job
from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..placement.greedy import place_jobs
from ..placement.strips import split_into_strips, two_color
from ..schedule.schedule import MachineKey, Schedule
from .columnar_peel import columnar_dual_assign, resolve_engine

__all__ = ["dual_coloring_assign", "dual_coloring_schedule"]


def dual_coloring_assign(
    jobs: JobSet,
    capacity: float,
    type_index: int,
    tag_prefix: tuple = (),
    strip_divisor: float = 2.0,
    placement_order: str = "arrival",
    engine: str = "auto",
) -> dict[Job, MachineKey]:
    """Assign every job to a machine of one type via placement + strips.

    ``tag_prefix`` namespaces the machine tags (callers running several
    instances, e.g. one per size class, pass distinct prefixes).
    ``strip_divisor`` sets the strip height to ``capacity / strip_divisor``
    (the paper uses 2; values > 2 are only safe with divisor-aware callers
    because a strip machine packs up to two strips' worth of jobs).
    ``engine`` picks the object or columnar pipeline (``"auto"``: columnar
    above the PR-7 dispatch threshold; identical assignments either way).
    """
    if strip_divisor < 2.0:
        raise ValueError("strip_divisor below 2 would overload strip machines")
    if resolve_engine(engine, len(jobs), placement_order) == "columnar":
        return columnar_dual_assign(
            jobs,
            capacity,
            type_index,
            tag_prefix=tag_prefix,
            strip_divisor=strip_divisor,
        )
    oversize = [j for j in jobs if j.size > capacity * (1 + FINE_TOL)]
    if oversize:
        raise ValueError(f"{len(oversize)} jobs exceed capacity {capacity}")
    if jobs.empty:
        return {}
    placement = place_jobs(jobs, order=placement_order)
    strips = split_into_strips(placement, capacity / strip_divisor)
    assignment: dict[Job, MachineKey] = {}
    for k, bands in strips.inside.items():
        key = MachineKey(type_index, tag_prefix + ("strip", k))
        for band in bands:
            assignment[band.job] = key
    for k, bands in strips.crossing.items():
        colors = two_color(bands)
        for band in bands:
            key = MachineKey(type_index, tag_prefix + ("cross", k, colors[band.job]))
            assignment[band.job] = key
    return assignment


def dual_coloring_schedule(jobs: JobSet, ladder: Ladder, type_index: int | None = None) -> Schedule:
    """Schedule a whole instance on a single type of a ladder.

    ``type_index`` defaults to the smallest type that fits every job.
    """
    if type_index is None:
        type_index = ladder.smallest_fitting(jobs.max_size) if not jobs.empty else 1
    capacity = ladder.capacity(type_index)
    return Schedule(ladder, dual_coloring_assign(jobs, capacity, type_index))
