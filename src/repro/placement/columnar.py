"""Columnar (array-native) twin of the greedy dual-placement pipeline.

The object path walks Python ``Band``/``Job`` instances one attribute access
at a time: :class:`~repro.placement.greedy.GreedyDualPlacer` intersects
coexisting band pairs, :func:`~repro.placement.strips.split_into_strips`
re-derives strip indices per band, and :func:`~repro.placement.strips.
two_color` rebuilds an active list per boundary.  This module re-expresses
every stage directly on the ``JobSet.to_arrays()`` columns:

- **altitude assignment** (:func:`columnar_altitudes`) — per arrival, the
  forbidden altitudes are exactly the depth >= 2 region of ONE
  event-sorted sweep over the currently active bands' ``[altitude, top)``
  ranges.  This equals the object path's union of pairwise intersections
  because every pair of active bands coexists at the arriving job's instant
  (arrival order + departure pruning), so no temporal qualification is left
  to check.  The event queue is kept **incrementally sorted** (bisect
  insertion/removal, two events per band), so each arrival costs one O(k)
  scalar depth scan instead of an O(k log k) rebuild — and no per-arrival
  numpy dispatch overhead, which is what dominates at realistic
  concurrency.  The final gap scan replicates ``_lowest_gap``
  float-for-float.
- **strip slicing** (:func:`columnar_strip_slices`) — the inside/crossing
  classification and lowest-crossed-boundary charge as whole-column integer
  arithmetic, bit-compatible with ``_strip_index`` /
  ``_lowest_crossed_boundary``.
- **two-coloring** (:func:`columnar_two_color`) — the greedy boundary
  2-coloring reduced to two scalar last-departure registers.
- **containment limits** (:func:`columnar_overflow_mask`) — the chart
  containment check as a vectorized range-minimum query over the demand
  profile, replicating :meth:`StepFunction.min_on` exactly.

Everything is bit-identical to the object path by construction — the parity
is pinned by ``tests/property/test_columnar_parity.py`` (three-way:
columnar <-> object <-> golden) and the object implementations stay in the
tree as the differential oracle.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort

import numpy as np

from ..core.stepfun import StepFunction
from ..core.tolerance import FINE_TOL, TOLERANCE
from ..jobs.jobset import JobSet
from .chart import Band, DemandChart, Placement

__all__ = [
    "columnar_altitudes",
    "columnar_overflow_mask",
    "columnar_placement",
    "columnar_strip_slices",
    "columnar_strip_tops",
    "columnar_two_color",
]


def columnar_altitudes(
    starts: np.ndarray, ends: np.ndarray, sizes: np.ndarray
) -> np.ndarray:
    """Greedy dual-placement altitudes for jobs in canonical (arrival, uid)
    order, one event-sorted altitude sweep per arrival.

    Bit-identical to feeding the jobs through
    :class:`~repro.placement.greedy.GreedyDualPlacer` in arrival order: the
    altitude only depends on the <= 2-overlap geometry of the active bands,
    never on the demand profile (the containment limit decides *overflow
    bookkeeping*, not the chosen altitude — see
    :func:`columnar_overflow_mask`).
    """
    n = int(np.asarray(starts).size)
    if n == 0:
        return np.empty(0, dtype=np.float64)

    dep_order = np.argsort(ends, kind="stable")
    dep_seq = dep_order.tolist()
    dep_ends = np.asarray(ends, dtype=np.float64)[dep_order].tolist()
    arr_l = np.asarray(starts, dtype=np.float64).tolist()
    size_l = np.asarray(sizes, dtype=np.float64).tolist()

    alt_l = [0.0] * n
    # sorted (coord, kind) events of the active bands: kind 0 closes a range
    # at its top, kind 1 opens one at its altitude.  Tuple order puts the
    # close before the open at equal coordinates (half-open ranges), which
    # is exactly the stable tops-first sweep ordering.
    events: list[tuple[float, int]] = []
    count = 0
    p = 0  # cursor into the departure-sorted sequence

    for j in range(n):
        arrival = arr_l[j]
        # retire bands with departure <= arrival (the bisect pruning twin);
        # only already-placed jobs can qualify because arrival < departure
        while p < n and dep_ends[p] <= arrival:
            victim = dep_seq[p]
            p += 1
            v_alt = alt_l[victim]
            # recomputed top is the same float the insertion used
            del events[bisect_left(events, (v_alt + size_l[victim], 0))]
            del events[bisect_left(events, (v_alt, 1))]
            count -= 1

        size = size_l[j]
        candidate = 0.0
        if count >= 2:
            # depth >= 2 of the active altitude ranges == the forbidden set,
            # normalized exactly like IntervalSet: drop empty spans, merge
            # touching ones, then replay the _lowest_gap scan
            depth = 0
            lo = 0.0
            spans: list[list[float]] = []
            for coord, kind in events:
                if kind:
                    depth += 1
                    if depth == 2:
                        lo = coord
                elif depth == 2:
                    depth = 1
                    if coord > lo:
                        if spans and lo <= spans[-1][1]:
                            if coord > spans[-1][1]:
                                spans[-1][1] = coord
                        else:
                            spans.append([lo, coord])
                else:
                    depth -= 1
            for lo, hi in spans:
                if lo - candidate >= size - FINE_TOL:
                    break  # gap [candidate, lo) is big enough
                if hi > candidate:
                    candidate = hi

        alt_l[j] = candidate
        insort(events, (candidate, 1))
        insort(events, (candidate + size, 0))
        count += 1
    return np.array(alt_l, dtype=np.float64)


def _range_min(values: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """``values[lo[i]:hi[i]].min()`` for every query, via a sparse table.

    Exact (min is order-independent), O(L log L) build + O(1) per query.
    Requires ``hi > lo`` elementwise and indices within ``values``.
    """
    size = int(values.size)
    table = [values]
    j = 1
    while (1 << j) <= size:
        prev = table[-1]
        half = 1 << (j - 1)
        table.append(np.minimum(prev[: size - (1 << j) + 1], prev[half:]))
        j += 1
    lengths = hi - lo
    ks = np.floor(np.log2(lengths)).astype(np.int64)
    out = np.empty(lengths.size, dtype=np.float64)
    for level in range(len(table)):
        m = ks == level
        if not m.any():
            continue
        span = 1 << level
        out[m] = np.minimum(table[level][lo[m]], table[level][hi[m] - span])
    return out


def columnar_overflow_mask(
    starts: np.ndarray,
    ends: np.ndarray,
    sizes: np.ndarray,
    altitudes: np.ndarray,
    profile: StepFunction,
) -> np.ndarray:
    """Which bands the object path records as containment overflow.

    Replicates ``band.top > chart.min_height_on(I(J)) + TOLERANCE`` with the
    same :meth:`StepFunction.min_on` semantics — intervals escaping the
    profile's support count as limit 0 — but answers every job with one
    vectorized range-minimum query instead of a per-job segment scan.
    """
    n = int(np.asarray(starts).size)
    if n == 0:
        return np.zeros(0, dtype=bool)
    breaks = profile.breaks
    values = profile.values
    outside = (starts < breaks[0]) | (ends > breaks[-1])
    limits = np.zeros(n, dtype=np.float64)
    ins = ~outside
    if ins.any():
        lo = np.searchsorted(breaks, starts[ins], side="right") - 1
        hi = np.searchsorted(breaks, ends[ins], side="left")
        limits[ins] = _range_min(values, lo, hi)
    return (altitudes + sizes) > (limits + TOLERANCE)


def columnar_strip_slices(
    altitudes: np.ndarray, tops: np.ndarray, height: float
) -> tuple[np.ndarray, np.ndarray]:
    """Classify every band as inside-strip or boundary-crossing, columnar.

    Returns ``(strip_index, boundary)``: ``strip_index[i]`` is the 0-based
    strip of band ``i`` (meaningful when ``boundary[i] == 0``), and
    ``boundary[i]`` is the 1-based lowest crossed boundary (0 means the band
    sits fully inside its strip).  Bit-compatible with ``_strip_index`` and
    ``_lowest_crossed_boundary`` for the nonnegative altitudes the greedy
    placer produces.
    """
    h = float(height)
    if h <= 0:
        raise ValueError("strip height must be positive")
    base = np.floor(altitudes / h + TOLERANCE).astype(np.int64)
    strip_index = np.maximum(base, 0)
    slack = TOLERANCE * max(1.0, h)
    # skip boundaries the band merely starts on, exactly like the scalar code
    bump = (base + 1) * h <= altitudes + slack
    k = np.where(bump, base + 2, base + 1)
    crossing = k * h < tops - slack
    boundary = np.where(crossing, k, 0)
    return strip_index, boundary


def columnar_strip_tops(tops: np.ndarray, height: float) -> np.ndarray:
    """1 + index of the highest strip each band touches (vector
    :func:`~repro.placement.strips.band_strip_top`)."""
    h = float(height)
    if h <= 0:
        raise ValueError("strip height must be positive")
    return np.maximum(1, np.ceil(tops / h - TOLERANCE).astype(np.int64))


def columnar_two_color(
    arrivals: list[float], departures: list[float]
) -> list[int]:
    """Greedy boundary 2-coloring over jobs in canonical (arrival, uid) order.

    The object :func:`~repro.placement.strips.two_color` keeps an active
    list pruned by departure; since each color can hold at most one live
    interval, two last-departure registers carry the whole state.  Color 0
    is preferred when both are free, matching ``free[0]``.
    """
    colors: list[int] = []
    end0 = end1 = -math.inf
    for arrival, departure in zip(arrivals, departures):
        if end0 <= arrival:
            colors.append(0)
            end0 = departure
        elif end1 <= arrival:
            colors.append(1)
            end1 = departure
        else:
            raise AssertionError(
                "more than two concurrent boundary-crossing jobs: "
                "the 2-overlap invariant was violated upstream"
            )
    return colors


def columnar_placement(jobs: JobSet) -> Placement:
    """Materialize a full :class:`Placement` from the columnar placer.

    Diagnostic adapter: the strip-peeling engines never build ``Band``
    objects; this exists so parity suites and notebooks can compare a whole
    columnar placement against :func:`~repro.placement.greedy.place_jobs`.
    """
    arrays = jobs.to_arrays()
    alts = columnar_altitudes(arrays.starts, arrays.ends, arrays.sizes)
    chart = DemandChart(jobs)
    overflow = columnar_overflow_mask(
        arrays.starts, arrays.ends, arrays.sizes, alts, chart.height
    )
    bands = [Band(job, alt) for job, alt in zip(jobs, alts.tolist())]
    overflowed = [job for job, over in zip(jobs, overflow.tolist()) if over]
    return Placement(chart, bands, overflowed)
