"""Strip partitioning of a placement (paper Section III-A / Fig. 1).

After jobs are placed in the demand chart, the chart is sliced into
horizontal strips of equal height ``h`` (the algorithms use ``h = g_i / 2``).
Each placed band is then either

- **fully inside** one strip ``k`` (``k*h <= altitude`` and ``top <= (k+1)*h``), or
- **crossing** one or more strip boundaries (altitudes ``k*h`` strictly
  inside the band); such a job is charged to its *lowest* crossed boundary.

Because no three bands overlap, (a) the bands fully inside one strip have
total size at most ``2h`` at any instant, so one machine of capacity
``>= 2h`` hosts them all; and (b) at most two bands cross a given boundary at
any instant, so two machines (one job each at a time) host the boundary's
crossing jobs — :func:`two_color` splits them greedily.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.tolerance import TOLERANCE
from ..jobs.job import Job
from .chart import Band, Placement

__all__ = ["StripAssignment", "split_into_strips", "two_color"]


@dataclass(frozen=True, slots=True)
class StripAssignment:
    """Outcome of slicing a placement into strips of height ``h``.

    ``inside[k]`` lists the bands fully inside strip ``k`` (0-based strip
    indices: strip ``k`` spans altitudes ``[k*h, (k+1)*h)``).
    ``crossing[k]`` lists the bands whose lowest crossed boundary is
    ``k`` (1-based boundary indices: boundary ``k`` sits at altitude ``k*h``).
    ``num_strips`` is the strip count needed to contain every band, computed
    once at construction (callers like E8 poll it in a loop).
    """

    height: float
    inside: dict[int, list[Band]]
    crossing: dict[int, list[Band]]
    num_strips: int

    def strips_used(self) -> int:
        """Number of strips needed to contain every band."""
        return self.num_strips

    def bands_touching_bottom(self, num_strips: int) -> tuple[list[tuple[int, Band]], list[tuple[int, Band]]]:
        """Bands intersecting the bottom ``num_strips`` strips.

        Returns ``(inside_pairs, crossing_pairs)`` where inside pairs carry
        the 0-based strip index < num_strips and crossing pairs carry the
        1-based boundary index <= num_strips.  This is exactly the set of
        jobs DEC-OFFLINE schedules in one iteration: anything whose band
        touches the bottom region.
        """
        inside_pairs = [
            (k, band)
            for k, bands in self.inside.items()
            if k < num_strips
            for band in bands
        ]
        crossing_pairs = [
            (k, band)
            for k, bands in self.crossing.items()
            if k <= num_strips
            for band in bands
        ]
        return inside_pairs, crossing_pairs


def band_strip_top(band: Band, h: float) -> int:
    """1 + index of the highest strip the band touches."""
    import math

    return max(1, int(math.ceil(band.top / h - TOLERANCE)))


def split_into_strips(placement: Placement, height: float) -> StripAssignment:
    """Classify every band as inside-strip or boundary-crossing."""
    if height <= 0:
        raise ValueError("strip height must be positive")
    inside: dict[int, list[Band]] = {}
    crossing: dict[int, list[Band]] = {}
    num_strips = 0
    for band in placement.bands:
        k_low = _strip_index(band.altitude, height)
        lowest_boundary = _lowest_crossed_boundary(band, height)
        if lowest_boundary is None:
            inside.setdefault(k_low, []).append(band)
        else:
            crossing.setdefault(lowest_boundary, []).append(band)
        top = band_strip_top(band, height)
        if top > num_strips:
            num_strips = top
    return StripAssignment(
        height=height, inside=inside, crossing=crossing, num_strips=num_strips
    )


def _strip_index(altitude: float, h: float) -> int:
    """0-based index of the strip containing the altitude (with float slack)."""
    k = int(altitude / h + TOLERANCE)
    return max(k, 0)


def _lowest_crossed_boundary(band: Band, h: float) -> int | None:
    """Smallest ``k >= 1`` with ``altitude < k*h < top`` (None if no boundary
    is strictly inside the band)."""
    import math

    k = int(math.floor(band.altitude / h + TOLERANCE)) + 1
    level = k * h
    # skip boundaries the band merely starts on
    if level <= band.altitude + TOLERANCE * max(1.0, h):
        k += 1
        level = k * h
    if level < band.top - TOLERANCE * max(1.0, h):
        return k
    return None


def two_color(bands: list[Band]) -> dict[Job, int]:
    """Split boundary-crossing bands between two machines.

    At most two of these bands coexist at any instant (2-overlap at the
    boundary altitude), so greedy interval coloring in arrival order needs
    only colors {0, 1}.  Raises if the premise is violated.
    """
    colors: dict[Job, int] = {}
    active: list[tuple[float, int]] = []  # (departure, color)
    for band in sorted(bands, key=lambda b: (b.job.arrival, b.job.uid)):
        job = band.job
        active = [(d, c) for d, c in active if d > job.arrival]
        used = {c for _, c in active}
        free = [c for c in (0, 1) if c not in used]
        if not free:
            raise AssertionError(
                "more than two concurrent boundary-crossing jobs: "
                "the 2-overlap invariant was violated upstream"
            )
        colors[job] = free[0]
        active.append((job.departure, free[0]))
    return colors
