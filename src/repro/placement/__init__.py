"""Section V placement: demand charts, greedy dual placement, strips.

Public surface: the :class:`DemandChart` / :class:`Band` /
:class:`Placement` geometry, the greedy altitude placer, the
strip-splitting / two-coloring machinery behind the forest construction,
and the array-native columnar twins of all of the above
(:mod:`repro.placement.columnar`).
"""

from .chart import Band, DemandChart, Placement
from .columnar import (
    columnar_altitudes,
    columnar_overflow_mask,
    columnar_placement,
    columnar_strip_slices,
    columnar_strip_tops,
    columnar_two_color,
)
from .greedy import GreedyDualPlacer, place_jobs
from .strips import StripAssignment, split_into_strips, two_color

__all__ = [
    "Band",
    "DemandChart",
    "Placement",
    "GreedyDualPlacer",
    "place_jobs",
    "StripAssignment",
    "split_into_strips",
    "two_color",
    "columnar_altitudes",
    "columnar_overflow_mask",
    "columnar_placement",
    "columnar_strip_slices",
    "columnar_strip_tops",
    "columnar_two_color",
]
