"""Section V placement: demand charts, greedy dual placement, strips.

Public surface: the :class:`DemandChart` / :class:`Band` /
:class:`Placement` geometry, the greedy altitude placer and the
strip-splitting / two-coloring machinery behind the forest construction.
"""

from .chart import Band, DemandChart, Placement
from .greedy import GreedyDualPlacer, place_jobs
from .strips import StripAssignment, split_into_strips, two_color

__all__ = [
    "Band",
    "DemandChart",
    "Placement",
    "GreedyDualPlacer",
    "place_jobs",
    "StripAssignment",
    "split_into_strips",
    "two_color",
]
