"""The placement phase: greedy dual placement with a hard 2-overlap invariant.

The paper invokes the placement phase of the Dual Coloring algorithm [13],
whose contract is: *place every job as a rectangle inside the demand chart so
that no three rectangles share a point*.  We implement an arrival-order
greedy that keeps the 2-overlap contract as a **hard invariant** — every
feasibility argument in the paper rests on it — and chart containment as a
soft goal (see DESIGN.md, substitution 1):

For each job ``J`` in arrival order, the altitudes forbidden to ``J`` are
those already covered **twice** at some instant of ``I(J)``; among the
remaining gaps we pick the lowest one that fits ``s(J)`` below the chart's
minimum height over ``I(J)``, falling back to the lowest fitting gap anywhere
(recorded as an overflow) when no contained position exists.

The search is exact: the forbidden set is the union, over pairs of
already-placed bands that coexist at some instant of ``I(J)``, of their
altitude-range intersections.
"""

from __future__ import annotations

import bisect

from ..core.intervals import IntervalSet
from ..core.tolerance import FINE_TOL, TOLERANCE
from ..jobs.job import Job
from ..jobs.jobset import JobSet
from .chart import Band, DemandChart, Placement

__all__ = ["place_jobs", "GreedyDualPlacer"]


class GreedyDualPlacer:
    """Incremental placer; also reused by the online analysis (Lemma 2)."""

    def __init__(self, chart: DemandChart) -> None:
        self.chart = chart
        self.bands: list[Band] = []
        self.overflowed: list[Job] = []
        # bands sorted by departure for fast pruning of the active scan
        self._by_departure: list[tuple[float, Band]] = []

    def place(self, job: Job) -> Band:
        """Place one job (jobs must be fed in arrival order)."""
        coexisting = self._coexisting(job)
        forbidden = _doubly_covered(coexisting, job)
        limit = self.chart.min_height_on(job.interval)
        altitude = _lowest_gap(forbidden, job.size, limit)
        if altitude is None:
            altitude = _lowest_gap(forbidden, job.size, None)
            assert altitude is not None  # a gap above all bands always exists
            self.overflowed.append(job)
        band = Band(job, altitude)
        self.bands.append(band)
        bisect.insort(self._by_departure, (job.departure, band), key=lambda e: e[0])
        return band

    def result(self) -> Placement:
        return Placement(self.chart, list(self.bands), list(self.overflowed))

    def _coexisting(self, job: Job) -> list[Band]:
        """Already-placed bands whose interval overlaps ``I(J)``.

        Since jobs arrive in order, those are the bands departing after
        ``job.arrival``; earlier departures can never conflict again and are
        pruned from the scan list.
        """
        cut = bisect.bisect_right(self._by_departure, job.arrival, key=lambda e: e[0])
        self._by_departure = self._by_departure[cut:]
        return [band for _, band in self._by_departure]


def _doubly_covered(bands: list[Band], job: Job) -> IntervalSet:
    """Altitude intervals covered by >= 2 bands at some instant of ``I(J)``.

    Two strategies (identical results, property-tested against each other):

    - small ``k``: direct pairwise intersection on raw floats;
    - large ``k`` (dense bursts): split ``I(J)`` at the coexisting bands'
      clipped endpoints and run one altitude sweep per elementary segment —
      O(S · k log k) instead of O(k²), which is the difference between
      milliseconds and seconds on flash-crowd workloads (see E11/E17).
    """
    n = len(bands)
    if n < 2:
        return IntervalSet()
    if n <= 32:
        return _doubly_covered_pairwise(bands, job)
    return _doubly_covered_sweep(bands, job)


def _doubly_covered_pairwise(bands: list[Band], job: Job) -> IntervalSet:
    """Direct pair enumeration (raw floats, no Interval churn)."""
    j_lo, j_hi = job.arrival, job.departure
    spans = [
        (b.job.arrival, b.job.departure, b.altitude, b.top) for b in bands
    ]
    pairs = []
    n = len(spans)
    for a in range(n):
        a_lo, a_hi, a_alt, a_top = spans[a]
        for b in range(a + 1, n):
            b_lo, b_hi, b_alt, b_top = spans[b]
            # temporal triple-overlap with I(J)
            t_lo = a_lo if a_lo > b_lo else b_lo
            if t_lo < j_lo:
                t_lo = j_lo
            t_hi = a_hi if a_hi < b_hi else b_hi
            if t_hi > j_hi:
                t_hi = j_hi
            if t_lo >= t_hi:
                continue
            lo = a_alt if a_alt > b_alt else b_alt
            hi = a_top if a_top < b_top else b_top
            if lo < hi:
                pairs.append((lo, hi))
    return IntervalSet.from_pairs(pairs)


def _doubly_covered_sweep(bands: list[Band], job: Job) -> IntervalSet:
    """Per-time-segment altitude sweeps (fast for dense bursts)."""
    j_lo, j_hi = job.arrival, job.departure
    clipped = []
    cuts = {j_lo, j_hi}
    for b in bands:
        lo = max(b.job.arrival, j_lo)
        hi = min(b.job.departure, j_hi)
        if lo < hi:
            clipped.append((lo, hi, b.altitude, b.top))
            cuts.add(lo)
            cuts.add(hi)
    if len(clipped) < 2:
        return IntervalSet()
    times = sorted(cuts)
    out_pairs: list[tuple[float, float]] = []
    for seg_lo, seg_hi in zip(times[:-1], times[1:]):
        mid = (seg_lo + seg_hi) / 2.0
        points: list[tuple[float, int]] = []
        for lo, hi, alt, top in clipped:
            if lo <= mid < hi:
                points.append((alt, 1))
                points.append((top, -1))
        if len(points) < 4:  # fewer than two active bands
            continue
        points.sort()
        depth = 0
        start = 0.0
        for y, delta in points:
            new_depth = depth + delta
            if depth < 2 <= new_depth:
                start = y
            elif new_depth < 2 <= depth:
                if start < y:
                    out_pairs.append((start, y))
            depth = new_depth
    return IntervalSet.from_pairs(out_pairs)


def _lowest_gap(forbidden: IntervalSet, size: float, limit: float | None) -> float | None:
    """Lowest altitude ``a >= 0`` with ``[a, a + size)`` disjoint from the
    forbidden set and, when ``limit`` is given, ``a + size <= limit``."""
    candidate = 0.0
    for iv in forbidden:
        if iv.left - candidate >= size - FINE_TOL:
            break  # gap [candidate, iv.left) is big enough
        candidate = max(candidate, iv.right)
    if limit is not None and candidate + size > limit + TOLERANCE:
        return None
    return candidate


def place_jobs(jobs: JobSet, order: str = "arrival") -> Placement:
    """Place a whole job set into its demand chart.

    ``order`` selects the processing sequence:

    - ``"arrival"`` (default, the Dual-Coloring convention): jobs in arrival
      order; enables the departure-based pruning of the conflict scan.
    - ``"size"``: largest-first; often reduces containment overflow on
      size-heterogeneous instances (E16 ablation) at the cost of a full
      conflict scan per job.
    - ``"duration"``: longest-first; the long jobs anchor the bottom of the
      chart.

    All orders preserve the hard <= 2-overlap invariant.
    """
    chart = DemandChart(jobs)
    if order == "arrival":
        placer = GreedyDualPlacer(chart)
        for job in jobs:  # JobSet iterates in arrival order
            placer.place(job)
        return placer.result()
    if order == "size":
        ordered = sorted(jobs, key=lambda j: (-j.size, j.arrival, j.uid))
    elif order == "duration":
        ordered = sorted(jobs, key=lambda j: (-j.duration, j.arrival, j.uid))
    else:
        raise ValueError(f"unknown placement order {order!r}")
    return _place_unordered(chart, ordered)


def _place_unordered(chart: DemandChart, ordered: list[Job]) -> Placement:
    """Placement loop without the arrival-order pruning optimization."""
    bands: list[Band] = []
    overflowed: list[Job] = []
    for job in ordered:
        coexisting = [b for b in bands if b.interval.overlaps(job.interval)]
        forbidden = _doubly_covered(coexisting, job)
        limit = chart.min_height_on(job.interval)
        altitude = _lowest_gap(forbidden, job.size, limit)
        if altitude is None:
            altitude = _lowest_gap(forbidden, job.size, None)
            assert altitude is not None
            overflowed.append(job)
        bands.append(Band(job, altitude))
    return Placement(chart, bands, overflowed)
