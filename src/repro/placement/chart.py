"""Demand charts (paper Fig. 1).

A demand chart for a job set is the region under the demand profile
``s(J, t)``: at every time ``t`` the chart has height equal to the total size
of the active jobs.  The offline algorithms place each job as a rectangle
(band) spanning its active interval in time and its size in the demand
dimension, then slice the chart into horizontal strips.

:class:`Band` records one placed rectangle; :class:`Placement` is the result
of a placement algorithm over a chart and knows how to verify the invariants
the paper relies on (≤ 2-fold overlap, containment in the chart).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.intervals import Interval
from ..core.stepfun import StepFunction
from ..core.tolerance import TOLERANCE
from ..jobs.job import Job
from ..jobs.jobset import JobSet

__all__ = ["Band", "DemandChart", "Placement"]


@dataclass(frozen=True, slots=True)
class Band:
    """A placed job: horizontal rectangle ``I(J) x [altitude, altitude + s)``."""

    job: Job
    altitude: float

    @property
    def top(self) -> float:
        return self.altitude + self.job.size

    @property
    def interval(self) -> Interval:
        return self.job.interval

    def altitude_overlap(self, other: "Band") -> bool:
        """Whether the two altitude ranges intersect."""
        return self.altitude < other.top and other.altitude < self.top

    def conflicts_in_time(self, other: "Band") -> bool:
        """Whether the two jobs are ever active simultaneously."""
        return self.interval.overlaps(other.interval)

    def crosses(self, level: float) -> bool:
        """Whether ``level`` is strictly inside the band's altitude range."""
        return self.altitude < level < self.top


class DemandChart:
    """The demand profile of a job set, viewed as the placement region.

    The height profile comes from :meth:`JobSet.demand_profile`, which
    size-dispatches between the sweep kernels and the columnar
    :mod:`repro.core.vectorized` path — so charts built during DEC-OFFLINE
    strip peeling get the fast path for free on large instances.
    """

    __slots__ = ("jobs", "height")

    def __init__(self, jobs: JobSet) -> None:
        self.jobs = jobs
        self.height: StepFunction = jobs.demand_profile()

    def height_at(self, t: float) -> float:
        """Chart height ``s(J, t)`` at one instant."""
        return float(self.height(t))

    def min_height_on(self, iv: Interval) -> float:
        """Minimum chart height over an interval (containment limit)."""
        return self.height.min_on(iv)

    def peak(self) -> float:
        """Maximum chart height (peak demand)."""
        return self.height.max()


class Placement:
    """A full placement of a chart's jobs into bands."""

    __slots__ = ("chart", "bands", "overflowed")

    def __init__(self, chart: DemandChart, bands: list[Band], overflowed: list[Job]):
        placed = {b.job.uid for b in bands}
        want = {j.uid for j in chart.jobs}
        if placed != want:
            raise ValueError("placement must cover exactly the chart's jobs")
        self.chart = chart
        self.bands = sorted(bands, key=lambda b: (b.job.arrival, b.job.uid))
        #: jobs whose band could not be kept inside the chart (soft invariant);
        #: empty on the workloads we generate, tracked for honesty.
        self.overflowed = overflowed

    def band_of(self, job: Job) -> Band:
        """The band of one placed job (KeyError if absent)."""
        for band in self.bands:
            if band.job.uid == job.uid:
                return band
        raise KeyError(job)

    def max_top(self) -> float:
        """Highest band top across the placement."""
        return max((b.top for b in self.bands), default=0.0)

    # -- invariants -------------------------------------------------------
    def max_overlap(self) -> int:
        """Maximum number of bands sharing a point ``(t, y)``.

        The paper's placement contract requires this to be <= 2.  Event
        sweep over arrivals/departures; at each arrival only the *arriving*
        band's altitude range is examined — the 2-D cover can only set a new
        record at an arrival, inside the range of the band that arrived, so
        this is exhaustive (differentially tested against
        :meth:`max_overlap_reference`).
        """
        events: list[tuple[float, int, Band]] = []
        for band in self.bands:
            events.append((band.job.arrival, 1, band))
            events.append((band.job.departure, 0, band))
        events.sort(key=lambda e: (e[0], e[1]))
        active: dict[int, Band] = {}
        worst = 0
        for time, kind, band in events:
            if kind == 0:
                active.pop(band.job.uid, None)
            else:
                active[band.job.uid] = band
                worst = max(worst, _cover_within(list(active.values()), band))
        return worst

    def max_overlap_reference(self) -> int:
        """The pre-sweep check — full altitude sweep of ALL active bands at
        every arrival — kept as the differential-test oracle."""
        events: list[tuple[float, int, Band]] = []
        for band in self.bands:
            events.append((band.job.arrival, 1, band))
            events.append((band.job.departure, 0, band))
        events.sort(key=lambda e: (e[0], e[1]))
        active: dict[int, Band] = {}
        worst = 0
        for time, kind, band in events:
            if kind == 0:
                active.pop(band.job.uid, None)
            else:
                active[band.job.uid] = band
                worst = max(worst, _max_altitude_cover(list(active.values())))
        return worst

    def containment_violations(self) -> list[tuple[Band, float]]:
        """Bands whose top exceeds the chart height somewhere in their span.

        Returns ``(band, excess)`` pairs; empty means the Fig.-1 picture is
        exact (every rectangle inside the chart).
        """
        out = []
        for band in self.bands:
            limit = self.chart.min_height_on(band.interval)
            if band.top > limit + TOLERANCE:
                out.append((band, band.top - limit))
        return out


def _max_altitude_cover(bands: list[Band]) -> int:
    """Peak cover of the altitude line by the given bands."""
    if not bands:
        return 0
    points: list[tuple[float, int]] = []
    for band in bands:
        points.append((band.altitude, 1))
        points.append((band.top, -1))
    points.sort()
    cover = worst = 0
    for _, delta in points:
        cover += delta
        worst = max(worst, cover)
    return worst


def _cover_within(bands: list[Band], target: Band) -> int:
    """Peak altitude cover restricted to ``target``'s altitude range.

    Endpoints are clipped to ``[target.altitude, target.top)`` and swept with
    numpy; bands outside the range contribute nothing after clipping.
    """
    lo, hi = target.altitude, target.top
    alts = np.fromiter((b.altitude for b in bands), dtype=float, count=len(bands))
    tops = np.fromiter((b.top for b in bands), dtype=float, count=len(bands))
    starts = np.clip(alts, lo, hi)
    ends = np.clip(tops, lo, hi)
    keep = ends > starts
    if not np.any(keep):
        return 0
    k = int(keep.sum())
    points = np.concatenate([starts[keep], ends[keep]])
    deltas = np.concatenate([np.ones(k, dtype=np.int64), -np.ones(k, dtype=np.int64)])
    # at equal coordinates the -1s apply before the +1s (half-open ranges)
    order = np.lexsort((deltas, points))
    running = np.cumsum(deltas[order])
    return int(running.max(initial=0))
