"""repro — Busy-Time Scheduling on Heterogeneous Machines (BSHM).

A full reproduction of Ren & Tang, *Busy-Time Scheduling on Heterogeneous
Machines*, IPDPS 2020: the DEC/INC/general offline approximation algorithms,
the non-clairvoyant online algorithms, the Eq.-(1) lower bound, exact oracles
and a benchmark harness validating every theorem.

Quickstart
----------
>>> import numpy as np
>>> from repro import (Job, JobSet, dec_ladder, dec_offline, lower_bound,
...                    assert_feasible)
>>> jobs = JobSet([Job(size=0.5, arrival=0, departure=4),
...                Job(size=2.0, arrival=1, departure=5)])
>>> ladder = dec_ladder(3)
>>> schedule = dec_offline(jobs, ladder)
>>> assert_feasible(schedule, jobs)
"""

from .core.intervals import Interval, IntervalSet, union_length
from .core.stepfun import StepFunction, pulse, sum_pulses, sum_pulses_reference
from .core.events import Event, EventKind, event_stream, elementary_segments
from .core.sweep import (
    BusyIntervalCache,
    busy_time_reference,
    busy_union_reference,
    demand_profile_reference,
    grouped_busy_time_reference,
    merged_events,
    nested_demand_reference,
    peak_load_reference,
    sweep_busy_time,
    sweep_busy_union,
    sweep_demand_profile,
    sweep_grouped_busy_time,
    sweep_nested_demand,
    sweep_peak_load,
)
from .core.vectorized import (
    DEFAULT_VEC_THRESHOLD,
    dispatch_threshold,
    use_vectorized,
    vec_busy_cost,
    vec_busy_time,
    vec_busy_union,
    vec_demand_profile,
    vec_demand_steps,
    vec_event_steps,
    vec_grouped_busy_time,
    vec_nested_demand,
    vec_peak_load,
    vec_threshold,
)
from .jobs.job import Job
from .jobs.jobset import JobArrays, JobSet
from .jobs.generators.workloads import (
    adversarial_staircase,
    bounded_mu_workload,
    bursty_workload,
    day_night_workload,
    poisson_workload,
    uniform_workload,
)
from .jobs.generators.advanced import (
    flash_crowd_workload,
    mmpp_workload,
    replay_arrays,
    sawtooth_workload,
)
from .jobs.io import (
    read_instance_json,
    read_jobs_csv,
    read_ladder_csv,
    write_instance_json,
    write_jobs_csv,
    write_ladder_csv,
    write_schedule_csv,
)
from .core.interval_tree import StaticIntervalTree
from .machines.types import MachineType
from .machines.ladder import Ladder, Regime, TypeForest
from .machines.catalog import (
    dec_ladder,
    ec2_like_ladder,
    inc_ladder,
    paper_fig2_ladder,
    random_general_ladder,
    single_type_ladder,
)
from .machines.normalization import Normalization, normalize, prune_dominated
from .schedule.schedule import MachineKey, Schedule
from .schedule.validate import (
    FeasibilityError,
    FeasibilityReport,
    assert_feasible,
    validate_schedule,
)
from .lowerbound.config import ConfigSolver, OptimalConfig, optimal_config
from .lowerbound.bound import LowerBoundResult, lower_bound
from .placement.chart import Band, DemandChart, Placement
from .placement.greedy import place_jobs
from .offline.dual_coloring import dual_coloring_schedule
from .offline.uniform import color_tracks, max_concurrency, uniform_track_schedule
from .offline.dec_offline import dec_offline
from .offline.inc_offline import inc_offline
from .offline.general_offline import general_offline
from .online.engine import JobView, OnlineScheduler, run_online
from .online.first_fit import FirstFitScheduler
from .online.dec_online import DecOnlineScheduler
from .online.inc_online import IncOnlineScheduler
from .online.general_online import GeneralOnlineScheduler
from .online.clairvoyant import DurationClassScheduler, run_clairvoyant
from .baselines.naive import CheapestFitGreedy, LargestTypeFirstFit, OneJobPerMachine
from .exact.milp import MilpResult, solve_optimal
from .exact.brute import brute_force_optimal
from .analysis.certificates import CertificateResult, certify_dec_online
from .analysis.sweeps import Sweep, SweepRow
from .analysis.hardness import HardInstance, search_hard_instance
from .analysis.profiling import Profiler
from .analysis.report import schedule_report
from .lowerbound.simple import all_bounds, span_bound, volume_bound
from .jobs.transform import (
    clip_to_window,
    concatenate,
    crop,
    scale_sizes,
    scale_time,
    shift_time,
)
from .jobs.generators.adversary import batch_trap, ff_trap
from .schedule.billing import FLUID, BillingModel, billed_cost, billing_overhead
from .online.windowed import windowed_schedule
from .viz.svg import gantt_svg, placement_svg
from .machines.recommend import Recommendation, recommend_subset
from .exact.lp_relax import lp_relaxation_bound
from .analysis.crossover import CrossoverResult, find_crossover
from .online.journal import Journal, JournalingScheduler, render_journal
from .jobs.lint import lint_instance
from .service.runtime import Admission, SchedulerRuntime, make_scheduler
from .service.metrics import MetricsRegistry
from .service.checkpoint import (
    CheckpointError,
    load_checkpoint,
    record_trace,
    replay_trace,
    restore,
    snapshot,
    write_checkpoint,
    write_trace,
)

__version__ = "1.0.0"

__all__ = [
    "Interval",
    "IntervalSet",
    "union_length",
    "StepFunction",
    "pulse",
    "sum_pulses",
    "sum_pulses_reference",
    "BusyIntervalCache",
    "busy_time_reference",
    "busy_union_reference",
    "demand_profile_reference",
    "grouped_busy_time_reference",
    "merged_events",
    "nested_demand_reference",
    "peak_load_reference",
    "sweep_busy_time",
    "sweep_busy_union",
    "sweep_demand_profile",
    "sweep_grouped_busy_time",
    "sweep_nested_demand",
    "sweep_peak_load",
    "DEFAULT_VEC_THRESHOLD",
    "dispatch_threshold",
    "use_vectorized",
    "vec_busy_cost",
    "vec_busy_time",
    "vec_busy_union",
    "vec_demand_profile",
    "vec_demand_steps",
    "vec_event_steps",
    "vec_grouped_busy_time",
    "vec_nested_demand",
    "vec_peak_load",
    "vec_threshold",
    "Event",
    "EventKind",
    "event_stream",
    "elementary_segments",
    "Job",
    "JobArrays",
    "JobSet",
    "uniform_workload",
    "poisson_workload",
    "bounded_mu_workload",
    "day_night_workload",
    "bursty_workload",
    "adversarial_staircase",
    "MachineType",
    "Ladder",
    "Regime",
    "TypeForest",
    "dec_ladder",
    "inc_ladder",
    "ec2_like_ladder",
    "paper_fig2_ladder",
    "random_general_ladder",
    "single_type_ladder",
    "Normalization",
    "normalize",
    "prune_dominated",
    "MachineKey",
    "Schedule",
    "FeasibilityError",
    "FeasibilityReport",
    "assert_feasible",
    "validate_schedule",
    "ConfigSolver",
    "OptimalConfig",
    "optimal_config",
    "LowerBoundResult",
    "lower_bound",
    "Band",
    "DemandChart",
    "Placement",
    "place_jobs",
    "dual_coloring_schedule",
    "dec_offline",
    "inc_offline",
    "general_offline",
    "JobView",
    "OnlineScheduler",
    "run_online",
    "FirstFitScheduler",
    "DecOnlineScheduler",
    "IncOnlineScheduler",
    "GeneralOnlineScheduler",
    "OneJobPerMachine",
    "LargestTypeFirstFit",
    "CheapestFitGreedy",
    "MilpResult",
    "solve_optimal",
    "brute_force_optimal",
    "flash_crowd_workload",
    "mmpp_workload",
    "replay_arrays",
    "sawtooth_workload",
    "read_instance_json",
    "read_jobs_csv",
    "read_ladder_csv",
    "write_instance_json",
    "write_jobs_csv",
    "write_ladder_csv",
    "write_schedule_csv",
    "StaticIntervalTree",
    "color_tracks",
    "max_concurrency",
    "uniform_track_schedule",
    "DurationClassScheduler",
    "run_clairvoyant",
    "CertificateResult",
    "certify_dec_online",
    "Sweep",
    "SweepRow",
    "HardInstance",
    "search_hard_instance",
    "Profiler",
    "schedule_report",
    "all_bounds",
    "span_bound",
    "volume_bound",
    "clip_to_window",
    "concatenate",
    "crop",
    "scale_sizes",
    "scale_time",
    "shift_time",
    "batch_trap",
    "ff_trap",
    "FLUID",
    "BillingModel",
    "billed_cost",
    "billing_overhead",
    "windowed_schedule",
    "gantt_svg",
    "placement_svg",
    "Recommendation",
    "recommend_subset",
    "lp_relaxation_bound",
    "CrossoverResult",
    "find_crossover",
    "Journal",
    "JournalingScheduler",
    "render_journal",
    "lint_instance",
    "Admission",
    "SchedulerRuntime",
    "make_scheduler",
    "MetricsRegistry",
    "CheckpointError",
    "load_checkpoint",
    "record_trace",
    "replay_trace",
    "restore",
    "snapshot",
    "write_checkpoint",
    "write_trace",
    "__version__",
]
