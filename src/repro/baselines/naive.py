"""Strawman baselines a practitioner would try first.

All are online-capable (non-clairvoyant) and are run through the same
engine as the paper's algorithms:

- :class:`OneJobPerMachine` — every job gets a dedicated machine of the
  cheapest type that fits it.  Cost = Σ duration × rate(fitting type).
- :class:`LargestTypeFirstFit` — First-Fit packing, but only on the largest
  machine type (the "just rent big boxes" strategy).
- :class:`CheapestFitGreedy` — First-Fit over *all* currently open machines
  (any type, opening order); when nothing fits, opens a machine of the type
  with the cheapest rate among those fitting the job.

These calibrate the benchmark tables: the paper's algorithms should beat
them whenever the ladder/workload interaction is non-trivial.
"""

from __future__ import annotations

from ..machines.fleet import FleetState, IndexedPool
from ..machines.ladder import Ladder
from ..machines.machine import OnlineMachine
from ..schedule.schedule import MachineKey
from ..online.engine import JobView

__all__ = ["OneJobPerMachine", "LargestTypeFirstFit", "CheapestFitGreedy"]


class OneJobPerMachine:
    """Dedicated cheapest-fitting machine per job."""

    def __init__(self, ladder: Ladder) -> None:
        self.ladder = ladder
        self._counter = 0

    def on_arrival(self, job: JobView) -> MachineKey:
        """Open a dedicated machine of the cheapest fitting type."""
        candidates = [t for t in self.ladder.types if t.fits(job.size)]
        best = min(candidates, key=lambda t: t.rate)
        self._counter += 1
        return MachineKey(best.index, ("solo", self._counter))

    def on_departure(self, uid: int) -> None:  # nothing to release

        """Nothing to release (machines are per-job)."""
        return None


class LargestTypeFirstFit:
    """First-Fit restricted to the largest type."""

    def __init__(self, ladder: Ladder) -> None:
        self.ladder = ladder
        self.state = FleetState()
        self.pool = IndexedPool(
            "big", ladder.m, ladder.capacity(ladder.m), budget=None,
            stats=self.state.stats,
        )

    def on_arrival(self, job: JobView) -> MachineKey:
        """First-Fit among the largest-type pool."""
        machine = self.pool.first_fit(job.uid, job.size)
        assert machine is not None
        return self.state.record(job.uid, machine)

    def on_departure(self, uid: int) -> None:
        """Release the departed job's capacity."""
        self.state.depart(uid)


class CheapestFitGreedy:
    """First-Fit over every open machine; open cheapest fitting type on miss."""

    def __init__(self, ladder: Ladder) -> None:
        self.ladder = ladder
        self.state = FleetState()
        self.open_machines: list[OnlineMachine] = []
        self._counter = 0

    def on_arrival(self, job: JobView) -> MachineKey:
        """First-Fit over every open machine; open the cheapest fitting type on miss."""
        for machine in self.open_machines:
            if machine.fits(job.size):
                machine.admit(job.uid, job.size)
                return self.state.record(job.uid, machine)
        candidates = [t for t in self.ladder.types if t.fits(job.size)]
        best = min(candidates, key=lambda t: t.rate)
        self._counter += 1
        machine = OnlineMachine(
            MachineKey(best.index, ("greedy", self._counter)), best.capacity
        )
        self.open_machines.append(machine)
        machine.admit(job.uid, job.size)
        return self.state.record(job.uid, machine)

    def on_departure(self, uid: int) -> None:
        """Release the departed job's capacity."""
        self.state.depart(uid)
