"""Command-line entry point: ``bshm``.

Subcommands::

    bshm list                     # list experiments
    bshm run E1 [--scale quick]   # run one experiment, print its table
    bshm all [--scale quick]      # run every experiment
    bshm demo                     # 30-second tour: ladder, schedule, figure
    bshm schedule trace.csv --ladder ladder.csv [--algorithm auto]
                                  # schedule a CSV job trace, print the bill,
                                  # optionally write the assignment CSV
    bshm generate --workload day-night --n 200 --out trace.csv
                                  # synthesize a workload (and/or a ladder)
    bshm recommend trace.csv --ladder ladder.csv [--max-types 3]
                                  # which catalogue subset should be enabled?
"""

from __future__ import annotations

import argparse
import sys

from .experiments import ALL_EXPERIMENTS, run_experiment


def _cmd_list() -> int:
    for eid, module in ALL_EXPERIMENTS.items():
        print(f"{eid:4s} {module.TITLE}")
    return 0


def _cmd_run(experiment_id: str, scale: str) -> int:
    result = run_experiment(experiment_id, scale=scale)
    print(result.render())
    return 0 if result.passed else 1


def _cmd_all(scale: str, save: str | None = None) -> int:
    if save:
        from .experiments.persist import save_all

        outcomes = save_all(save, scale=scale)
        for eid, passed in outcomes.items():
            print(f"{eid:4s} {'PASS' if passed else 'FAIL'}")
        print(f"artifacts saved under {save}/")
        return 0 if all(outcomes.values()) else 1
    status = 0
    for eid in ALL_EXPERIMENTS:
        result = run_experiment(eid, scale=scale)
        print(result.render())
        print()
        if not result.passed:
            status = 1
    return status


def _cmd_demo() -> int:
    import numpy as np

    from .jobs.generators.workloads import day_night_workload
    from .lowerbound.bound import lower_bound
    from .machines.catalog import dec_ladder
    from .offline.dec_offline import dec_offline
    from .online.dec_online import DecOnlineScheduler
    from .online.engine import run_online
    from .placement.greedy import place_jobs
    from .viz.ascii_chart import render_placement
    from .viz.gantt import render_gantt

    ladder = dec_ladder(3)
    jobs = day_night_workload(60, np.random.default_rng(0), max_size=ladder.capacity(3))
    lb = lower_bound(jobs, ladder).value
    offline = dec_offline(jobs, ladder)
    online = run_online(jobs, DecOnlineScheduler(ladder))
    print(f"ladder: {ladder}")
    print(f"instance: {len(jobs)} jobs, mu={jobs.mu:.2f}, lower bound {lb:.2f}")
    print(f"DEC-OFFLINE cost {offline.cost():.2f}  (ratio {offline.cost() / lb:.3f})")
    print(f"DEC-ONLINE  cost {online.cost():.2f}  (ratio {online.cost() / lb:.3f})")
    print("\ndemand chart with placed jobs (Fig. 1 style):")
    print(render_placement(place_jobs(jobs), width=72, height=14))
    print("\nmachine gantt (offline schedule, first machines):")
    print(render_gantt(offline, max_machines=12))
    return 0


def _cmd_schedule(
    trace: str,
    ladder_path: str,
    algorithm: str,
    output: str | None,
    report: str | None = None,
) -> int:
    from .jobs.io import read_jobs_csv, read_ladder_csv, write_schedule_csv
    from .lowerbound.bound import lower_bound
    from .machines.ladder import Regime
    from .offline.dec_offline import dec_offline
    from .offline.general_offline import general_offline
    from .offline.inc_offline import inc_offline
    from .online.dec_online import DecOnlineScheduler
    from .online.engine import run_online
    from .online.general_online import GeneralOnlineScheduler
    from .online.inc_online import IncOnlineScheduler
    from .schedule.validate import assert_feasible

    jobs = read_jobs_csv(trace)
    ladder = read_ladder_csv(ladder_path)
    from .jobs.lint import lint_instance

    for warning in lint_instance(jobs, ladder):
        print(f"warning: {warning}")
    regime = ladder.regime
    if algorithm == "auto":
        algorithm = {
            Regime.DEC: "dec-offline",
            Regime.INC: "inc-offline",
            Regime.GENERAL: "gen-offline",
        }[regime]
    runners = {
        "dec-offline": lambda: dec_offline(jobs, ladder),
        "inc-offline": lambda: inc_offline(jobs, ladder),
        "gen-offline": lambda: general_offline(jobs, ladder),
        "dec-online": lambda: run_online(jobs, DecOnlineScheduler(ladder)),
        "inc-online": lambda: run_online(jobs, IncOnlineScheduler(ladder)),
        "gen-online": lambda: run_online(jobs, GeneralOnlineScheduler(ladder)),
    }
    if algorithm not in runners:
        print(f"unknown algorithm {algorithm!r}; choose from {sorted(runners)}")
        return 2
    schedule = runners[algorithm]()
    assert_feasible(schedule, jobs)
    lb = lower_bound(jobs, ladder).value
    print(f"instance: {len(jobs)} jobs, ladder regime {regime.value}, mu={jobs.mu:.2f}")
    print(f"algorithm: {algorithm}")
    print(f"cost: {schedule.cost():.4f}  (lower bound {lb:.4f}, ratio {schedule.cost()/max(lb,1e-12):.4f})")
    print(f"machines used: {len(schedule.machines())}")
    for i, cost in schedule.cost_by_type().items():
        if cost > 0:
            print(f"  type {i} (g={ladder.capacity(i):g}): {cost:.4f}")
    if output:
        write_schedule_csv(schedule, output)
        print(f"assignment written to {output}")
    if report:
        from .analysis.report import schedule_report

        from pathlib import Path

        Path(report).write_text(
            schedule_report(schedule, jobs, algorithm=algorithm)
        )
        print(f"report written to {report}")
    return 0


def _cmd_generate(
    workload: str, n: int, seed: int, out: str, ladder_kind: str | None, ladder_out: str | None, m: int
) -> int:
    import numpy as np

    from .jobs.generators import workloads as w
    from .jobs.generators.advanced import flash_crowd_workload, mmpp_workload
    from .jobs.io import write_jobs_csv, write_ladder_csv
    from .machines import catalog

    ladder = None
    if ladder_kind:
        makers = {
            "dec": lambda: catalog.dec_ladder(m),
            "inc": lambda: catalog.inc_ladder(m),
            "ec2": lambda: catalog.ec2_like_ladder(m),
            "fig2": catalog.paper_fig2_ladder,
        }
        if ladder_kind not in makers:
            print(f"unknown ladder kind {ladder_kind!r}; choose from {sorted(makers)}")
            return 2
        ladder = makers[ladder_kind]()
        if ladder_out:
            write_ladder_csv(ladder, ladder_out)
            print(f"ladder ({ladder_kind}, m={ladder.m}) written to {ladder_out}")
    gmax = ladder.capacity(ladder.m) if ladder is not None else 1.0
    rng = np.random.default_rng(seed)
    generators = {
        "uniform": lambda: w.uniform_workload(n, rng, max_size=gmax),
        "poisson": lambda: w.poisson_workload(n, rng, max_size=gmax),
        "day-night": lambda: w.day_night_workload(n, rng, max_size=gmax),
        "bursty": lambda: w.bursty_workload(n, rng, max_size=gmax),
        "mmpp": lambda: mmpp_workload(n, rng, max_size=gmax),
        "flash-crowd": lambda: flash_crowd_workload(n, rng, max_size=gmax),
    }
    if workload not in generators:
        print(f"unknown workload {workload!r}; choose from {sorted(generators)}")
        return 2
    jobs = generators[workload]()
    write_jobs_csv(jobs, out)
    print(f"{len(jobs)} {workload} jobs (seed {seed}, max size {gmax:g}) written to {out}")
    return 0


def _cmd_recommend(trace: str, ladder_path: str, max_types: int | None, estimate: str) -> int:
    from .jobs.io import read_jobs_csv, read_ladder_csv
    from .machines.recommend import recommend_subset

    jobs = read_jobs_csv(trace)
    catalogue = read_ladder_csv(ladder_path)
    rec = recommend_subset(jobs, catalogue, estimate=estimate, max_types=max_types)
    print(f"instance: {len(jobs)} jobs; catalogue: {catalogue.m} types; estimate: {estimate}")
    print(f"recommended types: {list(rec.enabled_indices)}  (cost {rec.cost:.4f})")
    print("top 5 subsets:")
    for combo, cost in rec.ranking[:5]:
        caps = [f"{catalogue.capacity(i):g}" for i in combo]
        print(f"  types {list(combo)} (capacities {', '.join(caps)}): {cost:.4f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bshm",
        description="Busy-time scheduling on heterogeneous machines (IPDPS 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments")
    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment id, e.g. E1")
    run_p.add_argument("--scale", choices=("quick", "full"), default="full")
    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--scale", choices=("quick", "full"), default="full")
    all_p.add_argument("--save", help="persist artifacts under this directory")
    sub.add_parser("demo", help="30-second guided demo")
    sched_p = sub.add_parser("schedule", help="schedule a CSV job trace")
    sched_p.add_argument("trace", help="job trace CSV (size,arrival,departure[,name])")
    sched_p.add_argument("--ladder", required=True, help="ladder CSV (capacity,rate)")
    sched_p.add_argument(
        "--algorithm",
        default="auto",
        help="auto | dec-offline | inc-offline | gen-offline | dec-online | inc-online | gen-online",
    )
    sched_p.add_argument("--output", help="write the assignment CSV here")
    sched_p.add_argument("--report", help="write a markdown report here")
    gen_p = sub.add_parser("generate", help="synthesize a workload / ladder")
    gen_p.add_argument("--workload", default="uniform")
    gen_p.add_argument("--n", type=int, default=100)
    gen_p.add_argument("--seed", type=int, default=0)
    gen_p.add_argument("--out", required=True, help="job trace CSV to write")
    gen_p.add_argument("--ladder", dest="ladder_kind", help="dec | inc | ec2 | fig2")
    gen_p.add_argument("--ladder-out", help="ladder CSV to write")
    gen_p.add_argument("--m", type=int, default=3, help="ladder size")
    rec_p = sub.add_parser("recommend", help="rank catalogue type subsets")
    rec_p.add_argument("trace", help="job trace CSV")
    rec_p.add_argument("--ladder", required=True, help="catalogue CSV")
    rec_p.add_argument("--max-types", type=int, default=None)
    rec_p.add_argument("--estimate", choices=("lower_bound", "schedule"), default="lower_bound")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.scale)
    if args.command == "all":
        return _cmd_all(args.scale, args.save)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "schedule":
        return _cmd_schedule(
            args.trace, args.ladder, args.algorithm, args.output, args.report
        )
    if args.command == "generate":
        return _cmd_generate(
            args.workload, args.n, args.seed, args.out,
            args.ladder_kind, args.ladder_out, args.m,
        )
    if args.command == "recommend":
        return _cmd_recommend(args.trace, args.ladder, args.max_types, args.estimate)
    return 2


if __name__ == "__main__":
    sys.exit(main())
