"""Command-line entry point: ``bshm``.

Subcommands::

    bshm list                     # list experiments
    bshm run E1 [--scale quick]   # run one experiment, print its table
    bshm all [--scale quick]      # run every experiment
    bshm demo                     # 30-second tour: ladder, schedule, figure
    bshm schedule trace.csv --ladder ladder.csv [--algorithm auto]
                                  # schedule a CSV job trace, print the bill,
                                  # optionally write the assignment CSV
    bshm generate --workload day-night --n 200 --out trace.csv
                                  # synthesize a workload (and/or a ladder)
    bshm recommend trace.csv --ladder ladder.csv [--max-types 3]
                                  # which catalogue subset should be enabled?
    bshm serve --ladder-kind dec --m 3 --port 8642
                                  # streaming scheduler service (JSON lines
                                  # over TCP: submit/depart/stats/checkpoint);
                                  # --workers N shards it across processes,
                                  # --storage memory|sqlite:PATH / --wal DIR
                                  # make it durable
    bshm recover WALDIR|sqlite:PATH
                                  # rebuild state from a WAL directory or a
                                  # sqlite event-log store and report it
    bshm replay trace.jsonl [--verify] [--checkpoint ckpt.json]
                                  # re-execute a recorded service trace
    bshm lint trace.csv [--ladder ladder.csv]
                                  # sanity-check a job trace / catalogue pair
    bshm check [paths ...]        # invariant-aware static analysis: AST lint
                                  # rules + whole-program call-graph rules
                                  # over src/ tests/ benchmarks/ by default;
                                  # exit 1 on findings.  --format text|json|
                                  # sarif, --baseline/--write-baseline,
                                  # --diff REF (changed lines only),
                                  # --no-cache/--cache-dir, --list-rules,
                                  # --external, --refresh-schema-manifest
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from .experiments import ALL_EXPERIMENTS, run_experiment

if TYPE_CHECKING:
    from .machines.ladder import Ladder
    from .service.runtime import SchedulerRuntime


def _input_error(path: str, what: str) -> str | None:
    """Why ``path`` cannot be read as ``what`` (None when it can)."""
    p = Path(path)
    if not p.exists():
        return f"{what} {path!r} does not exist"
    if p.is_dir():
        return f"{what} {path!r} is a directory, expected a file"
    if not os.access(p, os.R_OK):
        return f"{what} {path!r} is not readable"
    return None


def _output_error(path: str, what: str) -> str | None:
    """Why ``path`` cannot be written as ``what`` (None when it can)."""
    p = Path(path)
    if p.is_dir():
        return f"{what} {path!r} is a directory, expected a file path"
    parent = p.parent if str(p.parent) else Path(".")
    if not parent.exists():
        return f"directory {str(parent)!r} for {what} does not exist"
    if not parent.is_dir():
        return f"{str(parent)!r} (for {what}) is not a directory"
    if not os.access(parent, os.W_OK):
        return f"directory {str(parent)!r} for {what} is not writable"
    if p.exists() and not os.access(p, os.W_OK):
        return f"{what} {path!r} exists and is not writable"
    return None


def _fail(*problems: str | None) -> int | None:
    """Print the first real problem to stderr and return exit code 2."""
    for problem in problems:
        if problem:
            print(f"error: {problem}", file=sys.stderr)
            return 2
    return None


def _cmd_list() -> int:
    for eid, module in ALL_EXPERIMENTS.items():
        print(f"{eid:4s} {module.TITLE}")
    return 0


def _cmd_run(experiment_id: str, scale: str) -> int:
    result = run_experiment(experiment_id, scale=scale)
    print(result.render())
    return 0 if result.passed else 1


def _cmd_all(scale: str, save: str | None = None) -> int:
    if save:
        from .experiments.persist import save_all

        outcomes = save_all(save, scale=scale)
        for eid, passed in outcomes.items():
            print(f"{eid:4s} {'PASS' if passed else 'FAIL'}")
        print(f"artifacts saved under {save}/")
        return 0 if all(outcomes.values()) else 1
    status = 0
    for eid in ALL_EXPERIMENTS:
        result = run_experiment(eid, scale=scale)
        print(result.render())
        print()
        if not result.passed:
            status = 1
    return status


def _cmd_demo() -> int:
    import numpy as np

    from .jobs.generators.workloads import day_night_workload
    from .lowerbound.bound import lower_bound
    from .machines.catalog import dec_ladder
    from .offline.dec_offline import dec_offline
    from .online.dec_online import DecOnlineScheduler
    from .online.engine import run_online
    from .placement.greedy import place_jobs
    from .viz.ascii_chart import render_placement
    from .viz.gantt import render_gantt

    ladder = dec_ladder(3)
    jobs = day_night_workload(60, np.random.default_rng(0), max_size=ladder.capacity(3))
    lb = lower_bound(jobs, ladder).value
    offline = dec_offline(jobs, ladder)
    online = run_online(jobs, DecOnlineScheduler(ladder))
    print(f"ladder: {ladder}")
    print(f"instance: {len(jobs)} jobs, mu={jobs.mu:.2f}, lower bound {lb:.2f}")
    print(f"DEC-OFFLINE cost {offline.cost():.2f}  (ratio {offline.cost() / lb:.3f})")
    print(f"DEC-ONLINE  cost {online.cost():.2f}  (ratio {online.cost() / lb:.3f})")
    print("\ndemand chart with placed jobs (Fig. 1 style):")
    print(render_placement(place_jobs(jobs), width=72, height=14))
    print("\nmachine gantt (offline schedule, first machines):")
    print(render_gantt(offline, max_machines=12))
    return 0


def _cmd_schedule(
    trace: str,
    ladder_path: str,
    algorithm: str,
    output: str | None,
    report: str | None = None,
) -> int:
    from .jobs.io import read_jobs_csv, read_ladder_csv, write_schedule_csv
    from .lowerbound.bound import lower_bound
    from .machines.ladder import Regime
    from .offline.dec_offline import dec_offline
    from .offline.general_offline import general_offline
    from .offline.inc_offline import inc_offline
    from .online.dec_online import DecOnlineScheduler
    from .online.engine import run_online
    from .online.general_online import GeneralOnlineScheduler
    from .online.inc_online import IncOnlineScheduler
    from .schedule.validate import assert_feasible

    failed = _fail(
        _input_error(trace, "job trace"),
        _input_error(ladder_path, "ladder CSV"),
        _output_error(output, "assignment output") if output else None,
        _output_error(report, "report output") if report else None,
    )
    if failed:
        return failed
    jobs = read_jobs_csv(trace)
    ladder = read_ladder_csv(ladder_path)
    from .jobs.lint import lint_instance

    for warning in lint_instance(jobs, ladder):
        print(f"warning: {warning}")
    regime = ladder.regime
    if algorithm == "auto":
        algorithm = {
            Regime.DEC: "dec-offline",
            Regime.INC: "inc-offline",
            Regime.GENERAL: "gen-offline",
        }[regime]
    runners = {
        "dec-offline": lambda: dec_offline(jobs, ladder),
        "inc-offline": lambda: inc_offline(jobs, ladder),
        "gen-offline": lambda: general_offline(jobs, ladder),
        "dec-online": lambda: run_online(jobs, DecOnlineScheduler(ladder)),
        "inc-online": lambda: run_online(jobs, IncOnlineScheduler(ladder)),
        "gen-online": lambda: run_online(jobs, GeneralOnlineScheduler(ladder)),
    }
    if algorithm not in runners:
        print(f"unknown algorithm {algorithm!r}; choose from {sorted(runners)}")
        return 2
    schedule = runners[algorithm]()
    assert_feasible(schedule, jobs)
    lb = lower_bound(jobs, ladder).value
    print(f"instance: {len(jobs)} jobs, ladder regime {regime.value}, mu={jobs.mu:.2f}")
    print(f"algorithm: {algorithm}")
    print(f"cost: {schedule.cost():.4f}  (lower bound {lb:.4f}, ratio {schedule.cost()/max(lb,1e-12):.4f})")
    print(f"machines used: {len(schedule.machines())}")
    for i, cost in schedule.cost_by_type().items():
        if cost > 0:
            print(f"  type {i} (g={ladder.capacity(i):g}): {cost:.4f}")
    if output:
        write_schedule_csv(schedule, output)
        print(f"assignment written to {output}")
    if report:
        from .analysis.report import schedule_report

        Path(report).write_text(
            schedule_report(schedule, jobs, algorithm=algorithm)
        )
        print(f"report written to {report}")
    return 0


def _cmd_generate(
    workload: str, n: int, seed: int, out: str, ladder_kind: str | None, ladder_out: str | None, m: int
) -> int:
    import numpy as np

    from .jobs.generators import workloads as w
    from .jobs.generators.advanced import flash_crowd_workload, mmpp_workload
    from .jobs.io import write_jobs_csv, write_ladder_csv
    from .machines import catalog

    failed = _fail(
        _output_error(out, "job trace output"),
        _output_error(ladder_out, "ladder output") if ladder_out else None,
    )
    if failed:
        return failed
    ladder = None
    if ladder_kind:
        makers = {
            "dec": lambda: catalog.dec_ladder(m),
            "inc": lambda: catalog.inc_ladder(m),
            "ec2": lambda: catalog.ec2_like_ladder(m),
            "fig2": catalog.paper_fig2_ladder,
        }
        if ladder_kind not in makers:
            print(f"unknown ladder kind {ladder_kind!r}; choose from {sorted(makers)}")
            return 2
        ladder = makers[ladder_kind]()
        if ladder_out:
            write_ladder_csv(ladder, ladder_out)
            print(f"ladder ({ladder_kind}, m={ladder.m}) written to {ladder_out}")
    gmax = ladder.capacity(ladder.m) if ladder is not None else 1.0
    rng = np.random.default_rng(seed)
    generators = {
        "uniform": lambda: w.uniform_workload(n, rng, max_size=gmax),
        "poisson": lambda: w.poisson_workload(n, rng, max_size=gmax),
        "day-night": lambda: w.day_night_workload(n, rng, max_size=gmax),
        "bursty": lambda: w.bursty_workload(n, rng, max_size=gmax),
        "mmpp": lambda: mmpp_workload(n, rng, max_size=gmax),
        "flash-crowd": lambda: flash_crowd_workload(n, rng, max_size=gmax),
    }
    if workload not in generators:
        print(f"unknown workload {workload!r}; choose from {sorted(generators)}")
        return 2
    jobs = generators[workload]()
    write_jobs_csv(jobs, out)
    print(f"{len(jobs)} {workload} jobs (seed {seed}, max size {gmax:g}) written to {out}")
    return 0


def _cmd_recommend(trace: str, ladder_path: str, max_types: int | None, estimate: str) -> int:
    from .jobs.io import read_jobs_csv, read_ladder_csv
    from .machines.recommend import recommend_subset

    failed = _fail(
        _input_error(trace, "job trace"),
        _input_error(ladder_path, "catalogue CSV"),
    )
    if failed:
        return failed
    jobs = read_jobs_csv(trace)
    catalogue = read_ladder_csv(ladder_path)
    rec = recommend_subset(jobs, catalogue, estimate=estimate, max_types=max_types)
    print(f"instance: {len(jobs)} jobs; catalogue: {catalogue.m} types; estimate: {estimate}")
    print(f"recommended types: {list(rec.enabled_indices)}  (cost {rec.cost:.4f})")
    print("top 5 subsets:")
    for combo, cost in rec.ranking[:5]:
        caps = [f"{catalogue.capacity(i):g}" for i in combo]
        print(f"  types {list(combo)} (capacities {', '.join(caps)}): {cost:.4f}")
    return 0


def _cmd_serve(
    host: str,
    port: int,
    scheduler: str,
    ladder_path: str | None,
    ladder_kind: str,
    m: int,
    max_active: int | None,
    trace_out: str | None,
    wal_dir: str | None,
    fsync: str,
    compact_every: int,
    max_inflight: int,
    read_timeout: float | None,
    workers: int = 1,
    storage: str | None = None,
) -> int:
    import asyncio

    from .jobs.io import read_ladder_csv
    from .machines import catalog
    from .machines.ladder import Regime
    from .service.checkpoint import CheckpointError
    from .service.runtime import SCHEDULER_REGISTRY, SchedulerRuntime
    from .service.server import serve_forever
    from .service.wal import WALError, WALWriter, recover

    failed = _fail(
        _input_error(ladder_path, "ladder CSV") if ladder_path else None,
        _output_error(trace_out, "trace output") if trace_out else None,
        "--wal and --storage are mutually exclusive (--storage is the "
        "pluggable replacement; use one)" if wal_dir and storage else None,
        f"--workers must be >= 1, got {workers}" if workers < 1 else None,
        "--wal is unavailable with --workers > 1; each shard persists its "
        "own store, use --storage" if workers > 1 and wal_dir else None,
        "--trace-out is unavailable with --workers > 1 (there is no single "
        "runtime to trace)" if workers > 1 and trace_out else None,
    )
    if failed:
        return failed
    if ladder_path:
        ladder = read_ladder_csv(ladder_path)
    else:
        makers = {
            "dec": lambda: catalog.dec_ladder(m),
            "inc": lambda: catalog.inc_ladder(m),
            "ec2": lambda: catalog.ec2_like_ladder(m),
            "fig2": catalog.paper_fig2_ladder,
        }
        if ladder_kind not in makers:
            print(f"unknown ladder kind {ladder_kind!r}; choose from {sorted(makers)}")
            return 2
        ladder = makers[ladder_kind]()
    if scheduler == "auto":
        scheduler = {
            Regime.DEC: "dec",
            Regime.INC: "inc",
            Regime.GENERAL: "general",
        }[ladder.regime]
    if scheduler not in SCHEDULER_REGISTRY:
        print(
            f"unknown scheduler {scheduler!r}; choose from {sorted(SCHEDULER_REGISTRY)}"
        )
        return 2
    admission: list[str | tuple[str, int]] = ["fits-ladder"]
    if max_active is not None:
        admission.append(("max-active", max_active))

    if workers > 1:
        return _cmd_serve_sharded(
            host, port, scheduler, ladder, admission, workers,
            storage or "memory", fsync, compact_every, max_inflight,
            read_timeout,
        )

    runtime = None
    store = None
    if storage:
        from .service.storage import StorageError, StoreWriter, open_store
        from .service.storage import restore_from_store

        try:
            store = open_store(storage)
        except StorageError as exc:
            return _fail(f"cannot open storage {storage!r}: {exc}")
        had_data = (
            store.n_events() > 0
            or store.latest_snapshot() is not None
            or store.config is not None
        )
        config = {
            "scheduler": scheduler,
            "ladder": [[t.capacity, t.rate] for t in ladder.types],
            "admission": [
                list(s) if isinstance(s, tuple) else s for s in admission
            ],
        }
        try:
            recovered_store = restore_from_store(store, config=config)
        except CheckpointError as exc:
            store.close()
            return _fail(f"cannot recover storage {storage!r}: {exc}")
        runtime = recovered_store.runtime
        if had_data:
            print(
                f"bshm serve: recovered {recovered_store.describe()} "
                "(scheduler/ladder flags superseded by the recovered config)",
                flush=True,
            )
    elif wal_dir and Path(wal_dir).is_dir() and (
        any(Path(wal_dir).glob("wal-*.log"))
        or any(Path(wal_dir).glob("snapshot-*.json"))
    ):
        try:
            recovered = recover(wal_dir)
        except CheckpointError as exc:  # WALError and garbled-snapshot errors
            return _fail(f"cannot recover WAL {wal_dir!r}: {exc}")
        runtime = recovered.runtime
        print(
            f"bshm serve: recovered {recovered.describe()} from {wal_dir} "
            "(scheduler/ladder flags superseded by the recovered config)",
            flush=True,
        )
    if runtime is None:
        runtime = SchedulerRuntime.create(scheduler, ladder, admission=admission)
    wal = None
    if store is not None:
        try:
            wal = StoreWriter(
                store, runtime, sync=fsync, compact_every=compact_every
            )
        except CheckpointError as exc:
            store.close()
            return _fail(f"cannot attach storage {storage!r}: {exc}")
    elif wal_dir:
        try:
            wal = WALWriter(
                wal_dir, runtime, fsync=fsync, compact_every=compact_every
            )
        except WALError as exc:
            return _fail(f"cannot open WAL {wal_dir!r}: {exc}")

    live_scheduler = runtime.config["scheduler"] if runtime.config else scheduler
    live_ladder = runtime.ladder

    def ready(bound_host: str, bound_port: int) -> None:
        durability = f", wal={wal_dir} fsync={fsync}" if wal_dir else ""
        if store is not None:
            durability = f", storage={storage} sync={fsync}"
        print(
            f"bshm serve: {live_scheduler} scheduler on "
            f"{live_ladder.regime.value} ladder (m={live_ladder.m})"
            f"{durability}, listening on {bound_host}:{bound_port}",
            flush=True,
        )

    try:
        asyncio.run(serve_forever(
            runtime, host, port, wal=wal, max_inflight=max_inflight,
            read_timeout=read_timeout, on_ready=ready,
        ))
    except KeyboardInterrupt:
        print("interrupted", flush=True)
    if trace_out:
        from .service.checkpoint import CheckpointError, write_trace

        try:
            write_trace(runtime, trace_out)
        except CheckpointError as exc:
            print(f"trace not written: {exc}")
        else:
            print(f"trace ({runtime.n_events} events) written to {trace_out}")
    print(
        f"served {runtime.n_events} events; final cost {runtime.cost():.4f}, "
        f"{runtime.n_active} jobs still active"
    )
    return 0


def _cmd_serve_sharded(
    host: str,
    port: int,
    scheduler: str,
    ladder: "Ladder",
    admission: list[str | tuple[str, int]],
    workers: int,
    storage: str,
    fsync: str,
    compact_every: int,
    max_inflight: int,
    read_timeout: float | None,
) -> int:
    """``bshm serve --workers N``: router + N shard worker processes."""
    import asyncio

    from .service.checkpoint import CheckpointError
    from .service.shard import ShardError, serve_sharded, start_worker_fleet

    config = {
        "scheduler": scheduler,
        "ladder": [[t.capacity, t.rate] for t in ladder.types],
        "admission": [list(s) if isinstance(s, tuple) else s for s in admission],
    }

    def worker_ready(shard: int, info: dict) -> None:
        print(
            f"bshm serve: worker shard {shard} ready "
            f"({info['recovered']}, store {info['store']})",
            flush=True,
        )

    try:
        handles = start_worker_fleet(
            workers, config, storage=storage, sync=fsync,
            compact_every=compact_every, on_ready=worker_ready,
        )
    except (ShardError, CheckpointError, OSError) as exc:
        return _fail(f"cannot start {workers}-worker fleet: {exc}")

    def ready(bound_host: str, bound_port: int) -> None:
        print(
            f"bshm serve: {scheduler} scheduler on {ladder.regime.value} "
            f"ladder (m={ladder.m}), {workers} worker shards, "
            f"storage={storage} sync={fsync}, listening on "
            f"{bound_host}:{bound_port}",
            flush=True,
        )

    capacities = [t.capacity for t in ladder.types]
    summaries: list[dict] = []
    try:
        summaries = asyncio.run(serve_sharded(
            handles, capacities, host, port, max_inflight=max_inflight,
            read_timeout=read_timeout, on_ready=ready,
        ))
    except KeyboardInterrupt:
        print("interrupted", flush=True)
    total_events = sum(s["events"] for s in summaries)
    total_cost = sum(s["cost"] for s in summaries)
    total_active = sum(s["active"] for s in summaries)
    print(
        f"served {total_events} events across {len(summaries)} shard(s); "
        f"final cost {total_cost:.4f}, {total_active} jobs still active"
    )
    return 0


def _cmd_recover(target: str) -> int:
    from .service.checkpoint import CheckpointError, assignment_digest
    from .service.wal import recover

    def note(line: str) -> None:
        print(f"bshm recover: {line}", flush=True)

    path = Path(target.removeprefix("sqlite:"))
    if target.startswith("sqlite:") or path.is_file():
        from .service.storage import open_store, restore_from_store

        if not path.is_file():
            return _fail(f"no storage file at {str(path)!r}")
        try:
            store = open_store(f"sqlite:{path}")
        except CheckpointError as exc:
            return _fail(f"cannot open storage {str(path)!r}: {exc}")
        try:
            recovered = restore_from_store(store, progress=note)
        except CheckpointError as exc:
            return _fail(f"cannot recover storage {str(path)!r}: {exc}")
        finally:
            store.close()
    elif path.is_dir():
        try:
            recovered_wal = recover(path, progress=note)
        except CheckpointError as exc:  # WALError + garbled-snapshot errors
            return _fail(f"cannot recover WAL {target!r}: {exc}")
        runtime = recovered_wal.runtime
        print(f"bshm recover: {recovered_wal.describe()}")
        return _report_recovered(runtime, assignment_digest)
    else:
        return _fail(
            f"{target!r} is neither a WAL directory nor a sqlite storage "
            "file (expected a directory of wal-*.log/snapshot-*.json, a "
            "sqlite database path, or a sqlite:PATH spec)"
        )
    runtime = recovered.runtime
    print(f"bshm recover: {recovered.describe()}")
    return _report_recovered(runtime, assignment_digest)


def _report_recovered(
    runtime: "SchedulerRuntime", digest: "Callable[[SchedulerRuntime], str]"
) -> int:
    print(
        f"clock {runtime.clock:g}; {runtime.n_active} active job(s); "
        f"cost {runtime.cost():.6f}"
    )
    print(f"assignment sha256: {digest(runtime)}")
    return 0


def _cmd_replay(
    trace: str, checkpoint_out: str | None, verify: bool, to: str | None
) -> int:
    from .online.engine import run_online
    from .service.checkpoint import (
        CheckpointError,
        read_trace,
        replay_trace,
        write_checkpoint,
    )
    from .service.runtime import make_scheduler

    failed = _fail(
        _input_error(trace, "trace"),
        _output_error(checkpoint_out, "checkpoint output") if checkpoint_out else None,
    )
    if failed:
        return failed
    if to:
        from .service.client import ClientError, RetryingClient, replay_events

        host, _, port_text = to.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            return _fail(f"--to must be HOST:PORT, got {to!r}")
        try:
            _header, events = read_trace(trace)
        except CheckpointError as exc:
            return _fail(f"cannot replay {trace!r}: {exc}")
        try:
            with RetryingClient(host or "127.0.0.1", port) as client:
                applied = replay_events(client, events)
        except (ClientError, OSError) as exc:
            return _fail(f"replay to {to} failed: {exc}")
        print(f"replayed {applied} events to {to} (retries with backoff)")
        return 0
    try:
        runtime = replay_trace(trace)
    except CheckpointError as exc:
        return _fail(f"cannot replay {trace!r}: {exc}")
    schedule = runtime.schedule()
    print(
        f"replayed {runtime.n_events} events: clock {runtime.clock:g}, "
        f"{len(schedule)} jobs on {len(schedule.machines())} machines, "
        f"{runtime.n_active} still active"
    )
    print(f"streaming cost: {runtime.cost():.6f}")
    if checkpoint_out:
        write_checkpoint(runtime, checkpoint_out)
        print(f"checkpoint written to {checkpoint_out}")
    if verify:
        if runtime.n_active > 0:
            print("verify skipped: open jobs remain (batch replay needs departures)")
        elif runtime.metrics.counter("rejections").value > 0:
            print("verify skipped: trace contains rejected jobs")
        else:
            batch = run_online(
                schedule.jobs,
                make_scheduler(runtime.config["scheduler"], runtime.ladder),
            )
            # compare Schedule.cost() on both sides: same sweep kernel, so
            # the streamed run must match the batch replay bit-for-bit
            if batch.cost() != schedule.cost():
                print(
                    f"VERIFY FAILED: batch cost {batch.cost()!r} != "
                    f"streaming cost {schedule.cost()!r}"
                )
                return 1
            print(f"verify: batch run_online cost matches exactly ({batch.cost():.6f})")
    return 0


def _cmd_lint(trace: str, ladder_path: str | None) -> int:
    from .jobs.io import read_jobs_csv, read_ladder_csv
    from .jobs.lint import lint_instance

    failed = _fail(
        _input_error(trace, "job trace"),
        _input_error(ladder_path, "ladder CSV") if ladder_path else None,
    )
    if failed:
        return failed
    jobs = read_jobs_csv(trace)
    ladder = read_ladder_csv(ladder_path) if ladder_path else None
    warnings = lint_instance(jobs, ladder)
    for warning in warnings:
        print(f"warning: {warning}")
    if warnings:
        print(f"{trace}: {len(warnings)} warning(s)")
        return 1
    against = f" against {ladder_path}" if ladder_path else ""
    print(f"{trace}: clean ({len(jobs)} jobs{against})")
    return 0


def _run_external_analyzers(paths: list[str]) -> int:
    """mypy + ruff when installed; skipping a missing tool is not a failure
    (the container may not ship them — CI does)."""
    import shutil
    import subprocess

    status = 0
    commands = {
        "mypy": ["mypy"],
        "ruff": ["ruff", "check", *paths],
    }
    for tool, cmd in commands.items():
        if shutil.which(tool) is None:
            print(f"check: {tool} not installed; skipping")
            continue
        print(f"check: running {' '.join(cmd)}")
        if subprocess.call(cmd) != 0:
            status = 1
    return status


DEFAULT_CHECK_PATHS = ("src", "tests", "benchmarks")
DEFAULT_BASELINE = "bshm-baseline.json"


def _cmd_check(
    paths: list[str],
    list_rules: bool,
    refresh_schema_manifest: bool,
    external: bool,
    fmt: str = "text",
    output: str | None = None,
    baseline: str | None = None,
    no_baseline: bool = False,
    write_baseline_path: str | None = None,
    diff_base: str | None = None,
    no_cache: bool = False,
    cache_dir: str = ".bshm_cache",
) -> int:
    import json

    from .analysis.static import (
        SCHEMA_MANIFEST_NAME,
        BaselineError,
        all_rules,
        compute_schema_manifest,
        line_text_from_disk,
        render,
        run_check,
        write_baseline,
    )

    if list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.severity.value:7s} {rule.title}")
            print(f"        guards: {rule.rationale}")
        return 0
    service_dir = Path(__file__).resolve().parent / "service"
    if refresh_schema_manifest:
        manifest = compute_schema_manifest(service_dir / "checkpoint.py")
        out = service_dir / SCHEMA_MANIFEST_NAME
        out.write_text(json.dumps(manifest, indent=1, sort_keys=True) + "\n")
        print(f"schema manifest refreshed: {out}")
        print(
            "reminder: a field change must also bump TRACE_VERSION / "
            "CHECKPOINT_VERSION (docs/invariants.md, BSHM006)"
        )
        return 0
    if not paths:
        paths = [p for p in DEFAULT_CHECK_PATHS if Path(p).exists()] or ["src"]
    failed = _fail(
        *(
            f"path {p!r} does not exist" if not Path(p).exists() else None
            for p in paths
        ),
        _output_error(output, "report output") if output else None,
        "--baseline and --no-baseline are mutually exclusive"
        if baseline and no_baseline
        else None,
    )
    if failed:
        return failed

    if write_baseline_path is not None:
        report = run_check(
            paths, use_cache=not no_cache, cache_dir=cache_dir
        )
        n = write_baseline(write_baseline_path, report.findings, line_text_from_disk)
        print(
            f"bshm check: baseline with {n} finding(s) written to "
            f"{write_baseline_path}"
        )
        return 0

    baseline_path: str | None = baseline
    if baseline_path is None and not no_baseline and Path(DEFAULT_BASELINE).exists():
        baseline_path = DEFAULT_BASELINE
    try:
        report = run_check(
            paths,
            use_cache=not no_cache,
            cache_dir=cache_dir,
            baseline_path=baseline_path,
            diff_base=diff_base,
        )
    except (BaselineError, ValueError) as exc:
        return _fail(str(exc)) or 2
    rendered = render(fmt, report.findings, report.baselined, report.n_files)
    if output:
        Path(output).write_text(rendered + "\n")
        print(f"bshm check: {fmt} report written to {output}")
    else:
        print(rendered)
    status = 1 if report.findings else 0
    if external and _run_external_analyzers(paths) != 0:
        status = 1
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bshm",
        description="Busy-time scheduling on heterogeneous machines (IPDPS 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments")
    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment id, e.g. E1")
    run_p.add_argument("--scale", choices=("quick", "full"), default="full")
    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--scale", choices=("quick", "full"), default="full")
    all_p.add_argument("--save", help="persist artifacts under this directory")
    sub.add_parser("demo", help="30-second guided demo")
    sched_p = sub.add_parser("schedule", help="schedule a CSV job trace")
    sched_p.add_argument("trace", help="job trace CSV (size,arrival,departure[,name])")
    sched_p.add_argument("--ladder", required=True, help="ladder CSV (capacity,rate)")
    sched_p.add_argument(
        "--algorithm",
        default="auto",
        help="auto | dec-offline | inc-offline | gen-offline | dec-online | inc-online | gen-online",
    )
    sched_p.add_argument("--output", help="write the assignment CSV here")
    sched_p.add_argument("--report", help="write a markdown report here")
    gen_p = sub.add_parser("generate", help="synthesize a workload / ladder")
    gen_p.add_argument("--workload", default="uniform")
    gen_p.add_argument("--n", type=int, default=100)
    gen_p.add_argument("--seed", type=int, default=0)
    gen_p.add_argument("--out", required=True, help="job trace CSV to write")
    gen_p.add_argument("--ladder", dest="ladder_kind", help="dec | inc | ec2 | fig2")
    gen_p.add_argument("--ladder-out", help="ladder CSV to write")
    gen_p.add_argument("--m", type=int, default=3, help="ladder size")
    rec_p = sub.add_parser("recommend", help="rank catalogue type subsets")
    rec_p.add_argument("trace", help="job trace CSV")
    rec_p.add_argument("--ladder", required=True, help="catalogue CSV")
    rec_p.add_argument("--max-types", type=int, default=None)
    rec_p.add_argument("--estimate", choices=("lower_bound", "schedule"), default="lower_bound")
    serve_p = sub.add_parser("serve", help="streaming scheduler service (JSON lines over TCP)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8642, help="0 picks an ephemeral port")
    serve_p.add_argument(
        "--scheduler",
        default="auto",
        help="auto | dec | inc | general | first-fit",
    )
    serve_p.add_argument("--ladder", dest="ladder_path", help="ladder CSV (capacity,rate)")
    serve_p.add_argument("--ladder-kind", default="dec", help="dec | inc | ec2 | fig2 (when no --ladder)")
    serve_p.add_argument("--m", type=int, default=3, help="ladder size for --ladder-kind")
    serve_p.add_argument("--max-active", type=int, default=None, help="admission cap on concurrently active jobs")
    serve_p.add_argument("--trace-out", help="record the session trace here on shutdown")
    serve_p.add_argument("--wal", dest="wal_dir", help="write-ahead log directory (recovers it if non-empty)")
    serve_p.add_argument(
        "--fsync", choices=("always", "batch", "never"), default="batch",
        help="WAL durability policy (default: batch)",
    )
    serve_p.add_argument(
        "--compact-every", type=int, default=512,
        help="snapshot+prune the WAL every N events (0 disables; default 512)",
    )
    serve_p.add_argument(
        "--max-inflight", type=int, default=64,
        help="load-shedding threshold on in-flight requests (default 64)",
    )
    serve_p.add_argument(
        "--read-timeout", type=float, default=None,
        help="per-connection idle read timeout in seconds (default: none)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=1,
        help="worker shard processes behind a router (default 1: single loop)",
    )
    serve_p.add_argument(
        "--storage", default=None,
        help="event-log persistence backend: memory | sqlite:PATH "
        "(recovers a non-empty store; with --workers N, each shard "
        "gets its own store)",
    )
    recover_p = sub.add_parser(
        "recover",
        help="rebuild state from a WAL directory or sqlite store and report it",
    )
    recover_p.add_argument(
        "wal_dir",
        metavar="target",
        help="WAL directory (bshm serve --wal) or sqlite storage "
        "file / sqlite:PATH spec (bshm serve --storage)",
    )
    replay_p = sub.add_parser("replay", help="re-execute a recorded service trace")
    replay_p.add_argument("trace", help="trace JSONL recorded by the service")
    replay_p.add_argument("--checkpoint", dest="checkpoint_out", help="write a checkpoint JSON here")
    replay_p.add_argument(
        "--verify",
        action="store_true",
        help="assert the streaming cost equals a batch run_online of the same jobs",
    )
    replay_p.add_argument(
        "--to",
        help="HOST:PORT of a live server; stream the trace over TCP with retry/backoff",
    )
    lint_p = sub.add_parser("lint", help="sanity-check a job trace (and catalogue)")
    lint_p.add_argument("trace", help="job trace CSV (size,arrival,departure[,name])")
    lint_p.add_argument("--ladder", dest="ladder_path", help="ladder CSV (capacity,rate)")
    check_p = sub.add_parser(
        "check", help="invariant-aware static analysis (AST lint rules)"
    )
    check_p.add_argument(
        "paths", nargs="*", default=[],
        help="files/directories to analyze (default: src tests benchmarks)",
    )
    check_p.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    check_p.add_argument(
        "--format", dest="fmt", choices=("text", "json", "sarif"),
        default="text", help="output format (default: text)",
    )
    check_p.add_argument(
        "--output", help="write the report here instead of stdout"
    )
    check_p.add_argument(
        "--baseline",
        help=f"baseline JSON of accepted findings (default: {DEFAULT_BASELINE} "
        "when present)",
    )
    check_p.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any committed baseline (report everything)",
    )
    check_p.add_argument(
        "--write-baseline", dest="write_baseline_path", nargs="?",
        const=DEFAULT_BASELINE, default=None, metavar="PATH",
        help=f"accept all current findings into PATH (default {DEFAULT_BASELINE}) "
        "and exit 0",
    )
    check_p.add_argument(
        "--diff", dest="diff_base", metavar="REF",
        help="only report findings on lines changed since this git ref",
    )
    check_p.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-hash incremental cache",
    )
    check_p.add_argument(
        "--cache-dir", default=".bshm_cache",
        help="incremental cache directory (default: .bshm_cache)",
    )
    check_p.add_argument(
        "--refresh-schema-manifest",
        action="store_true",
        help="regenerate service/schema_manifest.json from checkpoint.py",
    )
    check_p.add_argument(
        "--external",
        action="store_true",
        help="also run mypy and ruff when installed (CI runs them required)",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.scale)
    if args.command == "all":
        return _cmd_all(args.scale, args.save)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "schedule":
        return _cmd_schedule(
            args.trace, args.ladder, args.algorithm, args.output, args.report
        )
    if args.command == "generate":
        return _cmd_generate(
            args.workload, args.n, args.seed, args.out,
            args.ladder_kind, args.ladder_out, args.m,
        )
    if args.command == "recommend":
        return _cmd_recommend(args.trace, args.ladder, args.max_types, args.estimate)
    if args.command == "serve":
        return _cmd_serve(
            args.host, args.port, args.scheduler, args.ladder_path,
            args.ladder_kind, args.m, args.max_active, args.trace_out,
            args.wal_dir, args.fsync, args.compact_every,
            args.max_inflight, args.read_timeout,
            args.workers, args.storage,
        )
    if args.command == "recover":
        return _cmd_recover(args.wal_dir)
    if args.command == "replay":
        return _cmd_replay(args.trace, args.checkpoint_out, args.verify, args.to)
    if args.command == "lint":
        return _cmd_lint(args.trace, args.ladder_path)
    if args.command == "check":
        return _cmd_check(
            args.paths, args.list_rules, args.refresh_schema_manifest,
            args.external, args.fmt, args.output, args.baseline,
            args.no_baseline, args.write_baseline_path, args.diff_base,
            args.no_cache, args.cache_dir,
        )
    return 2


if __name__ == "__main__":
    sys.exit(main())
