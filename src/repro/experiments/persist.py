"""Persisting experiment results to disk.

``save_result`` writes one :class:`ExperimentResult` as a directory of
artifacts (rows as CSV, figures as .txt, a manifest JSON with pass/fail and
notes); ``save_all`` runs and saves every experiment.  Exposed on the CLI as
``bshm all --save DIR``.  The manifest makes regression diffing trivial:
two runs of the same code and seeds produce byte-identical CSVs.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..analysis.tables import to_csv
from .harness import ExperimentResult

__all__ = ["save_result", "save_all", "load_manifest"]


def save_result(result: ExperimentResult, directory: str | Path) -> Path:
    """Write one experiment's artifacts; returns the experiment directory."""
    base = Path(directory) / result.experiment_id.lower()
    base.mkdir(parents=True, exist_ok=True)
    (base / "rows.csv").write_text(to_csv(result.rows))
    (base / "table.txt").write_text(result.table)
    for name, art in result.figures.items():
        (base / f"{name}.txt").write_text(art)
    manifest = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "passed": result.passed,
        "n_rows": len(result.rows),
        "notes": result.notes,
        "figures": sorted(result.figures),
    }
    (base / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return base


def save_all(directory: str | Path, scale: str = "full") -> dict[str, bool]:
    """Run every experiment and persist it; returns id -> passed."""
    from . import ALL_EXPERIMENTS, run_experiment

    outcomes: dict[str, bool] = {}
    for eid in ALL_EXPERIMENTS:
        result = run_experiment(eid, scale=scale)
        save_result(result, directory)
        outcomes[eid] = result.passed
    (Path(directory) / "summary.json").write_text(
        json.dumps({"scale": scale, "outcomes": outcomes}, indent=2)
    )
    return outcomes


def load_manifest(directory: str | Path, experiment_id: str) -> dict:
    """Read one experiment's manifest back."""
    path = Path(directory) / experiment_id.lower() / "manifest.json"
    return json.loads(path.read_text())
