"""E11 — Runtime scaling with instance size.

Wall-clock seconds per algorithm as the number of jobs grows.  The online
algorithms are near-linear (event loop + First-Fit scans); the offline
algorithms pay for the placement phase (pairwise conflict construction),
which is the documented hot spot.
"""

from __future__ import annotations

import time

from ..analysis.tables import render_table
from ..jobs.generators.workloads import poisson_workload
from ..machines.catalog import dec_ladder, inc_ladder
from ..offline.dec_offline import dec_offline
from ..offline.inc_offline import inc_offline
from ..online.dec_online import DecOnlineScheduler
from ..online.engine import run_online
from ..online.inc_online import IncOnlineScheduler
from ..lowerbound.bound import lower_bound
from .harness import ExperimentResult, rng_for, workload_stats

EXPERIMENT_ID = "E11"
TITLE = "Runtime scaling (seconds) vs number of jobs"


def run(scale: str = "full") -> ExperimentResult:
    sizes = (100, 400, 1600, 4000) if scale == "full" else (100, 400)
    dec = dec_ladder(3)
    inc = inc_ladder(3)
    rows = []
    for n in sizes:
        rng = rng_for(EXPERIMENT_ID, salt=n)
        jobs_dec = poisson_workload(n, rng, max_size=dec.capacity(3))
        jobs_inc = poisson_workload(n, rng, max_size=inc.capacity(3))
        timings = {}
        clock = time.perf_counter
        t0 = clock(); dec_offline(jobs_dec, dec); timings["DEC-OFFLINE"] = clock() - t0
        t0 = clock(); run_online(jobs_dec, DecOnlineScheduler(dec)); timings["DEC-ONLINE"] = clock() - t0
        t0 = clock(); inc_offline(jobs_inc, inc); timings["INC-OFFLINE"] = clock() - t0
        t0 = clock(); run_online(jobs_inc, IncOnlineScheduler(inc)); timings["INC-ONLINE"] = clock() - t0
        t0 = clock(); lower_bound(jobs_dec, dec); timings["lower-bound"] = clock() - t0
        stats = workload_stats(jobs_dec)
        rows.append(
            {
                "n": n,
                **{k: round(v, 4) for k, v in timings.items()},
                "peak": round(stats["peak_demand"], 2),
                "mu": round(stats["mu"], 2),
            }
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(rows, title=TITLE),
    )
