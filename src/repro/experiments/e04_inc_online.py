"""E4 — Section IV: INC-ONLINE is ((9/4)μ + 27/4)-competitive."""

from __future__ import annotations

from ..analysis.ratios import evaluate
from ..analysis.tables import render_table
from ..jobs.generators.workloads import adversarial_staircase, bounded_mu_workload
from ..machines.catalog import inc_ladder
from ..online.inc_online import IncOnlineScheduler
from .harness import ExperimentResult, online_algorithm, rng_for, scale_factor

EXPERIMENT_ID = "E4"
TITLE = "INC-ONLINE competitive ratio vs mu (Section IV bound: 2.25*mu + 6.75)"

MUS = (1.0, 2.0, 4.0, 8.0, 16.0)


def run(scale: str = "full") -> ExperimentResult:
    f = scale_factor(scale)
    n = max(30, int(250 * f))
    ladder = inc_ladder(4)
    algo = online_algorithm(IncOnlineScheduler)
    rows = []
    passed = True
    for mu in MUS:
        rng = rng_for(EXPERIMENT_ID, salt=int(mu * 10))
        jobs = bounded_mu_workload(n, rng, mu=mu, max_size=ladder.capacity(4))
        r = evaluate("INC-ONLINE", algo, jobs, ladder, workload=f"bounded-mu({mu:g})")
        bound = 2.25 * jobs.mu + 6.75
        passed &= r.ratio <= bound
        rows.append({**r.row(), "bound": round(bound, 2)})
    for levels in (8, 16, 32):
        jobs = adversarial_staircase(levels, max_size=ladder.capacity(4))
        r = evaluate("INC-ONLINE", algo, jobs, ladder, workload=f"staircase({levels})")
        bound = 2.25 * jobs.mu + 6.75
        passed &= r.ratio <= bound
        rows.append({**r.row(), "bound": round(bound, 2)})
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(rows, title=TITLE),
        passed=passed,
    )
