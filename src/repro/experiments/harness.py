"""Shared experiment infrastructure.

Each experiment module exposes ``run(scale="full"|"quick") -> ExperimentResult``.
``quick`` shrinks instance sizes for fast CI/bench runs; ``full`` produces
the numbers recorded in EXPERIMENTS.md.  Seeds are fixed per experiment so
results are reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..online.engine import run_online
from ..schedule.schedule import Schedule

__all__ = ["ExperimentResult", "online_algorithm", "scale_factor", "rng_for"]


@dataclass(slots=True)
class ExperimentResult:
    """What an experiment hands back to the harness / bench / docs."""

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    table: str = ""
    figures: dict[str, str] = field(default_factory=dict)  # name -> ascii art
    notes: list[str] = field(default_factory=list)
    passed: bool = True

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.table:
            parts.append(self.table)
        for name, art in self.figures.items():
            parts.append(f"-- {name} --\n{art}")
        for note in self.notes:
            parts.append(f"note: {note}")
        parts.append(f"status: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(parts)


def online_algorithm(
    scheduler_factory: Callable[[Ladder], object],
    *,
    metrics=None,
) -> Callable[[JobSet, Ladder], Schedule]:
    """Wrap an online scheduler class/factory as a (jobs, ladder) -> Schedule
    function so online and offline algorithms share the evaluation path.

    The replay goes through the streaming
    :class:`~repro.service.runtime.SchedulerRuntime` (via ``run_online``), so
    experiment runs exercise exactly the code path ``bshm serve`` uses in
    production; pass a :class:`~repro.service.metrics.MetricsRegistry` to
    collect per-decision latency and occupancy gauges alongside the result.
    """

    def fn(jobs: JobSet, ladder: Ladder) -> Schedule:
        return run_online(jobs, scheduler_factory(ladder), metrics=metrics)

    return fn


def scale_factor(scale: str) -> float:
    """Instance-size multiplier: quick runs are ~5x smaller."""
    if scale == "quick":
        return 0.2
    if scale == "full":
        return 1.0
    raise ValueError(f"unknown scale {scale!r} (use 'quick' or 'full')")


def rng_for(experiment_id: str, salt: int = 0) -> np.random.Generator:
    """Deterministic per-experiment RNG."""
    # do not use hash(): it is salted per process; derive a stable seed
    seed = sum((i + 1) * ord(c) for i, c in enumerate(experiment_id)) * 1000003 + salt
    return np.random.default_rng(seed % (2**32))
