"""Shared experiment infrastructure.

Each experiment module exposes ``run(scale="full"|"quick") -> ExperimentResult``.
``quick`` shrinks instance sizes for fast CI/bench runs; ``full`` produces
the numbers recorded in EXPERIMENTS.md.  Seeds are fixed per experiment so
results are reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..online.engine import run_online
from ..schedule.schedule import Schedule

__all__ = [
    "ExperimentResult",
    "online_algorithm",
    "scale_factor",
    "rng_for",
    "workload_stats",
]


@dataclass(slots=True)
class ExperimentResult:
    """What an experiment hands back to the harness / bench / docs."""

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    table: str = ""
    figures: dict[str, str] = field(default_factory=dict)  # name -> ascii art
    notes: list[str] = field(default_factory=list)
    passed: bool = True

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.table:
            parts.append(self.table)
        for name, art in self.figures.items():
            parts.append(f"-- {name} --\n{art}")
        for note in self.notes:
            parts.append(f"note: {note}")
        parts.append(f"status: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(parts)


def online_algorithm(
    scheduler_factory: Callable[[Ladder], object],
    *,
    metrics=None,
) -> Callable[[JobSet, Ladder], Schedule]:
    """Wrap an online scheduler class/factory as a (jobs, ladder) -> Schedule
    function so online and offline algorithms share the evaluation path.

    The replay goes through the streaming
    :class:`~repro.service.runtime.SchedulerRuntime` (via ``run_online``), so
    experiment runs exercise exactly the code path ``bshm serve`` uses in
    production; pass a :class:`~repro.service.metrics.MetricsRegistry` to
    collect per-decision latency and occupancy gauges alongside the result.
    """

    def fn(jobs: JobSet, ladder: Ladder) -> Schedule:
        return run_online(jobs, scheduler_factory(ladder), metrics=metrics)

    return fn


def scale_factor(scale: str) -> float:
    """Instance-size multiplier: quick runs are ~5x smaller."""
    if scale == "quick":
        return 0.2
    if scale == "full":
        return 1.0
    raise ValueError(f"unknown scale {scale!r} (use 'quick' or 'full')")


def workload_stats(jobs: JobSet) -> dict[str, float]:
    """Aggregate workload descriptors for an experiment row.

    ``n`` (jobs), ``peak_demand`` (``max_t s(J, t)``), ``busy_time`` (measure
    of the union of active intervals), ``volume`` (``Σ s(J)·len(I(J))``) and
    ``mu`` (max/min duration ratio).  Above the dispatch threshold everything
    runs on the columnar :mod:`repro.core.vectorized` kernels over one cached
    :meth:`JobSet.to_arrays` view, so the scaling experiments can afford to
    report these at 10^5-10^6 jobs.
    """
    from ..core.vectorized import use_vectorized, vec_busy_time

    if jobs.empty:
        return {"n": 0.0, "peak_demand": 0.0, "busy_time": 0.0, "volume": 0.0, "mu": 1.0}
    if use_vectorized(len(jobs)):
        a = jobs.to_arrays()
        durations = a.ends - a.starts
        return {
            "n": float(len(jobs)),
            "peak_demand": jobs.peak_demand(),  # dispatches to vec_peak_load
            "busy_time": vec_busy_time(a.starts, a.ends),
            "volume": float(np.dot(a.sizes, durations)),
            "mu": float(durations.max() / durations.min()),
        }
    return {
        "n": float(len(jobs)),
        "peak_demand": jobs.peak_demand(),
        "busy_time": jobs.busy_span().length,
        "volume": jobs.total_volume(),
        "mu": jobs.mu,
    }


def rng_for(experiment_id: str, salt: int = 0) -> np.random.Generator:
    """Deterministic per-experiment RNG."""
    # do not use hash(): it is salted per process; derive a stable seed
    seed = sum((i + 1) * ord(c) for i, c in enumerate(experiment_id)) * 1000003 + salt
    return np.random.default_rng(seed % (2**32))
