"""E17 (extension) — placement-order ablation.

Our greedy placer (DESIGN.md substitution 1) keeps the paper's 2-overlap
contract as a hard invariant and chart containment as a soft goal.  This
experiment quantifies the soft part across placement orders (arrival /
largest-size-first / longest-duration-first):

- overflow rate (jobs whose band exceeds the chart), and
- the downstream effect on DEC-OFFLINE's cost ratio.

This is the honesty check for the substitution: overflow is rare and its
cost effect is small regardless of order.
"""

from __future__ import annotations

from ..analysis.ratios import evaluate
from ..analysis.tables import render_table
from ..jobs.generators.workloads import day_night_workload, uniform_workload
from ..machines.catalog import dec_ladder
from ..offline.dec_offline import dec_offline
from ..placement.greedy import place_jobs
from .harness import ExperimentResult, rng_for, scale_factor

EXPERIMENT_ID = "E17"
TITLE = "Placement-order ablation: overflow rate and DEC-OFFLINE ratio"

ORDERS = ("arrival", "size", "duration")


def run(scale: str = "full") -> ExperimentResult:
    f = scale_factor(scale)
    n = max(40, int(300 * f))
    ladder = dec_ladder(3)
    gmax = ladder.capacity(3)
    workloads = {
        "uniform": uniform_workload(n, rng_for(EXPERIMENT_ID, 1), max_size=gmax),
        "day-night": day_night_workload(n, rng_for(EXPERIMENT_ID, 2), max_size=gmax),
    }
    rows = []
    for wname, jobs in workloads.items():
        for order in ORDERS:
            placement = place_jobs(jobs, order=order)
            overlap = placement.max_overlap()
            overflow = len(placement.overflowed)
            violations = len(placement.containment_violations())
            run_ = evaluate(
                f"DEC-OFFLINE[{order}]",
                lambda j, l, o=order: dec_offline(j, l, placement_order=o),
                jobs,
                ladder,
                workload=wname,
            )
            rows.append(
                {
                    "workload": wname,
                    "order": order,
                    "max overlap": overlap,
                    "overflow jobs": overflow,
                    "containment violations": violations,
                    "overflow %": round(100.0 * overflow / len(jobs), 2),
                    "DEC-OFFLINE ratio": round(run_.ratio, 4),
                }
            )
    passed = all(r["max overlap"] <= 2 for r in rows)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(rows, title=TITLE),
        passed=passed,
    )
