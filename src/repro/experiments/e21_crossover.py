"""E21 (extension) — where the crossover falls: load level vs strategy.

The paper's motivation: with volume discounts (DEC), *which* machine sizes
to rent matters when the workload does not saturate big machines.  This
experiment sweeps the arrival intensity of a Poisson workload on a DEC
ladder and locates the load at which "biggest VMs only" (LargestTypeFF)
overtakes the type-aware DEC-OFFLINE:

- at low load, DEC-OFFLINE wins (it parks small jobs on cheap small types);
- at high load, both converge (everything fills big machines) and the
  baseline's lack of strip overhead can put it slightly ahead;
- the crossover interval is reported explicitly.
"""

from __future__ import annotations

from ..analysis.crossover import find_crossover
from ..analysis.tables import render_table
from ..jobs.generators.workloads import poisson_workload
from ..machines.catalog import dec_ladder
from ..offline.dec_offline import dec_offline
from ..online.engine import run_online
from ..baselines.naive import LargestTypeFirstFit
from .harness import ExperimentResult, scale_factor

EXPERIMENT_ID = "E21"
TITLE = "Crossover: arrival intensity where 'biggest VMs only' catches up"

INTENSITIES = (0.05, 0.15, 0.5, 1.5, 5.0)


def run(scale: str = "full") -> ExperimentResult:
    f = scale_factor(scale)
    n = max(40, int(250 * f))
    ladder = dec_ladder(3)

    def make_instance(rate, rng):
        return poisson_workload(
            n, rng, rate=float(rate), mean_duration=4.0,
            max_size=ladder.capacity(3) / 3.0,
        )

    result = find_crossover(
        dec_offline,
        lambda j, l: run_online(j, LargestTypeFirstFit(l)),
        make_instance,
        ladder,
        list(INTENSITIES),
        seeds=3 if scale == "full" else 1,
    )
    rows = result.rows("DEC-OFFLINE", "LargestTypeFF")
    # expected shape: the type-aware algorithm wins at the lightest load
    passed = rows[0]["winner"] == "DEC-OFFLINE"
    exp = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(rows, title=TITLE),
        passed=passed,
    )
    if result.crossings:
        spans = ", ".join(f"({a:g}, {b:g})" for a, b in result.crossings)
        exp.notes.append(f"cost curves cross within intensity interval(s): {spans}")
    else:
        exp.notes.append("no crossover within the sweep: one strategy dominates")
    return exp
