"""E7 — True-optimum gaps on tiny instances (MILP oracle).

On instances small enough for the HiGHS MILP, we measure

- ``LB / OPT`` — how tight the Eq.-(1) lower bound is, and
- ``cost(alg) / OPT`` — true approximation ratios (not just LB ratios)

for the regime-matched offline/online algorithms.  The brute-force oracle
double-checks the MILP on the smallest instances.
"""

from __future__ import annotations

from ..analysis.tables import render_table
from ..exact.brute import brute_force_optimal
from ..exact.milp import solve_optimal
from ..jobs.generators.workloads import uniform_workload
from ..lowerbound.bound import lower_bound
from ..machines.catalog import dec_ladder, inc_ladder
from ..offline.dec_offline import dec_offline
from ..offline.inc_offline import inc_offline
from ..online.dec_online import DecOnlineScheduler
from ..online.engine import run_online
from ..online.inc_online import IncOnlineScheduler
from ..schedule.validate import assert_feasible
from .harness import ExperimentResult, rng_for

EXPERIMENT_ID = "E7"
TITLE = "Lower-bound tightness and true ratios on MILP-solvable instances"


def run(scale: str = "full") -> ExperimentResult:
    sizes = (4, 6, 8, 10) if scale == "full" else (4, 6)
    trials = 3 if scale == "full" else 1
    rows = []
    passed = True
    for regime, ladder, offline_fn, online_cls in (
        ("DEC", dec_ladder(3), dec_offline, DecOnlineScheduler),
        ("INC", inc_ladder(3), inc_offline, IncOnlineScheduler),
    ):
        for n in sizes:
            for t in range(trials):
                rng = rng_for(EXPERIMENT_ID, salt=hash_free_salt(regime, n, t))
                jobs = uniform_workload(n, rng, max_size=ladder.capacity(3))
                opt = solve_optimal(jobs, ladder)
                assert_feasible(opt.schedule, jobs)
                lb = lower_bound(jobs, ladder).value
                off = offline_fn(jobs, ladder)
                onl = run_online(jobs, online_cls(ladder))
                assert_feasible(off, jobs)
                assert_feasible(onl, jobs)
                if n <= 6:
                    bf = brute_force_optimal(jobs, ladder)
                    passed &= abs(bf.cost() - opt.cost) <= 1e-6 * max(1.0, opt.cost)
                passed &= lb <= opt.cost + 1e-9
                rows.append(
                    {
                        "regime": regime,
                        "n": n,
                        "trial": t,
                        "OPT": round(opt.cost, 3),
                        "LB/OPT": round(lb / opt.cost, 4),
                        "offline/OPT": round(off.cost() / opt.cost, 4),
                        "online/OPT": round(onl.cost() / opt.cost, 4),
                    }
                )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(rows, title=TITLE),
        passed=passed,
    )


def hash_free_salt(regime: str, n: int, t: int) -> int:
    """Stable integer salt without Python's randomized hash()."""
    return (1 if regime == "DEC" else 2) * 10000 + n * 100 + t
