"""E3 — Section IV: INC-OFFLINE is a 9-approximation."""

from __future__ import annotations

import time

from ..analysis.ratios import evaluate
from ..analysis.tables import render_table
from ..jobs.generators.workloads import (
    bursty_workload,
    day_night_workload,
    poisson_workload,
    uniform_workload,
)
from ..machines.catalog import inc_ladder
from ..offline.inc_offline import inc_offline
from .harness import ExperimentResult, rng_for, scale_factor

EXPERIMENT_ID = "E3"
TITLE = "INC-OFFLINE empirical approximation ratio (Section IV bound: 9)"
BOUND = 9.0

WORKLOADS = {
    "uniform": lambda n, rng, gmax: uniform_workload(n, rng, max_size=gmax),
    "poisson": lambda n, rng, gmax: poisson_workload(n, rng, max_size=gmax),
    "day-night": lambda n, rng, gmax: day_night_workload(n, rng, max_size=gmax),
    "bursty": lambda n, rng, gmax: bursty_workload(n, rng, max_size=gmax),
}


def run(scale: str = "full") -> ExperimentResult:
    f = scale_factor(scale)
    n = max(30, int(300 * f))
    rows = []
    worst = 0.0
    for m in (2, 3, 5):
        ladder = inc_ladder(m)
        for wname, make in WORKLOADS.items():
            rng = rng_for(EXPERIMENT_ID, salt=m * 100 + len(wname))
            jobs = make(n, rng, ladder.capacity(m))
            r = evaluate(
                "INC-OFFLINE", inc_offline, jobs, ladder, workload=f"{wname}/m={m}"
            )
            worst = max(worst, r.ratio)
            rows.append({**r.row(), "bound": BOUND})
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(rows, title=TITLE),
        passed=worst <= BOUND,
    )
    result.notes.append(f"worst measured ratio {worst:.3f} vs proven bound {BOUND}")

    # engine A/B wall time lives in the notes, not the rows: the golden
    # tables pin the row set, and the timing is environment-dependent anyway
    ladder = inc_ladder(5)
    jobs = uniform_workload(
        n, rng_for(EXPERIMENT_ID, salt=999), max_size=ladder.capacity(5)
    )
    t0 = time.perf_counter()
    inc_offline(jobs, ladder, engine="columnar")
    t_col = time.perf_counter() - t0
    t0 = time.perf_counter()
    inc_offline(jobs, ladder, engine="object")
    t_obj = time.perf_counter() - t0
    result.notes.append(
        f"engine wall time at n={len(jobs)} (m=5): object {t_obj * 1e3:.1f}ms, "
        f"columnar {t_col * 1e3:.1f}ms ({t_obj / max(t_col, 1e-9):.1f}x)"
    )
    return result
