"""E14 (extension) — the uniform-size ancestor problem.

BSHM restricted to one machine type and uniform job sizes is the classical
*interval scheduling with bounded parallelism* of the related work.  There,
an optimal zero-overlap placement exists (interval graphs are perfect), so
the specialized track-packing scheduler should beat the general 2-overlap
machinery.  This experiment compares, on uniform-size workloads:

- track packing (`uniform_track_schedule`, optimal coloring),
- homogeneous Dual Coloring (the general placement machinery),
- online First-Fit ([14]),

and verifies the coloring uses exactly ``max_concurrency`` tracks.
"""

from __future__ import annotations

import numpy as np

from ..analysis.tables import render_table
from ..jobs.job import Job
from ..jobs.jobset import JobSet
from ..lowerbound.bound import lower_bound
from ..machines.catalog import single_type_ladder
from ..offline.dual_coloring import dual_coloring_schedule
from ..offline.uniform import color_tracks, max_concurrency, uniform_track_schedule
from ..online.engine import run_online
from ..online.first_fit import FirstFitScheduler
from ..schedule.validate import assert_feasible
from .harness import ExperimentResult, rng_for, scale_factor

EXPERIMENT_ID = "E14"
TITLE = "Uniform-size special case: track packing vs general machinery"


def _uniform_jobs(n: int, rng: np.random.Generator, horizon: float = 80.0) -> JobSet:
    arrivals = rng.uniform(0, horizon, size=n)
    durations = rng.uniform(1.0, 8.0, size=n)
    return JobSet(
        Job(1.0, float(a), float(a + d), name=f"u{k}")
        for k, (a, d) in enumerate(zip(arrivals, durations))
    )


def run(scale: str = "full") -> ExperimentResult:
    f = scale_factor(scale)
    n = max(40, int(300 * f))
    rows = []
    passed = True
    for slots in (2, 4, 8):
        ladder = single_type_ladder(capacity=float(slots), rate=1.0)
        rng = rng_for(EXPERIMENT_ID, salt=slots)
        jobs = _uniform_jobs(n, rng)
        omega = max_concurrency(jobs)
        tracks = len(set(color_tracks(jobs).values()))
        passed &= tracks == omega  # coloring optimality

        lb = lower_bound(jobs, ladder).value
        contenders = {
            "track-packing": uniform_track_schedule(jobs, ladder, slots),
            "dual-coloring": dual_coloring_schedule(jobs, ladder, type_index=1),
            "first-fit (online)": run_online(jobs, FirstFitScheduler(ladder, 1)),
        }
        for name, sched in contenders.items():
            assert_feasible(sched, jobs)
            rows.append(
                {
                    "g (slots)": slots,
                    "algorithm": name,
                    "omega": omega,
                    "tracks": tracks if name == "track-packing" else "",
                    "cost": round(sched.cost(), 2),
                    "ratio": round(sched.cost() / lb, 4),
                    "machines": len(sched.machines()),
                }
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(rows, title=TITLE),
        passed=passed,
    )
