"""E6 — Head-to-head: paper algorithms vs practitioner baselines.

Six workloads × three ladder regimes.  The table reports the cost ratio to
the Eq.-(1) lower bound for every applicable algorithm, so "who wins, and by
how much" is directly visible.  Expected shape: the regime-matched paper
algorithm is at or near the best ratio; OneJobPerMachine loses badly on
packable workloads; LargestTypeFirstFit loses on light load over DEC
ladders but is competitive under heavy load.
"""

from __future__ import annotations

from ..analysis.ratios import evaluate_suite
from ..analysis.tables import render_table
from ..baselines.naive import CheapestFitGreedy, LargestTypeFirstFit, OneJobPerMachine
from ..jobs.generators.workloads import (
    adversarial_staircase,
    bounded_mu_workload,
    bursty_workload,
    day_night_workload,
    poisson_workload,
    uniform_workload,
)
from ..machines.catalog import dec_ladder, inc_ladder, paper_fig2_ladder
from ..offline.dec_offline import dec_offline
from ..offline.general_offline import general_offline
from ..offline.inc_offline import inc_offline
from ..online.dec_online import DecOnlineScheduler
from ..online.general_online import GeneralOnlineScheduler
from ..online.inc_online import IncOnlineScheduler
from .harness import ExperimentResult, online_algorithm, rng_for, scale_factor

EXPERIMENT_ID = "E6"
TITLE = "Algorithm comparison: cost / LB across workloads and regimes"


def _workloads(n: int, gmax: float, salt: int):
    rng = lambda s: rng_for(EXPERIMENT_ID, salt=salt * 10 + s)  # noqa: E731
    return {
        "uniform": uniform_workload(n, rng(1), max_size=gmax),
        "poisson": poisson_workload(n, rng(2), max_size=gmax),
        "day-night": day_night_workload(n, rng(3), max_size=gmax),
        "bursty": bursty_workload(n, rng(4), max_size=gmax),
        "bounded-mu(8)": bounded_mu_workload(n, rng(5), mu=8.0, max_size=gmax),
        "staircase": adversarial_staircase(16, max_size=gmax),
    }


def run(scale: str = "full") -> ExperimentResult:
    f = scale_factor(scale)
    n = max(30, int(200 * f))
    rows = []

    regimes = {
        "DEC": (
            dec_ladder(3),
            {
                "DEC-OFFLINE": dec_offline,
                "DEC-ONLINE": online_algorithm(DecOnlineScheduler),
                "GEN-OFFLINE": general_offline,
                "GEN-ONLINE": online_algorithm(GeneralOnlineScheduler),
            },
        ),
        "INC": (
            inc_ladder(3),
            {
                "INC-OFFLINE": inc_offline,
                "INC-ONLINE": online_algorithm(IncOnlineScheduler),
                "GEN-OFFLINE": general_offline,
                "GEN-ONLINE": online_algorithm(GeneralOnlineScheduler),
            },
        ),
        "GENERAL": (
            paper_fig2_ladder(),
            {
                "GEN-OFFLINE": general_offline,
                "GEN-ONLINE": online_algorithm(GeneralOnlineScheduler),
            },
        ),
    }
    baselines = {
        "OneJobPerMachine": online_algorithm(OneJobPerMachine),
        "LargestTypeFF": online_algorithm(LargestTypeFirstFit),
        "CheapestFitGreedy": online_algorithm(CheapestFitGreedy),
    }

    for regime_name, (ladder, algos) in regimes.items():
        instances = {
            f"{regime_name}/{w}": (jobs, ladder)
            for w, jobs in _workloads(n, ladder.capacity(ladder.m), len(regime_name)).items()
        }
        runs = evaluate_suite({**algos, **baselines}, instances)
        rows.extend(r.row() for r in runs)

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(
            rows, columns=["workload", "algorithm", "cost", "LB", "ratio", "machines"],
            title=TITLE,
        ),
    )
