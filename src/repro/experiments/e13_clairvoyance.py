"""E13 (extension) — the value of clairvoyance.

The paper's related work contrasts non-clairvoyant scheduling (lower bound
Omega(mu), [11]) with clairvoyant scheduling (Theta(sqrt(log mu)), [5]).
This extension experiment measures the gap empirically on DEC ladders:
DEC-ONLINE (non-clairvoyant) vs duration-classified First-Fit (clairvoyant)
vs DEC-OFFLINE (full knowledge), as mu grows.

Expected shape: the clairvoyant scheduler's ratio stays flat in mu while
the non-clairvoyant one inherits (mild, workload-dependent) mu-sensitivity;
offline remains the floor.
"""

from __future__ import annotations

from ..analysis.sweeps import Sweep
from ..analysis.tables import render_table
from ..jobs.generators.workloads import bounded_mu_workload
from ..machines.catalog import dec_ladder
from ..offline.dec_offline import dec_offline
from ..online.clairvoyant import DurationClassScheduler, run_clairvoyant
from ..online.dec_online import DecOnlineScheduler
from ..online.engine import run_online
from .harness import ExperimentResult, scale_factor

EXPERIMENT_ID = "E13"
TITLE = "Value of clairvoyance: ratio vs mu for online schedulers"


def run(scale: str = "full") -> ExperimentResult:
    f = scale_factor(scale)
    n = max(40, int(250 * f))
    ladder = dec_ladder(3)

    def make_instance(mu, rng):
        jobs = bounded_mu_workload(n, rng, mu=float(mu), max_size=ladder.capacity(3))
        return jobs, ladder

    algorithms = {
        "DEC-ONLINE (non-clairvoyant)": lambda j, l: run_online(
            j, DecOnlineScheduler(l)
        ),
        "DurationClassFF (clairvoyant)": lambda j, l: run_clairvoyant(
            j, DurationClassScheduler(l)
        ),
        "DEC-OFFLINE (full knowledge)": dec_offline,
    }
    sweep = Sweep(
        parameter="mu",
        values=(1.0, 4.0, 16.0, 64.0),
        seeds=3 if scale == "full" else 1,
    )
    sweep_rows = sweep.run(make_instance, algorithms)
    rows = [r.row() for r in sweep_rows]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(rows, title=TITLE),
        passed=all(r.mean_ratio < 14.0 for r in sweep_rows),
    )
