"""E20 (extension) — billing granularity: does the fluid model mislead?

The paper bills busy time continuously; clouds round up to billing periods.
This experiment re-prices the same schedules under per-period billing
(period = 0, 0.5, 1, 4 time units; mean job duration 3) and reports

- the billing overhead per algorithm (billed / fluid), and
- whether the algorithm *ranking* changes.

Expected shape: algorithms that open many briefly-busy machines (offline
strip machinery, one-job-per-machine) are penalized hardest by coarse
billing; First-Fit-style consolidation is robust.  The ranking is stable
for fine periods and can flip at periods comparable to job durations.
"""

from __future__ import annotations

from ..analysis.tables import render_table
from ..baselines.naive import OneJobPerMachine
from ..jobs.generators.workloads import day_night_workload
from ..lowerbound.bound import lower_bound
from ..machines.catalog import dec_ladder
from ..offline.dec_offline import dec_offline
from ..online.dec_online import DecOnlineScheduler
from ..online.engine import run_online
from ..schedule.billing import FLUID, BillingModel, billed_cost
from ..schedule.validate import assert_feasible
from .harness import ExperimentResult, rng_for, scale_factor

EXPERIMENT_ID = "E20"
TITLE = "Billing granularity: invoices under per-period rounding"

PERIODS = (0.0, 0.5, 1.0, 4.0)


def run(scale: str = "full") -> ExperimentResult:
    f = scale_factor(scale)
    n = max(50, int(300 * f))
    ladder = dec_ladder(3)
    rng = rng_for(EXPERIMENT_ID, 1)
    jobs = day_night_workload(n, rng, mean_duration=3.0, max_size=ladder.capacity(3))
    lb = lower_bound(jobs, ladder).value

    schedules = {
        "DEC-OFFLINE": dec_offline(jobs, ladder),
        "DEC-ONLINE": run_online(jobs, DecOnlineScheduler(ladder)),
        "OneJobPerMachine": run_online(jobs, OneJobPerMachine(ladder)),
    }
    for sched in schedules.values():
        assert_feasible(sched, jobs)

    rows = []
    passed = True
    for period in PERIODS:
        model = FLUID if period == 0 else BillingModel(period=period)
        for name, sched in schedules.items():
            fluid = sched.cost()
            billed = billed_cost(sched, model)
            passed &= billed >= fluid - 1e-9  # rounding is upward
            rows.append(
                {
                    "billing period": period,
                    "algorithm": name,
                    "fluid cost": round(fluid, 1),
                    "billed cost": round(billed, 1),
                    "overhead": round(billed / fluid, 4),
                    "billed/LB": round(billed / lb, 3),
                }
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(rows, title=TITLE),
        passed=passed,
    )
