"""E9 — Figure 2 regeneration: the machine-type forest.

Builds the Section-V forest for an 8-type general ladder (the structure of
the paper's Fig. 2 example: 3 trees over consecutive index ranges) and
validates the paper's structural claims: each tree spans consecutive types,
each root is its tree's highest index, and every node's amortized rate is
below that of all types in the subtrees rooted at its higher-indexed
siblings.
"""

from __future__ import annotations

from ..analysis.tables import render_table
from ..machines.catalog import paper_fig2_ladder
from ..viz.forest_viz import render_forest
from .harness import ExperimentResult

EXPERIMENT_ID = "E9"
TITLE = "Figure 2: forest construction over 8 machine types"


def run(scale: str = "full") -> ExperimentResult:
    ladder = paper_fig2_ladder()
    forest = ladder.forest()
    art = render_forest(forest)

    rows = []
    claims_ok = True
    for root in forest.roots:
        lo, hi = forest.subtree_span(root)
        consecutive = sorted(forest.subtree(root)) == list(range(lo, hi + 1))
        claims_ok &= consecutive and hi == root
        rows.append(
            {
                "tree root": root,
                "span": f"{lo}..{hi}",
                "consecutive": consecutive,
                "root is max index": hi == root,
            }
        )

    # sibling claim: a node's amortized rate is lower than every type in the
    # subtrees rooted at its higher-indexed siblings
    sibling_ok = True
    for parent, kids in forest.children.items():
        for a_idx, a in enumerate(kids):
            for b in kids[a_idx + 1 :]:
                lo_a = min(forest.subtree(a))
                if a < b:
                    low, high = a, b
                else:
                    low, high = b, a
                rho_low = ladder.type(low).amortized_rate
                for member in forest.subtree(high):
                    sibling_ok &= rho_low <= ladder.type(member).amortized_rate + 1e-12
    claims_ok &= sibling_ok

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(rows, title=TITLE),
        figures={"fig2-forest": art},
        passed=claims_ok and len(forest.roots) == 3,
    )
    result.notes.append(
        f"{len(forest.roots)} trees (paper's example: 3); sibling amortized-rate claim "
        + ("holds" if sibling_ok else "VIOLATED")
    )
    return result
