"""E10 — Ablations of the paper's design constants.

Three knobs, each motivated by a specific choice in the paper:

1. **Offline bottom-region factor** (paper: ``B_i = 2 (ratio - 1)`` strips).
   Smaller factors push more jobs to expensive high types; larger factors
   keep more cheap machines busy.
2. **Online group budget factor** (paper: ``4 (ratio - 1)`` per group).
3. **Strip divisor** (paper: strips of height ``g/2``).  Finer strips mean
   more, smaller machines-per-strip — the 2-overlap argument still applies.

Each row reports the cost ratio to LB on the same workloads, so the table
shows whether the paper's constants sit in a reasonable spot.
"""

from __future__ import annotations

from ..analysis.ratios import evaluate
from ..analysis.tables import render_table
from ..jobs.generators.workloads import day_night_workload, uniform_workload
from ..machines.catalog import dec_ladder
from ..offline.dec_offline import dec_offline
from ..online.dec_online import DecOnlineScheduler
from .harness import ExperimentResult, online_algorithm, rng_for, scale_factor

EXPERIMENT_ID = "E10"
TITLE = "Ablations: bottom-region factor, online budget factor, strip divisor"


def run(scale: str = "full") -> ExperimentResult:
    f = scale_factor(scale)
    n = max(40, int(250 * f))
    ladder = dec_ladder(3)
    gmax = ladder.capacity(3)
    rng1 = rng_for(EXPERIMENT_ID, salt=1)
    rng2 = rng_for(EXPERIMENT_ID, salt=2)
    workloads = {
        "uniform": uniform_workload(n, rng1, max_size=gmax),
        "day-night": day_night_workload(n, rng2, max_size=gmax),
    }
    rows = []

    for wname, jobs in workloads.items():
        for factor in (1.0, 2.0, 4.0):
            fn = lambda j, l, ff=factor: dec_offline(j, l, budget_factor=ff)  # noqa: E731
            r = evaluate(f"DEC-OFFLINE[b={factor:g}]", fn, jobs, ladder, workload=wname)
            rows.append({**r.row(), "knob": "offline budget_factor", "value": factor})
        for divisor in (2.0, 3.0, 4.0):
            fn = lambda j, l, dd=divisor: dec_offline(j, l, strip_divisor=dd)  # noqa: E731
            r = evaluate(f"DEC-OFFLINE[d={divisor:g}]", fn, jobs, ladder, workload=wname)
            rows.append({**r.row(), "knob": "strip_divisor", "value": divisor})
        for factor in (1.0, 2.0, 4.0, 8.0):
            fn = online_algorithm(
                lambda l, ff=factor: DecOnlineScheduler(l, budget_factor=ff)
            )
            r = evaluate(f"DEC-ONLINE[b={factor:g}]", fn, jobs, ladder, workload=wname)
            rows.append({**r.row(), "knob": "online budget_factor", "value": factor})

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(
            rows,
            columns=["workload", "knob", "value", "algorithm", "ratio", "machines"],
            title=TITLE,
        ),
    )
