"""E5 — Section V: general-case algorithms, ratio shape vs sqrt(m).

The paper *conjectures* an O(sqrt(m)) approximation for GEN-OFFLINE and
O(sqrt(m) mu) for GEN-ONLINE.  We measure the ratio across ladder widths and
report ``ratio / sqrt(m)``: the conjecture predicts this column stays
bounded as m grows.
"""

from __future__ import annotations

import math

from ..analysis.ratios import evaluate
from ..analysis.tables import render_table
from ..jobs.generators.workloads import uniform_workload
from ..machines.catalog import paper_fig2_ladder, random_general_ladder
from ..offline.general_offline import general_offline
from ..online.general_online import GeneralOnlineScheduler
from .harness import ExperimentResult, online_algorithm, rng_for, scale_factor

EXPERIMENT_ID = "E5"
TITLE = "General-case ratios vs m (Section V conjecture: O(sqrt(m)))"


def run(scale: str = "full") -> ExperimentResult:
    f = scale_factor(scale)
    n = max(40, int(300 * f))
    rows = []
    online_fn = online_algorithm(GeneralOnlineScheduler)
    ladders = {f"random(m={m})": None for m in (2, 4, 8)}
    for m in (2, 4, 8):
        rng = rng_for(EXPERIMENT_ID, salt=m)
        ladders[f"random(m={m})"] = random_general_ladder(m, rng)
    ladders["fig2(m=8)"] = paper_fig2_ladder()

    for lname, ladder in ladders.items():
        rng = rng_for(EXPERIMENT_ID, salt=1000 + ladder.m)
        jobs = uniform_workload(n, rng, max_size=ladder.capacity(ladder.m))
        for aname, fn in (("GEN-OFFLINE", general_offline), ("GEN-ONLINE", online_fn)):
            r = evaluate(aname, fn, jobs, ladder, workload=lname)
            rows.append(
                {
                    **r.row(),
                    "m": ladder.m,
                    "regime": ladder.regime.value,
                    "ratio/sqrt(m)": round(r.ratio / math.sqrt(ladder.m), 4),
                }
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(rows, title=TITLE),
        passed=all(row["ratio/sqrt(m)"] < 14.0 for row in rows),
    )
