"""E19 (extension) — how much lookahead buys: windowed semi-online.

Between the paper's offline (everything known) and non-clairvoyant online
(nothing known) sits the practical batcher: plan all jobs arriving within a
window of width W with the offline algorithm, window by window.  W = 0 is
fully online; W = horizon is fully offline (minus cross-window machine
sharing, which this realization forgoes).

Expected shape: the ratio improves from the online level toward the offline
level as W grows, with diminishing returns once W passes the typical job
duration — quantifying the marginal value of arrival lookahead.
"""

from __future__ import annotations

from ..analysis.ratios import evaluate
from ..analysis.tables import render_table
from ..jobs.generators.workloads import poisson_workload
from ..machines.catalog import dec_ladder
from ..offline.dec_offline import dec_offline
from ..online.dec_online import DecOnlineScheduler
from ..online.engine import run_online
from ..online.windowed import windowed_schedule
from .harness import ExperimentResult, rng_for, scale_factor

EXPERIMENT_ID = "E19"
TITLE = "Windowed semi-online: ratio vs planning-window width"

WINDOWS = (0.5, 2.0, 8.0, 32.0, 128.0)


def run(scale: str = "full") -> ExperimentResult:
    f = scale_factor(scale)
    n = max(60, int(400 * f))
    ladder = dec_ladder(3)
    rng = rng_for(EXPERIMENT_ID, 1)
    jobs = poisson_workload(n, rng, rate=2.0, mean_duration=5.0, max_size=ladder.capacity(3))
    rows = []

    online_run = evaluate(
        "DEC-ONLINE (W=0)",
        lambda j, l: run_online(j, DecOnlineScheduler(l)),
        jobs,
        ladder,
        workload="poisson",
    )
    rows.append({**online_run.row(), "window": 0.0})
    for window in WINDOWS:
        r = evaluate(
            f"windowed(W={window:g})",
            lambda j, l, w=window: windowed_schedule(j, l, dec_offline, window=w),
            jobs,
            ladder,
            workload="poisson",
        )
        rows.append({**r.row(), "window": window})
    offline_run = evaluate("DEC-OFFLINE (full)", dec_offline, jobs, ladder, workload="poisson")
    rows.append({**offline_run.row(), "window": float("inf")})

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(
            rows, columns=["algorithm", "window", "cost", "ratio", "machines"],
            title=TITLE,
        ),
        passed=all(row["ratio"] < 14.0 for row in rows),
    )
