"""E12 — Section II: the power-of-2 normalization costs at most 2x.

EC2-like ladders (realistic non-power-of-2 pricing) are normalized; the
general-case algorithms run on the normalized ladder and the resulting
schedule is realized back on the original ladder.  The paper's claim:

    cost(realized on original)  <=  cost(on normalized)
                                <=  2 * (what the same algorithm could have
                                          achieved with exact rates)

We verify the first inequality exactly and report the realized/normalized
ratio (the empirical normalization overhead) plus the ratio to the original
ladder's lower bound.
"""

from __future__ import annotations

from ..analysis.tables import render_table
from ..jobs.generators.workloads import day_night_workload, uniform_workload
from ..lowerbound.bound import lower_bound
from ..machines.catalog import ec2_like_ladder
from ..machines.normalization import normalize
from ..offline.general_offline import general_offline
from ..schedule.validate import assert_feasible
from .harness import ExperimentResult, rng_for, scale_factor

EXPERIMENT_ID = "E12"
TITLE = "Normalization overhead on EC2-like ladders (Section II bound: 2x)"


def run(scale: str = "full") -> ExperimentResult:
    f = scale_factor(scale)
    n = max(40, int(250 * f))
    rows = []
    passed = True
    for exponent in (0.7, 0.85, 1.1, 1.25):
        original = ec2_like_ladder(5, price_exponent=exponent)
        norm = normalize(original)
        rng = rng_for(EXPERIMENT_ID, salt=int(exponent * 100))
        for wname, jobs in {
            "uniform": uniform_workload(n, rng, max_size=norm.normalized.capacity(norm.normalized.m)),
            "day-night": day_night_workload(
                n, rng, max_size=norm.normalized.capacity(norm.normalized.m)
            ),
        }.items():
            schedule_norm = general_offline(jobs, norm.normalized)
            assert_feasible(schedule_norm, jobs)
            schedule_orig = norm.realize_schedule(schedule_norm)
            assert_feasible(schedule_orig, jobs)
            lb_orig = lower_bound(jobs, original).value
            cost_n = schedule_norm.cost()
            cost_o = schedule_orig.cost()
            passed &= cost_o <= cost_n + 1e-9  # rounding was upward
            passed &= cost_n <= 2.0 * cost_o + 1e-9
            rows.append(
                {
                    "price_exp": exponent,
                    "workload": wname,
                    "m_norm": norm.normalized.m,
                    "regime": original.regime.value,
                    "cost(norm rates)": round(cost_n, 2),
                    "cost(real rates)": round(cost_o, 2),
                    "overhead": round(cost_n / cost_o, 4),
                    "real/LB": round(cost_o / lb_orig, 4),
                }
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(rows, title=TITLE),
        passed=passed,
    )
