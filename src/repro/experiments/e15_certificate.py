"""E15 (extension) — executing the Theorem-2 proof on real runs.

Runs the full certificate machinery of
:mod:`repro.analysis.certificates` on DEC-ONLINE schedules:

- Lemma 1: the reference configuration ``M(t)`` costs at most 4x the
  optimal configuration at every instant (we report the worst factor);
- Lemma 3: every job's active interval is contained in the extended
  interval family ``I'_{i,j}`` of its machine slot;
- the resulting *certified* bound ``8 sum len(I'_{i,j}) r_i`` — a per-run
  upper bound on DEC-ONLINE's cost that the proof guarantees is at most
  ``32 (mu+1) OPT``.

The table shows actual cost <= certified bound <= 32(mu+1) * LB on every
instance — the theorem's chain of inequalities, evaluated end to end.
"""

from __future__ import annotations

from ..analysis.certificates import certify_dec_online
from ..analysis.tables import render_table
from ..jobs.generators.workloads import bounded_mu_workload, uniform_workload
from ..lowerbound.bound import lower_bound
from ..machines.catalog import dec_ladder
from ..online.dec_online import DecOnlineScheduler
from ..online.engine import run_online
from .harness import ExperimentResult, rng_for, scale_factor

EXPERIMENT_ID = "E15"
TITLE = "Theorem-2 certificate: Lemmas 1 & 3 executed on DEC-ONLINE runs"


def run(scale: str = "full") -> ExperimentResult:
    f = scale_factor(scale)
    n = max(30, int(150 * f))
    ladder = dec_ladder(3)
    rows = []
    passed = True
    cases = [("uniform", None), ("mu=2", 2.0), ("mu=8", 8.0), ("mu=32", 32.0)]
    for wname, mu in cases:
        rng = rng_for(EXPERIMENT_ID, salt=len(wname) + int(mu or 0))
        if mu is None:
            jobs = uniform_workload(n, rng, max_size=ladder.capacity(3))
        else:
            jobs = bounded_mu_workload(n, rng, mu=mu, max_size=ladder.capacity(3))
        lb = lower_bound(jobs, ladder)
        sched = run_online(jobs, DecOnlineScheduler(ladder))
        cert = certify_dec_online(jobs, ladder, sched, lb=lb)
        theorem_line = 32.0 * (jobs.mu + 1.0) * lb.value
        chain_ok = (
            cert.lemma1_holds
            and not cert.lemma3_violations
            and cert.actual_cost <= cert.certified_bound + 1e-6
            and cert.certified_bound <= theorem_line + 1e-6
        )
        passed &= chain_ok
        rows.append(
            {
                "workload": wname,
                "mu": round(jobs.mu, 2),
                "lemma1 worst (<=4)": round(cert.lemma1_worst_factor, 3),
                "lemma3 violations": len(cert.lemma3_violations),
                "cost": round(cert.actual_cost, 1),
                "certified bound": round(cert.certified_bound, 1),
                "32(mu+1)*LB": round(theorem_line, 1),
                "chain holds": chain_ok,
            }
        )
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(rows, title=TITLE),
        passed=passed,
    )
    result.notes.append(
        "chain: cost <= 8*sum len(I'_{i,j}) r_i <= 32(mu+1)*LB, per Theorem 2"
    )
    return result
