"""E18 (extension) — hard-instance search: how tight are the constants?

Randomized + local search for instances maximizing ``cost / LB`` for each
offline algorithm on its home regime.  The search plateaus well below the
proven bounds (14, 9, 14·√m) — evidence that the paper's constants are
analysis artifacts for non-adversarial inputs — but noticeably above the
average-case ratios of E1/E3/E5, so the search does find genuinely harder
structure (big/small size mixes and staircases).
"""

from __future__ import annotations

from ..analysis.hardness import search_hard_instance
from ..analysis.tables import render_table
from ..machines.catalog import dec_ladder, inc_ladder, paper_fig2_ladder
from ..offline.dec_offline import dec_offline
from ..offline.general_offline import general_offline
from ..offline.inc_offline import inc_offline
from .harness import ExperimentResult

EXPERIMENT_ID = "E18"
TITLE = "Hard-instance search: worst found ratio vs proven bound"


def run(scale: str = "full") -> ExperimentResult:
    budget = (40, 40) if scale == "full" else (8, 8)
    cases = [
        ("DEC-OFFLINE", dec_offline, dec_ladder(3), 14.0),
        ("INC-OFFLINE", inc_offline, inc_ladder(3), 9.0),
        ("GEN-OFFLINE", general_offline, paper_fig2_ladder(), 14.0 * 8**0.5),
    ]
    rows = []
    passed = True
    for name, fn, ladder, bound in cases:
        found = search_hard_instance(
            fn,
            ladder,
            seed=2020,
            n_jobs=25,
            random_rounds=budget[0],
            mutate_rounds=budget[1],
        )
        passed &= found.ratio <= bound
        rows.append(
            {
                "algorithm": name,
                "m": ladder.m,
                "worst ratio found": round(found.ratio, 4),
                "proven bound": round(bound, 2),
                "slack": round(bound / found.ratio, 2),
                "found in round": found.generation,
                "jobs": len(found.jobs),
            }
        )
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(rows, title=TITLE),
        passed=passed,
    )
    result.notes.append(
        "search budget: "
        f"{budget[0]} random + {budget[1]} mutation rounds per algorithm"
    )
    return result
