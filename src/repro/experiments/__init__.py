"""Experiment registry: one module per experiment id (see DESIGN.md)."""

from __future__ import annotations

from . import (
    e01_dec_offline,
    e02_dec_online,
    e03_inc_offline,
    e04_inc_online,
    e05_general,
    e06_comparison,
    e07_opt_gap,
    e08_fig1,
    e09_fig2,
    e10_ablations,
    e11_scaling,
    e12_normalization,
    e13_clairvoyance,
    e14_uniform,
    e15_certificate,
    e16_tightness,
    e17_placement,
    e18_hardness,
    e19_windowed,
    e20_billing,
    e21_crossover,
)
from .harness import ExperimentResult

ALL_EXPERIMENTS = {
    "E1": e01_dec_offline,
    "E2": e02_dec_online,
    "E3": e03_inc_offline,
    "E4": e04_inc_online,
    "E5": e05_general,
    "E6": e06_comparison,
    "E7": e07_opt_gap,
    "E8": e08_fig1,
    "E9": e09_fig2,
    "E10": e10_ablations,
    "E11": e11_scaling,
    "E12": e12_normalization,
    "E13": e13_clairvoyance,
    "E14": e14_uniform,
    "E15": e15_certificate,
    "E16": e16_tightness,
    "E17": e17_placement,
    "E18": e18_hardness,
    "E19": e19_windowed,
    "E20": e20_billing,
    "E21": e21_crossover,
}

__all__ = ["ALL_EXPERIMENTS", "ExperimentResult", "run_experiment"]


def run_experiment(experiment_id: str, scale: str = "full") -> ExperimentResult:
    """Run one experiment by id ('E1'..'E12')."""
    module = ALL_EXPERIMENTS.get(experiment_id.upper())
    if module is None:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(ALL_EXPERIMENTS)}"
        )
    return module.run(scale=scale)
