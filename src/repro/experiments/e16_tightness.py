"""E16 (extension) — tightness of the mu-dependence (the [11] lower bound).

The paper notes (end of Section III) that Theorem 2's O(mu) is
asymptotically tight because no deterministic non-clairvoyant algorithm
beats mu-competitiveness [11].  This experiment *executes* the [11]
adversary against DEC-ONLINE: a batch of small jobs is placed, the
adversary keeps exactly one job per opened machine alive for mu times the
others' duration, and the measured ratio is recorded.

Expected shape (and the point of the experiment):

- DEC-ONLINE's ratio **grows with mu** on the trap — the mu in Theorem 2 is
  real, not an analysis artifact;
- the clairvoyant duration-classified scheduler is immune (flat ratio): it
  sees the long tails coming and co-locates the survivors;
- both stay below their theoretical lines.
"""

from __future__ import annotations

from ..analysis.tables import render_table
from ..jobs.generators.adversary import batch_trap
from ..lowerbound.bound import lower_bound
from ..machines.catalog import dec_ladder
from ..online.clairvoyant import DurationClassScheduler, run_clairvoyant
from ..online.dec_online import DecOnlineScheduler
from ..online.engine import run_online
from ..schedule.validate import assert_feasible
from .harness import ExperimentResult

EXPERIMENT_ID = "E16"
TITLE = "Tightness of O(mu): the [11] adaptive adversary vs DEC-ONLINE"


def run(scale: str = "full") -> ExperimentResult:
    mus = (2.0, 4.0, 8.0, 16.0, 32.0, 64.0) if scale == "full" else (2.0, 8.0, 32.0)
    ladder = dec_ladder(3)
    rows = []
    ratios = []
    passed = True
    for mu in mus:
        jobs = batch_trap(DecOnlineScheduler, ladder, mu=mu)
        lb = lower_bound(jobs, ladder).value
        online = run_online(jobs, DecOnlineScheduler(ladder))
        clair = run_clairvoyant(jobs, DurationClassScheduler(ladder))
        assert_feasible(online, jobs)
        assert_feasible(clair, jobs)
        ratio = online.cost() / lb
        ratios.append(ratio)
        passed &= ratio <= 32.0 * (jobs.mu + 1.0)
        rows.append(
            {
                "mu": jobs.mu,
                "n": len(jobs),
                "DEC-ONLINE ratio": round(ratio, 3),
                "clairvoyant ratio": round(clair.cost() / lb, 3),
                "bound 32(mu+1)": round(32 * (jobs.mu + 1), 0),
            }
        )
    # the trap must actually demonstrate growth: last ratio well above first
    grows = ratios[-1] > 1.5 * ratios[0]
    passed &= grows
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(rows, title=TITLE),
        passed=passed,
    )
    result.notes.append(
        f"adversarial ratio grows {ratios[0]:.2f} -> {ratios[-1]:.2f} across the mu "
        "sweep (clairvoyant stays flat): Theorem 2's mu-dependence is intrinsic"
    )
    return result
