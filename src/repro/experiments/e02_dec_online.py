"""E2 — Theorem 2: DEC-ONLINE is 32(μ+1)-competitive.

Sweeps the max/min duration ratio μ and reports ``cost / LB`` against the
``32(μ+1)`` curve.  The interesting *shape*: the measured ratio grows far
slower than linearly in μ on stochastic workloads, but the staircase
adversary (last rows) shows genuine μ-sensitivity of First-Fit style
packing.
"""

from __future__ import annotations

from ..analysis.ratios import evaluate
from ..analysis.tables import render_table
from ..jobs.generators.workloads import adversarial_staircase, bounded_mu_workload
from ..machines.catalog import dec_ladder
from ..online.dec_online import DecOnlineScheduler
from .harness import ExperimentResult, online_algorithm, rng_for, scale_factor

EXPERIMENT_ID = "E2"
TITLE = "DEC-ONLINE competitive ratio vs mu (Theorem 2 bound: 32(mu+1))"

MUS = (1.0, 2.0, 4.0, 8.0, 16.0)


def run(scale: str = "full") -> ExperimentResult:
    f = scale_factor(scale)
    n = max(30, int(250 * f))
    ladder = dec_ladder(3)
    algo = online_algorithm(DecOnlineScheduler)
    rows = []
    passed = True
    for mu in MUS:
        rng = rng_for(EXPERIMENT_ID, salt=int(mu * 10))
        jobs = bounded_mu_workload(n, rng, mu=mu, max_size=ladder.capacity(3))
        r = evaluate("DEC-ONLINE", algo, jobs, ladder, workload=f"bounded-mu({mu:g})")
        bound = 32.0 * (jobs.mu + 1.0)
        passed &= r.ratio <= bound
        rows.append({**r.row(), "bound": round(bound, 1)})
    # deterministic staircase adversary
    for levels in (8, 16, 32):
        jobs = adversarial_staircase(levels, max_size=ladder.capacity(3))
        r = evaluate("DEC-ONLINE", algo, jobs, ladder, workload=f"staircase({levels})")
        bound = 32.0 * (jobs.mu + 1.0)
        passed &= r.ratio <= bound
        rows.append({**r.row(), "bound": round(bound, 1)})
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(rows, title=TITLE),
        passed=passed,
    )
    return result
