"""E8 — Figure 1 regeneration: job placement in the demand chart.

Reproduces the paper's Fig. 1 on a fixed 12-job example: the demand chart,
the placed rectangles and the g/2 strip boundaries, rendered in ASCII.
The bench asserts the placement contract (≤ 2-fold overlap, zero containment
violations on this example).
"""

from __future__ import annotations

from ..analysis.tables import render_table
from ..jobs.job import Job
from ..jobs.jobset import JobSet
from ..placement.greedy import place_jobs
from ..placement.strips import split_into_strips
from ..viz.ascii_chart import render_placement
from .harness import ExperimentResult

EXPERIMENT_ID = "E8"
TITLE = "Figure 1: job placement inside the demand chart"


def fig1_jobs() -> JobSet:
    """A hand-picked 12-job instance with the staggered look of Fig. 1."""
    spec = [
        # (size, arrival, departure)
        (1.5, 0.0, 5.5),
        (1.0, 0.5, 3.5),
        (3.5, 1.5, 9.0),
        (2.0, 3.5, 7.5),
        (2.5, 4.5, 10.5),
        (1.5, 5.5, 8.5),
        (2.0, 5.5, 12.5),
        (2.0, 6.5, 10.0),
        (1.5, 8.5, 13.0),
        (3.0, 9.5, 14.0),
        (0.5, 10.5, 12.5),
        (1.0, 10.5, 13.5),
    ]
    return JobSet(Job(s, a, d, name=f"F{i}") for i, (s, a, d) in enumerate(spec))


def run(scale: str = "full") -> ExperimentResult:
    jobs = fig1_jobs()
    placement = place_jobs(jobs)
    g = 4.0  # illustrative machine capacity; strips of height g/2
    strips = split_into_strips(placement, g / 2.0)
    art = render_placement(placement, strip_height=g / 2.0)

    overlap = placement.max_overlap()
    violations = placement.containment_violations()
    rows = [
        {
            "jobs": len(jobs),
            "peak demand": round(placement.chart.peak(), 3),
            "max overlap": overlap,
            "containment violations": len(violations),
            "strips used": strips.strips_used(),
        }
    ]
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        table=render_table(rows, title=TITLE),
        figures={"fig1-demand-chart-placement": art},
        passed=overlap <= 2 and not violations,
    )
    return result
