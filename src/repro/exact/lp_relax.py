"""LP relaxation of the exact MILP: a third point between LB and OPT.

Relaxing the assignment variables of the MILP in :mod:`repro.exact.milp` to
``x in [0, 1]`` yields a polynomial-time bound ``LP_OPT`` with

    Eq.(1) lower bound  <=  (not comparable in general)  LP_OPT  <=  OPT.

``LP_OPT <= OPT`` always (it is a relaxation); the comparison against the
Eq.-(1) bound is interesting precisely because neither dominates in theory:
Eq. (1) relaxes *machine persistence* (jobs may hop between machines over
time) while the LP relaxes *integrality* (jobs may split across machines).
E7-style tests measure both on the same instances.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize, sparse

from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder

__all__ = ["lp_relaxation_bound"]


def lp_relaxation_bound(
    jobs: JobSet,
    ladder: Ladder,
    *,
    copies_per_type: int | None = None,
) -> float:
    """Optimal value of the MILP's LP relaxation (a lower bound on OPT)."""
    job_list = list(jobs)
    n = len(job_list)
    if n == 0:
        return 0.0
    if n > 30:
        raise ValueError("LP oracle intended for small instances (<= 30 jobs)")
    copies = copies_per_type if copies_per_type is not None else n
    segments = jobs.segments()
    machines = [(t, c) for t in range(1, ladder.m + 1) for c in range(copies)]
    n_mach = len(machines)
    n_seg = len(segments)

    def x_idx(j: int, m: int) -> int:
        return j * n_mach + m

    def y_idx(m: int, e: int) -> int:
        return n * n_mach + m * n_seg + e

    n_var = n * n_mach + n_mach * n_seg
    cost = np.zeros(n_var)
    for m, (t, _) in enumerate(machines):
        for e, seg in enumerate(segments):
            cost[y_idx(m, e)] = ladder.rate(t) * seg.length

    rows, cols, vals, lower, upper = [], [], [], [], []
    row = 0
    for j in range(n):
        for m in range(n_mach):
            rows.append(row)
            cols.append(x_idx(j, m))
            vals.append(1.0)
        lower.append(1.0)
        upper.append(1.0)
        row += 1

    active = []
    for seg in segments:
        mid = (seg.left + seg.right) / 2.0
        active.append([j for j, job in enumerate(job_list) if job.active_at(mid)])

    for m, (t, _) in enumerate(machines):
        cap = ladder.capacity(t)
        for e in range(n_seg):
            if not active[e]:
                continue
            for j in active[e]:
                rows.append(row)
                cols.append(x_idx(j, m))
                vals.append(job_list[j].size)
            lower.append(-np.inf)
            upper.append(cap)
            row += 1
            for j in active[e]:
                rows.append(row)
                cols.append(y_idx(m, e))
                vals.append(1.0)
                rows.append(row)
                cols.append(x_idx(j, m))
                vals.append(-1.0)
                lower.append(0.0)
                upper.append(np.inf)
                row += 1

    ub = np.ones(n_var)
    for j, job in enumerate(job_list):
        for m, (t, _) in enumerate(machines):
            if ladder.capacity(t) + 1e-12 < job.size:
                ub[x_idx(j, m)] = 0.0

    result = optimize.milp(
        c=cost,
        constraints=optimize.LinearConstraint(
            sparse.csr_matrix((vals, (rows, cols)), shape=(row, n_var)),
            np.array(lower),
            np.array(upper),
        ),
        integrality=np.zeros(n_var),  # fully relaxed
        bounds=optimize.Bounds(np.zeros(n_var), ub),
    )
    if not result.success:
        raise RuntimeError(f"LP relaxation failed: {result.message}")
    return float(result.fun)
