"""Exhaustive branch-and-bound BSHM oracle for tiny instances.

Independent of scipy: recursively assigns jobs (in arrival order) either to a
compatible machine already opened or to a fresh machine of each fitting type,
pruning branches whose accumulated cost already exceeds the incumbent.
Used to cross-check the MILP oracle and, transitively, every algorithm.

Search-space notes: identical fresh machines of one type are interchangeable,
so only one "new machine per type" branch is explored per job; cost is
recomputed exactly at the leaves from the assignment.
"""

from __future__ import annotations

import math
from itertools import count

from ..core.intervals import IntervalSet
from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..schedule.schedule import MachineKey, Schedule

__all__ = ["brute_force_optimal"]


def brute_force_optimal(jobs: JobSet, ladder: Ladder, *, max_jobs: int = 8) -> Schedule:
    """Provably optimal schedule by exhaustive search (tiny instances only)."""
    job_list = list(jobs)  # arrival order
    if len(job_list) > max_jobs:
        raise ValueError(f"brute force limited to {max_jobs} jobs")
    if not job_list:
        return Schedule(ladder, {})

    best_cost = math.inf
    best_assignment: dict | None = None
    machine_seq = count()

    # machine record: [type_index, tag, jobs(list)]
    def machine_cost(type_index: int, members: list) -> float:
        busy = IntervalSet(j.interval for j in members)
        return ladder.rate(type_index) * busy.length

    def recurse(idx: int, machines: list, cost_so_far: float) -> None:
        nonlocal best_cost, best_assignment
        if cost_so_far >= best_cost - 1e-12:
            return
        if idx == len(job_list):
            best_cost = cost_so_far
            best_assignment = {
                job: MachineKey(t, ("bf", tag))
                for t, tag, members in machines
                for job in members
            }
            return
        job = job_list[idx]
        # try existing machines
        for rec in machines:
            t, tag, members = rec
            if ladder.capacity(t) + 1e-12 < job.size:
                continue
            trial = JobSet(members + [job])
            if trial.peak_demand() > ladder.capacity(t) * (1 + 1e-12):
                continue
            old = machine_cost(t, members)
            new = machine_cost(t, members + [job])
            rec[2] = members + [job]
            recurse(idx + 1, machines, cost_so_far - old + new)
            rec[2] = members
        # try a fresh machine of each fitting type
        for t in range(1, ladder.m + 1):
            if ladder.capacity(t) + 1e-12 < job.size:
                continue
            tag = next(machine_seq)
            rec = [t, tag, [job]]
            machines.append(rec)
            recurse(idx + 1, machines, cost_so_far + machine_cost(t, [job]))
            machines.pop()

    recurse(0, [], 0.0)
    assert best_assignment is not None
    return Schedule(ladder, best_assignment)
