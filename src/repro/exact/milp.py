"""Exact BSHM via mixed-integer programming (scipy/HiGHS).

For small instances the true optimum is computable: binary assignment
variables ``x[j, m]`` (job → machine copy) and busy indicators ``y[m, e]``
(machine copy × elementary segment), with

    minimize    Σ r(m) · len(e) · y[m, e]
    subject to  Σ_m x[j, m] = 1                      (every job placed)
                Σ_{j active in e} s_j x[j, m] <= g(m)   (capacity)
                y[m, e] >= x[j, m]   for j active in e  (busy if hosting)

``y`` may be continuous in [0, 1]: with binary ``x`` the constraints force
``y`` to the max of the relevant ``x`` and the objective pushes it down to
exactly that.  The machine pool has one copy per (type, job) pair — never
fewer copies than an optimal solution needs.

This is the oracle for the E7 optimality-gap bench and for cross-checking
the Eq.-(1) lower bound in tests.  Use only on instances of ~12 jobs or
fewer; the model grows as jobs × types × segments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize, sparse

from ..jobs.jobset import JobSet
from ..machines.ladder import Ladder
from ..schedule.schedule import MachineKey, Schedule

__all__ = ["MilpResult", "solve_optimal"]


@dataclass(frozen=True, slots=True)
class MilpResult:
    """Optimal cost and a realizing schedule."""

    cost: float
    schedule: Schedule
    status: str


def solve_optimal(
    jobs: JobSet,
    ladder: Ladder,
    *,
    copies_per_type: int | None = None,
    time_limit: float | None = 60.0,
) -> MilpResult:
    """Solve the instance to optimality; raises on solver failure."""
    job_list = list(jobs)
    n = len(job_list)
    if n == 0:
        return MilpResult(0.0, Schedule(ladder, {}), "empty")
    if n > 16:
        raise ValueError("MILP oracle is intended for small instances (<= 16 jobs)")
    copies = copies_per_type if copies_per_type is not None else n
    segments = jobs.segments()

    machines: list[tuple[int, int]] = [
        (t, c) for t in range(1, ladder.m + 1) for c in range(copies)
    ]
    n_mach = len(machines)
    n_seg = len(segments)

    # variable layout: x[j, m] first (n * n_mach), then y[m, e] (n_mach * n_seg)
    def x_idx(j: int, m: int) -> int:
        return j * n_mach + m

    def y_idx(m: int, e: int) -> int:
        return n * n_mach + m * n_seg + e

    n_var = n * n_mach + n_mach * n_seg
    cost = np.zeros(n_var)
    for m, (t, _) in enumerate(machines):
        for e, seg in enumerate(segments):
            cost[y_idx(m, e)] = ladder.rate(t) * seg.length

    rows, cols, vals = [], [], []
    lower, upper = [], []
    row = 0

    # each job on exactly one machine that fits it
    for j, job in enumerate(job_list):
        for m, (t, _) in enumerate(machines):
            if ladder.capacity(t) + 1e-12 >= job.size:
                rows.append(row)
                cols.append(x_idx(j, m))
                vals.append(1.0)
        lower.append(1.0)
        upper.append(1.0)
        row += 1

    # which jobs are active on each segment (by midpoint)
    active: list[list[int]] = []
    for seg in segments:
        mid = (seg.left + seg.right) / 2.0
        active.append([j for j, job in enumerate(job_list) if job.active_at(mid)])

    # capacity per machine per segment
    for m, (t, _) in enumerate(machines):
        cap = ladder.capacity(t)
        for e in range(n_seg):
            if not active[e]:
                continue
            for j in active[e]:
                rows.append(row)
                cols.append(x_idx(j, m))
                vals.append(job_list[j].size)
            lower.append(-np.inf)
            upper.append(cap)
            row += 1

    # busy linking: y[m, e] - x[j, m] >= 0 for every active j
    for m in range(n_mach):
        for e in range(n_seg):
            for j in active[e]:
                rows.append(row)
                cols.append(y_idx(m, e))
                vals.append(1.0)
                rows.append(row)
                cols.append(x_idx(j, m))
                vals.append(-1.0)
                lower.append(0.0)
                upper.append(np.inf)
                row += 1

    constraints = optimize.LinearConstraint(
        sparse.csr_matrix((vals, (rows, cols)), shape=(row, n_var)),
        np.array(lower),
        np.array(upper),
    )
    integrality = np.zeros(n_var)
    integrality[: n * n_mach] = 1  # x binary, y continuous

    # forbid x[j, m] for machines that cannot fit the job
    ub = np.ones(n_var)
    for j, job in enumerate(job_list):
        for m, (t, _) in enumerate(machines):
            if ladder.capacity(t) + 1e-12 < job.size:
                ub[x_idx(j, m)] = 0.0
    bounds = optimize.Bounds(np.zeros(n_var), ub)

    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    result = optimize.milp(
        c=cost,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
        options=options,
    )
    if not result.success:
        raise RuntimeError(f"MILP failed: {result.message}")

    assignment = {}
    x = result.x
    for j, job in enumerate(job_list):
        m = int(np.argmax([x[x_idx(j, mm)] for mm in range(n_mach)]))
        t, c = machines[m]
        assignment[job] = MachineKey(t, ("opt", c))
    schedule = Schedule(ladder, assignment)
    return MilpResult(cost=float(result.fun), schedule=schedule, status=result.message)
