"""Machine-type ladders: ordered heterogeneous fleets and their structure.

A :class:`Ladder` is the paper's sorted family ``g_1 < g_2 < … < g_m`` with
``r_1 < r_2 < … < r_m`` (types dominated on both axes are rejected — footnote
1 of the paper shows they are never needed).  The ladder knows:

- its **regime** — DEC (``r_i/g_i`` non-increasing), INC (non-decreasing),
  or GENERAL (mixed), which selects the applicable algorithms;
- the Section-V **forest**: each node ``i`` points to the lowest-indexed type
  ``j > i`` with ``r_i/g_i >= r_j/g_j``; roots have no such ``j``.

The forest degenerates to a single path for DEC ladders and to ``m`` isolated
roots for INC ladders, which unifies Sections III–V of the paper.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Sequence

from ..core.tolerance import FINE_TOL, TOLERANCE
from .types import MachineType

__all__ = ["Regime", "Ladder", "TypeForest"]

_REL_TOL = FINE_TOL


class Regime(enum.Enum):
    """Which case of BSHM a ladder falls into."""

    DEC = "dec"  # amortized rate non-increasing with capacity
    INC = "inc"  # amortized rate non-decreasing with capacity
    GENERAL = "general"  # mixed


class Ladder:
    """A validated, sorted family of machine types.

    Types are re-indexed 1..m on construction (paper convention).  Raises if
    capacities are not strictly increasing, if rates are not strictly
    increasing, or if any type is dominated (``g_i <= g_j`` and ``r_i >= r_j``
    for ``i < j`` would make type ``i`` useless — the caller should prune it
    via :func:`repro.machines.normalization.prune_dominated` first).
    """

    __slots__ = ("_types",)

    def __init__(self, types: Iterable[MachineType]) -> None:
        ordered = sorted(types, key=lambda t: t.capacity)
        if not ordered:
            raise ValueError("a ladder needs at least one machine type")
        for a, b in zip(ordered[:-1], ordered[1:]):
            if not (a.capacity < b.capacity):
                raise ValueError(
                    f"capacities must be strictly increasing, got {a.capacity} "
                    f"then {b.capacity}"
                )
            if not (a.rate < b.rate):
                raise ValueError(
                    f"rates must be strictly increasing with capacity "
                    f"(dominated type), got r={a.rate} then r={b.rate}"
                )
        object.__setattr__(
            self,
            "_types",
            tuple(t.with_index(i) for i, t in enumerate(ordered, start=1)),
        )

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Ladder is immutable")

    @staticmethod
    def from_pairs(pairs: Sequence[tuple[float, float]]) -> "Ladder":
        """Build from ``(capacity, rate)`` pairs."""
        return Ladder(MachineType(g, r) for g, r in pairs)

    # -- access -------------------------------------------------------------
    @property
    def types(self) -> tuple[MachineType, ...]:
        return self._types

    @property
    def m(self) -> int:
        """Number of machine types."""
        return len(self._types)

    def type(self, i: int) -> MachineType:
        """1-based access matching the paper's indexing."""
        if not 1 <= i <= self.m:
            raise IndexError(f"type index {i} out of range 1..{self.m}")
        return self._types[i - 1]

    @property
    def capacities(self) -> tuple[float, ...]:
        return tuple(t.capacity for t in self._types)

    @property
    def rates(self) -> tuple[float, ...]:
        return tuple(t.rate for t in self._types)

    def capacity(self, i: int) -> float:
        """``g_i`` with the paper's convention ``g_0 = 0``."""
        if i == 0:
            return 0.0
        return self.type(i).capacity

    def rate(self, i: int) -> float:
        """The cost rate ``r_i`` (1-based index)."""
        return self.type(i).rate

    def smallest_fitting(self, size: float) -> int:
        """The 1-based index of the smallest type with ``g_i >= size``."""
        for t in self._types:
            if t.fits(size):
                return t.index
        raise ValueError(f"no machine type fits size {size}")

    def fits(self, size: float) -> bool:
        """Whether the largest type can host a job of this size."""
        return size <= self._types[-1].capacity

    # -- structure ------------------------------------------------------------
    @property
    def is_dec(self) -> bool:
        """Whether ``r_i/g_i`` is non-increasing (BSHM-DEC applies)."""
        rates = [t.amortized_rate for t in self._types]
        return all(a >= b * (1 - _REL_TOL) for a, b in zip(rates[:-1], rates[1:]))

    @property
    def is_inc(self) -> bool:
        """Whether ``r_i/g_i`` is non-decreasing (BSHM-INC applies)."""
        rates = [t.amortized_rate for t in self._types]
        return all(a <= b * (1 + _REL_TOL) for a, b in zip(rates[:-1], rates[1:]))

    @property
    def regime(self) -> Regime:
        """Primary regime label (a constant-amortized ladder reports DEC but
        also satisfies :attr:`is_inc`)."""
        if self.is_dec:
            return Regime.DEC
        if self.is_inc:
            return Regime.INC
        return Regime.GENERAL

    def forest(self) -> "TypeForest":
        """The Section-V forest over this ladder's types."""
        return TypeForest(self)

    def is_power_of_two_rates(self) -> bool:
        """Whether every ``r_i`` is ``r_1 · 2^k`` (Section II normal form)."""
        base = self._types[0].rate
        for t in self._types:
            q = t.rate / base
            k = round(q).bit_length() - 1 if q >= 1 else -1
            if k < 0 or abs(q - (1 << k)) > TOLERANCE * q:
                return False
        return True

    # -- dunder ------------------------------------------------------------------
    def __iter__(self) -> Iterator[MachineType]:
        return iter(self._types)

    def __len__(self) -> int:
        return len(self._types)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ladder) and self._types == other._types

    def __hash__(self) -> int:
        return hash(self._types)

    def __repr__(self) -> str:
        body = ", ".join(f"(g={t.capacity:g}, r={t.rate:g})" for t in self._types)
        return f"Ladder[{self.regime.value}]({body})"


class TypeForest:
    """The forest over machine types from Section V of the paper.

    ``parent[i]`` (1-based dict) is the lowest-indexed type ``j > i`` with
    ``r_i/g_i >= r_j/g_j``, or ``None`` when no such type exists (``i`` is a
    root).  The paper proves each tree spans a consecutive index range and is
    rooted at its highest index; both facts are validated here.
    """

    __slots__ = ("ladder", "parent", "children", "roots")

    def __init__(self, ladder: Ladder) -> None:
        parent: dict[int, int | None] = {}
        children: dict[int, list[int]] = {i: [] for i in range(1, ladder.m + 1)}
        for i in range(1, ladder.m + 1):
            rho_i = ladder.type(i).amortized_rate
            parent[i] = None
            for j in range(i + 1, ladder.m + 1):
                if rho_i >= ladder.type(j).amortized_rate * (1 - _REL_TOL):
                    parent[i] = j
                    children[j].append(i)
                    break
        roots = tuple(i for i in range(1, ladder.m + 1) if parent[i] is None)
        object.__setattr__(self, "ladder", ladder)
        object.__setattr__(self, "parent", parent)
        object.__setattr__(self, "children", {k: tuple(v) for k, v in children.items()})
        object.__setattr__(self, "roots", roots)
        self._validate()

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("TypeForest is immutable")

    def _validate(self) -> None:
        for i in range(1, self.ladder.m + 1):
            span = self.subtree_span(i)
            got = tuple(sorted(self.subtree(i)))
            want = tuple(range(span[0], span[1] + 1))
            if got != want:
                raise AssertionError(
                    f"forest subtree at {i} is not a consecutive range: {got}"
                )

    # -- queries --------------------------------------------------------------
    def subtree(self, i: int) -> list[int]:
        """All nodes in the tree/subtree rooted at ``i`` (including ``i``)."""
        out: list[int] = []
        stack = [i]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(self.children[node])
        return out

    def subtree_span(self, i: int) -> tuple[int, int]:
        """``(lo, hi)`` index range covered by the subtree rooted at ``i``."""
        nodes = self.subtree(i)
        return min(nodes), max(nodes)

    def path_to_root(self, i: int) -> list[int]:
        """``i``, its parent, …, up to the tree root."""
        path = [i]
        while (p := self.parent[path[-1]]) is not None:
            path.append(p)
        return path

    def postorder(self) -> list[int]:
        """All nodes, children before parents, trees left to right."""
        out: list[int] = []

        def visit(node: int) -> None:
            for child in self.children[node]:
                visit(child)
            out.append(node)

        for root in self.roots:
            visit(root)
        return out

    def num_children(self, i: int) -> int:
        """``|C(i)|`` in the paper's Section V budget formula."""
        return len(self.children[i])

    def processing_path(self, size_class: int) -> list[int]:
        """Section V association: a job of size class ``c`` (size in
        ``(g_{c-1}, g_c]``) belongs to ``J_j`` exactly for the nodes ``j``
        whose subtree span contains ``c`` — i.e. the ancestors-or-self of
        node ``c``.  In the post-order offline traversal the job is first
        considered at node ``c`` and, if left unscheduled, bubbles up this
        path toward the root.
        """
        if not 1 <= size_class <= self.ladder.m:
            raise ValueError(f"size class {size_class} out of range")
        return self.path_to_root(size_class)

    def __repr__(self) -> str:
        parts = []
        for root in self.roots:
            lo, hi = self.subtree_span(root)
            parts.append(f"tree[{lo}..{hi}]@{root}")
        return f"TypeForest({', '.join(parts)})"
