"""Ready-made machine ladders for experiments and examples.

All DEC/INC constructors emit power-of-2 rates (Section II normal form), so
the paper's constants apply without further normalization.  The EC2-like
ladders use realistic pricing curvature and are *not* normal form — they
exercise :func:`repro.machines.normalization.normalize` (E12).
"""

from __future__ import annotations

import numpy as np

from .ladder import Ladder
from .types import MachineType

__all__ = [
    "dec_ladder",
    "inc_ladder",
    "ec2_like_ladder",
    "paper_fig2_ladder",
    "random_general_ladder",
    "single_type_ladder",
]


def single_type_ladder(capacity: float = 1.0, rate: float = 1.0) -> Ladder:
    """The homogeneous (MinUsageTime DBP) special case."""
    return Ladder([MachineType(capacity, rate)])


def dec_ladder(m: int, *, cap_factor: float = 3.0, base_capacity: float = 1.0) -> Ladder:
    """Normal-form BSHM-DEC ladder: capacities ``cap_factor^i`` and rates
    ``2^i`` — amortized rate strictly decreasing when ``cap_factor > 2``."""
    if cap_factor <= 2:
        raise ValueError("cap_factor must exceed 2 for a strict DEC ladder")
    return Ladder(
        MachineType(base_capacity * cap_factor**i, 2.0**i) for i in range(m)
    )


def inc_ladder(m: int, *, cap_factor: float = 1.5, base_capacity: float = 1.0) -> Ladder:
    """Normal-form BSHM-INC ladder: capacities ``cap_factor^i`` and rates
    ``2^i`` — amortized rate strictly increasing when ``cap_factor < 2``."""
    if not 1.0 < cap_factor < 2.0:
        raise ValueError("cap_factor must lie in (1, 2) for a strict INC ladder")
    return Ladder(
        MachineType(base_capacity * cap_factor**i, 2.0**i) for i in range(m)
    )


def ec2_like_ladder(m: int = 5, *, price_exponent: float = 0.85) -> Ladder:
    """EC2-style size family: capacities 1, 2, 4, … vCPU and price ~
    ``capacity^price_exponent``.

    ``price_exponent < 1`` gives volume discounts (DEC after normalization);
    ``> 1`` gives a premium for big boxes (INC-leaning).  Not normal form —
    pass through :func:`repro.machines.normalization.normalize` first.
    """
    caps = [2.0**i for i in range(m)]
    return Ladder(MachineType(g, g**price_exponent) for g in caps)


def paper_fig2_ladder() -> Ladder:
    """An 8-type general ladder whose Section-V forest has 3 trees —
    the structure of the paper's Fig. 2 example.

    Amortized rates (4, 5, 3, 6, 7, 5.5, 8, 7.5) over capacities 1..128
    produce trees {1,2,3} rooted at 3, {4,5,6} rooted at 6 and {7,8} rooted
    at 8 (verified by the E9 bench).
    """
    caps = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0]
    rhos = [4.0, 5.0, 3.0, 6.0, 7.0, 5.5, 8.0, 7.5]
    return Ladder(MachineType(g, g * rho) for g, rho in zip(caps, rhos))


def random_general_ladder(
    m: int,
    rng: np.random.Generator,
    *,
    cap_factor_range: tuple[float, float] = (1.3, 3.5),
    base_capacity: float = 1.0,
) -> Ladder:
    """Random mixed-regime ladder: capacity factors drawn per step; rates
    follow a random walk constrained to stay strictly increasing."""
    caps = [base_capacity]
    for _ in range(m - 1):
        caps.append(caps[-1] * rng.uniform(*cap_factor_range))
    rates = [1.0]
    for i in range(1, m):
        # rate grows by a factor in (1, cap growth * 1.5): sometimes faster
        # than capacity (INC step), sometimes slower (DEC step)
        growth = rng.uniform(1.05, 1.5 * caps[i] / caps[i - 1])
        rates.append(rates[-1] * max(growth, 1.05))
    return Ladder(MachineType(g, r) for g, r in zip(caps, rates))
