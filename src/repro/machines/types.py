"""Machine types: capacity + busy-time cost rate.

A type-``i`` machine has capacity ``g_i`` and is charged ``r_i`` per unit of
time while it runs at least one job.  Types are value objects; ladders
(ordered collections of types) live in :mod:`repro.machines.ladder`.
"""

from __future__ import annotations

import math

__all__ = ["MachineType"]


class MachineType:
    """A machine type ``(g, r)``.

    ``amortized_rate`` is the paper's ``r_i / g_i`` — the cost per resource
    unit per time unit, which determines the DEC/INC regime.
    """

    __slots__ = ("capacity", "rate", "index")

    def __init__(self, capacity: float, rate: float, index: int = -1) -> None:
        capacity = float(capacity)
        rate = float(rate)
        if not (capacity > 0 and math.isfinite(capacity)):
            raise ValueError(f"capacity must be positive and finite, got {capacity}")
        if not (rate > 0 and math.isfinite(rate)):
            raise ValueError(f"rate must be positive and finite, got {rate}")
        object.__setattr__(self, "capacity", capacity)
        object.__setattr__(self, "rate", rate)
        object.__setattr__(self, "index", int(index))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("MachineType is immutable")

    @property
    def amortized_rate(self) -> float:
        """``r / g`` — busy cost per resource unit per time unit."""
        return self.rate / self.capacity

    def fits(self, size: float) -> bool:
        """Whether a job of the given size fits on this type at all."""
        return size <= self.capacity

    def with_index(self, index: int) -> "MachineType":
        """Copy of this type carrying the given 1-based ladder index."""
        return MachineType(self.capacity, self.rate, index)

    def with_rate(self, rate: float) -> "MachineType":
        """Copy of this type with a different cost rate."""
        return MachineType(self.capacity, rate, self.index)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MachineType)
            and self.capacity == other.capacity
            and self.rate == other.rate
            and self.index == other.index
        )

    def __hash__(self) -> int:
        return hash((self.capacity, self.rate, self.index))

    def __repr__(self) -> str:
        return f"MachineType(i={self.index}, g={self.capacity:g}, r={self.rate:g})"
