"""O(log n) leftmost-fit index structures for the machine pools.

:class:`~repro.machines.fleet.IndexedPool.first_fit` used to answer "lowest-
indexed machine with room for ``size``" with an O(machines) scan per call —
the dominant cost of every online scheduler (they are *all* First-Fit probes
over indexed pools).  The two structures here make that decision O(log n)
while returning the **bit-identical** machine the scan would have chosen:

- :class:`MinLoadSegmentTree` — a complete-binary-tree minimum index over
  per-slot machine loads.  The leftmost-fit descent evaluates the *same*
  float predicate as :meth:`OnlineMachine.fits <repro.machines.machine.
  OnlineMachine.fits>` (``load + size <= capacity + SIZE_TOL``) on subtree
  minima.  Float addition of a constant is monotone, so a subtree's minimum
  load satisfies the predicate iff some leaf in it does — the descent lands
  on exactly the machine a left-to-right scan would pick.  Empty machines
  are parked at :data:`INFINITE_LOAD` so the tree only ever answers for
  *busy* machines (empty ones are budget-gated and live in the heap below).
- :class:`FreeSlotHeap` — a min-heap of empty machine slots with lazy
  invalidation: entries whose machine has since become busy (e.g. via a
  direct ``admit`` in a test) are discarded on peek.  Empty machines all
  carry load exactly 0.0, so the lowest free slot is the only one First-Fit
  could choose; single-job (Group B) pools use *only* this heap.

Correctness against the retained linear scan is pinned by
``tests/property/test_placement_parity.py``; speed by
``benchmarks/bench_placement.py``.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Callable

__all__ = ["INFINITE_LOAD", "MinLoadSegmentTree", "FreeSlotHeap"]

#: sentinel load for slots that must never win a leftmost-fit query
#: (empty machines, unused tree capacity)
INFINITE_LOAD = math.inf


class MinLoadSegmentTree:
    """Min-load index over machine slots with leftmost-fit descent.

    Stored as the classic implicit array: leaf ``i`` lives at
    ``tree[cap + i]``, internal node ``k`` holds ``min(tree[2k], tree[2k+1])``.
    Capacity doubles on demand; slots beyond :meth:`__len__` hold
    :data:`INFINITE_LOAD` and can never satisfy a fit query.
    """

    __slots__ = ("_cap", "_size", "_tree")

    def __init__(self) -> None:
        self._cap = 1
        self._size = 0
        self._tree: list[float] = [INFINITE_LOAD, INFINITE_LOAD]

    def __len__(self) -> int:
        return self._size

    def get(self, slot: int) -> float:
        """The load currently stored for ``slot``."""
        if not 0 <= slot < self._size:
            raise IndexError(f"slot {slot} out of range [0, {self._size})")
        return self._tree[self._cap + slot]

    def min_load(self) -> float:
        """The smallest stored load (INFINITE_LOAD when nothing is busy)."""
        return self._tree[1]

    def append(self, load: float) -> None:
        """Register the next slot, initialized to ``load``."""
        if self._size == self._cap:
            self._grow()
        self._size += 1
        self.set(self._size - 1, load)

    def _grow(self) -> None:
        old_cap, old_tree = self._cap, self._tree
        cap = old_cap * 2
        tree = [INFINITE_LOAD] * (2 * cap)
        tree[cap : cap + self._size] = old_tree[old_cap : old_cap + self._size]
        for node in range(cap - 1, 0, -1):
            tree[node] = min(tree[2 * node], tree[2 * node + 1])
        self._cap, self._tree = cap, tree

    def set(self, slot: int, load: float) -> None:
        """Point-update ``slot`` to ``load`` and repair ancestors."""
        if not 0 <= slot < self._size:
            raise IndexError(f"slot {slot} out of range [0, {self._size})")
        tree = self._tree
        node = self._cap + slot
        tree[node] = load
        node >>= 1
        while node:
            best = min(tree[2 * node], tree[2 * node + 1])
            if tree[node] == best:
                break
            tree[node] = best
            node >>= 1

    def leftmost_fit(self, size: float, capacity_tol: float) -> tuple[int | None, int]:
        """Lowest slot whose load satisfies ``load + size <= capacity_tol``.

        Returns ``(slot, probes)`` where ``probes`` counts predicate
        evaluations (the decision's work, fed to the probe-depth metrics);
        ``slot`` is ``None`` when no stored load fits.  ``capacity_tol`` is
        the precomputed ``capacity + SIZE_TOL`` so the leaf predicate is the
        very expression :meth:`OnlineMachine.fits` evaluates.
        """
        tree = self._tree
        probes = 1
        if not tree[1] + size <= capacity_tol:
            return None, probes
        node = 1
        cap = self._cap
        while node < cap:
            probes += 1
            left = 2 * node
            node = left if tree[left] + size <= capacity_tol else left + 1
        return node - cap, probes


class FreeSlotHeap:
    """Min-heap of empty machine slots with lazy invalidation.

    A slot is pushed whenever its machine turns empty; it is *not* removed
    when the machine turns busy again (heaps cannot delete cheaply).
    Instead :meth:`peek` discards stale tops — entries whose machine is no
    longer free — until a valid one surfaces.  Each slot is pushed at most
    once per busy-to-empty transition, so the heap's lifetime size is
    bounded by the number of departures.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[int] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, slot: int) -> None:
        heappush(self._heap, slot)

    def peek(self, is_free: Callable[[int], bool]) -> tuple[int | None, int]:
        """Lowest currently-free slot, or ``None``; also counts probes.

        Returns ``(slot, probes)``; stale entries are popped as they are
        discovered (the lazy invalidation).
        """
        heap = self._heap
        probes = 0
        while heap:
            probes += 1
            slot = heap[0]
            if is_free(slot):
                return slot, probes
            heappop(heap)
        return None, probes

    def pop(self) -> int:
        """Remove and return the top slot (call right after a ``peek`` hit)."""
        return heappop(self._heap)
