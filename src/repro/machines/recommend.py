"""Catalogue curation: which machine types are worth enabling?

Cloud accounts typically enable a *subset* of the provider's instance
types.  Given a workload and a full catalogue, :func:`recommend_subset`
searches the non-empty subsets of types (every subset must still fit the
largest job) and returns the one minimizing the chosen cost estimate:

- ``estimate="lower_bound"`` (default) — the Eq.-(1) lower bound of the
  sub-ladder: fast, algorithm-independent, and exact in the fluid relaxed
  sense;
- ``estimate="schedule"`` — actually run the regime-appropriate offline
  algorithm on each sub-ladder (slower, reflects algorithmic reality).

Fewer enabled types can *reduce* real cost (pruning a tempting-but-wasteful
middle size changes where the algorithms put jobs), which makes this a
genuinely non-trivial knob; the tests exhibit both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..jobs.jobset import JobSet
from .ladder import Ladder

__all__ = ["Recommendation", "recommend_subset"]


@dataclass(frozen=True, slots=True)
class Recommendation:
    """Best sub-ladder found and the full ranking."""

    ladder: Ladder
    cost: float
    enabled_indices: tuple[int, ...]  # 1-based indices into the full ladder
    ranking: tuple[tuple[tuple[int, ...], float], ...]  # all evaluated subsets


def _subset_cost(jobs: JobSet, sub: Ladder, estimate: str) -> float:
    if estimate == "lower_bound":
        from ..lowerbound.bound import lower_bound

        return lower_bound(jobs, sub).value
    if estimate == "schedule":
        from ..offline.general_offline import general_offline

        return general_offline(jobs, sub).cost()
    raise ValueError(f"unknown estimate {estimate!r}")


def recommend_subset(
    jobs: JobSet,
    catalogue: Ladder,
    *,
    estimate: str = "lower_bound",
    max_types: int | None = None,
) -> Recommendation:
    """Exhaustively rank feasible type subsets (catalogue.m <= ~10).

    ``max_types`` optionally caps the subset size (e.g. "we will only manage
    3 instance types").
    """
    if catalogue.m > 12:
        raise ValueError("exhaustive subset search is limited to 12 types")
    need = jobs.max_size
    indices = list(range(1, catalogue.m + 1))
    results: list[tuple[tuple[int, ...], float]] = []
    limit = max_types if max_types is not None else catalogue.m
    for k in range(1, limit + 1):
        for combo in combinations(indices, k):
            types = [catalogue.type(i) for i in combo]
            if need > 0 and max(t.capacity for t in types) < need:
                continue  # largest job does not fit
            sub = Ladder(types)
            results.append((combo, _subset_cost(jobs, sub, estimate)))
    if not results:
        raise ValueError("no feasible subset fits the largest job")
    results.sort(key=lambda item: (item[1], len(item[0])))
    best_combo, best_cost = results[0]
    return Recommendation(
        ladder=Ladder(catalogue.type(i) for i in best_combo),
        cost=best_cost,
        enabled_indices=best_combo,
        ranking=tuple(results),
    )
