"""Section II preprocessing: dominated-type pruning and power-of-2 rates.

The paper assumes WLOG that

1. no type is *dominated* (``g_i <= g_j`` with ``r_i >= r_j`` for some
   ``j > i`` makes type ``i`` useless — footnote 1), and
2. every rate is a power of two after normalizing ``r_1`` to 1; this is
   arranged by rounding each normalized rate up to the next power of two and
   deleting the lower-indexed type of any resulting duplicate pair.  The
   paper shows the transformation costs at most a factor of 2 in any
   approximation/competitive ratio.

:func:`normalize` performs the full pipeline and returns a
:class:`Normalization` that remembers the mapping from surviving normalized
types back to original types, so schedules computed on the normalized ladder
can be *realized* (and priced) on the original one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.tolerance import FINE_TOL
from .ladder import Ladder
from .types import MachineType

__all__ = ["Normalization", "prune_dominated", "normalize"]


def prune_dominated(types: list[MachineType]) -> list[MachineType]:
    """Remove types dominated by a type of equal-or-larger capacity and
    equal-or-smaller rate (footnote 1 of the paper).

    The result has strictly increasing capacities and strictly increasing
    rates and is therefore a valid :class:`Ladder` input.
    """
    ordered = sorted(types, key=lambda t: (t.capacity, t.rate))
    kept: list[MachineType] = []
    for t in ordered:
        # drop previously kept types that the new one dominates
        while kept and kept[-1].rate >= t.rate:
            kept.pop()
        # skip t if it's a duplicate capacity of the kept predecessor
        if kept and kept[-1].capacity == t.capacity:
            continue  # same capacity, higher rate: dominated
        kept.append(t)
    return kept


@dataclass(frozen=True, slots=True)
class Normalization:
    """Result of the Section-II transformation.

    Attributes
    ----------
    original:
        The input ladder (already dominance-free).
    normalized:
        The surviving ladder whose rates are exact powers of two (scaled so
        the smallest surviving rate is a power of two times ``r_1``).
    to_original:
        For each 1-based normalized type index, the 1-based index of the
        original type it stands for.  Costs charged at the normalized rate
        ``2^k`` over-estimate the original cost (rounding was upward), so a
        schedule on the normalized ladder is feasible and at most 2x more
        expensive on the original ladder.
    """

    original: Ladder
    normalized: Ladder
    to_original: tuple[int, ...]

    def realize_rate(self, normalized_index: int) -> float:
        """The *original* rate of the machine a normalized type stands for."""
        return self.original.rate(self.to_original[normalized_index - 1])

    def realize_capacity(self, normalized_index: int) -> float:
        """The original capacity behind a normalized type (unchanged by normalization)."""
        return self.original.capacity(self.to_original[normalized_index - 1])

    def realize_schedule(self, schedule: "Schedule") -> "Schedule":
        """Re-express a schedule computed on the normalized ladder as a
        schedule over the *original* ladder (same machines, original rates).

        Capacities of the surviving types are unchanged, so feasibility
        carries over verbatim; the realized cost is at most the normalized
        cost (rounding was upward) and at least half of it.
        """
        from ..schedule.schedule import MachineKey, Schedule

        mapping = {
            job: MachineKey(self.to_original[key.type_index - 1], key.tag)
            for job, key in schedule.assignment.items()
        }
        return Schedule(self.original, mapping)


def _round_up_pow2(x: float) -> float:
    """Smallest power of two ``>= x`` (x > 0)."""
    if x <= 0:
        raise ValueError("x must be positive")
    k = math.ceil(math.log2(x) - FINE_TOL)
    return float(2.0**k)


def normalize(ladder: Ladder) -> Normalization:
    """Apply the paper's power-of-2 transformation to a ladder.

    Rates are divided by ``r_1``, rounded up to powers of two, and for every
    run of equal rounded rates only the *highest-capacity* type survives
    (the paper deletes the lower-indexed duplicate).  Surviving rates are
    multiplied back by ``r_1`` so costs stay in original units.
    """
    base = ladder.rate(1)
    rounded = [_round_up_pow2(t.rate / base) for t in ladder.types]
    survivors: list[tuple[MachineType, float, int]] = []  # (type, new_rate, orig idx)
    for orig_idx, (t, pow2) in enumerate(zip(ladder.types, rounded), start=1):
        new_rate = pow2 * base
        if survivors and survivors[-1][1] == new_rate:
            survivors.pop()  # lower-capacity duplicate is deleted
        survivors.append((t, new_rate, orig_idx))
    normalized = Ladder(
        MachineType(t.capacity, new_rate) for t, new_rate, _ in survivors
    )
    to_original = tuple(orig_idx for _, _, orig_idx in survivors)
    return Normalization(original=ladder, normalized=normalized, to_original=to_original)
