"""Machine types, ladders, and the indexed online fleet."""

from .fleet import FleetState, IndexedPool, PlacementStats
from .machine import OnlineMachine
from .placement_index import INFINITE_LOAD, FreeSlotHeap, MinLoadSegmentTree

__all__ = [
    "FleetState",
    "FreeSlotHeap",
    "INFINITE_LOAD",
    "IndexedPool",
    "MinLoadSegmentTree",
    "OnlineMachine",
    "PlacementStats",
]
