"""Mutable machine state for online simulation.

Online schedulers track, per physical machine, the set of resident jobs and
the current load.  Cost is *not* accumulated here — the resulting
:class:`~repro.schedule.schedule.Schedule` recomputes busy time exactly from
the final assignment — so this class only answers "can this job fit now?".
"""

from __future__ import annotations

from ..schedule.schedule import MachineKey

__all__ = ["OnlineMachine"]

_TOL = 1e-9


class OnlineMachine:
    """One physical machine during an online run."""

    __slots__ = ("key", "capacity", "resident", "load")

    def __init__(self, key: MachineKey, capacity: float) -> None:
        self.key = key
        self.capacity = float(capacity)
        self.resident: dict[int, float] = {}  # job uid -> size
        self.load = 0.0

    @property
    def busy(self) -> bool:
        return bool(self.resident)

    @property
    def empty(self) -> bool:
        return not self.resident

    def fits(self, size: float) -> bool:
        return self.load + size <= self.capacity + _TOL

    def admit(self, uid: int, size: float) -> None:
        if not self.fits(size):
            raise ValueError(f"machine {self.key} cannot fit size {size}")
        if uid in self.resident:
            raise ValueError(f"job {uid} already on machine {self.key}")
        self.resident[uid] = size
        self.load += size

    def release(self, uid: int) -> None:
        size = self.resident.pop(uid)
        self.load -= size
        if self.empty:
            self.load = 0.0  # kill float residue when idle

    def __repr__(self) -> str:
        return f"OnlineMachine({self.key}, load={self.load:g}/{self.capacity:g}, jobs={len(self.resident)})"
