"""Mutable machine state for online simulation.

Online schedulers track, per physical machine, the set of resident jobs and
the current load.  Cost is *not* accumulated here — the resulting
:class:`~repro.schedule.schedule.Schedule` recomputes busy time exactly from
the final assignment — so this class only answers "can this job fit now?".

A machine owned by an :class:`~repro.machines.fleet.IndexedPool` is *bound*
to it (:meth:`OnlineMachine.bind`): every load change reports back so the
pool's placement index (min-load segment tree, free-slot heap, live busy
counter) stays consistent no matter which code path mutates the machine —
``first_fit``, the ``first_fit_reference`` oracle, or a direct
``admit``/``release`` in a test.  Unbound machines behave exactly as before.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.tolerance import SIZE_TOL as _TOL
from ..schedule.schedule import MachineKey

if TYPE_CHECKING:  # pragma: no cover
    from .fleet import IndexedPool

__all__ = ["OnlineMachine"]


class OnlineMachine:
    """One physical machine during an online run."""

    __slots__ = ("key", "capacity", "resident", "load", "_pool", "_slot")

    def __init__(self, key: MachineKey, capacity: float) -> None:
        self.key = key
        self.capacity = float(capacity)
        self.resident: dict[int, float] = {}  # job uid -> size
        self.load = 0.0
        self._pool: "IndexedPool | None" = None
        self._slot = -1

    def bind(self, pool: "IndexedPool", slot: int) -> None:
        """Attach this machine to ``pool`` as its ``slot``-th member."""
        self._pool = pool
        self._slot = slot

    @property
    def busy(self) -> bool:
        return bool(self.resident)

    @property
    def empty(self) -> bool:
        return not self.resident

    def fits(self, size: float) -> bool:
        return self.load + size <= self.capacity + _TOL

    def admit(self, uid: int, size: float) -> None:
        if not self.fits(size):
            raise ValueError(f"machine {self.key} cannot fit size {size}")
        if uid in self.resident:
            raise ValueError(f"job {uid} already on machine {self.key}")
        was_busy = bool(self.resident)
        self.resident[uid] = size
        self.load += size
        if self._pool is not None:
            self._pool._machine_updated(self._slot, was_busy)

    def release(self, uid: int) -> None:
        size = self.resident.pop(uid)
        self.load -= size
        if self.empty:
            self.load = 0.0  # kill float residue when idle
        if self._pool is not None:
            self._pool._machine_updated(self._slot, True)

    def __repr__(self) -> str:
        return f"OnlineMachine({self.key}, load={self.load:g}/{self.capacity:g}, jobs={len(self.resident)})"
