"""Indexed machine pools for the online algorithms.

DEC-ONLINE organizes machines into *groups* (A and B in the paper) with,
per machine type, an optional bound on how many machines may be busy
concurrently, a job-size admission limit (Group A type-``i`` machines accept
only jobs of size ``<= g_i / 2``) and an optional one-job-at-a-time rule
(Group B).  :class:`IndexedPool` implements one (group, type) cell:

- machines carry increasing indices 1, 2, …; the *lowest-indexed* feasible
  machine is always chosen (the paper's First-Fit rule);
- an **empty** machine may only be (re)used while the number of busy
  machines is below the concurrency budget;
- a fresh machine (next index) is materialized on demand, so the pool is
  conceptually infinite.
"""

from __future__ import annotations

from ..schedule.schedule import MachineKey
from .machine import OnlineMachine

__all__ = ["IndexedPool", "FleetState"]

_TOL = 1e-9


class IndexedPool:
    """All machines of one type within one group."""

    __slots__ = (
        "group",
        "type_index",
        "capacity",
        "size_limit",
        "budget",
        "single_job",
        "machines",
    )

    def __init__(
        self,
        group: str,
        type_index: int,
        capacity: float,
        *,
        size_limit: float | None = None,
        budget: int | None = None,
        single_job: bool = False,
    ) -> None:
        self.group = group
        self.type_index = type_index
        self.capacity = float(capacity)
        #: largest admissible job size (defaults to the capacity)
        self.size_limit = capacity if size_limit is None else float(size_limit)
        #: max machines busy concurrently; None = unbounded
        self.budget = budget
        self.single_job = single_job
        self.machines: list[OnlineMachine] = []

    def busy_count(self) -> int:
        return sum(1 for m in self.machines if m.busy)

    def admits_size(self, size: float) -> bool:
        return size <= self.size_limit + _TOL

    def _machine_usable(self, machine: OnlineMachine, size: float, may_open: bool) -> bool:
        if machine.busy:
            return (not self.single_job) and machine.fits(size)
        return may_open and machine.fits(size)

    def first_fit(self, uid: int, size: float) -> OnlineMachine | None:
        """Place on the lowest-indexed feasible machine; None if the size is
        inadmissible or the concurrency budget blocks every option."""
        if not self.admits_size(size):
            return None
        may_open = self.budget is None or self.busy_count() < self.budget
        for machine in self.machines:
            if self._machine_usable(machine, size, may_open):
                machine.admit(uid, size)
                return machine
        if may_open:
            machine = OnlineMachine(
                MachineKey(self.type_index, (self.group, len(self.machines) + 1)),
                self.capacity,
            )
            self.machines.append(machine)
            machine.admit(uid, size)
            return machine
        return None

    def __repr__(self) -> str:
        return (
            f"IndexedPool({self.group}/T{self.type_index}, "
            f"busy={self.busy_count()}, budget={self.budget})"
        )


class FleetState:
    """Shared bookkeeping for online schedulers: job uid -> machine."""

    __slots__ = ("placement",)

    def __init__(self) -> None:
        self.placement: dict[int, OnlineMachine] = {}

    def record(self, uid: int, machine: OnlineMachine) -> MachineKey:
        self.placement[uid] = machine
        return machine.key

    def depart(self, uid: int) -> None:
        machine = self.placement.pop(uid)
        machine.release(uid)
