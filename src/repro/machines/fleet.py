"""Indexed machine pools for the online algorithms.

DEC-ONLINE organizes machines into *groups* (A and B in the paper) with,
per machine type, an optional bound on how many machines may be busy
concurrently, a job-size admission limit (Group A type-``i`` machines accept
only jobs of size ``<= g_i / 2``) and an optional one-job-at-a-time rule
(Group B).  :class:`IndexedPool` implements one (group, type) cell:

- machines carry increasing indices 1, 2, …; the *lowest-indexed* feasible
  machine is always chosen (the paper's First-Fit rule);
- an **empty** machine may only be (re)used while the number of busy
  machines is below the concurrency budget;
- a fresh machine (next index) is materialized on demand, so the pool is
  conceptually infinite.

First-Fit decisions are O(log n) (the **indexed placement engine**): busy
machines are indexed by a :class:`~repro.machines.placement_index.
MinLoadSegmentTree` whose leftmost-fit descent evaluates the exact
:meth:`OnlineMachine.fits` predicate on subtree minima, empty machines by a
:class:`~repro.machines.placement_index.FreeSlotHeap` (all empties carry
load 0.0, so only the lowest free index matters), and the concurrency
budget by a live busy counter maintained on empty/busy transitions.
Single-job (Group B) pools skip the tree entirely — the heap alone decides.

The pre-index linear scan survives as :meth:`IndexedPool.first_fit_reference`
— a differential-test oracle in the sense of BSHM003 (never called from
production paths).  The indexed engine is gated on *placement-sequence
parity* with it: same machine keys in the same order, bit-identical loads
(``tests/property/test_placement_parity.py``), which is what keeps golden
cost pins and service replay checkpoints byte-identical.
"""

from __future__ import annotations

from ..core.tolerance import SIZE_TOL as _TOL
from ..schedule.schedule import MachineKey
from .machine import OnlineMachine
from .placement_index import INFINITE_LOAD, FreeSlotHeap, MinLoadSegmentTree

__all__ = ["IndexedPool", "FleetState", "PlacementStats"]


class PlacementStats:
    """Cumulative placement-probe accounting, shared across a fleet's pools.

    ``probes`` counts index inspections (tree-node predicate evaluations,
    heap peeks, scanned machines in the reference oracle); ``decisions``
    counts ``first_fit`` calls.  :meth:`SchedulerRuntime.submit
    <repro.service.runtime.SchedulerRuntime.submit>` samples the per-call
    probe delta into the ``placement_probes`` counter and the
    ``probe_depth`` histogram.
    """

    __slots__ = ("probes", "decisions")

    def __init__(self) -> None:
        self.probes = 0
        self.decisions = 0

    def __repr__(self) -> str:
        return f"PlacementStats(probes={self.probes}, decisions={self.decisions})"


class IndexedPool:
    """All machines of one type within one group."""

    __slots__ = (
        "group",
        "type_index",
        "capacity",
        "size_limit",
        "budget",
        "single_job",
        "machines",
        "stats",
        "_busy",
        "_tree",
        "_free",
    )

    def __init__(
        self,
        group: str,
        type_index: int,
        capacity: float,
        *,
        size_limit: float | None = None,
        budget: int | None = None,
        single_job: bool = False,
        stats: PlacementStats | None = None,
    ) -> None:
        self.group = group
        self.type_index = type_index
        self.capacity = float(capacity)
        #: largest admissible job size (defaults to the capacity)
        self.size_limit = capacity if size_limit is None else float(size_limit)
        #: max machines busy concurrently; None = unbounded
        self.budget = budget
        self.single_job = single_job
        self.machines: list[OnlineMachine] = []
        self.stats = stats if stats is not None else PlacementStats()
        self._busy = 0  # live count of machines with >= 1 resident job
        # busy-machine index; single-job pools never probe busy machines
        self._tree = None if single_job else MinLoadSegmentTree()
        self._free = FreeSlotHeap()

    def busy_count(self) -> int:
        return self._busy

    def admits_size(self, size: float) -> bool:
        return size <= self.size_limit + _TOL

    def _machine_usable(self, machine: OnlineMachine, size: float, may_open: bool) -> bool:
        if machine.busy:
            return (not self.single_job) and machine.fits(size)
        return may_open and machine.fits(size)

    # -- index maintenance --------------------------------------------------
    def _machine_updated(self, slot: int, was_busy: bool) -> None:
        """Load-change hook from :meth:`OnlineMachine.admit`/``release``."""
        machine = self.machines[slot]
        if machine.busy:
            if self._tree is not None:
                self._tree.set(slot, machine.load)
            if not was_busy:
                self._busy += 1
        else:
            if self._tree is not None:
                self._tree.set(slot, INFINITE_LOAD)
            if was_busy:
                self._busy -= 1
                self._free.push(slot)

    def _open_machine(self) -> OnlineMachine:
        """Materialize the next-indexed machine, registered in the indexes."""
        slot = len(self.machines)
        machine = OnlineMachine(
            MachineKey(self.type_index, (self.group, slot + 1)), self.capacity
        )
        machine.bind(self, slot)
        self.machines.append(machine)
        if self._tree is not None:
            self._tree.append(INFINITE_LOAD)
        # empty until the caller admits; the entry goes stale at that point
        # and is lazily discarded (it must exist in case the admit fails)
        self._free.push(slot)
        return machine

    # -- the placement engine ----------------------------------------------
    def first_fit(self, uid: int, size: float) -> OnlineMachine | None:
        """Place on the lowest-indexed feasible machine; None if the size is
        inadmissible or the concurrency budget blocks every option.

        O(log n): min-load tree descent for busy machines, free-slot heap
        peek for empty ones, lowest index of the two wins — exactly the
        machine :meth:`first_fit_reference`'s left-to-right scan selects.
        """
        if not self.admits_size(size):
            return None
        stats = self.stats
        stats.decisions += 1
        may_open = self.budget is None or self._busy < self.budget

        best: int | None = None
        if self._tree is not None:
            slot, probes = self._tree.leftmost_fit(size, self.capacity + _TOL)
            stats.probes += probes
            best = slot

        from_heap = False
        if may_open:
            machines = self.machines
            free, probes = self._free.peek(lambda s: machines[s].empty)
            stats.probes += probes
            # every empty machine has load exactly 0.0, so one fits-check
            # covers them all (and the would-be fresh machine too)
            if free is not None and not machines[free].fits(size):
                free = None
            if free is not None and (best is None or free < best):
                best = free
                from_heap = True

        if best is None:
            if not may_open:
                return None
            # fresh machine; admit raises (like the scan did) in the corner
            # case of an admissible size that exceeds the raw capacity
            machine = self._open_machine()
            machine.admit(uid, size)
            return machine

        machine = self.machines[best]
        if from_heap:
            self._free.pop()
        machine.admit(uid, size)
        return machine

    # -- state snapshot support ---------------------------------------------
    def export_machines(self) -> list[dict]:
        """JSON-safe state of every materialized machine, in slot order.

        Together with the pool's constructor arguments this is the pool's
        entire mutable state: the indexes (tree, heap, busy counter) are
        derived and rebuilt by :meth:`restore_machines`.  Loads are exported
        verbatim — they carry float add/remove history that a recomputation
        from resident sizes would not reproduce bit-identically.
        """
        return [
            {
                "load": machine.load,
                "resident": [[uid, size] for uid, size in machine.resident.items()],
            }
            for machine in self.machines
        ]

    def restore_machines(self, states: list[dict]) -> None:
        """Rebuild the machine list and all placement indexes from
        :meth:`export_machines` output.  The pool must be empty.

        Future ``first_fit`` decisions depend only on the machines' loads,
        slot order and emptiness — all restored exactly here — so a restored
        pool places the same jobs on the same machines as the original.
        """
        if self.machines:
            raise ValueError("restore_machines requires an empty pool")
        for state in states:
            machine = self._open_machine()
            resident = state["resident"]
            if resident:
                for uid, size in resident:
                    machine.resident[int(uid)] = float(size)
                machine.load = float(state["load"])
                slot = machine._slot
                if self._tree is not None:
                    self._tree.set(slot, machine.load)
                self._busy += 1

    def first_fit_reference(self, uid: int, size: float) -> OnlineMachine | None:
        """The pre-index O(machines) linear scan, kept as the differential
        oracle for :meth:`first_fit` (test/bench only — BSHM003)."""
        if not self.admits_size(size):
            return None
        stats = self.stats
        stats.decisions += 1
        may_open = self.budget is None or self._busy < self.budget
        for machine in self.machines:
            stats.probes += 1
            if self._machine_usable(machine, size, may_open):
                machine.admit(uid, size)
                return machine
        if may_open:
            machine = self._open_machine()
            machine.admit(uid, size)
            return machine
        return None

    def __repr__(self) -> str:
        return (
            f"IndexedPool({self.group}/T{self.type_index}, "
            f"busy={self.busy_count()}, budget={self.budget})"
        )


class FleetState:
    """Shared bookkeeping for online schedulers: job uid -> machine, plus
    the fleet-wide :class:`PlacementStats` its pools report into."""

    __slots__ = ("placement", "stats")

    def __init__(self) -> None:
        self.placement: dict[int, OnlineMachine] = {}
        self.stats = PlacementStats()

    def record(self, uid: int, machine: OnlineMachine) -> MachineKey:
        self.placement[uid] = machine
        return machine.key

    def depart(self, uid: int) -> None:
        machine = self.placement.pop(uid)
        machine.release(uid)
