"""ASCII machine gantt charts: which machine runs which jobs when."""

from __future__ import annotations

from ..jobs.jobset import JobSet
from ..schedule.schedule import Schedule

__all__ = ["render_gantt"]


def render_gantt(schedule: Schedule, *, width: int = 72, max_machines: int = 40) -> str:
    """One row per machine; ``#`` where busy, job letters where resolvable.

    Machines are sorted by (type, tag); output is truncated at
    ``max_machines`` rows with a summary line.
    """
    groups = schedule.by_machine()
    if not groups:
        return "(empty schedule)"
    span = schedule.jobs.busy_span()
    t0 = span.intervals[0].left
    t1 = span.intervals[-1].right
    dt = (t1 - t0) / width

    lines = []
    keys = sorted(groups)
    for key in keys[:max_machines]:
        jobs = groups[key]
        # '=' marks single occupancy, '#' marks shared occupancy
        row = [" "] * width
        depth = [0] * width
        for job in jobs:
            col_lo = max(0, int((job.arrival - t0) / dt))
            col_hi = min(width, max(col_lo + 1, int((job.departure - t0) / dt + 0.5)))
            for col in range(col_lo, col_hi):
                depth[col] += 1
        for col in range(width):
            if depth[col] == 1:
                row[col] = "="
            elif depth[col] > 1:
                row[col] = "#"
        busy = JobSet(jobs).busy_span().length
        rate = schedule.ladder.rate(key.type_index)
        lines.append(
            f"{str(key):24s} |{''.join(row)}| busy={busy:8.2f} cost={busy * rate:9.2f}"
        )
    if len(keys) > max_machines:
        lines.append(f"... {len(keys) - max_machines} more machines")
    lines.append(f"total cost: {schedule.cost():.3f} on {len(keys)} machines")
    return "\n".join(lines)
