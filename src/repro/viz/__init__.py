"""Visualization: ASCII charts, gantts, SVG export and forest rendering.

Public surface: terminal renderings of placements / profiles / gantts,
their SVG twins, and the Section V type-forest pretty printer.
"""

from .ascii_chart import render_placement, render_profile
from .forest_viz import render_forest
from .gantt import render_gantt
from .svg import gantt_svg, placement_svg

__all__ = [
    "render_placement",
    "render_profile",
    "render_gantt",
    "render_forest",
    "gantt_svg",
    "placement_svg",
]
