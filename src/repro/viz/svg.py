"""Standalone SVG export of demand charts and gantt charts.

Dependency-free SVG writers so results can go straight into papers or
dashboards.  Colors are a fixed qualitative palette cycled per job/machine;
everything is sized in user units with a viewBox, so the output scales.
"""

from __future__ import annotations

from ..placement.chart import Placement
from ..schedule.schedule import Schedule

__all__ = ["placement_svg", "gantt_svg"]

_PALETTE = [
    "#4C72B0", "#DD8452", "#55A868", "#C44E52", "#8172B3",
    "#937860", "#DA8BC3", "#8C8C8C", "#CCB974", "#64B5CD",
]


def _svg_header(width: float, height: float) -> list[str]:
    return [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width:g} {height:g}" '
        f'width="{width:g}" height="{height:g}" font-family="sans-serif">',
        f'<rect x="0" y="0" width="{width:g}" height="{height:g}" fill="white"/>',
    ]


def placement_svg(
    placement: Placement,
    *,
    width: float = 800.0,
    height: float = 400.0,
    strip_height: float | None = None,
) -> str:
    """The Fig.-1 picture as SVG: chart outline, bands, strip boundaries."""
    chart = placement.chart
    if not placement.bands:
        return "\n".join(_svg_header(width, height) + ["</svg>"])
    support = chart.height.support
    t0, t1 = support.left, support.right
    peak = max(chart.peak(), placement.max_top())
    sx = width / (t1 - t0)
    sy = (height - 20.0) / peak

    def x(t: float) -> float:
        return (t - t0) * sx

    def y(alt: float) -> float:
        return height - 10.0 - alt * sy

    out = _svg_header(width, height)
    # chart outline as a step path
    path = [f"M {x(t0):.2f} {y(0):.2f}"]
    for left, right, value in chart.height.segments():
        path.append(f"L {x(left):.2f} {y(value):.2f}")
        path.append(f"L {x(right):.2f} {y(value):.2f}")
    path.append(f"L {x(t1):.2f} {y(0):.2f} Z")
    out.append(
        f'<path d="{" ".join(path)}" fill="#eef2f7" stroke="#555" stroke-width="1"/>'
    )
    # strip boundaries
    if strip_height and strip_height > 0:
        level = strip_height
        while level < peak:
            out.append(
                f'<line x1="0" y1="{y(level):.2f}" x2="{width:g}" y2="{y(level):.2f}" '
                'stroke="#999" stroke-dasharray="4 3" stroke-width="0.7"/>'
            )
            level += strip_height
    # bands
    for idx, band in enumerate(placement.bands):
        color = _PALETTE[idx % len(_PALETTE)]
        out.append(
            f'<rect x="{x(band.job.arrival):.2f}" y="{y(band.top):.2f}" '
            f'width="{(band.job.departure - band.job.arrival) * sx:.2f}" '
            f'height="{band.job.size * sy:.2f}" fill="{color}" fill-opacity="0.75" '
            f'stroke="#333" stroke-width="0.5">'
            f"<title>{band.job.name}: s={band.job.size:g} "
            f"[{band.job.arrival:g},{band.job.departure:g}) alt={band.altitude:g}</title></rect>"
        )
    out.append("</svg>")
    return "\n".join(out)


def gantt_svg(
    schedule: Schedule,
    *,
    width: float = 800.0,
    row_height: float = 18.0,
    max_machines: int = 40,
) -> str:
    """Machine gantt as SVG: one lane per machine, one rect per job."""
    groups = schedule.by_machine()
    keys = sorted(groups)[:max_machines]
    if not keys:
        return "\n".join(_svg_header(width, 40) + ["</svg>"])
    span = schedule.jobs.busy_span()
    t0 = span.intervals[0].left
    t1 = span.intervals[-1].right
    label_w = 170.0
    sx = (width - label_w) / (t1 - t0)
    height = row_height * len(keys) + 10.0

    out = _svg_header(width, height)
    for row, key in enumerate(keys):
        y0 = 5.0 + row * row_height
        out.append(
            f'<text x="4" y="{y0 + row_height * 0.7:.2f}" font-size="{row_height * 0.55:g}" '
            f'fill="#333">{key}</text>'
        )
        out.append(
            f'<line x1="{label_w:g}" y1="{y0 + row_height - 2:.2f}" x2="{width:g}" '
            f'y2="{y0 + row_height - 2:.2f}" stroke="#ddd" stroke-width="0.5"/>'
        )
        for job in groups[key]:
            color = _PALETTE[job.uid % len(_PALETTE)]
            out.append(
                f'<rect x="{label_w + (job.arrival - t0) * sx:.2f}" y="{y0:.2f}" '
                f'width="{max(1.0, (job.departure - job.arrival) * sx):.2f}" '
                f'height="{row_height - 4:.2f}" fill="{color}" fill-opacity="0.8" '
                f'stroke="#333" stroke-width="0.4">'
                f"<title>{job.name}: s={job.size:g} "
                f"[{job.arrival:g},{job.departure:g})</title></rect>"
            )
    out.append("</svg>")
    return "\n".join(out)
