"""ASCII rendering of demand charts and placements (paper Fig. 1).

Matplotlib-free rendering suitable for terminals and EXPERIMENTS.md: the
demand chart is rasterized on a character grid (time columns × altitude
rows); each placed job is drawn with its own letter, the chart boundary
with ``.``.  Also exports the raw series as CSV for external plotting.
"""

from __future__ import annotations

import string

from ..core.stepfun import StepFunction
from ..placement.chart import Placement

__all__ = ["render_placement", "render_profile"]


def _letters() -> str:
    return string.ascii_uppercase + string.ascii_lowercase + string.digits


def render_placement(
    placement: Placement,
    *,
    width: int = 72,
    height: int = 20,
    strip_height: float | None = None,
) -> str:
    """Draw the placement inside its demand chart.

    Each job's rectangle is filled with a distinct character; ``.`` marks
    chart area not covered by any band; strip boundaries (if requested) are
    drawn as ``-`` rows on empty cells.
    """
    chart = placement.chart
    if not placement.bands:
        return "(empty chart)"
    support = chart.height.support
    t0, t1 = support.left, support.right
    peak = max(chart.peak(), placement.max_top())
    if peak <= 0:
        return "(zero demand)"

    dt = (t1 - t0) / width
    dy = peak / height
    grid = [[" "] * width for _ in range(height)]

    # chart region
    for col in range(width):
        t = t0 + (col + 0.5) * dt
        h = chart.height_at(t)
        rows = int(h / dy + 1e-9)
        for row in range(min(rows, height)):
            grid[row][col] = "."

    # strip boundaries
    if strip_height is not None and strip_height > 0:
        level = strip_height
        while level < peak:
            row = int(level / dy + 1e-9)
            if 0 <= row < height:
                for col in range(width):
                    if grid[row][col] in (" ", "."):
                        grid[row][col] = "-"
            level += strip_height

    # bands
    alphabet = _letters()
    for idx, band in enumerate(placement.bands):
        ch = alphabet[idx % len(alphabet)]
        col_lo = max(0, int((band.job.arrival - t0) / dt))
        col_hi = min(width, max(col_lo + 1, int((band.job.departure - t0) / dt + 0.5)))
        row_lo = max(0, int(band.altitude / dy + 1e-9))
        row_hi = min(height, max(row_lo + 1, int(band.top / dy + 0.5)))
        for row in range(row_lo, row_hi):
            for col in range(col_lo, col_hi):
                grid[row][col] = ch

    lines = []
    for row in reversed(range(height)):
        lines.append(f"{(row + 1) * dy:7.2f} |" + "".join(grid[row]))
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(" " * 9 + f"t={t0:g} .. {t1:g}   (peak demand {peak:g})")
    return "\n".join(lines)


def render_profile(profile: StepFunction, *, width: int = 72, height: int = 12) -> str:
    """Bar rendering of any step function (demand, machine counts, rates)."""
    support = profile.support
    t0, t1 = support.left, support.right
    peak = profile.max()
    if peak <= 0:
        return "(identically zero)"
    dt = (t1 - t0) / width
    lines = []
    for row in reversed(range(height)):
        threshold = (row + 0.5) * peak / height
        cells = []
        for col in range(width):
            value = float(profile(t0 + (col + 0.5) * dt))
            cells.append("#" if value >= threshold else " ")
        lines.append(f"{(row + 1) * peak / height:8.2f} |" + "".join(cells))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"t={t0:g} .. {t1:g}")
    return "\n".join(lines)
