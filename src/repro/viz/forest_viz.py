"""Text rendering of the Section-V machine-type forest (paper Fig. 2)."""

from __future__ import annotations

from ..machines.ladder import TypeForest

__all__ = ["render_forest"]


def render_forest(forest: TypeForest) -> str:
    """Tree-drawing of the forest with capacities and amortized rates.

    Example output::

        forest over 8 machine types (3 trees)
        tree rooted at 3  [types 1..3]
          3  (g=4, r=12, r/g=3)
          ├─ 1  (g=1, r=4, r/g=4)
          └─ 2  (g=2, r=10, r/g=5)
    """
    ladder = forest.ladder
    lines = [
        f"forest over {ladder.m} machine types ({len(forest.roots)} trees)"
    ]

    def label(i: int) -> str:
        t = ladder.type(i)
        return f"{i}  (g={t.capacity:g}, r={t.rate:g}, r/g={t.amortized_rate:g})"

    def walk(node: int, prefix: str) -> None:
        children = forest.children[node]
        for idx, child in enumerate(children):
            last = idx == len(children) - 1
            branch = "└─ " if last else "├─ "
            lines.append(prefix + branch + label(child))
            walk(child, prefix + ("   " if last else "│  "))

    for root in forest.roots:
        lo, hi = forest.subtree_span(root)
        lines.append(f"tree rooted at {root}  [types {lo}..{hi}]")
        lines.append("  " + label(root))
        walk(root, "  ")
    return "\n".join(lines)
