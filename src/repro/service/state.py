"""Full-state snapshots of a :class:`SchedulerRuntime` — O(state) restore.

The event-sourced checkpoints in :mod:`repro.service.checkpoint` rebuild a
runtime by replaying its entire event log: exact, self-verifying, and O(n)
in the life of the service.  This module serializes the runtime's *state*
instead, so the write-ahead log can restore as latest-snapshot + O(delta)
replay.

What is captured is precisely the mutable state future behavior depends on:

- the runtime's open/closed/rejected job tables, uid bookkeeping, clock and
  the raw per-machine busy intervals of the cost accumulator;
- per scheduler pool (via the ``iter_pools()`` contract on every registered
  online scheduler), each materialized machine's resident-job map and its
  **exact float load** — loads carry add/remove float history that a
  recomputation from resident sizes would not reproduce bit-identically,
  and ``OnlineMachine.fits`` compares against that exact value;
- the deterministic metric counters (arrivals/departures/rejections) and
  the fleet's probe accounting.

Derived structures (min-load segment tree, free-slot heap, busy counters,
gauges, memoized busy unions) are rebuilt, not stored.  A restored runtime
is *placement-equivalent*: it makes bit-identical decisions on any future
event stream — pinned by ``tests/service/test_state.py``.

Like checkpoints, a state snapshot is self-verifying: it records the
assignment digest, cost and clock at capture time and :func:`restore_state`
re-derives and compares them, failing loudly on any drift.

A state-restored runtime does **not** carry its full event history
(:attr:`SchedulerRuntime.history_truncated` is then true) — the WAL owns
history; ``record_trace``/``snapshot`` refuse rather than emit a lie.
"""

from __future__ import annotations

import math
from typing import Any

from ..jobs.job import Job
from ..schedule.schedule import MachineKey
from .checkpoint import (
    CheckpointError,
    _runtime_from_config,
    assignment_digest,
)
from .metrics import MetricsRegistry
from .runtime import SchedulerRuntime

__all__ = ["STATE_VERSION", "capture_state", "restore_state"]

STATE_VERSION = 1

#: metric counters that are deterministic functions of the event stream
#: (latency histograms and probe counts are observability-only and are
#: deliberately NOT part of the state contract)
_DETERMINISTIC_COUNTERS = ("arrivals", "departures", "rejections")


def _key_to_wire(key: MachineKey) -> list:
    return [key.type_index, list(key.tag)]


def _key_from_wire(obj: Any) -> MachineKey:
    try:
        type_index, tag = obj
        return MachineKey(int(type_index), tuple(tag))
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"bad machine key in state snapshot: {obj!r}") from exc


def _scheduler_pools(runtime: SchedulerRuntime) -> list[tuple[str, Any]]:
    iter_pools = getattr(runtime.scheduler, "iter_pools", None)
    if iter_pools is None:
        raise CheckpointError(
            f"scheduler {type(runtime.scheduler).__name__} does not implement "
            "iter_pools(); state snapshots need it"
        )
    return list(iter_pools())


def capture_state(runtime: SchedulerRuntime) -> dict:
    """Serialize the runtime's full mutable state (JSON-safe, self-verifying)."""
    if runtime.config is None:
        raise CheckpointError(
            "runtime has no serializable config; build it with "
            "SchedulerRuntime.create(...) to enable state snapshots"
        )
    pools = _scheduler_pools(runtime)
    clock = runtime.clock
    stats = runtime.scheduler.state.stats  # type: ignore[attr-defined]
    return {
        "kind": "bshm-state",
        "version": STATE_VERSION,
        "config": runtime.config,
        "n_events": runtime.n_events,
        "clock": None if not math.isfinite(clock) else clock,
        "open": [
            [uid, size, arrival, name, _key_to_wire(key)]
            for uid, (size, arrival, name, key) in runtime._open.items()
        ],
        "closed": [
            [job.uid, job.size, job.arrival, job.departure, job.name,
             _key_to_wire(key)]
            for job, key in runtime._closed.values()
        ],
        "rejected": [[uid, reason] for uid, reason in runtime._rejected.items()],
        "used_uids": sorted(runtime._used_uids),
        "next_uid": runtime._next_uid,
        "busy_intervals": [
            [_key_to_wire(key), [[left, right] for left, right in pairs]]
            for key, pairs in runtime._cache._raw.items()
        ],
        "pools": {label: pool.export_machines() for label, pool in pools},
        "placement_stats": {"probes": stats.probes, "decisions": stats.decisions},
        "counters": {
            name: runtime.metrics.counter(name).value
            for name in _DETERMINISTIC_COUNTERS
        },
        "verify": {
            "cost": runtime.cost(),
            "assignment_sha256": assignment_digest(runtime),
        },
    }


def restore_state(
    state: dict, *, metrics: MetricsRegistry | None = None
) -> SchedulerRuntime:
    """Rebuild a runtime from :func:`capture_state` output and verify it.

    O(state), no event replay.  Raises :class:`CheckpointError` on a
    malformed document, unknown version, or any self-verification mismatch
    (clock, cost, assignment digest).
    """
    if not isinstance(state, dict) or state.get("kind") != "bshm-state":
        raise CheckpointError("not a state snapshot (missing kind=bshm-state)")
    version = state.get("version")
    if version != STATE_VERSION:
        raise CheckpointError(
            f"unsupported state snapshot version {version!r} "
            f"(this build reads {STATE_VERSION})"
        )
    try:
        runtime = _runtime_from_config(state["config"], metrics=metrics)
        clock = state["clock"]
        runtime.clock = -math.inf if clock is None else float(clock)
        for uid, size, arrival, name, key in state["open"]:
            runtime._open[int(uid)] = (
                float(size), float(arrival), str(name), _key_from_wire(key)
            )
        for uid, size, arrival, departure, name, key in state["closed"]:
            job = Job(float(size), float(arrival), float(departure),
                      name=str(name), uid=int(uid))
            runtime._closed[int(uid)] = (job, _key_from_wire(key))
        for uid, reason in state["rejected"]:
            runtime._rejected[int(uid)] = str(reason)
        runtime._used_uids = {int(u) for u in state["used_uids"]}
        runtime._next_uid = int(state["next_uid"])
        for key_wire, pairs in state["busy_intervals"]:
            runtime._cache._raw[_key_from_wire(key_wire)] = [
                (float(left), float(right)) for left, right in pairs
            ]
        n_events = int(state["n_events"])
        pools = dict(_scheduler_pools(runtime))
        pool_states = state["pools"]
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed state snapshot: {exc}") from exc

    if set(pools) != set(pool_states):
        raise CheckpointError(
            f"state snapshot pools {sorted(pool_states)} do not match the "
            f"scheduler's pools {sorted(pools)}"
        )
    for label, pool in pools.items():
        pool.restore_machines(pool_states[label])

    # fleet bookkeeping: uid -> machine, rebuilt from the resident maps
    fleet = runtime.scheduler.state  # type: ignore[attr-defined]
    for label, pool in pools.items():
        for machine in pool.machines:
            for uid in machine.resident:
                fleet.placement[uid] = machine
    stats = state.get("placement_stats", {})
    fleet.stats.probes = int(stats.get("probes", 0))
    fleet.stats.decisions = int(stats.get("decisions", 0))

    # per-machine open-job counts and the busy-by-type tallies
    for _uid, (_size, _arrival, _name, key) in runtime._open.items():
        n_on_machine = runtime._machine_open.get(key, 0) + 1
        runtime._machine_open[key] = n_on_machine
        if n_on_machine == 1:
            runtime._busy_by_type[key.type_index] = (
                runtime._busy_by_type.get(key.type_index, 0) + 1
            )

    # history lives in the WAL now, not in memory
    runtime._log_base = n_events

    for name in _DETERMINISTIC_COUNTERS:
        runtime.metrics.counter(name).value = int(state["counters"].get(name, 0))
    runtime._sample_gauges()

    verify = state.get("verify", {})
    mismatches = []
    cost = runtime.cost()
    if cost != verify.get("cost"):
        mismatches.append(f"cost {cost!r} != {verify.get('cost')!r}")
    digest = assignment_digest(runtime)
    if digest != verify.get("assignment_sha256"):
        mismatches.append("assignment digest differs")
    if runtime.n_events != n_events:
        mismatches.append(f"n_events {runtime.n_events} != {n_events}")
    if mismatches:
        raise CheckpointError(
            "state snapshot failed self-verification: " + "; ".join(mismatches)
        )
    return runtime
