"""The pluggable event-log persistence contract: :class:`StateStore`.

A store holds exactly what the write-ahead layer needs and nothing else:

- an **append-only event log** — the runtime's accepted input stream,
  indexed by a contiguous sequence number starting at 0,
- a **latest state snapshot** — :func:`repro.service.state.capture_state`
  output taken at some event count ``n``,
- the runtime **config** (scheduler wire name, ladder, admission specs),
  persisted once so an empty-but-initialized store can still rebuild.

Restore cost is the contract's whole point: :func:`restore_from_store`
loads the latest snapshot in O(state) and replays only the **delta** —
events with sequence number at or above the snapshot — so a restart costs
O(delta since last compaction) instead of O(every event ever served).

Two backends ship: :class:`~repro.service.storage.memory.MemoryStore`
(tests, ephemeral serving) and
:class:`~repro.service.storage.sqlite.SQLiteStore` (append-only table +
periodic compaction).  Both obey the same durability model, pinned by the
conformance suite in ``tests/service/test_storage.py``:

- ``append_events`` hands records to the store; :meth:`StateStore.sync`
  moves them onto the **durable prefix** (SQLite: transaction commit;
  memory: the simulated watermark).
- A crash loses at most the un-synced suffix — the *torn tail*.  What
  survives is always a clean prefix of the event history, never a gap and
  never a reordering.
- Snapshots are durable the moment ``write_snapshot`` returns, and
  ``compact`` prunes events and snapshots only after the covering
  snapshot is durable.

Fault injection reuses :class:`repro.service.faults.FaultInjector`
verbatim: every append fires the ``wal.append.before`` /
``wal.append.after`` sites, so the existing seeded crash kinds
(``crash-before-append`` / ``crash-after-append``) kill a store-backed
service at exactly the same granularity as the file WAL.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from ..checkpoint import CheckpointError, _apply_event
from ..faults import FaultInjector
from ..runtime import SchedulerRuntime
from ..state import restore_state

if TYPE_CHECKING:  # pragma: no cover
    from ..metrics import MetricsRegistry

__all__ = [
    "STORE_VERSION",
    "StorageError",
    "StateStore",
    "RecoveredStore",
    "restore_from_store",
]

#: bumped on any incompatible change to what a backend persists
STORE_VERSION = 1


class StorageError(CheckpointError):
    """The event-log store is corrupt, inconsistent, or cannot persist."""


class StateStore(abc.ABC):
    """Append-only event log + latest-snapshot persistence for one runtime.

    Sequence numbers are the runtime's event indices: the ``k``-th accepted
    stream call has sequence number ``k`` (0-based), and the store refuses
    gaps — ``append_events(events, base)`` must have ``base`` equal to the
    current :meth:`n_events`.
    """

    #: optional fault-injection harness; appends fire the WAL sites
    faults: FaultInjector | None = None

    # -- the event log -------------------------------------------------------
    @abc.abstractmethod
    def n_events(self) -> int:
        """Events handed to the store so far (durable or not)."""

    @abc.abstractmethod
    def append_events(self, events: Sequence[dict], base: int) -> None:
        """Append ``events`` at sequence numbers ``[base, base+len)``.

        Raises :class:`StorageError` if ``base`` does not equal the store's
        current event count (a gap or an overlap — both mean the caller and
        the store disagree about history).
        """

    @abc.abstractmethod
    def events_since(self, seq: int) -> list[dict]:
        """The retained events with sequence number ``>= seq``, in order.

        Raises :class:`StorageError` when ``seq`` predates the earliest
        retained event (compaction pruned it) — replaying from there would
        fabricate a gap.
        """

    # -- snapshots -----------------------------------------------------------
    @abc.abstractmethod
    def write_snapshot(self, state: dict) -> None:
        """Durably record a :func:`capture_state` document (its
        ``n_events`` field is the snapshot's sequence position)."""

    @abc.abstractmethod
    def latest_snapshot(self) -> dict | None:
        """The most recent snapshot document, or None."""

    @abc.abstractmethod
    def compact(self) -> int:
        """Prune events and snapshots the latest snapshot covers.

        Returns the number of event records pruned.  A store with no
        snapshot compacts to nothing (returns 0).
        """

    # -- config --------------------------------------------------------------
    @abc.abstractmethod
    def set_config(self, config: dict) -> None:
        """Persist the runtime config (idempotent; first writer wins)."""

    @property
    @abc.abstractmethod
    def config(self) -> dict | None:
        """The persisted runtime config, or None if never set."""

    # -- durability ----------------------------------------------------------
    @abc.abstractmethod
    def sync(self) -> None:
        """Move every appended event onto the durable prefix."""

    @abc.abstractmethod
    def close(self) -> None:
        """Durably close the store (graceful shutdown)."""

    @abc.abstractmethod
    def abandon(self) -> None:
        """Drop the store without syncing (simulated crash path): appended
        but un-synced events are lost, mirroring a power cut."""

    @property
    @abc.abstractmethod
    def description(self) -> str:
        """Human-readable identity, e.g. ``sqlite:/path/shard-0.db``."""

    # -- shared helpers ------------------------------------------------------
    def fire_append_sites(self, before: bool) -> None:
        """Route one append through the WAL fault sites (crash kinds raise)."""
        if self.faults is not None:
            self.faults.point("wal.append.before" if before else "wal.append.after")


@dataclass
class RecoveredStore:
    """What :func:`restore_from_store` rebuilt, and how."""

    runtime: SchedulerRuntime
    n_events: int
    snapshot_n: int | None  # event count of the snapshot used, if any
    replayed: int  # delta events replayed past the snapshot
    source: str  # the store's description

    def describe(self) -> str:
        base = (
            f"snapshot@{self.snapshot_n}" if self.snapshot_n is not None
            else "event log only"
        )
        return (
            f"{self.n_events} events ({base} + {self.replayed} replayed) "
            f"from {self.source}"
        )


def restore_from_store(
    store: StateStore,
    *,
    metrics: "MetricsRegistry | None" = None,
    config: dict | None = None,
    progress: Callable[[str], None] | None = None,
) -> RecoveredStore:
    """Rebuild a runtime from a store: latest snapshot + O(delta) replay.

    ``config`` is only consulted when the store holds no snapshot and no
    persisted config (a service that crashed before persisting anything) —
    without it, an empty store is a :class:`StorageError`.  ``progress``
    receives one human-readable line per recovery stage.
    """
    def report(line: str) -> None:
        if progress is not None:
            progress(line)

    runtime: SchedulerRuntime | None = None
    snapshot_n: int | None = None
    snap = store.latest_snapshot()
    if snap is not None:
        runtime = restore_state(snap, metrics=metrics)
        snapshot_n = runtime.n_events
        report(f"snapshot@{snapshot_n}: state restored, no replay needed for it")

    base = runtime.n_events if runtime is not None else 0
    delta = store.events_since(base)
    if runtime is None:
        stored = store.config if store.config is not None else config
        if stored is None:
            raise StorageError(
                f"store {store.description} holds no recoverable data "
                "(and no fallback config was provided)"
            )
        from ..checkpoint import _runtime_from_config

        runtime = _runtime_from_config(stored, metrics=metrics)
    for event in delta:
        _apply_event(runtime, event)
    if delta:
        report(f"event log: replayed {len(delta)} delta event(s) past {base}")
    registry = metrics if metrics is not None else runtime.metrics
    registry.counter("store_recovered_records").inc(len(delta))
    return RecoveredStore(
        runtime=runtime,
        n_events=runtime.n_events,
        snapshot_n=snapshot_n,
        replayed=len(delta),
        source=store.description,
    )
