"""In-memory :class:`StateStore` backend.

Used for tests and for serving without durability (``--storage memory``).
It still models the durability contract faithfully so the backend
conformance suite can run unchanged against it: :meth:`sync` advances a
*durable watermark*, :meth:`abandon` simulates a power cut by discarding
everything past that watermark, and a later :meth:`reopen` hands back a
store holding exactly the surviving clean prefix — the same torn-tail
semantics the SQLite backend gets from transaction commits.
"""

from __future__ import annotations

import json
from typing import Sequence

from .base import StateStore, StorageError

__all__ = ["MemoryStore"]


def _copy(doc: dict) -> dict:
    """Deep, JSON-faithful copy: the store must not alias caller state."""
    out = json.loads(json.dumps(doc))
    if not isinstance(out, dict):  # pragma: no cover - events are objects
        raise StorageError("store records must be JSON objects")
    return out


class MemoryStore(StateStore):
    """Event log + snapshot in process memory, with a simulated durable
    watermark so crash semantics stay testable."""

    def __init__(self) -> None:
        self.faults = None
        self._base = 0  # sequence number of self._events[0]
        self._events: list[dict] = []
        self._durable_n = 0  # events [0, durable_n) survive a crash
        self._snapshot: dict | None = None
        self._config: dict | None = None
        self._closed = False

    # -- the event log -------------------------------------------------------
    def n_events(self) -> int:
        return self._base + len(self._events)

    def append_events(self, events: Sequence[dict], base: int) -> None:
        if self._closed:
            raise StorageError("memory store is closed")
        if base != self.n_events():
            raise StorageError(
                f"append at base {base} but the store holds {self.n_events()} "
                "events (gap or overlap)"
            )
        for event in events:
            self.fire_append_sites(before=True)
            self._events.append(_copy(event))
            self.fire_append_sites(before=False)

    def events_since(self, seq: int) -> list[dict]:
        if seq < self._base:
            raise StorageError(
                f"events before {self._base} were compacted away "
                f"(requested {seq})"
            )
        return [dict(e) for e in self._events[seq - self._base:]]

    # -- snapshots -----------------------------------------------------------
    def write_snapshot(self, state: dict) -> None:
        if self._closed:
            raise StorageError("memory store is closed")
        n = int(state.get("n_events", -1))
        if n < 0 or n > self.n_events():
            raise StorageError(
                f"snapshot n_events {n} outside the store's [0, {self.n_events()}]"
            )
        # snapshots are durable on return (parity with the SQLite commit);
        # so is everything they cover
        self._snapshot = _copy(state)
        self._durable_n = max(self._durable_n, n)

    def latest_snapshot(self) -> dict | None:
        return _copy(self._snapshot) if self._snapshot is not None else None

    def compact(self) -> int:
        if self._snapshot is None:
            return 0
        n = int(self._snapshot["n_events"])
        pruned = max(0, n - self._base)
        self._events = self._events[pruned:]
        self._base = n
        return pruned

    # -- config --------------------------------------------------------------
    def set_config(self, config: dict) -> None:
        if self._config is None:
            self._config = _copy(config)

    @property
    def config(self) -> dict | None:
        return _copy(self._config) if self._config is not None else None

    # -- durability ----------------------------------------------------------
    def sync(self) -> None:
        self._durable_n = self.n_events()

    def close(self) -> None:
        self.sync()
        self._closed = True

    def abandon(self) -> None:
        """Simulated crash: drop the torn tail past the durable watermark."""
        keep = max(0, self._durable_n - self._base)
        self._events = self._events[:keep]
        self._closed = True

    def reopen(self) -> "MemoryStore":
        """What a restart sees: the durable prefix, snapshot and config."""
        survivor = MemoryStore()
        survivor._base = self._base
        survivor._events = [dict(e) for e in self._events[: max(0, self._durable_n - self._base)]]
        survivor._durable_n = survivor.n_events()
        survivor._snapshot = self._snapshot
        survivor._config = self._config
        return survivor

    @property
    def description(self) -> str:
        return "memory"
