"""SQLite :class:`StateStore` backend: append-only event table + compaction.

Schema (one database per runtime — per shard, in the sharded service)::

    meta(key TEXT PRIMARY KEY, value TEXT)    -- version, config
    events(seq INTEGER PRIMARY KEY, payload TEXT)   -- canonical JSON
    snapshots(n INTEGER PRIMARY KEY, payload TEXT)  -- capture_state docs

Durability model: appends execute inside one open transaction;
:meth:`sync` commits it, which is the durable-prefix boundary (the
``batch`` fsync policy's analogue — the :class:`StoreWriter` decides how
often to call it).  A crash rolls the open transaction back, so at most
the un-synced suffix is lost and what survives is always a clean prefix.
Snapshot writes and compaction always commit immediately, mirroring the
file WAL's unconditional fsync on rotation and compaction.

The connection runs with ``journal_mode=WAL`` and
``synchronous=NORMAL`` — commit ordering is preserved and a torn OS-level
write is SQLite's problem, not ours (it either replays or rolls back its
own journal; the store never sees mid-stream corruption, only a shorter
clean prefix).  Anything else — unreadable file, foreign schema, a
future ``STORE_VERSION`` — raises :class:`StorageError` loudly.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Sequence

from .base import STORE_VERSION, StateStore, StorageError

__all__ = ["SQLiteStore"]

_SCHEMA = (
    "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS events (seq INTEGER PRIMARY KEY, payload TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS snapshots (n INTEGER PRIMARY KEY, payload TEXT NOT NULL)",
)


def _dumps(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _loads(payload: str, what: str) -> dict:
    try:
        doc = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise StorageError(f"garbled {what} in SQLite store: {exc}") from exc
    if not isinstance(doc, dict):
        raise StorageError(f"{what} must be a JSON object")
    return doc


class SQLiteStore(StateStore):
    """One SQLite database holding one runtime's event log and snapshots."""

    def __init__(self, path: str | Path) -> None:
        self.faults = None
        self.path = Path(path)
        try:
            self._conn: sqlite3.Connection | None = sqlite3.connect(
                self.path, isolation_level=None  # manual BEGIN/COMMIT
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            existing = {
                row[0]
                for row in self._conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table'"
                )
            }
            if existing and not {"meta", "events", "snapshots"} <= existing:
                raise StorageError(
                    f"{self.path} is a SQLite database but not a bshm event "
                    f"store (tables: {sorted(existing)})"
                )
            for statement in _SCHEMA:
                self._conn.execute(statement)
        except sqlite3.DatabaseError as exc:
            raise StorageError(
                f"cannot open SQLite store {self.path}: {exc}"
            ) from exc
        version = self._meta("version")
        if version is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('version', ?)",
                (str(STORE_VERSION),),
            )
        elif version != str(STORE_VERSION):
            self._conn.close()
            self._conn = None
            raise StorageError(
                f"unsupported store version {version!r} in {self.path} "
                f"(this build reads {STORE_VERSION})"
            )
        row = self._sql("SELECT MAX(seq) FROM events").fetchone()
        self._n = (int(row[0]) + 1) if row and row[0] is not None else 0
        # a fully-compacted store has no event rows: the latest snapshot
        # carries the high-water mark
        row = self._sql("SELECT MAX(n) FROM snapshots").fetchone()
        if row and row[0] is not None:
            self._n = max(self._n, int(row[0]))
        self._in_txn = False

    # -- low-level -----------------------------------------------------------
    def _sql(self, query: str, params: tuple = ()) -> sqlite3.Cursor:
        if self._conn is None:
            raise StorageError(f"SQLite store {self.path} is closed")
        try:
            return self._conn.execute(query, params)
        except sqlite3.DatabaseError as exc:
            raise StorageError(f"SQLite store {self.path} failed: {exc}") from exc

    def _meta(self, key: str) -> str | None:
        row = self._sql("SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return None if row is None else str(row[0])

    def _begin(self) -> None:
        if not self._in_txn:
            self._sql("BEGIN")
            self._in_txn = True

    def _commit(self) -> None:
        if self._in_txn:
            self._sql("COMMIT")
            self._in_txn = False

    # -- the event log -------------------------------------------------------
    def n_events(self) -> int:
        return self._n

    def append_events(self, events: Sequence[dict], base: int) -> None:
        if base != self._n:
            raise StorageError(
                f"append at base {base} but the store holds {self._n} events "
                "(gap or overlap)"
            )
        self._begin()
        for event in events:
            self.fire_append_sites(before=True)
            self._sql(
                "INSERT INTO events (seq, payload) VALUES (?, ?)",
                (self._n, _dumps(event)),
            )
            self._n += 1
            self.fire_append_sites(before=False)

    def events_since(self, seq: int) -> list[dict]:
        row = self._sql("SELECT MIN(seq) FROM events").fetchone()
        earliest = int(row[0]) if row and row[0] is not None else self._n
        if seq < earliest:
            raise StorageError(
                f"events before {earliest} were compacted away (requested {seq})"
            )
        rows = self._sql(
            "SELECT seq, payload FROM events WHERE seq >= ? ORDER BY seq", (seq,)
        ).fetchall()
        out: list[dict] = []
        expected = seq
        for got, payload in rows:
            if int(got) != expected:
                raise StorageError(
                    f"gap in {self.path}: expected event {expected}, found {got}"
                )
            out.append(_loads(str(payload), f"event {got}"))
            expected += 1
        return out

    # -- snapshots -----------------------------------------------------------
    def write_snapshot(self, state: dict) -> None:
        n = int(state.get("n_events", -1))
        if n < 0 or n > self._n:
            raise StorageError(
                f"snapshot n_events {n} outside the store's [0, {self._n}]"
            )
        # committing the snapshot also commits every event it covers —
        # snapshots are unconditionally durable, like WAL compaction fsyncs
        self._begin()
        self._sql(
            "INSERT OR REPLACE INTO snapshots (n, payload) VALUES (?, ?)",
            (n, _dumps(state)),
        )
        self._commit()

    def latest_snapshot(self) -> dict | None:
        row = self._sql(
            "SELECT n, payload FROM snapshots ORDER BY n DESC LIMIT 1"
        ).fetchone()
        if row is None:
            return None
        return _loads(str(row[1]), f"snapshot@{row[0]}")

    def compact(self) -> int:
        row = self._sql("SELECT MAX(n) FROM snapshots").fetchone()
        if row is None or row[0] is None:
            return 0
        n = int(row[0])
        self._begin()
        pruned = self._sql("DELETE FROM events WHERE seq < ?", (n,)).rowcount
        self._sql("DELETE FROM snapshots WHERE n < ?", (n,))
        self._commit()
        return int(pruned)

    # -- config --------------------------------------------------------------
    def set_config(self, config: dict) -> None:
        # outside a transaction this autocommits, so the config survives
        # even if no event is ever appended
        if self._meta("config") is None:
            self._sql(
                "INSERT INTO meta (key, value) VALUES ('config', ?)",
                (_dumps(config),),
            )

    @property
    def config(self) -> dict | None:
        raw = self._meta("config")
        return None if raw is None else _loads(raw, "config")

    # -- durability ----------------------------------------------------------
    def sync(self) -> None:
        self._commit()

    def close(self) -> None:
        if self._conn is not None:
            self._commit()
            self._conn.close()
            self._conn = None

    def abandon(self) -> None:
        """Simulated crash: roll back the open transaction (the torn tail)."""
        if self._conn is not None:
            if self._in_txn:
                try:
                    self._conn.execute("ROLLBACK")
                except sqlite3.DatabaseError:  # pragma: no cover - already gone
                    pass
                self._in_txn = False
            self._conn.close()
            self._conn = None

    @property
    def description(self) -> str:
        return f"sqlite:{self.path}"
