"""repro.service.storage — pluggable event-log persistence.

The :class:`StateStore` contract (append events / read the delta since a
sequence number / write + compact snapshots) with two backends:

- :class:`MemoryStore` — in-process, simulated durability watermark;
- :class:`SQLiteStore` — append-only table + periodic compaction in one
  SQLite database.

:class:`StoreWriter` adapts any backend to the server's write-ahead
surface (``append_new``/``sync``/``compact``/``close``/``abandon``), and
:func:`restore_from_store` rebuilds a runtime as latest-snapshot +
O(delta) replay.  :func:`open_store` parses the ``bshm serve --storage``
spec (``memory`` or ``sqlite:PATH``).
"""

from __future__ import annotations

from pathlib import Path

from .base import (
    STORE_VERSION,
    RecoveredStore,
    StateStore,
    StorageError,
    restore_from_store,
)
from .memory import MemoryStore
from .sqlite import SQLiteStore
from .writer import SYNC_POLICIES, StoreWriter

__all__ = [
    "STORE_VERSION",
    "SYNC_POLICIES",
    "MemoryStore",
    "RecoveredStore",
    "SQLiteStore",
    "StateStore",
    "StorageError",
    "StoreWriter",
    "open_store",
    "restore_from_store",
    "shard_store_spec",
]


def open_store(spec: str) -> StateStore:
    """Open a backend from a ``--storage`` spec: ``memory`` | ``sqlite:PATH``.

    Raises :class:`StorageError` on an unknown scheme or an unopenable /
    foreign database.
    """
    if spec == "memory":
        return MemoryStore()
    scheme, sep, path = spec.partition(":")
    if sep and scheme == "sqlite":
        if not path:
            raise StorageError("sqlite storage spec needs a path: sqlite:PATH")
        return SQLiteStore(path)
    raise StorageError(
        f"unknown storage spec {spec!r}; use 'memory' or 'sqlite:PATH'"
    )


def shard_store_spec(spec: str, shard: int, n_shards: int) -> str:
    """Derive shard ``shard``'s private spec from the service-level one.

    ``memory`` stays ``memory`` (each worker gets its own instance);
    ``sqlite:PATH`` becomes ``sqlite:PATH.shardK`` (suffix before nothing —
    the path is treated verbatim, extension included), except when only
    one shard exists, which keeps the path unchanged so single-worker
    serving and plain serving share on-disk layouts.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if not 0 <= shard < n_shards:
        raise ValueError(f"shard {shard} outside [0, {n_shards})")
    if spec == "memory" or n_shards == 1:
        return spec
    scheme, sep, path = spec.partition(":")
    if sep and scheme == "sqlite" and path:
        p = Path(path)
        return f"sqlite:{p.with_name(p.name + f'.shard{shard}')}"
    raise StorageError(f"cannot derive per-shard spec from {spec!r}")
