"""Server-side persistence adapter over any :class:`StateStore`.

:class:`StoreWriter` speaks the exact surface
:class:`~repro.service.server.SchedulerServer` already drives for the file
WAL — ``append_new`` / ``sync`` / ``compact`` / ``close`` / ``abandon`` —
so a server (or a shard worker) persists through a pluggable backend with
no protocol change:

- **ack ordering** — the server applies a request to the runtime, calls
  :meth:`append_new`, and only then acknowledges; an acked event is in
  the store (durable up to the sync policy's window);
- **sync policy** — ``always`` syncs after every request, ``batch`` every
  ``batch_every`` appended events, ``never`` only at compaction and
  shutdown (the same three policies, and the same loss windows, as the
  file WAL's fsync flag);
- **compaction** — every ``compact_every`` appends the runtime's full
  state (:func:`repro.service.state.capture_state`) is written as a
  snapshot and the covered prefix pruned, so restore stays O(delta).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..runtime import SchedulerRuntime
from ..state import capture_state
from .base import StateStore, StorageError

if TYPE_CHECKING:  # pragma: no cover
    from ..faults import FaultInjector
    from ..metrics import MetricsRegistry

__all__ = ["SYNC_POLICIES", "StoreWriter"]

SYNC_POLICIES = ("always", "batch", "never")


class StoreWriter:
    """Appends a runtime's event stream to a :class:`StateStore`."""

    def __init__(
        self,
        store: StateStore,
        runtime: SchedulerRuntime,
        *,
        sync: str = "batch",
        batch_every: int = 32,
        compact_every: int = 0,
        faults: "FaultInjector | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if sync not in SYNC_POLICIES:
            raise ValueError(
                f"sync policy must be one of {SYNC_POLICIES}, got {sync!r}"
            )
        if batch_every < 1:
            raise ValueError("batch_every must be >= 1")
        if runtime.config is None:
            raise StorageError(
                "runtime has no serializable config; build it with "
                "SchedulerRuntime.create(...) to enable store persistence"
            )
        stored = store.config
        if stored is not None and stored != runtime.config:
            raise StorageError(
                f"store {store.description} was written by a different runtime "
                "config; refusing to interleave histories"
            )
        store.set_config(runtime.config)
        store.faults = faults
        self.store = store
        self._runtime = runtime
        self._sync_policy = sync
        self._batch_every = batch_every
        self._compact_every = compact_every
        self._pending = 0  # appends since the last sync
        self._since_snapshot = 0
        self._metrics = metrics if metrics is not None else runtime.metrics
        # pre-create so operators see the store metrics at zero
        self._metrics.counter("store_appends")
        self._metrics.counter("store_syncs")
        self._metrics.counter("store_compactions")
        n_store = store.n_events()
        if n_store > runtime.n_events:
            raise StorageError(
                f"store {store.description} holds {n_store} events but the "
                f"runtime only {runtime.n_events}; recover from the store first"
            )
        self._n = runtime.n_events  # next event index to append
        if n_store < runtime.n_events:
            # a runtime ahead of its store (fresh store under a recovered or
            # pre-warmed runtime): backfill is impossible when history was
            # truncated, so the store starts at the runtime's head only if
            # the in-memory log still covers the gap
            self.store.append_events(
                runtime.events_since(n_store), n_store
            )
            self.store.sync()

    @property
    def n_appended(self) -> int:
        """Event indices [0, n_appended) have been handed to the store."""
        return self._n

    def append_new(self) -> int:
        """Append every runtime event not yet stored; returns the count.

        Call after applying a request to the runtime and before
        acknowledging it.  Raises :class:`StorageError` if the store can no
        longer persist (the server fail-stops on that).
        """
        events = self._runtime.events_since(self._n)
        if not events:
            return 0
        self.store.append_events(events, self._n)
        self._n += len(events)
        self._pending += len(events)
        self._since_snapshot += len(events)
        self._metrics.counter("store_appends").inc(len(events))
        if self._sync_policy == "always" or (
            self._sync_policy == "batch" and self._pending >= self._batch_every
        ):
            self.sync()
        if self._compact_every > 0 and self._since_snapshot >= self._compact_every:
            self.compact()
        return len(events)

    def sync(self) -> None:
        """Force everything appended so far onto the durable prefix."""
        self.store.sync()
        self._pending = 0
        self._metrics.counter("store_syncs").inc()

    def compact(self) -> int:
        """Snapshot the runtime state and prune the covered event prefix."""
        self.store.write_snapshot(capture_state(self._runtime))
        pruned = self.store.compact()
        self._pending = 0  # the snapshot commit made everything durable
        self._since_snapshot = 0
        self._metrics.counter("store_compactions").inc()
        return pruned

    def close(self) -> None:
        """Durably close the store (graceful shutdown)."""
        self.store.close()

    def abandon(self) -> None:
        """Drop the store without syncing (simulated crash / fail-stop)."""
        self.store.abandon()
