"""Deterministic record / replay / snapshot of streaming scheduler runs.

Two closely related on-disk artifacts, both newline-friendly JSON:

**Trace** (``*.jsonl``) — the full input stream of a run.  Line 1 is a
versioned header carrying the runtime's serializable config (scheduler
wire name, ladder, admission specs); every further line is one event
exactly as the runtime logged it (``submit`` / ``depart`` / ``advance``).
Replaying a trace reconstructs the run bit-for-bit: the schedulers are
deterministic functions of the event stream, so
``replay(record(run))`` yields the identical assignment and cost, and
re-recording the replayed runtime yields byte-identical trace lines
(canonical JSON: sorted keys, compact separators, round-tripping floats).

**Checkpoint** (``*.json``) — one document holding the header config, the
event log so far *and* a derived-state block (clock, cost, active uids,
an SHA-256 digest of the assignment).  :func:`restore` rebuilds the
runtime by replay and then *verifies* the derived state against the
recorded block, so a checkpoint that no longer reproduces itself (code
drift, corruption) fails loudly instead of silently diverging.

Schema versioning policy: ``TRACE_VERSION`` / ``CHECKPOINT_VERSION`` are
integers bumped on any incompatible change; readers reject versions they
do not know (no silent best-effort parsing).  See ``docs/algorithms.md``.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from ..machines.ladder import Ladder
from ..machines.types import MachineType
from .runtime import SchedulerRuntime

if TYPE_CHECKING:  # pragma: no cover
    from .metrics import MetricsRegistry

__all__ = [
    "CheckpointError",
    "TRACE_VERSION",
    "CHECKPOINT_VERSION",
    "assignment_digest",
    "record_trace",
    "write_trace",
    "read_trace",
    "replay_trace",
    "snapshot",
    "restore",
    "write_checkpoint",
    "load_checkpoint",
]

TRACE_VERSION = 1
CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """A trace/checkpoint is malformed, from an unknown schema version, or
    failed its self-verification on restore."""


def _dumps(obj: object) -> str:
    """Canonical JSON: sorted keys, no whitespace — the byte-stable form."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _require_config(runtime: SchedulerRuntime) -> dict:
    if runtime.config is None:
        raise CheckpointError(
            "runtime has no serializable config; build it with "
            "SchedulerRuntime.create(...) to enable record/snapshot"
        )
    return runtime.config


def _ladder_from_config(pairs: Iterable[Sequence[float]]) -> Ladder:
    return Ladder(MachineType(float(c), float(r)) for c, r in pairs)


def _apply_event(runtime: SchedulerRuntime, event: dict) -> None:
    if not isinstance(event, dict):
        raise CheckpointError(f"event must be a JSON object, got {type(event).__name__}")
    op = event.get("op")
    try:
        if op == "submit":
            runtime.submit(
                event["size"], event["t"], name=event.get("name"), uid=event["uid"]
            )
        elif op == "depart":
            runtime.depart(event["uid"], event["t"])
        elif op == "advance":
            runtime.advance(event["t"])
        else:
            raise CheckpointError(f"unknown trace op {op!r}")
    except (KeyError, TypeError) as exc:
        raise CheckpointError(f"malformed {op!r} event: {exc!r}") from exc


def assignment_digest(runtime: SchedulerRuntime) -> str:
    """SHA-256 over the canonical uid -> machine mapping (open + closed)."""
    mapping = {}
    for uid in runtime.active_uids():
        key = runtime.machine_of(uid)
        mapping[str(uid)] = [key.type_index, list(key.tag)]
    for job, key in runtime.schedule().assignment.items():
        mapping[str(job.uid)] = [key.type_index, list(key.tag)]
    return hashlib.sha256(_dumps(mapping).encode()).hexdigest()


# ---------------------------------------------------------------------------
# traces
# ---------------------------------------------------------------------------

def _require_history(runtime: SchedulerRuntime) -> None:
    if runtime.history_truncated:
        raise CheckpointError(
            "runtime was restored from a state snapshot; its full event "
            "history lives in the WAL directory, not in memory (use "
            "repro.service.wal for durable snapshots of such runtimes)"
        )


def record_trace(runtime: SchedulerRuntime) -> list[str]:
    """The run so far as canonical JSON lines (header first)."""
    _require_history(runtime)
    header = {
        "kind": "header",
        "version": TRACE_VERSION,
        "config": _require_config(runtime),
    }
    return [_dumps(header)] + [_dumps(e) for e in runtime.events]


def write_trace(runtime: SchedulerRuntime, path: str | Path) -> None:
    """Write the run's trace to ``path`` (one JSON document per line)."""
    Path(path).write_text("\n".join(record_trace(runtime)) + "\n")


def read_trace(source: str | Path | Iterable[str]) -> tuple[dict, list[dict]]:
    """Parse a trace into ``(header, events)``; validates the version."""
    if isinstance(source, (str, Path)):
        try:
            lines = Path(source).read_text().splitlines()
        except OSError as exc:
            raise CheckpointError(f"cannot read trace {source}: {exc}") from exc
    else:
        lines = [ln for ln in source]
    lines = [ln for ln in lines if ln.strip()]
    if not lines:
        raise CheckpointError("empty trace")
    try:
        header = json.loads(lines[0])
        events = [json.loads(ln) for ln in lines[1:]]
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"malformed trace line: {exc}") from exc
    if not isinstance(header, dict):
        raise CheckpointError("trace header must be a JSON object")
    for event in events:
        if not isinstance(event, dict):
            raise CheckpointError("trace events must be JSON objects")
    if header.get("kind") != "header":
        raise CheckpointError("trace must start with a header line")
    version = header.get("version")
    if version != TRACE_VERSION:
        raise CheckpointError(
            f"unsupported trace version {version!r} (this build reads {TRACE_VERSION})"
        )
    if "config" not in header:
        raise CheckpointError("trace header lacks a config block")
    return header, events


def replay_trace(
    source: str | Path | Iterable[str], *, metrics: "MetricsRegistry | None" = None
) -> SchedulerRuntime:
    """Reconstruct a runtime by replaying a recorded trace."""
    header, events = read_trace(source)
    runtime = _runtime_from_config(header["config"], metrics=metrics)
    for event in events:
        _apply_event(runtime, event)
    return runtime


def _runtime_from_config(
    config: dict, *, metrics: "MetricsRegistry | None" = None
) -> SchedulerRuntime:
    try:
        ladder = _ladder_from_config(config["ladder"])
        return SchedulerRuntime.create(
            config["scheduler"],
            ladder,
            admission=[
                tuple(s) if isinstance(s, list) else s
                for s in config.get("admission", [])
            ],
            metrics=metrics,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"bad runtime config: {exc}") from exc


# ---------------------------------------------------------------------------
# checkpoints
# ---------------------------------------------------------------------------

def snapshot(runtime: SchedulerRuntime) -> dict:
    """Self-verifying snapshot of the runtime (JSON-safe dict)."""
    _require_history(runtime)
    clock = runtime.clock
    state = {
        "clock": None if not math.isfinite(clock) else clock,
        "n_events": runtime.n_events,
        "cost": runtime.cost(),
        "active": runtime.active_uids(),
        "assignment_sha256": assignment_digest(runtime),
    }
    return {
        "version": CHECKPOINT_VERSION,
        "config": _require_config(runtime),
        "events": list(runtime.events),
        "state": state,
    }


def restore(
    snap: dict, *, metrics: "MetricsRegistry | None" = None
) -> SchedulerRuntime:
    """Rebuild a runtime from a snapshot and verify it reproduces the
    recorded derived state exactly (raises :class:`CheckpointError` if not)."""
    if not isinstance(snap, dict):
        raise CheckpointError("checkpoint must be a JSON object")
    version = snap.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} "
            f"(this build reads {CHECKPOINT_VERSION})"
        )
    if "config" not in snap or "events" not in snap or "state" not in snap:
        raise CheckpointError("checkpoint lacks config/events/state")
    runtime = _runtime_from_config(snap["config"], metrics=metrics)
    for event in snap["events"]:
        _apply_event(runtime, event)
    state = snap["state"]
    expected_clock = state.get("clock")
    clock = None if not math.isfinite(runtime.clock) else runtime.clock
    mismatches = []
    if clock != expected_clock:
        mismatches.append(f"clock {clock!r} != {expected_clock!r}")
    if runtime.n_events != state.get("n_events"):
        mismatches.append(f"n_events {runtime.n_events} != {state.get('n_events')}")
    if runtime.active_uids() != state.get("active"):
        mismatches.append("active job set differs")
    if runtime.cost() != state.get("cost"):
        mismatches.append(f"cost {runtime.cost()!r} != {state.get('cost')!r}")
    if assignment_digest(runtime) != state.get("assignment_sha256"):
        mismatches.append("assignment digest differs")
    if mismatches:
        raise CheckpointError(
            "checkpoint failed self-verification: " + "; ".join(mismatches)
        )
    return runtime


def write_checkpoint(runtime: SchedulerRuntime, path: str | Path) -> None:
    """Snapshot the runtime to a JSON file."""
    Path(path).write_text(json.dumps(snapshot(runtime), sort_keys=True, indent=1))


def load_checkpoint(
    path: str | Path, *, metrics: "MetricsRegistry | None" = None
) -> SchedulerRuntime:
    """Restore a runtime from a checkpoint file (with self-verification).

    Raises :class:`CheckpointError` on unreadable, truncated or garbled
    files and on unknown schema versions — never a bare traceback.
    """
    try:
        snap = json.loads(Path(path).read_text())
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"malformed or truncated checkpoint {path}: {exc}"
        ) from exc
    return restore(snap, metrics=metrics)
