"""Deterministic, seed-driven fault injection for the durable service layer.

Chaos testing an event-sourced scheduler is tractable because the runtime
is a deterministic function of its event stream: kill a run at *any* point,
recover from the WAL, re-feed the lost suffix, and the result must be
bit-identical to an uninterrupted run.  This module provides the kill
switch — with no wall-clock or entropy anywhere, so every chaos case is
exactly reproducible from its seed.

A :class:`FaultPlan` is a list of :class:`FaultPoint` triggers.  Each point
names a *site* (an instrumented hook in the WAL or server), a 1-based
*step* (the n-th time that site fires) and a *kind*:

``crash-before-append``
    raise :class:`InjectedFault` before the record is framed or written —
    the event is lost entirely.
``crash-after-append``
    raise after the frame is written (and policy-fsynced) — the event
    survives iff the fsync policy made it durable.
``partial-write``
    persist only the first half of one frame, then crash — the torn tail
    the recovery path must detect and truncate.
``fsync-error``
    make ``fsync`` raise ``OSError`` — the WAL wraps it into a
    ``WALError`` and the service fail-stops (durability can no longer be
    promised).
``slow-io``
    sleep briefly inside a write (latency, no crash): injected runs must
    still finish state-identical to clean ones.
``conn-drop``
    (server site) sever the connection mid-request.
``stall``
    (server site) block request processing on an event the test controls —
    how the overload-shedding tests build deterministic backlog.

Durability simulation: the injector wraps the WAL's writes and fsyncs and
tracks, per file, how many bytes are *written* vs *durable* (fsynced;
partial writes count as durable to model a persisted torn sector).  After
a simulated crash, :meth:`FaultInjector.apply_crash_effects` truncates
every file to its durable length — the on-disk state a power loss would
have left behind.
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import time
from dataclasses import dataclass
from typing import IO, Any, Iterable, Sequence

__all__ = [
    "CRASH_KINDS",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultPoint",
    "InjectedFault",
]

#: kinds that abort the run (simulated process death)
CRASH_KINDS = ("crash-before-append", "crash-after-append", "partial-write",
               "fsync-error")
#: every recognised kind
FAULT_KINDS = CRASH_KINDS + ("slow-io", "conn-drop", "stall")

#: which instrumented site each kind triggers at
_KIND_SITE = {
    "crash-before-append": "wal.append.before",
    "crash-after-append": "wal.append.after",
    "partial-write": "wal.io.write",
    "fsync-error": "wal.io.fsync",
    "slow-io": "wal.io.write",
    "conn-drop": "server.request",
    "stall": "server.request",
}


class InjectedFault(RuntimeError):
    """A planned fault fired (simulated crash / drop / error)."""

    def __init__(self, point: "FaultPoint") -> None:
        super().__init__(
            f"injected {point.kind} at {point.site} step {point.step}"
        )
        self.point = point


@dataclass(frozen=True)
class FaultPoint:
    """One planned fault: fire ``kind`` the ``step``-th time ``site`` runs."""

    kind: str
    step: int
    arg: Any = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.step < 1:
            raise ValueError("fault steps are 1-based")

    @property
    def site(self) -> str:
        return _KIND_SITE[self.kind]


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of fault points (usually one kill point)."""

    points: tuple[FaultPoint, ...]

    @classmethod
    def of(cls, *points: FaultPoint) -> "FaultPlan":
        return cls(points=tuple(points))

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        kinds: Sequence[str] = CRASH_KINDS,
        max_step: int = 64,
    ) -> "FaultPlan":
        """One kill point derived purely from ``seed`` (sha256, no RNG state).

        The kind cycles through ``kinds`` and the step lands in
        ``[1, max_step]`` — spreading 200 seeds over 200 distinct
        (kind, step) kill points without any global randomness.
        """
        digest = hashlib.sha256(f"bshm-faults:{seed}".encode()).digest()
        kind = kinds[digest[0] % len(kinds)]
        step = 1 + int.from_bytes(digest[1:5], "big") % max_step
        return cls(points=(FaultPoint(kind=kind, step=step),))

    def describe(self) -> str:
        return ", ".join(f"{p.kind}@{p.step}" for p in self.points) or "(none)"


class FaultInjector:
    """Threads a :class:`FaultPlan` through the WAL and server hooks."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.fired: list[FaultPoint] = []
        self._counts: dict[str, int] = {}
        self._written: dict[str, int] = {}
        self._durable: dict[str, int] = {}

    # -- trigger matching ---------------------------------------------------
    def _fire(self, site: str) -> FaultPoint | None:
        """Count one execution of ``site``; return the matching point if any."""
        step = self._counts.get(site, 0) + 1
        self._counts[site] = step
        for point in self.plan.points:
            if point.site == site and point.step == step:
                self.fired.append(point)
                return point
        return None

    def point(self, site: str) -> None:
        """Generic (synchronous) hook: crash kinds raise, others no-op here."""
        point = self._fire(site)
        if point is not None and point.kind in CRASH_KINDS:
            raise InjectedFault(point)

    async def apoint(self, site: str) -> None:
        """Async server hook: conn drops raise, stalls await, slow-io sleeps."""
        point = self._fire(site)
        if point is None:
            return
        if point.kind == "conn-drop":
            raise InjectedFault(point)
        if point.kind == "stall":
            await point.arg.wait()
        elif point.kind == "slow-io":
            await asyncio.sleep(float(point.arg or 1e-3))
        elif point.kind in CRASH_KINDS:
            raise InjectedFault(point)

    # -- instrumented file I/O (durability bookkeeping) ---------------------
    def _path(self, fh: IO[bytes]) -> str:
        return os.path.abspath(fh.name)

    def io_write(self, fh: IO[bytes], data: bytes) -> None:
        """Write ``data`` through the fault filter; flushed so the on-disk
        file always reflects completed writes (crash effects then truncate
        precisely)."""
        path = self._path(fh)
        point = self._fire("wal.io.write")
        if point is not None and point.kind == "partial-write":
            half = data[: max(1, len(data) // 2)]
            fh.write(half)
            fh.flush()
            written = self._written.get(path, 0) + len(half)
            self._written[path] = written
            # torn sector: the partial frame is what a power loss persisted
            self._durable[path] = written
            raise InjectedFault(point)
        if point is not None and point.kind == "slow-io":
            time.sleep(float(point.arg or 1e-4))
        fh.write(data)
        fh.flush()
        self._written[path] = self._written.get(path, 0) + len(data)

    def io_fsync(self, fh: IO[bytes]) -> None:
        """fsync through the fault filter; marks the file's bytes durable."""
        path = self._path(fh)
        point = self._fire("wal.io.fsync")
        if point is not None and point.kind == "fsync-error":
            raise OSError(f"injected fsync failure (step {point.step})")
        fh.flush()
        os.fsync(fh.fileno())
        self._durable[path] = self._written.get(path, 0)

    def note_removed(self, path: str | os.PathLike[str]) -> None:
        """Forget bookkeeping for a file the WAL deleted or renamed away."""
        key = os.path.abspath(os.fspath(path))
        self._written.pop(key, None)
        self._durable.pop(key, None)

    def apply_crash_effects(self) -> dict[str, int]:
        """Truncate every tracked file to its durable length — the disk
        state after the simulated crash.  Returns ``{path: bytes_lost}``."""
        lost: dict[str, int] = {}
        for path, written in self._written.items():
            durable = self._durable.get(path, 0)
            if durable < written and os.path.exists(path):
                os.truncate(path, durable)
                lost[path] = written - durable
                self._written[path] = durable
        return lost


def chaos_seeds(n: int, *, start: int = 0) -> Iterable[int]:
    """The canonical seed range for a chaos matrix of ``n`` kill points."""
    return range(start, start + n)
