"""Durable write-ahead log: length+CRC framing, torn-tail recovery, compaction.

The streaming service applies each accepted event to the in-memory runtime
and then appends it here *before* acknowledging the request, so the disk
always holds a prefix of the logical event stream.  Because every
registered scheduler is a deterministic function of that stream, restart
recovery is exact: recover the durable prefix, re-feed whatever suffix the
client retries, and the runtime is bit-identical to a run that never
crashed.

On-disk layout of a WAL directory::

    wal-0000000000000000.log      segment: frames of events [base, next base)
    wal-0000000000000512.log      ...
    snapshot-0000000000001024.json  latest full-state snapshot (compaction)

**Framing.**  Every segment entry is one frame::

    <u32 little-endian payload length> <u32 CRC32(payload)> <payload>

The first frame of a segment is a header (``kind="wal-segment"``) carrying
the schema version, the segment's base event index and the runtime config;
each further frame is ``{"i": <event index>, "e": <event>}`` in canonical
JSON.  CRC32 catches bit rot and — together with the length prefix —
makes a torn final write self-evident.

**Torn-tail rule.**  A crash can leave at most one partial frame, at the
very end of the very last segment.  :func:`recover` therefore *truncates*
an incomplete frame or a CRC-mismatching frame that ends exactly at EOF of
the final segment (data loss the fsync policy already allowed), but fails
loudly with :class:`WALError` on corruption anywhere else — mid-stream
damage means the disk lied, and replaying past it would fabricate state.

**Fsync policy.**  ``always`` fsyncs before every acknowledgement (no
acked event is ever lost), ``batch`` fsyncs every ``batch_every`` appends
(bounded loss window, much cheaper), ``never`` leaves durability to the
OS.  Segment rotation and snapshot compaction fsync unconditionally, so
segment *bases* always sit on the durable prefix regardless of policy.

**Compaction.**  Every ``compact_every`` appends the writer serializes the
runtime's full state (:func:`repro.service.state.capture_state`) to
``snapshot-<n>.json`` via write-temp / fsync / ``os.replace``, rotates to
a fresh segment based at ``n`` and prunes every older segment and
snapshot.  Restore cost then drops from O(events ever) to
O(state) + O(events since last snapshot) — the delta.

Fault injection: a :class:`repro.service.faults.FaultInjector` threaded
through the writer intercepts every write and fsync, so chaos tests can
kill the service at arbitrary byte offsets and assert recovery.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, TYPE_CHECKING, Callable

from .checkpoint import CheckpointError, _apply_event, _runtime_from_config
from .faults import FaultInjector
from .runtime import SchedulerRuntime
from .state import capture_state, restore_state

if TYPE_CHECKING:  # pragma: no cover
    from .metrics import MetricsRegistry

__all__ = [
    "WAL_VERSION",
    "FSYNC_POLICIES",
    "WALError",
    "WALWriter",
    "RecoveredState",
    "recover",
]

WAL_VERSION = 1
FSYNC_POLICIES = ("always", "batch", "never")

_FRAME_HEADER = struct.Struct("<II")  # payload length, CRC32(payload)

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"
_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".json"


class WALError(CheckpointError):
    """The write-ahead log is corrupt, inconsistent, or cannot persist."""


def _dumps(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _frame(payload: bytes) -> bytes:
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _segment_path(wal_dir: Path, base: int) -> Path:
    return wal_dir / f"{_SEGMENT_PREFIX}{base:016d}{_SEGMENT_SUFFIX}"


def _snapshot_path(wal_dir: Path, n: int) -> Path:
    return wal_dir / f"{_SNAPSHOT_PREFIX}{n:016d}{_SNAPSHOT_SUFFIX}"


def _index_of(path: Path, prefix: str, suffix: str) -> int:
    stem = path.name[len(prefix):-len(suffix)]
    try:
        return int(stem)
    except ValueError as exc:
        raise WALError(f"unrecognized WAL file name {path.name!r}") from exc


def _fsync_dir(path: Path) -> None:
    """Best-effort directory fsync (persists renames/unlinks on POSIX)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def _parse_frames(data: bytes) -> tuple[list[bytes], int, str | None]:
    """Split ``data`` into frame payloads.

    Returns ``(payloads, clean_offset, problem)`` where ``problem`` is
    ``None`` (every byte consumed), ``"torn"`` (an incomplete frame, or a
    CRC mismatch ending exactly at EOF — a crash artefact), or
    ``"corrupt"`` (a CRC mismatch with more data after it — mid-stream
    damage).  ``clean_offset`` is the end of the last good frame.
    """
    payloads: list[bytes] = []
    offset = 0
    size = len(data)
    while offset < size:
        if offset + _FRAME_HEADER.size > size:
            return payloads, offset, "torn"
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        end = offset + _FRAME_HEADER.size + length
        if end > size:
            return payloads, offset, "torn"
        payload = data[offset + _FRAME_HEADER.size:end]
        if zlib.crc32(payload) != crc:
            return payloads, offset, "torn" if end == size else "corrupt"
        payloads.append(payload)
        offset = end
    return payloads, offset, None


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------

class WALWriter:
    """Appends a runtime's event stream to a WAL directory.

    The writer owns the *tail* of the log: it opens a fresh segment based
    at the runtime's current event count (recovery owns everything before
    that), appends new events via :meth:`append_new`, rotates segments,
    and periodically compacts into a state snapshot.
    """

    def __init__(
        self,
        wal_dir: str | Path,
        runtime: SchedulerRuntime,
        *,
        fsync: str = "batch",
        batch_every: int = 32,
        segment_records: int = 4096,
        compact_every: int = 0,
        faults: FaultInjector | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if runtime.config is None:
            raise WALError(
                "runtime has no serializable config; build it with "
                "SchedulerRuntime.create(...) to enable WAL persistence"
            )
        if batch_every < 1:
            raise ValueError("batch_every must be >= 1")
        if segment_records < 1:
            raise ValueError("segment_records must be >= 1")
        self.wal_dir = Path(wal_dir)
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self._runtime = runtime
        self._fsync_policy = fsync
        self._batch_every = batch_every
        self._segment_records = segment_records
        self._compact_every = compact_every
        self._faults = faults
        self._metrics = metrics if metrics is not None else runtime.metrics
        self._n = runtime.n_events  # next event index to append
        self._records = 0  # event frames in the active segment
        self._pending = 0  # appends since the last fsync
        self._since_snapshot = 0
        self._closed_segments: list[Path] = []
        self._fh: IO[bytes] | None = None
        # pre-create the WAL metrics so operators see them at zero
        self._metrics.counter("wal_appends")
        self._metrics.counter("wal_fsyncs")
        self._metrics.counter("wal_recovered_records")
        self._metrics.histogram("fsync_latency")
        self._open_segment()

    # -- low-level I/O, routed through the fault injector -------------------
    def _write(self, fh: IO[bytes], data: bytes) -> None:
        if self._faults is not None:
            self._faults.io_write(fh, data)
        else:
            fh.write(data)
            fh.flush()

    def _fsync_file(self, fh: IO[bytes]) -> None:
        start = time.perf_counter()  # bshm: ignore[BSHM004] - latency metric only
        try:
            if self._faults is not None:
                self._faults.io_fsync(fh)
            else:
                fh.flush()
                os.fsync(fh.fileno())
        except OSError as exc:
            raise WALError(f"fsync failed on {getattr(fh, 'name', '?')}: {exc}") from exc
        elapsed_ms = (time.perf_counter() - start) * 1e3  # bshm: ignore[BSHM004]
        self._metrics.counter("wal_fsyncs").inc()
        self._metrics.histogram("fsync_latency").observe(elapsed_ms)
        self._pending = 0

    def _unlink(self, path: Path) -> None:
        path.unlink(missing_ok=True)
        if self._faults is not None:
            self._faults.note_removed(path)

    # -- segments ------------------------------------------------------------
    def _open_segment(self) -> None:
        path = _segment_path(self.wal_dir, self._n)
        self._fh = open(path, "wb")
        self._records = 0
        header = {
            "kind": "wal-segment",
            "version": WAL_VERSION,
            "base": self._n,
            "config": self._runtime.config,
        }
        self._write(self._fh, _frame(_dumps(header).encode()))
        if self._fsync_policy != "never":
            self._fsync_file(self._fh)

    def _rotate(self) -> None:
        """Close the active segment (fsynced: bases stay on the durable
        prefix for every policy) and open the next one."""
        assert self._fh is not None
        self._fsync_file(self._fh)
        self._fh.close()
        self._closed_segments.append(Path(self._fh.name))
        self._open_segment()

    # -- appends -------------------------------------------------------------
    @property
    def n_appended(self) -> int:
        """Event indices [0, n_appended) have been handed to the log."""
        return self._n

    def append_new(self) -> int:
        """Append every runtime event not yet logged; returns the count.

        Call after applying a request to the runtime and before
        acknowledging it.  Fsyncs per policy, rotates full segments, and
        compacts when the snapshot interval is reached.  Raises
        :class:`WALError` if the log can no longer persist (the server
        fail-stops on that).
        """
        if self._fh is None:
            raise WALError("write-ahead log is closed")
        events = self._runtime.events_since(self._n)
        for event in events:
            if self._faults is not None:
                self._faults.point("wal.append.before")
            payload = _dumps({"i": self._n, "e": event}).encode()
            self._write(self._fh, _frame(payload))
            self._n += 1
            self._records += 1
            self._pending += 1
            self._since_snapshot += 1
            self._metrics.counter("wal_appends").inc()
            if self._fsync_policy == "always" or (
                self._fsync_policy == "batch" and self._pending >= self._batch_every
            ):
                self._fsync_file(self._fh)
            if self._faults is not None:
                self._faults.point("wal.append.after")
            if self._records >= self._segment_records:
                self._rotate()
        if self._compact_every > 0 and self._since_snapshot >= self._compact_every:
            self.compact()
        return len(events)

    # -- compaction ----------------------------------------------------------
    def compact(self) -> Path:
        """Snapshot the runtime state and prune fully covered segments.

        The snapshot is written to a temp file, fsynced, then atomically
        renamed — a crash mid-compaction leaves only an ignored ``*.tmp``.
        Older segments and snapshots are removed only after the new
        snapshot is durable.
        """
        if self._fh is None:
            raise WALError("write-ahead log is closed")
        state = capture_state(self._runtime)
        final = _snapshot_path(self.wal_dir, self._n)
        tmp = final.with_name(final.name + ".tmp")
        with open(tmp, "wb") as fh:
            self._write(fh, _dumps(state).encode())
            self._fsync_file(fh)
        os.replace(tmp, final)
        if self._faults is not None:
            self._faults.note_removed(tmp)
        _fsync_dir(self.wal_dir)
        if self._records > 0:
            self._rotate()
        for path in self._closed_segments:
            self._unlink(path)
        self._closed_segments.clear()
        for snap in sorted(self.wal_dir.glob(f"{_SNAPSHOT_PREFIX}*{_SNAPSHOT_SUFFIX}")):
            if _index_of(snap, _SNAPSHOT_PREFIX, _SNAPSHOT_SUFFIX) < self._n:
                self._unlink(snap)
        _fsync_dir(self.wal_dir)
        self._since_snapshot = 0
        return final

    # -- lifecycle -----------------------------------------------------------
    def sync(self) -> None:
        """Force everything appended so far onto disk."""
        if self._fh is not None:
            self._fsync_file(self._fh)

    def close(self) -> None:
        """Durably close the log (graceful shutdown)."""
        if self._fh is not None:
            self._fsync_file(self._fh)
            self._fh.close()
            self._fh = None

    def abandon(self) -> None:
        """Drop the file handle without syncing (simulated crash path)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------

@dataclass
class RecoveredState:
    """What :func:`recover` rebuilt, and how."""

    runtime: SchedulerRuntime
    n_events: int
    snapshot_n: int | None  # event count of the snapshot used, if any
    replayed: int  # delta events replayed from segments
    truncated_bytes: int  # torn tail removed from the final segment
    segments: int  # segment files scanned

    def describe(self) -> str:
        source = (
            f"snapshot@{self.snapshot_n}" if self.snapshot_n is not None
            else "segments only"
        )
        return (
            f"{self.n_events} events ({source} + {self.replayed} replayed, "
            f"{self.segments} segment(s), {self.truncated_bytes} torn byte(s) "
            "truncated)"
        )


def _load_json(payload: bytes, what: str) -> dict:
    try:
        doc = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise WALError(f"garbled {what} (CRC valid, JSON broken): {exc}") from exc
    if not isinstance(doc, dict):
        raise WALError(f"{what} must be a JSON object")
    return doc


def recover(
    wal_dir: str | Path,
    *,
    metrics: "MetricsRegistry | None" = None,
    config: dict | None = None,
    progress: "Callable[[str], None] | None" = None,
) -> RecoveredState:
    """Rebuild a runtime from a WAL directory.

    Restores the latest snapshot (if any), then replays the delta from the
    segment files in order.  A torn final record is truncated; corruption
    anywhere else raises :class:`WALError`.  ``config`` is only used when
    the directory holds no snapshot and no segment header (a service that
    crashed before persisting anything) — without it, an empty log is an
    error.  ``progress``, when given, receives one human-readable line per
    recovery stage (snapshot restore, then each segment scanned).
    """
    note = progress if progress is not None else (lambda _line: None)
    wal_path = Path(wal_dir)
    if not wal_path.is_dir():
        raise WALError(f"no WAL directory at {wal_path}")
    for tmp in sorted(wal_path.glob("*.tmp")):
        tmp.unlink(missing_ok=True)  # interrupted compaction, never durable

    runtime: SchedulerRuntime | None = None
    snapshot_n: int | None = None
    snaps = sorted(wal_path.glob(f"{_SNAPSHOT_PREFIX}*{_SNAPSHOT_SUFFIX}"))
    if snaps:
        latest = snaps[-1]
        try:
            doc = json.loads(latest.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise WALError(f"unreadable WAL snapshot {latest.name}: {exc}") from exc
        runtime = restore_state(doc, metrics=metrics)
        snapshot_n = runtime.n_events
        note(f"snapshot {latest.name}: state restored at event {snapshot_n}")

    expected = runtime.n_events if runtime is not None else 0
    replayed = 0
    truncated = 0
    segments = sorted(wal_path.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))
    for position, segment in enumerate(segments):
        is_final = position == len(segments) - 1
        base = _index_of(segment, _SEGMENT_PREFIX, _SEGMENT_SUFFIX)
        try:
            data = segment.read_bytes()
        except OSError as exc:
            raise WALError(f"cannot read WAL segment {segment.name}: {exc}") from exc
        payloads, clean_offset, problem = _parse_frames(data)
        if problem == "corrupt" or (problem == "torn" and not is_final):
            raise WALError(
                f"WAL segment {segment.name} is corrupt at byte {clean_offset} "
                "(mid-stream damage, refusing to replay past it)"
            )
        if problem == "torn":
            os.truncate(segment, clean_offset)
            truncated += len(data) - clean_offset
            note(
                f"segment {segment.name}: torn tail, truncated "
                f"{len(data) - clean_offset} bytes"
            )
        if not payloads:
            if is_final:
                note(f"segment {segment.name}: empty (crash before header), skipped")
                continue  # crash before the header reached disk
            raise WALError(f"WAL segment {segment.name} has no header frame")
        header = _load_json(payloads[0], f"segment header {segment.name}")
        if header.get("kind") != "wal-segment":
            raise WALError(f"{segment.name} is not a WAL segment")
        if header.get("version") != WAL_VERSION:
            raise WALError(
                f"unsupported WAL version {header.get('version')!r} in "
                f"{segment.name} (this build reads {WAL_VERSION})"
            )
        if header.get("base") != base:
            raise WALError(
                f"{segment.name} header base {header.get('base')!r} does not "
                f"match its file name"
            )
        if runtime is None:
            runtime = _runtime_from_config(header["config"], metrics=metrics)
        index = base
        seg_start = replayed
        for payload in payloads[1:]:
            record = _load_json(payload, f"record in {segment.name}")
            if record.get("i") != index:
                raise WALError(
                    f"WAL record index {record.get('i')!r} in {segment.name}, "
                    f"expected {index}"
                )
            if index >= expected:
                if index > expected:
                    raise WALError(
                        f"gap in WAL: expected event {expected}, "
                        f"found {index} in {segment.name}"
                    )
                event = record.get("e")
                if not isinstance(event, dict):
                    raise WALError(f"WAL record {index} has no event body")
                _apply_event(runtime, event)
                expected += 1
                replayed += 1
            index += 1
        note(
            f"segment {segment.name}: {len(payloads) - 1} records, "
            f"{replayed - seg_start} replayed"
        )

    if runtime is None:
        if config is None:
            raise WALError(
                f"WAL directory {wal_path} holds no recoverable data "
                "(and no fallback config was provided)"
            )
        runtime = _runtime_from_config(config, metrics=metrics)
    registry = metrics if metrics is not None else runtime.metrics
    registry.counter("wal_recovered_records").inc(replayed)
    return RecoveredState(
        runtime=runtime,
        n_events=runtime.n_events,
        snapshot_n=snapshot_n,
        replayed=replayed,
        truncated_bytes=truncated,
        segments=len(segments),
    )
