"""repro.service — the streaming scheduler runtime.

Everything outside this package speaks the batch language of
:class:`~repro.jobs.jobset.JobSet`; this package speaks the *service*
language of one event at a time:

- :mod:`~repro.service.runtime` — :class:`SchedulerRuntime`, the
  incremental online engine (``submit`` / ``depart`` / ``advance``) with
  admission control and a running busy-cost accumulator,
- :mod:`~repro.service.checkpoint` — versioned JSON snapshots and the
  newline-delimited trace format with byte-identical record/replay,
- :mod:`~repro.service.metrics` — counters, gauges and histograms sampled
  by the runtime,
- :mod:`~repro.service.server` — the asyncio JSON-lines server behind
  ``bshm serve`` (overload shedding, graceful drain, structured errors),
- :mod:`~repro.service.state` — O(state) full-state snapshots (exact
  float loads, no event replay) backing WAL compaction,
- :mod:`~repro.service.wal` — the durable write-ahead log with CRC
  framing, torn-tail recovery and snapshot+delta restore,
- :mod:`~repro.service.faults` — deterministic seed-driven fault
  injection for chaos testing the above,
- :mod:`~repro.service.errors` — the structured wire-error taxonomy,
- :mod:`~repro.service.client` — a retrying client with exponential
  backoff used by ``bshm replay --to``,
- :mod:`~repro.service.storage` — the pluggable event-log persistence
  contract (:class:`StateStore`) with in-memory and SQLite backends and
  snapshot + O(delta) restore,
- :mod:`~repro.service.shard` — the sharded multi-worker service: a
  router hash-routing jobs by machine-type pool to N worker processes,
  each with its own runtime and store (``bshm serve --workers N``).

The batch :func:`~repro.online.engine.run_online` is a thin adapter over
:class:`SchedulerRuntime`, so online algorithms, experiments and the live
service all share one code path.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import (
    SCHEDULER_REGISTRY,
    Admission,
    AdmissionError,
    SchedulerRuntime,
    make_scheduler,
    max_active_policy,
    size_fits_policy,
)
from .checkpoint import (
    CheckpointError,
    load_checkpoint,
    read_trace,
    record_trace,
    replay_trace,
    restore,
    snapshot,
    write_checkpoint,
    write_trace,
    TRACE_VERSION,
)
from .client import ClientError, RetryingClient, replay_events
from .errors import OverloadError, ServiceError, error_payload
from .faults import FaultInjector, FaultPlan, FaultPoint, InjectedFault
from .server import (
    JsonLineServer,
    RequestHandler,
    SchedulerServer,
    serve_forever,
)
from .shard import (
    LocalWorkerHandle,
    ShardError,
    ShardRouter,
    ShardWorker,
    WorkerHandle,
    WorkerSpec,
    serve_sharded,
    start_worker_fleet,
)
from .state import capture_state, restore_state
from .storage import (
    MemoryStore,
    RecoveredStore,
    SQLiteStore,
    StateStore,
    StorageError,
    StoreWriter,
    open_store,
    restore_from_store,
    shard_store_spec,
)
from .wal import RecoveredState, WALError, WALWriter, recover

__all__ = [
    "Admission",
    "AdmissionError",
    "CheckpointError",
    "ClientError",
    "Counter",
    "FaultInjector",
    "FaultPlan",
    "FaultPoint",
    "Gauge",
    "Histogram",
    "InjectedFault",
    "JsonLineServer",
    "LocalWorkerHandle",
    "MemoryStore",
    "MetricsRegistry",
    "OverloadError",
    "RecoveredState",
    "RecoveredStore",
    "RequestHandler",
    "RetryingClient",
    "SCHEDULER_REGISTRY",
    "SQLiteStore",
    "SchedulerRuntime",
    "SchedulerServer",
    "ServiceError",
    "ShardError",
    "ShardRouter",
    "ShardWorker",
    "StateStore",
    "StorageError",
    "StoreWriter",
    "TRACE_VERSION",
    "WALError",
    "WALWriter",
    "WorkerHandle",
    "WorkerSpec",
    "capture_state",
    "error_payload",
    "load_checkpoint",
    "make_scheduler",
    "max_active_policy",
    "open_store",
    "read_trace",
    "record_trace",
    "recover",
    "replay_events",
    "replay_trace",
    "restore",
    "restore_from_store",
    "restore_state",
    "serve_forever",
    "serve_sharded",
    "shard_store_spec",
    "size_fits_policy",
    "snapshot",
    "start_worker_fleet",
    "write_checkpoint",
    "write_trace",
]
