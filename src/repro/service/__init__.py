"""repro.service — the streaming scheduler runtime.

Everything outside this package speaks the batch language of
:class:`~repro.jobs.jobset.JobSet`; this package speaks the *service*
language of one event at a time:

- :mod:`~repro.service.runtime` — :class:`SchedulerRuntime`, the
  incremental online engine (``submit`` / ``depart`` / ``advance``) with
  admission control and a running busy-cost accumulator,
- :mod:`~repro.service.checkpoint` — versioned JSON snapshots and the
  newline-delimited trace format with byte-identical record/replay,
- :mod:`~repro.service.metrics` — counters, gauges and histograms sampled
  by the runtime,
- :mod:`~repro.service.server` — the asyncio JSON-lines server behind
  ``bshm serve``.

The batch :func:`~repro.online.engine.run_online` is a thin adapter over
:class:`SchedulerRuntime`, so online algorithms, experiments and the live
service all share one code path.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import (
    SCHEDULER_REGISTRY,
    Admission,
    AdmissionError,
    SchedulerRuntime,
    make_scheduler,
    max_active_policy,
    size_fits_policy,
)
from .checkpoint import (
    CheckpointError,
    load_checkpoint,
    read_trace,
    record_trace,
    replay_trace,
    restore,
    snapshot,
    write_checkpoint,
    write_trace,
    TRACE_VERSION,
)
from .server import SchedulerServer, serve_forever

__all__ = [
    "Admission",
    "AdmissionError",
    "CheckpointError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCHEDULER_REGISTRY",
    "SchedulerRuntime",
    "SchedulerServer",
    "TRACE_VERSION",
    "load_checkpoint",
    "make_scheduler",
    "max_active_policy",
    "read_trace",
    "record_trace",
    "replay_trace",
    "restore",
    "serve_forever",
    "size_fits_policy",
    "snapshot",
    "write_checkpoint",
    "write_trace",
]
