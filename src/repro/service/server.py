"""The asyncio JSON-lines scheduler server behind ``bshm serve``.

Wire protocol: one JSON document per line in each direction.  Requests
carry an ``op`` field; responses always carry ``ok`` (and ``error`` when
``ok`` is false).  The scheduler state is a single
:class:`~repro.service.runtime.SchedulerRuntime` shared by all
connections (requests are handled one line at a time per connection, and
the event loop serializes handlers, so the time-monotonicity contract is
enforced globally).

Ops::

    {"op": "submit", "size": 2.5, "t": 10.0, "name"?: str, "uid"?: int}
        -> {"ok": true, "uid": 7, "accepted": true, "machine": "T2[A/1]",
            "type": 2}   (or "accepted": false with "reason")
    {"op": "depart", "uid": 7, "t": 14.0}        -> {"ok": true, "uid": 7}
    {"op": "advance", "t": 20.0}                 -> {"ok": true, "clock": 20.0}
    {"op": "stats"}      -> {"ok": true, "clock", "active", "cost", "metrics"}
    {"op": "schedule"}   -> {"ok": true, "cost", "jobs", "machines"}
    {"op": "checkpoint", "path"?: str}
        -> {"ok": true, "path": ...} or {"ok": true, "snapshot": {...}}
    {"op": "shutdown"}   -> {"ok": true, "bye": true}   (server stops)

Malformed lines and rejected calls produce ``{"ok": false, "error": ...}``
without tearing down the connection; only ``shutdown`` (or cancellation)
stops the server.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Callable

from .checkpoint import snapshot, write_checkpoint
from .runtime import AdmissionError, SchedulerRuntime

__all__ = ["SchedulerServer", "serve_forever"]


class SchedulerServer:
    """One runtime exposed over newline-delimited JSON on TCP."""

    def __init__(self, runtime: SchedulerRuntime) -> None:
        self.runtime = runtime
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start serving; returns the actual ``(host, port)``."""
        self._server = await asyncio.start_server(self._handle, host, port)
        sock_host, sock_port = self._server.sockets[0].getsockname()[:2]
        return sock_host, sock_port

    async def wait_shutdown(self) -> None:
        """Block until a client sent ``shutdown``; then close the listener."""
        await self._shutdown.wait()
        await self.close()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request handling ---------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                response = self.handle_line(line.decode("utf-8", "replace"))
                writer.write((json.dumps(response, sort_keys=True) + "\n").encode())
                await writer.drain()
                if response.get("bye"):
                    self._shutdown.set()
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - client gone
                pass

    def handle_line(self, line: str) -> dict:
        """Process one request line synchronously (also used by tests)."""
        if not line.strip():
            return {"ok": False, "error": "empty request"}
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"malformed JSON: {exc}"}
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            return handler(request)
        except (AdmissionError, ValueError, TypeError, KeyError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    # -- ops ----------------------------------------------------------------
    def _op_submit(self, request: dict) -> dict:
        admission = self.runtime.submit(
            float(request["size"]),
            float(request["t"]),
            name=request.get("name"),
            uid=request.get("uid"),
        )
        out = {"ok": True, "uid": admission.uid, "accepted": admission.accepted}
        if admission.accepted:
            out["machine"] = str(admission.machine)
            out["type"] = admission.machine.type_index
        else:
            out["reason"] = admission.reason
        return out

    def _op_depart(self, request: dict) -> dict:
        self.runtime.depart(int(request["uid"]), float(request["t"]))
        return {"ok": True, "uid": int(request["uid"])}

    def _op_advance(self, request: dict) -> dict:
        self.runtime.advance(float(request["t"]))
        return {"ok": True, "clock": self.runtime.clock}

    def _op_stats(self, request: dict) -> dict:
        clock = self.runtime.clock
        return {
            "ok": True,
            "clock": None if not math.isfinite(clock) else clock,
            "active": self.runtime.n_active,
            "events": self.runtime.n_events,
            "cost": self.runtime.cost(),
            "busy_by_type": {
                str(i): n for i, n in self.runtime.busy_machines_by_type().items()
            },
            "metrics": self.runtime.metrics.as_dict(),
        }

    def _op_schedule(self, request: dict) -> dict:
        sched = self.runtime.schedule()
        return {
            "ok": True,
            "cost": sched.cost(),
            "jobs": len(sched),
            "machines": len(sched.machines()),
        }

    def _op_checkpoint(self, request: dict) -> dict:
        path = request.get("path")
        if path:
            write_checkpoint(self.runtime, path)
            return {"ok": True, "path": str(path)}
        return {"ok": True, "snapshot": snapshot(self.runtime)}

    def _op_shutdown(self, request: dict) -> dict:
        return {"ok": True, "bye": True}


async def serve_forever(
    runtime: SchedulerRuntime,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    on_ready: Callable[[str, int], None] | None = None,
) -> None:
    """Start a server and run until a client requests shutdown.

    ``on_ready(host, port)`` is called once the socket is bound — the CLI
    uses it to print the ephemeral port before blocking.
    """
    server = SchedulerServer(runtime)
    bound_host, bound_port = await server.start(host, port)
    if on_ready is not None:
        on_ready(bound_host, bound_port)
    await server.wait_shutdown()
