"""The asyncio JSON-lines scheduler server behind ``bshm serve``.

Wire protocol: one JSON document per line in each direction.  Requests
carry an ``op`` field; responses always carry ``ok``, and failed responses
carry a structured ``error`` object — ``{"code", "message", "retryable",
...}`` per the taxonomy in :mod:`repro.service.errors`.  The scheduler
state is a single :class:`~repro.service.runtime.SchedulerRuntime` shared
by all connections (handlers are synchronous, so the event loop serializes
them and the time-monotonicity contract is enforced globally).

Ops::

    {"op": "submit", "size": 2.5, "t": 10.0, "name"?: str, "uid"?: int}
        -> {"ok": true, "uid": 7, "accepted": true, "machine": "T2[A/1]",
            "type": 2}   (or "accepted": false with "reason")
    {"op": "depart", "uid": 7, "t": 14.0}        -> {"ok": true, "uid": 7}
    {"op": "advance", "t": 20.0}                 -> {"ok": true, "clock": 20.0}
    {"op": "stats"}      -> {"ok": true, "clock", "active", "cost", "metrics"}
    {"op": "schedule"}   -> {"ok": true, "cost", "jobs", "machines"}
    {"op": "checkpoint", "path"?: str}
        -> {"ok": true, "path": ...} or {"ok": true, "snapshot": {...}}
    {"op": "shutdown"}   -> {"ok": true, "bye": true}   (graceful drain)

Robustness properties (see ``docs/operations.md``):

- **Durability.**  With a :class:`~repro.service.wal.WALWriter` attached,
  every mutating request is applied to the runtime and appended to the WAL
  *before* the acknowledgement is written, so an acked event is on the
  durable prefix (subject to the fsync policy).  If the WAL cannot
  persist, the request is answered with ``storage-error`` and the server
  fail-stops via a drain — it never keeps acking writes it cannot make
  durable.
- **Overload shedding.**  At most ``max_inflight`` requests may be in
  flight; beyond that, requests are answered immediately with the
  retryable ``overloaded`` error (and a ``retry_after_ms`` hint) instead
  of queueing without bound.
- **Graceful drain.**  ``shutdown`` requests, SIGTERM and SIGINT all
  trigger the same path: stop accepting connections, let in-flight
  requests finish (new ones get the retryable ``draining`` error), fsync
  the WAL and write a final snapshot, then disconnect.
- **Connection hygiene.**  Reads are bounded in both time
  (``read_timeout``) and size (``max_line_bytes``); clients that vanish
  mid-exchange (``ConnectionResetError`` / ``BrokenPipeError``) are
  cleaned up without touching the shared runtime.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import signal
from typing import TYPE_CHECKING, Callable

from .checkpoint import snapshot, write_checkpoint
from .errors import OverloadError, ServiceError
from .faults import FaultInjector, InjectedFault
from .runtime import AdmissionError, SchedulerRuntime
from .storage.base import StorageError
from .storage.writer import StoreWriter
from .wal import WALError, WALWriter

if TYPE_CHECKING:  # pragma: no cover
    from .metrics import MetricsRegistry

__all__ = [
    "JsonLineServer",
    "RequestHandler",
    "SchedulerServer",
    "parse_line",
    "serve_forever",
]

#: default cap on request line length (bytes), and on in-flight requests
DEFAULT_MAX_LINE_BYTES = 1 << 16
DEFAULT_MAX_INFLIGHT = 64

#: failures the durable layer raises when it can no longer persist —
#: the server fail-stops identically whichever backend is attached
PERSISTENCE_ERRORS = (WALError, StorageError)


def parse_line(line: str) -> "tuple[dict | None, dict | None]":
    """Parse one request line into ``(request, None)`` or ``(None, error)``.

    The error half is a complete failed-response document, so callers
    (the single-loop handler and the shard router alike) reject malformed
    lines with byte-identical responses.
    """
    if not line.strip():
        return None, ServiceError("bad-request", "empty request").to_wire()
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        return None, ServiceError(
            "bad-request", f"malformed JSON: {exc}"
        ).to_wire()
    if not isinstance(request, dict):
        return None, ServiceError(
            "bad-request", "request must be a JSON object"
        ).to_wire()
    return request, None


class RequestHandler:
    """The scheduler ops behind the wire protocol, transport-free.

    One request dict in, one response dict out, never raising — this is
    the part of :class:`SchedulerServer` a shard worker process reuses, so
    a sharded service answers every op byte-identically to the single-loop
    server by construction.
    """

    def __init__(self, runtime: SchedulerRuntime) -> None:
        self.runtime = runtime

    def handle_line(self, line: str) -> dict:
        """Process one request line synchronously (also used by tests).

        Never raises: every failure becomes a structured error response.
        """
        request, error = parse_line(line)
        if request is None:
            return error if error is not None else ServiceError(
                "bad-request", "empty request"
            ).to_wire()
        return self.handle_request(request)

    def handle_request(self, request: dict) -> dict:
        """Dispatch one parsed request to its op handler (never raises)."""
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return ServiceError("unknown-op", f"unknown op {op!r}").to_wire()
        try:
            return handler(request)  # type: ignore[no-any-return]
        except ServiceError as exc:
            return exc.to_wire()
        except (AdmissionError, ValueError, TypeError, KeyError) as exc:
            return ServiceError(
                "invalid-request", f"{type(exc).__name__}: {exc}"
            ).to_wire()

    # -- ops ----------------------------------------------------------------
    def _op_submit(self, request: dict) -> dict:
        uid = request.get("uid")
        if uid is not None and self.runtime.knows_uid(int(uid)):
            # a redo of an acked submit (client retried across a reconnect);
            # dedicated code so replaying clients can treat it as success
            raise ServiceError(
                "duplicate-uid",
                f"job uid {int(uid)} was already submitted",
                uid=int(uid),
            )
        admission = self.runtime.submit(
            float(request["size"]),
            float(request["t"]),
            name=request.get("name"),
            uid=uid,
        )
        out: dict = {"ok": True, "uid": admission.uid, "accepted": admission.accepted}
        if admission.machine is not None:
            out["machine"] = str(admission.machine)
            out["type"] = admission.machine.type_index
        else:
            out["reason"] = admission.reason
        return out

    def _op_depart(self, request: dict) -> dict:
        self.runtime.depart(int(request["uid"]), float(request["t"]))
        return {"ok": True, "uid": int(request["uid"])}

    def _op_advance(self, request: dict) -> dict:
        self.runtime.advance(float(request["t"]))
        return {"ok": True, "clock": self.runtime.clock}

    def _op_stats(self, request: dict) -> dict:
        clock = self.runtime.clock
        return {
            "ok": True,
            "clock": None if not math.isfinite(clock) else clock,
            "active": self.runtime.n_active,
            "events": self.runtime.n_events,
            "cost": self.runtime.cost(),
            "busy_by_type": {
                str(i): n for i, n in self.runtime.busy_machines_by_type().items()
            },
            "metrics": self.runtime.metrics.as_dict(),
        }

    def _op_schedule(self, request: dict) -> dict:
        sched = self.runtime.schedule()
        return {
            "ok": True,
            "cost": sched.cost(),
            "jobs": len(sched),
            "machines": len(sched.machines()),
        }

    def _op_checkpoint(self, request: dict) -> dict:
        path = request.get("path")
        if path:
            write_checkpoint(self.runtime, path)
            return {"ok": True, "path": str(path)}
        return {"ok": True, "snapshot": snapshot(self.runtime)}

    def _op_shutdown(self, request: dict) -> dict:
        return {"ok": True, "bye": True}


class JsonLineServer:
    """The transport half of the service: newline-delimited JSON over TCP.

    Owns everything protocol-agnostic — connection lifecycle, read
    timeouts, line limits, the in-flight overload guard, graceful drain —
    and leaves two hooks to subclasses: :meth:`_dispatch` (one request
    line to one response dict) and :meth:`_drain_persistence` (make state
    durable during drain).  :class:`SchedulerServer` plugs a runtime + WAL
    into those hooks; :class:`repro.service.shard.ShardRouter` plugs in a
    worker fleet — both get identical wire behaviour for free.
    """

    def __init__(
        self,
        *,
        metrics: "MetricsRegistry",
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        read_timeout: float | None = None,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self._transport_metrics = metrics
        self._max_inflight = max_inflight
        self._read_timeout = read_timeout
        self._max_line_bytes = max_line_bytes
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._draining = False
        self._drained = False
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._conn_tasks: set[asyncio.Task] = set()
        metrics.counter("shed_requests")  # visible at zero in stats

    # -- subclass hooks -----------------------------------------------------
    async def _dispatch(self, line: str) -> dict:
        """Turn one request line into one response dict (never raises)."""
        raise NotImplementedError

    async def _drain_persistence(self) -> None:
        """Make state durable while draining (after in-flight settles)."""

    # -- lifecycle ----------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start serving; returns the actual ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=self._max_line_bytes
        )
        sock_host, sock_port = self._server.sockets[0].getsockname()[:2]
        return sock_host, sock_port

    def request_shutdown(self) -> None:
        """Signal-safe trigger for a graceful drain (SIGTERM/SIGINT hook)."""
        self._shutdown.set()

    async def wait_shutdown(self) -> None:
        """Block until shutdown is requested, then drain gracefully."""
        await self._shutdown.wait()
        await self.drain()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight requests,
        make state durable, drop connections."""
        if self._drained:
            return
        self._drained = True
        self._draining = True
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._idle.wait()  # every accepted request has been answered
        await self._drain_persistence()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    async def close(self) -> None:
        """Alias kept for tests/tools: drain and release the listener."""
        await self.drain()

    # -- request handling ---------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-exchange; shared state is untouched
        except InjectedFault:
            pass  # chaos harness severed this connection on purpose
        except asyncio.CancelledError:
            pass  # drain is force-dropping lingering connections
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while not self._shutdown.is_set():
            try:
                if self._read_timeout is not None:
                    line = await asyncio.wait_for(
                        reader.readline(), self._read_timeout
                    )
                else:
                    line = await reader.readline()
            except asyncio.TimeoutError:
                await self._send(
                    writer,
                    ServiceError(
                        "idle-timeout",
                        f"no request within {self._read_timeout:g}s; closing",
                    ).to_wire(),
                )
                return
            except (asyncio.LimitOverrunError, ValueError):
                # readline overran the stream limit; the tail of the
                # oversized line is unrecoverable, so answer and hang up
                await self._send(
                    writer,
                    ServiceError(
                        "line-too-long",
                        f"request exceeds {self._max_line_bytes} bytes",
                    ).to_wire(),
                )
                return
            if not line:
                return
            response = await self._respond(line.decode("utf-8", "replace"))
            await self._send(writer, response)
            if response.get("bye"):
                self._shutdown.set()
                return

    async def _send(self, writer: asyncio.StreamWriter, response: dict) -> None:
        writer.write((json.dumps(response, sort_keys=True) + "\n").encode())
        await writer.drain()

    async def _respond(self, line: str) -> dict:
        """Drain + overload guards around the subclass dispatch hook."""
        if self._draining:
            return ServiceError(
                "draining", "server is shutting down; retry elsewhere"
            ).to_wire()
        if self._inflight >= self._max_inflight:
            self._transport_metrics.counter("shed_requests").inc()
            return OverloadError(
                f"{self._inflight} requests in flight (limit "
                f"{self._max_inflight}); retry later"
            ).to_wire()
        self._inflight += 1
        self._idle.clear()
        try:
            return await self._dispatch(line)
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()


class SchedulerServer(RequestHandler, JsonLineServer):
    """One runtime exposed over newline-delimited JSON on TCP."""

    def __init__(
        self,
        runtime: SchedulerRuntime,
        *,
        wal: "WALWriter | StoreWriter | None" = None,
        faults: FaultInjector | None = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        read_timeout: float | None = None,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
    ) -> None:
        RequestHandler.__init__(self, runtime)
        JsonLineServer.__init__(
            self,
            metrics=runtime.metrics,
            max_inflight=max_inflight,
            read_timeout=read_timeout,
            max_line_bytes=max_line_bytes,
        )
        self.wal = wal
        self._faults = faults

    async def _drain_persistence(self) -> None:
        """Make the WAL/store durable: fsync + final snapshot + close."""
        if self.wal is not None:
            try:
                self.wal.sync()
                self.wal.compact()
                self.wal.close()
            except PERSISTENCE_ERRORS:
                # fail-stop path: durability already failed once; shutdown
                # must still complete so the process can be restarted.
                self.wal.abandon()

    async def _dispatch(self, line: str) -> dict:
        """Fault hook + handler + WAL append, in ack order."""
        if self._faults is not None:
            await self._faults.apoint("server.request")
        response = self.handle_line(line)
        if self.wal is not None and response.get("ok"):
            try:
                self.wal.append_new()
            except PERSISTENCE_ERRORS as exc:
                # the event is applied in memory but not durable: tell
                # the client it failed and fail-stop the service.
                asyncio.get_running_loop().call_soon(self._shutdown.set)
                self._draining = True
                return ServiceError(
                    "storage-error", f"write-ahead log failed: {exc}"
                ).to_wire()
        return response

def _install_signal_handlers(
    loop: asyncio.AbstractEventLoop, server: JsonLineServer
) -> list[signal.Signals]:
    installed: list[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, server.request_shutdown)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
            continue
        installed.append(sig)
    return installed


async def serve_forever(
    runtime: SchedulerRuntime,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    wal: "WALWriter | StoreWriter | None" = None,
    faults: FaultInjector | None = None,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    read_timeout: float | None = None,
    max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
    on_ready: Callable[[str, int], None] | None = None,
) -> None:
    """Start a server and run until shutdown (client op, SIGTERM or SIGINT),
    then drain gracefully.

    ``on_ready(host, port)`` is called once the socket is bound — the CLI
    uses it to print the ephemeral port before blocking.
    """
    server = SchedulerServer(
        runtime,
        wal=wal,
        faults=faults,
        max_inflight=max_inflight,
        read_timeout=read_timeout,
        max_line_bytes=max_line_bytes,
    )
    loop = asyncio.get_running_loop()
    installed = _install_signal_handlers(loop, server)
    try:
        bound_host, bound_port = await server.start(host, port)
        if on_ready is not None:
            on_ready(bound_host, bound_port)
        await server.wait_shutdown()
    finally:
        for sig in installed:
            with contextlib.suppress(ValueError, RuntimeError):
                loop.remove_signal_handler(sig)
