"""Structured service errors: one taxonomy for the wire, the CLI and logs.

Every failed request is answered with::

    {"ok": false, "error": {"code": "...", "message": "...", "retryable": bool}}

``code`` is a stable machine-readable identifier (the taxonomy below),
``retryable`` tells a well-behaved client whether re-sending the *same*
request can succeed later (overload, transient storage pressure) or is
pointless (malformed input, contract violations).  ``retry_after_ms`` is
attached to shed responses as a backoff hint.

Codes:

================  =========  =============================================
code              retryable  meaning
================  =========  =============================================
``bad-request``   no         unparseable line / not a JSON object
``unknown-op``    no         ``op`` is not part of the protocol
``invalid-request`` no       parameters violate the stream contract
                             (time backwards, unknown uid, bad size)
``duplicate-uid`` no         a job with this uid was already submitted —
                             a *redo* of an acked submit; clients replaying
                             after a reconnect treat this as success
``overloaded``    yes        load shedding: in-flight/backlog threshold
                             exceeded; retry after ``retry_after_ms``
``line-too-long`` no         request exceeded the server's line limit
``idle-timeout``  no         connection closed after a read timeout
``storage-error`` no         the write-ahead log could not persist the
                             event; the server drains (fail-stop)
``draining``      yes        server is shutting down gracefully; retry
                             against a restarted instance
``shard-failed``  no         a worker shard died with this request pending
                             or routed to it; the router drains (fail-stop)
                             and the shard's store decides what was durable
================  =========  =============================================

The full semantics are documented in ``docs/operations.md``.
"""

from __future__ import annotations

__all__ = ["ServiceError", "OverloadError", "error_payload"]


#: every known code mapped to its default retryability
ERROR_CODES: dict[str, bool] = {
    "bad-request": False,
    "unknown-op": False,
    "invalid-request": False,
    "duplicate-uid": False,
    "overloaded": True,
    "line-too-long": False,
    "idle-timeout": False,
    "storage-error": False,
    "draining": True,
    "shard-failed": False,
}


def error_payload(code: str, message: str, **extra: object) -> dict:
    """The wire form of one error: ``{"code", "message", "retryable", ...}``."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown service error code {code!r}")
    payload: dict = {"code": code, "message": message, "retryable": ERROR_CODES[code]}
    payload.update(extra)
    return payload


class ServiceError(Exception):
    """A request failure carrying its wire representation."""

    def __init__(self, code: str, message: str, **extra: object) -> None:
        super().__init__(message)
        self.code = code
        self.payload = error_payload(code, message, **extra)

    @property
    def retryable(self) -> bool:
        return bool(self.payload["retryable"])

    def to_wire(self) -> dict:
        """The full failed-response document."""
        return {"ok": False, "error": dict(self.payload)}


class OverloadError(ServiceError):
    """The load-shedding guard rejected a request (always retryable)."""

    def __init__(self, message: str, *, retry_after_ms: float = 50.0) -> None:
        super().__init__("overloaded", message, retry_after_ms=retry_after_ms)
