"""A retrying JSON-lines client for the scheduler service.

``bshm replay --to`` streams a recorded trace into a live server; against
a real network that means reconnects, shed requests and servers that are
mid-drain.  :class:`RetryingClient` wraps one synchronous socket with the
retry discipline the structured error taxonomy makes safe:

- transport failures (reset, refused, EOF, garbled response) and
  *retryable* error responses (``overloaded``, ``draining``) are retried
  with exponential backoff, honouring any ``retry_after_ms`` hint;
- non-retryable errors are returned to the caller untouched;
- a retried ``submit`` that was already acked before a reconnect comes
  back as ``duplicate-uid`` — :func:`replay_events` treats that as the
  success it is (exactly-once effect from at-least-once delivery, because
  every replayed submit carries an explicit uid).

The ``sleep`` hook exists so tests can count and skip real delays.
"""

from __future__ import annotations

import json
import socket
import time
from typing import IO, Callable

__all__ = ["ClientError", "RetryingClient", "replay_events"]


class ClientError(RuntimeError):
    """The request could not be completed within the retry budget."""


class RetryingClient:
    """One connection to a scheduler server, with retry + backoff."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_attempts: int = 6,
        backoff_s: float = 0.05,
        timeout_s: float = 10.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.host = host
        self.port = port
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.timeout_s = timeout_s
        self._sleep = sleep
        self._sock: socket.socket | None = None
        self._fh: IO[bytes] | None = None

    # -- connection management ----------------------------------------------
    def _ensure(self) -> IO[bytes]:
        if self._fh is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
            self._fh = self._sock.makefile("rwb")
        return self._fh

    def _drop(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "RetryingClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- requests ------------------------------------------------------------
    def request(self, payload: dict) -> dict:
        """Send one request; retry transport failures and retryable errors.

        Returns the final response document (which may still be a
        *non-retryable* error — the caller owns those semantics).  Raises
        :class:`ClientError` when the retry budget is exhausted.
        """
        line = (json.dumps(payload, sort_keys=True) + "\n").encode()
        last_failure = "no attempt made"
        for attempt in range(self.max_attempts):
            delay = self.backoff_s * (2 ** attempt)
            try:
                fh = self._ensure()
                fh.write(line)
                fh.flush()
                raw = fh.readline()
                if not raw:
                    raise ConnectionError("server closed the connection")
                response = json.loads(raw)
            except (OSError, ValueError) as exc:
                # ValueError covers json.JSONDecodeError: a torn response
                # means the connection is unusable, not that the op failed
                self._drop()
                last_failure = f"{type(exc).__name__}: {exc}"
            else:
                if not isinstance(response, dict):
                    self._drop()
                    last_failure = "non-object response"
                else:
                    error = response.get("error")
                    if response.get("ok") or not isinstance(error, dict):
                        return response
                    if not error.get("retryable"):
                        return response
                    hint_ms = error.get("retry_after_ms")
                    if isinstance(hint_ms, (int, float)):
                        delay = max(delay, float(hint_ms) / 1e3)
                    last_failure = f"retryable {error.get('code')}"
            if attempt + 1 < self.max_attempts:
                self._sleep(delay)
        raise ClientError(
            f"request {payload.get('op')!r} failed after "
            f"{self.max_attempts} attempts (last: {last_failure})"
        )


def replay_events(client: RetryingClient, events: list[dict]) -> int:
    """Feed recorded trace events into a live server; returns events applied.

    Submits carry their recorded uid, so a retry that crossed a reconnect
    may be answered with ``duplicate-uid`` — counted as applied (the first
    delivery won).  Any other error response aborts with
    :class:`ClientError`.
    """
    applied = 0
    for event in events:
        op = event.get("op")
        request: dict = {"op": op, "t": event.get("t")}
        if op == "submit":
            request["size"] = event.get("size")
            request["uid"] = event.get("uid")
            if event.get("name") is not None:
                request["name"] = event.get("name")
        elif op == "depart":
            request["uid"] = event.get("uid")
        elif op != "advance":
            raise ClientError(f"cannot replay unknown trace op {op!r}")
        response = client.request(request)
        if response.get("ok"):
            applied += 1
            continue
        error = response.get("error")
        code = error.get("code") if isinstance(error, dict) else None
        if code == "duplicate-uid":
            applied += 1  # the original delivery was acked; retry redundant
            continue
        raise ClientError(f"server rejected replayed event {event!r}: {error!r}")
    return applied
