"""repro.service.shard — the sharded multi-worker service.

A thin router process (:class:`ShardRouter`, speaking the exact wire
protocol of the single-loop server) hash-routes jobs by machine-type
pool to N worker processes, each owning its own
:class:`~repro.service.runtime.SchedulerRuntime` and its own pluggable
:class:`~repro.service.storage.base.StateStore`.  Admissions are batched
per pump tick, per-shard metrics aggregate in the router's ``stats`` op,
and a dead shard fail-stops the whole service (``shard-failed``).

``bshm serve --workers N --storage memory|sqlite:PATH`` is the CLI
front; :class:`LocalWorkerHandle` runs the same shard core in-process
for tests and benchmarks.
"""

from __future__ import annotations

from .router import (
    DEFAULT_QUEUE_DEPTH,
    LocalWorkerHandle,
    ShardError,
    ShardRouter,
    WorkerHandle,
    serve_sharded,
    start_worker_fleet,
)
from .routing import shard_for_submit, shard_for_uid, size_class
from .worker import ShardWorker, WorkerSpec, spawn_worker, worker_main

__all__ = [
    "DEFAULT_QUEUE_DEPTH",
    "LocalWorkerHandle",
    "ShardError",
    "ShardRouter",
    "ShardWorker",
    "WorkerHandle",
    "WorkerSpec",
    "serve_sharded",
    "shard_for_submit",
    "shard_for_uid",
    "size_class",
    "spawn_worker",
    "start_worker_fleet",
    "worker_main",
]
