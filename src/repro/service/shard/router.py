"""The shard router: one TCP front, N worker shards, batched admissions.

:class:`ShardRouter` is the sharded counterpart of
:class:`~repro.service.server.SchedulerServer` — it reuses the same
:class:`~repro.service.server.JsonLineServer` transport (same framing,
same overload guard, same drain), but instead of applying ops to a local
runtime it **routes** them:

- ``submit`` — validated against the router's mirror of the global
  stream contract (clock monotonicity, uid uniqueness, size sanity — the
  exact checks, in the exact order, with the exact messages of the
  single-loop runtime), assigned a uid, and hash-routed by machine-type
  pool (:func:`~repro.service.shard.routing.shard_for_submit`);
- ``depart`` — routed to the shard that owns the uid (uid-hash fallback
  for unknown uids, which then answer with the single-loop error);
- ``advance`` — broadcast, so every shard's event log carries the full
  clock history;
- ``stats`` / ``schedule`` — broadcast and aggregated (sums in shard
  order, so the totals are deterministic).

Requests to one worker queue up in a **bounded** per-worker admission
queue and are flushed as one batch per pump cycle — while the worker
chews on batch *k*, arrivals accumulate into batch *k+1* (natural
per-tick batching).  A full queue answers with the retryable
``overloaded`` error instead of queueing without bound; a dead worker
fails its pending requests with ``shard-failed`` and the router drains
(the same fail-stop discipline the single-loop server applies to a
broken WAL).
"""

from __future__ import annotations

import asyncio
import contextlib
import math
from typing import Callable, Iterable, Sequence

from ..errors import OverloadError, ServiceError
from ..metrics import MetricsRegistry
from ..runtime import AdmissionError
from ..server import (
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_MAX_LINE_BYTES,
    JsonLineServer,
    _install_signal_handlers,
    parse_line,
)
from .routing import shard_for_submit, shard_for_uid
from .worker import ShardWorker, WorkerSpec, spawn_worker

__all__ = [
    "DEFAULT_QUEUE_DEPTH",
    "LocalWorkerHandle",
    "ShardError",
    "ShardRouter",
    "WorkerHandle",
    "serve_sharded",
    "start_worker_fleet",
]

#: per-worker admission queue bound (requests, not bytes)
DEFAULT_QUEUE_DEPTH = 256

#: seconds a spawned worker gets to rebuild its shard and report ready
WORKER_START_TIMEOUT = 60.0


class ShardError(RuntimeError):
    """The worker fleet could not be started or spoke a broken protocol."""


class _WorkerDied(Exception):
    """Internal: the shard behind a handle is gone (reason in ``args``)."""


class BaseWorkerHandle:
    """Queue + pump shared by process-backed and in-process handles.

    Subclasses implement :meth:`_apply_batch` (one admission batch in,
    one response list out) and :meth:`_shutdown_worker` (graceful drain,
    returns the shard summary); both raise :class:`_WorkerDied` when the
    shard is gone.
    """

    def __init__(self, shard: int, *, queue_depth: int = DEFAULT_QUEUE_DEPTH) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.shard = shard
        self.info: dict | None = None
        self.dead = False
        self.death_reason = ""
        self._closing = False
        self._queue_depth = queue_depth
        self._queue: "asyncio.Queue[tuple] | None" = None
        self._pump_task: "asyncio.Task | None" = None
        self._on_death: "Callable[[int, str], None] | None" = None

    # -- subclass hooks -----------------------------------------------------
    async def _apply_batch(self, requests: list[dict]) -> list[dict]:
        raise NotImplementedError

    async def _shutdown_worker(self) -> dict:
        raise NotImplementedError

    # -- router-facing surface ----------------------------------------------
    async def attach(self, on_death: "Callable[[int, str], None]") -> None:
        """Start the pump task (must run inside the router's event loop)."""
        if self._queue is not None:
            return
        self._on_death = on_death
        self._queue = asyncio.Queue(maxsize=self._queue_depth)
        self._pump_task = asyncio.create_task(self._pump())

    def has_room(self) -> bool:
        """True if :meth:`enqueue` will not raise ``QueueFull`` right now."""
        if self.dead:
            return True  # enqueue answers immediately with shard-failed
        return self._queue is not None and not self._queue.full()

    def enqueue(self, request: dict) -> "asyncio.Future[dict]":
        """Queue one request; the future resolves to the shard's response.

        Raises :class:`asyncio.QueueFull` when the admission queue is at
        its bound — the router turns that into the ``overloaded`` error.
        """
        future: "asyncio.Future[dict]" = asyncio.get_running_loop().create_future()
        if self.dead or self._closing or self._queue is None:
            future.set_result(self._dead_response())
            return future
        self._queue.put_nowait(("apply", request, future))
        return future

    async def shutdown(self) -> dict | None:
        """Graceful drain: flush the queue, close the shard, return its
        summary (None if the shard already died)."""
        if self._queue is None or self.dead:
            return None
        self._closing = True
        future: "asyncio.Future[dict]" = asyncio.get_running_loop().create_future()
        await self._queue.put(("shutdown", None, future))
        summary = await future
        if self._pump_task is not None:
            with contextlib.suppress(asyncio.CancelledError):
                await self._pump_task
        if isinstance(summary, dict) and "error" not in summary:
            return summary
        return None

    # -- internals ----------------------------------------------------------
    def _dead_response(self) -> dict:
        reason = self.death_reason or "worker is shutting down"
        return ServiceError(
            "shard-failed", f"worker shard {self.shard} died: {reason}"
        ).to_wire()

    def _mark_dead(self, reason: str, items: "list[tuple]") -> None:
        self.dead = True
        self.death_reason = reason
        for item in items:
            future = item[2]
            if not future.done():
                future.set_result(self._dead_response())
        if not self._closing and self._on_death is not None:
            self._on_death(self.shard, reason)

    async def _pump(self) -> None:
        """Flush the admission queue in batches, lockstep with the shard."""
        assert self._queue is not None
        while True:
            items: list[tuple] = [await self._queue.get()]
            while True:
                try:
                    items.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            i = 0
            while i < len(items):
                if items[i][0] == "apply":
                    j = i
                    while j < len(items) and items[j][0] == "apply":
                        j += 1
                    batch = items[i:j]
                    requests = [item[1] for item in batch]
                    try:
                        responses = await self._apply_batch(requests)
                    except _WorkerDied as exc:
                        self._mark_dead(str(exc), items[i:])
                        return
                    if len(responses) != len(batch):
                        self._mark_dead(
                            f"shard answered {len(responses)} of "
                            f"{len(batch)} batched requests",
                            items[i:],
                        )
                        return
                    for item, response in zip(batch, responses):
                        if not item[2].done():
                            item[2].set_result(response)
                    i = j
                else:  # shutdown sentinel: drain the shard and stop pumping
                    future = items[i][2]
                    try:
                        summary = await self._shutdown_worker()
                    except _WorkerDied as exc:
                        self._mark_dead(str(exc), items[i:])
                        return
                    self.dead = True
                    self.death_reason = "worker was shut down"
                    if not future.done():
                        future.set_result(summary)
                    for item in items[i + 1:]:
                        if not item[2].done():
                            item[2].set_result(self._dead_response())
                    return


class WorkerHandle(BaseWorkerHandle):
    """A worker child process reached over a :mod:`multiprocessing` pipe.

    Pipe sends/receives run in the default executor so the router's event
    loop never blocks on a slow shard.
    """

    def __init__(
        self,
        shard: int,
        process: object,
        conn: object,
        *,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
    ) -> None:
        super().__init__(shard, queue_depth=queue_depth)
        self.process = process
        self.conn = conn

    def wait_ready(self, timeout: float = WORKER_START_TIMEOUT) -> dict:
        """Block (before the event loop runs) for the child's ready message."""
        if not self.conn.poll(timeout):  # type: ignore[attr-defined]
            raise ShardError(
                f"worker {self.shard} did not become ready within {timeout:g}s"
            )
        message = self.conn.recv()  # type: ignore[attr-defined]
        if not (isinstance(message, tuple) and message and message[0] == "ready"):
            detail = message[1] if isinstance(message, tuple) and len(message) > 1 else message
            raise ShardError(f"worker {self.shard} failed to start: {detail}")
        self.info = dict(message[1])
        return self.info

    def terminate(self) -> None:
        """Hard-kill the child (startup-failure cleanup path)."""
        with contextlib.suppress(Exception):
            self.conn.close()  # type: ignore[attr-defined]
        with contextlib.suppress(Exception):
            self.process.terminate()  # type: ignore[attr-defined]
            self.process.join(timeout=5)  # type: ignore[attr-defined]

    async def _exchange(self, message: tuple, expect: str) -> tuple:
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(None, self.conn.send, message)  # type: ignore[attr-defined]
            reply = await loop.run_in_executor(None, self.conn.recv)  # type: ignore[attr-defined]
        except (EOFError, OSError) as exc:
            raise _WorkerDied(f"pipe broke: {exc}") from exc
        if not (isinstance(reply, tuple) and reply and reply[0] == expect):
            if isinstance(reply, tuple) and len(reply) > 1 and reply[0] == "dead":
                raise _WorkerDied(str(reply[1]))
            raise _WorkerDied(f"unexpected reply {reply!r} to {message[0]!r}")
        return reply

    async def _apply_batch(self, requests: list[dict]) -> list[dict]:
        reply = await self._exchange(("apply", requests), "applied")
        return list(reply[1])

    async def _shutdown_worker(self) -> dict:
        reply = await self._exchange(("shutdown",), "bye")
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._join_process)
        return dict(reply[1])

    def _join_process(self) -> None:
        with contextlib.suppress(Exception):
            self.process.join(timeout=10)  # type: ignore[attr-defined]


class LocalWorkerHandle(BaseWorkerHandle):
    """An in-process shard: same interface, no child process.

    Batches apply synchronously on the event loop (the shard core is
    fast); used by tests, benchmarks, and anywhere process isolation is
    not worth its startup cost.
    """

    def __init__(
        self, spec: WorkerSpec, *, queue_depth: int = DEFAULT_QUEUE_DEPTH
    ) -> None:
        super().__init__(spec.shard, queue_depth=queue_depth)
        self.worker = ShardWorker(spec)
        self.info = self.worker.ready_info()

    async def _apply_batch(self, requests: list[dict]) -> list[dict]:
        try:
            return self.worker.apply(requests)
        except Exception as exc:  # noqa: BLE001 - fail-stop like the child
            raise _WorkerDied(f"shard {self.shard} store failed: {exc}") from exc

    async def _shutdown_worker(self) -> dict:
        return self.worker.shutdown()


class ShardRouter(JsonLineServer):
    """The TCP front of a sharded service (see module docstring)."""

    def __init__(
        self,
        handles: Sequence[BaseWorkerHandle],
        capacities: Iterable[float],
        *,
        metrics: MetricsRegistry | None = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        read_timeout: float | None = None,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
    ) -> None:
        if not handles:
            raise ValueError("a shard router needs at least one worker handle")
        self.handles = list(handles)
        self.capacities = [float(c) for c in capacities]
        if not self.capacities:
            raise ValueError("capacities must describe at least one machine type")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        JsonLineServer.__init__(
            self,
            metrics=self.metrics,
            max_inflight=max_inflight,
            read_timeout=read_timeout,
            max_line_bytes=max_line_bytes,
        )
        self.summaries: list[dict] = []
        # the router mirrors the single-loop runtime's global stream
        # contract so cross-shard invariants (clock monotonicity, uid
        # uniqueness) are enforced with identical errors
        self._clock = -math.inf
        self._used_uids: set[int] = set()
        self._next_uid = 0
        self._uid_shard: dict[int, int] = {}
        self._arrival: dict[int, float] = {}  # accepted open jobs
        self._rejected: set[int] = set()
        # recovered shards remember their uids; a fresh router does not —
        # adopt each worker's inventory or post-restart departs misroute
        # and duplicate submits slip through on the wrong shard
        for handle in self.handles:
            self._adopt_inventory(handle.shard, handle.info)

    def _adopt_inventory(self, shard: int, info: dict | None) -> None:
        inventory = info.get("inventory") if info else None
        if not inventory:
            return
        self._clock = max(self._clock, float(inventory["clock"]))
        for uid in inventory["used"]:
            self._used_uids.add(int(uid))
        for uid_raw, arrival in inventory["open"].items():
            uid = int(uid_raw)
            self._arrival[uid] = float(arrival)
            self._uid_shard[uid] = shard
        for uid in inventory["rejected"]:
            self._uid_shard[int(uid)] = shard
            self._rejected.add(int(uid))

    @property
    def n_shards(self) -> int:
        return len(self.handles)

    async def attach(self) -> None:
        """Start every worker pump (idempotent; needs the running loop)."""
        for handle in self.handles:
            await handle.attach(self._worker_died)

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        await self.attach()
        return await super().start(host, port)

    def _worker_died(self, shard: int, reason: str) -> None:
        # fail-stop: a lost shard is a lost slice of state — drain, exactly
        # like the single-loop server after a WAL failure
        self._draining = True
        self._shutdown.set()

    async def _drain_persistence(self) -> None:
        """Drain every shard (final sync + snapshot + close, per store)."""
        for handle in self.handles:
            summary = await handle.shutdown()
            if summary is not None:
                self.summaries.append(summary)

    # -- dispatch -----------------------------------------------------------
    async def _dispatch(self, line: str) -> dict:
        request, error = parse_line(line)
        if request is None:
            return error if error is not None else ServiceError(
                "bad-request", "empty request"
            ).to_wire()
        return await self.route(request)

    async def route(self, request: dict) -> dict:
        """Route one parsed request to its shard(s) (never raises)."""
        op = request.get("op")
        route = (
            getattr(self, f"_route_{op}", None) if isinstance(op, str) else None
        )
        if route is None:
            return ServiceError("unknown-op", f"unknown op {op!r}").to_wire()
        try:
            return await route(request)  # type: ignore[no-any-return]
        except ServiceError as exc:
            return exc.to_wire()
        except (AdmissionError, ValueError, TypeError, KeyError) as exc:
            return ServiceError(
                "invalid-request", f"{type(exc).__name__}: {exc}"
            ).to_wire()

    def _enqueue(self, shard: int, request: dict) -> "asyncio.Future[dict]":
        try:
            return self.handles[shard].enqueue(request)
        except asyncio.QueueFull:
            self.metrics.counter("shed_requests").inc()
            raise OverloadError(
                f"worker shard {shard} admission queue is full "
                f"({self.handles[shard]._queue_depth} pending); retry later"
            ) from None

    def _broadcast(self, request: dict) -> "list[asyncio.Future[dict]]":
        # check-then-enqueue with no await in between, so a broadcast is
        # all-or-nothing: either every shard gets the op or none does
        if any(not handle.has_room() for handle in self.handles):
            self.metrics.counter("shed_requests").inc()
            raise OverloadError("a worker admission queue is full; retry later")
        return [self._enqueue(k, request) for k in range(self.n_shards)]

    # -- routed ops ---------------------------------------------------------
    async def _route_submit(self, request: dict) -> dict:
        uid_raw = request.get("uid")
        if uid_raw is not None and int(uid_raw) in self._used_uids:
            raise ServiceError(
                "duplicate-uid",
                f"job uid {int(uid_raw)} was already submitted",
                uid=int(uid_raw),
            )
        size = float(request["size"])
        t = float(request["t"])
        if not math.isfinite(t):
            raise AdmissionError("arrival time must be finite")
        if t < self._clock:
            raise AdmissionError(
                f"time ran backwards: arrival {t:g} < clock {self._clock:g}"
            )
        if uid_raw is None:
            while self._next_uid in self._used_uids:
                self._next_uid += 1
            uid = self._next_uid
        else:
            uid = int(uid_raw)
        if size <= 0 or not math.isfinite(size):
            raise AdmissionError(
                f"job size must be positive and finite, got {size}"
            )
        shard = shard_for_submit(size, uid, self.n_shards, self.capacities)
        forwarded = dict(request)
        forwarded["uid"] = uid
        future = self._enqueue(shard, forwarded)
        # routed: commit the mirror at the serialization point (enqueue
        # order is the global event order)
        self._used_uids.add(uid)
        self._clock = t
        self._uid_shard[uid] = shard
        response = await future
        if response.get("ok"):
            if response.get("accepted"):
                self._arrival[uid] = t
            else:
                self._rejected.add(uid)
        return response

    async def _route_depart(self, request: dict) -> dict:
        uid = int(request["uid"])
        t = float(request["t"])
        if not math.isfinite(t):
            raise AdmissionError("departure time must be finite")
        if t < self._clock:
            raise AdmissionError(
                f"time ran backwards: departure {t:g} < clock {self._clock:g}"
            )
        arrival = self._arrival.get(uid)
        if arrival is not None and not t > arrival:
            raise AdmissionError(
                f"job {uid} cannot depart at {t:g} <= its arrival {arrival:g}"
            )
        shard = self._uid_shard.get(uid)
        if shard is None:
            # never submitted (or already departed): the uid-hash fallback
            # shard answers with the single-loop unknown-uid error and no
            # shard's clock moves
            return await self._enqueue(shard_for_uid(uid, self.n_shards), request)
        future = self._enqueue(shard, request)
        if arrival is not None or uid in self._rejected:
            # outcome is certain (every failure mode was checked against
            # the mirror): commit the clock at the serialization point
            self._clock = t
            if arrival is not None:
                del self._arrival[uid]
                del self._uid_shard[uid]
            return await future
        # the depart raced its own un-acked submit: commit on acknowledgement
        response = await future
        if response.get("ok"):
            self._clock = max(self._clock, t)
            if uid in self._arrival:
                del self._arrival[uid]
                del self._uid_shard[uid]
        return response

    async def _route_advance(self, request: dict) -> dict:
        t = float(request["t"])
        if not math.isfinite(t):
            raise AdmissionError("time must be finite")
        if t < self._clock:
            raise AdmissionError(
                f"time ran backwards: advance {t:g} < clock {self._clock:g}"
            )
        futures = self._broadcast(request)
        self._clock = t
        for response in await asyncio.gather(*futures):
            if not response.get("ok"):
                return response
        return {"ok": True, "clock": t}

    async def _route_stats(self, request: dict) -> dict:
        responses = await asyncio.gather(*self._broadcast({"op": "stats"}))
        for response in responses:
            if not response.get("ok"):
                return response
        busy: dict[str, int] = {}
        for response in responses:
            for type_index, n in response.get("busy_by_type", {}).items():
                busy[type_index] = busy.get(type_index, 0) + int(n)
        return {
            "ok": True,
            "clock": None if not math.isfinite(self._clock) else self._clock,
            "active": sum(int(r["active"]) for r in responses),
            "events": sum(int(r["events"]) for r in responses),
            "cost": sum(float(r["cost"]) for r in responses),
            "busy_by_type": {k: busy[k] for k in sorted(busy, key=int)},
            "workers": self.n_shards,
            "shards": list(responses),
            "metrics": self.metrics.as_dict(),
        }

    async def _route_schedule(self, request: dict) -> dict:
        responses = await asyncio.gather(*self._broadcast({"op": "schedule"}))
        for response in responses:
            if not response.get("ok"):
                return response
        return {
            "ok": True,
            "cost": sum(float(r["cost"]) for r in responses),
            "jobs": sum(int(r["jobs"]) for r in responses),
            "machines": sum(int(r["machines"]) for r in responses),
        }

    async def _route_checkpoint(self, request: dict) -> dict:
        if self.n_shards == 1:
            return await self._enqueue(0, request)
        raise ServiceError(
            "invalid-request",
            "checkpoint is unavailable with more than one worker; "
            "each shard persists its own store",
        )

    async def _route_shutdown(self, request: dict) -> dict:
        return {"ok": True, "bye": True}


def start_worker_fleet(
    n_workers: int,
    config: dict,
    *,
    storage: str = "memory",
    sync: str = "batch",
    batch_every: int = 32,
    compact_every: int = 0,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    on_ready: "Callable[[int, dict], None] | None" = None,
) -> list[WorkerHandle]:
    """Spawn ``n_workers`` shard processes and wait until all are ready.

    Children start concurrently (spawn + per-shard recovery overlap);
    ``on_ready(shard, info)`` fires per worker as it reports in.  On any
    startup failure every already-started child is terminated before the
    :class:`ShardError` propagates.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    handles: list[WorkerHandle] = []
    try:
        for shard in range(n_workers):
            spec = WorkerSpec(
                shard=shard,
                n_shards=n_workers,
                config=dict(config),
                storage=storage,
                sync=sync,
                batch_every=batch_every,
                compact_every=compact_every,
            )
            process, conn = spawn_worker(spec)
            handles.append(
                WorkerHandle(shard, process, conn, queue_depth=queue_depth)
            )
        for handle in handles:
            info = handle.wait_ready()
            if on_ready is not None:
                on_ready(handle.shard, info)
    except Exception:
        for handle in handles:
            handle.terminate()
        raise
    return handles


async def serve_sharded(
    handles: Sequence[BaseWorkerHandle],
    capacities: Iterable[float],
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    metrics: MetricsRegistry | None = None,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    read_timeout: float | None = None,
    max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
    on_ready: "Callable[[str, int], None] | None" = None,
) -> list[dict]:
    """Run a shard router until shutdown; returns the shard summaries.

    The sharded analogue of :func:`repro.service.server.serve_forever`:
    same signal handling, same graceful drain, same ``on_ready`` hook.
    """
    router = ShardRouter(
        handles,
        capacities,
        metrics=metrics,
        max_inflight=max_inflight,
        read_timeout=read_timeout,
        max_line_bytes=max_line_bytes,
    )
    loop = asyncio.get_running_loop()
    installed = _install_signal_handlers(loop, router)
    try:
        bound_host, bound_port = await router.start(host, port)
        if on_ready is not None:
            on_ready(bound_host, bound_port)
        await router.wait_shutdown()
        return router.summaries
    finally:
        for sig in installed:
            with contextlib.suppress(ValueError, RuntimeError):
                loop.remove_signal_handler(sig)
