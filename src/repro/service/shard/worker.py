"""One shard: a worker process owning a runtime and its private store.

A worker is the single-loop service minus the TCP transport: the same
:class:`~repro.service.server.RequestHandler` op semantics, the same
write-ahead ordering (apply to the runtime, append to the store, *then*
acknowledge), one :class:`~repro.service.storage.writer.StoreWriter`
over its own :class:`~repro.service.storage.base.StateStore`.  The router
talks to it over a :mod:`multiprocessing` pipe with a deliberately tiny
protocol::

    child  -> parent   ("ready", info)          once, after (re)building state
    parent -> child    ("apply", [request, …])  one admission batch per tick
    child  -> parent   ("applied", [response, …])
    parent -> child    ("shutdown",)            graceful drain
    child  -> parent   ("bye", summary)         final state summary
    child  -> parent   ("dead", reason)         fail-stop: the store broke

Batches are the durability unit: the whole batch is applied and appended
before any response in it is sent, so an acked request is in the store
(up to the writer's sync policy) — the per-request guarantee of the
single-loop server at batch granularity.

:class:`ShardWorker` is the transport-free core; :func:`worker_main` is
the child-process loop; :class:`LocalWorkerHandle` (in
:mod:`repro.service.shard.router`) drives the same core in-process for
tests and benchmarks.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.context import BaseContext
from multiprocessing.process import BaseProcess

from ..checkpoint import CheckpointError
from ..server import RequestHandler
from ..storage import StoreWriter, open_store, restore_from_store, shard_store_spec

__all__ = ["ShardWorker", "WorkerSpec", "spawn_worker", "worker_main"]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to (re)build its shard.

    Plain data only — the spec is pickled to the child on spawn and must
    describe the runtime declaratively (the same config dict a checkpoint
    carries: scheduler wire name, ladder, admission specs).
    """

    shard: int
    n_shards: int
    config: dict  # SchedulerRuntime.create(...)-style config
    storage: str = "memory"  # service-level spec; sharded per worker
    sync: str = "batch"
    batch_every: int = 32
    compact_every: int = 0
    extra: dict = field(default_factory=dict)  # forward-compatible knobs

    @property
    def store_spec(self) -> str:
        """This shard's private storage spec (``sqlite:…`` gets a suffix)."""
        return shard_store_spec(self.storage, self.shard, self.n_shards)


class ShardWorker(RequestHandler):
    """The transport-free shard core: handler + runtime + store writer.

    Building one opens (and if necessary recovers from) the shard's
    store: latest snapshot + O(delta) replay, exactly like ``bshm serve``
    restarting over its WAL directory.
    """

    def __init__(self, spec: WorkerSpec) -> None:
        store = open_store(spec.store_spec)
        recovered = restore_from_store(store, config=spec.config)
        super().__init__(recovered.runtime)
        self.spec = spec
        self.recovered = recovered
        self.writer = StoreWriter(
            store,
            recovered.runtime,
            sync=spec.sync,
            batch_every=spec.batch_every,
            compact_every=spec.compact_every,
        )

    def apply(self, requests: list[dict]) -> list[dict]:
        """Apply one admission batch; durable (per sync policy) on return.

        Raises :class:`~repro.service.storage.base.StorageError` when the
        store can no longer persist — the caller must fail-stop.
        """
        responses = [self.handle_request(request) for request in requests]
        self.writer.append_new()
        return responses

    def summary(self) -> dict:
        """The shard's aggregate state (the router merges these)."""
        return {
            "shard": self.spec.shard,
            "events": self.runtime.n_events,
            "active": self.runtime.n_active,
            "cost": self.runtime.cost(),
            "store": self.writer.store.description,
        }

    def ready_info(self) -> dict:
        """The handshake payload: recovery summary + the uid inventory the
        router adopts so duplicate refusal and depart routing survive a
        restart (the runtime remembers its uids; a fresh router does not)."""
        return {
            "shard": self.spec.shard,
            "events": self.runtime.n_events,
            "recovered": self.recovered.describe(),
            "store": self.writer.store.description,
            "inventory": self.runtime.uid_inventory(),
        }

    def shutdown(self) -> dict:
        """Graceful drain: final sync + snapshot + close; returns summary."""
        out = self.summary()
        try:
            self.writer.sync()
            self.writer.compact()
            self.writer.close()
        except CheckpointError:
            # fail-stop path: durability already failed once; shutdown
            # must still complete so the shard can be restarted.
            self.writer.abandon()
        return out


def worker_main(conn: Connection, spec: WorkerSpec) -> None:
    """Child-process loop: build the shard, then serve pipe messages."""
    try:
        worker = ShardWorker(spec)
    except Exception as exc:  # noqa: BLE001 - report, then die visibly
        conn.send(("dead", f"shard {spec.shard} failed to start: {exc}"))
        conn.close()
        return
    conn.send(("ready", worker.ready_info()))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            # the router vanished: abandon (crash-consistent store) and exit
            worker.writer.abandon()
            return
        kind = message[0] if isinstance(message, tuple) and message else None
        if kind == "apply":
            try:
                responses = worker.apply(list(message[1]))
            except Exception as exc:  # noqa: BLE001 - fail-stop, tell the router
                conn.send(("dead", f"shard {spec.shard} store failed: {exc}"))
                worker.writer.abandon()
                conn.close()
                return
            conn.send(("applied", responses))
        elif kind == "shutdown":
            conn.send(("bye", worker.shutdown()))
            conn.close()
            return
        else:
            conn.send(("dead", f"shard {spec.shard}: bad control message {kind!r}"))
            worker.writer.abandon()
            conn.close()
            return


def spawn_worker(
    spec: WorkerSpec, *, ctx: BaseContext | None = None
) -> tuple[BaseProcess, Connection]:
    """Start one worker child; returns ``(process, parent_end_of_pipe)``.

    Uses the ``spawn`` start method by default: children get a fresh
    interpreter, so the router's asyncio loop, signal handlers and open
    sockets are never inherited.
    """
    if ctx is None:
        ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe()
    process = ctx.Process(
        target=worker_main, args=(child_conn, spec), daemon=True
    )
    process.start()
    child_conn.close()
    return process, parent_conn
