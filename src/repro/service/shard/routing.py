"""Deterministic job-to-shard routing for the sharded service.

The router hash-routes submits by **machine-type pool**: a job's size
class (the smallest ladder type that fits it — exactly the scheduler's
``_size_class``) decides which worker owns it, so each worker's runtime
concentrates one slice of the type ladder and its Group-A pools fill the
way the single-loop scheduler would fill them for that slice.

- ``n_shards <= m`` — classes are striped round-robin over workers:
  class ``c`` goes to worker ``(c - 1) % n_shards``.
- ``n_shards > m`` — workers are block-partitioned among the classes
  (class ``c`` owns a contiguous block of workers) and jobs spread
  within the block by a mixed uid hash.
- no usable size class (oversized job, malformed size) — fall back to
  the uid hash over all workers; the worker's runtime rejects or errors
  exactly as the single-loop runtime would.

Everything here is a pure function of ``(size, uid, n_shards,
capacities)`` — no wall clock, no RNG — so a replayed stream routes to
byte-identical shards.
"""

from __future__ import annotations

import math
from typing import Sequence

from ...core.tolerance import FINE_TOL

__all__ = ["shard_for_submit", "shard_for_uid", "size_class"]


def _mix(x: int) -> int:
    """Deterministic 32-bit integer mix (splitmix-style avalanche)."""
    x &= 0xFFFFFFFF
    x = ((x ^ (x >> 16)) * 0x45D9F3B) & 0xFFFFFFFF
    x = ((x ^ (x >> 16)) * 0x45D9F3B) & 0xFFFFFFFF
    return x ^ (x >> 16)


def size_class(size: float, capacities: Sequence[float]) -> int | None:
    """The 1-based index of the smallest type that fits ``size``.

    Mirrors the schedulers' ``_size_class`` (same relative tolerance).
    Returns None when no type fits or the size is not a positive finite
    number — the caller falls back to uid-hash routing.
    """
    try:
        s = float(size)
    except (TypeError, ValueError):
        return None
    if not math.isfinite(s) or s <= 0:
        return None
    for i, cap in enumerate(capacities, start=1):
        if s <= cap * (1 + FINE_TOL):
            return i
    return None


def shard_for_uid(uid: int, n_shards: int) -> int:
    """Uid-hash fallback: spreads uids evenly and deterministically."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return _mix(int(uid)) % n_shards


def shard_for_submit(
    size: float, uid: int, n_shards: int, capacities: Sequence[float]
) -> int:
    """The worker that owns a submitted job (see module docstring)."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_shards == 1:
        return 0
    cls = size_class(size, capacities)
    if cls is None:
        return shard_for_uid(uid, n_shards)
    m = len(capacities)
    if n_shards <= m:
        return (cls - 1) % n_shards
    # block-partition the workers among the m classes: each class owns
    # floor(n/m) workers, the first n % m classes one extra
    base, extra = divmod(n_shards, m)
    start = (cls - 1) * base + min(cls - 1, extra)
    width = base + (1 if cls - 1 < extra else 0)
    return start + _mix(int(uid)) % width
