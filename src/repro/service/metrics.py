"""A small metrics registry for the streaming scheduler service.

Three instrument kinds, deliberately dependency-free:

- :class:`Counter` — monotone event counts (arrivals, rejections),
- :class:`Gauge` — instantaneous values (active jobs, busy machines),
- :class:`Histogram` — sampled distributions (per-decision latency) with a
  bounded, *deterministic* reservoir: when full, every other sample is
  dropped and the keep-stride doubles, so long streams degrade to coarser
  but unbiased-in-time sampling without any randomness (replays stay
  reproducible).

:class:`MetricsRegistry` is the get-or-create front door the runtime and
server use; it renders as aligned text (for terminals) or a plain dict
(for the JSON-lines protocol and tests).
"""

from __future__ import annotations

import json
import math
from typing import Callable, TypeVar

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: instrument type resolved by MetricsRegistry._get
_I = TypeVar("_I", bound="Counter | Gauge | Histogram")


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the count."""
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    def as_dict(self) -> dict:
        return {"kind": "counter", "value": self.value}


class Gauge:
    """An instantaneous value that can move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def as_dict(self) -> dict:
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """A sampled distribution with a bounded deterministic reservoir.

    All observations update ``count``/``total``/``min``/``max`` exactly;
    quantiles are computed from the reservoir, which keeps every
    ``stride``-th observation and compacts (drop every other kept sample,
    double the stride) whenever it reaches ``max_samples``.
    """

    __slots__ = ("name", "count", "total", "min", "max", "max_samples",
                 "_samples", "_stride", "_seen")

    def __init__(self, name: str, *, max_samples: int = 4096) -> None:
        if max_samples < 2:
            raise ValueError("reservoir needs at least 2 slots")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.max_samples = max_samples
        self._samples: list[float] = []
        self._stride = 1
        self._seen = 0  # observations since the last kept sample

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self._seen += 1
        if self._seen >= self._stride:
            self._seen = 0
            self._samples.append(value)
            if len(self._samples) >= self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (``p`` in [0, 100]) from the reservoir."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(p / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    def as_dict(self) -> dict:
        return {
            "kind": "histogram",
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(
        self, name: str, factory: Callable[[str], _I], kind: type[_I]
    ) -> _I:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = factory(name)
        elif not isinstance(inst, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str, *, max_samples: int = 4096) -> Histogram:
        return self._get(
            name, lambda n: Histogram(n, max_samples=max_samples), Histogram
        )

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def as_dict(self) -> dict:
        """All instruments as one JSON-safe dict (sorted by name)."""
        return {name: self._instruments[name].as_dict() for name in self.names()}

    def render_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    def render_text(self) -> str:
        """Aligned human-readable dump, one instrument per line."""
        lines = []
        width = max((len(n) for n in self._instruments), default=0)
        for name in self.names():
            d = self._instruments[name].as_dict()
            kind = d.pop("kind")
            body = "  ".join(
                f"{k}={v:.6g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in d.items()
            )
            lines.append(f"{name:<{width}s}  {kind:<9s} {body}")
        return "\n".join(lines) if lines else "(no metrics)"
