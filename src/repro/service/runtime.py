"""The incremental online runtime: one event at a time, no batch in sight.

:class:`SchedulerRuntime` wraps any :class:`~repro.online.engine.OnlineScheduler`
and accepts a live, unbounded stream of calls:

- :meth:`~SchedulerRuntime.submit` — a job arrives *without* a departure
  time (non-clairvoyance is structural: the scheduler only ever sees a
  :class:`~repro.online.engine.JobView`),
- :meth:`~SchedulerRuntime.depart` — the job's departure is revealed, its
  capacity is released and its busy interval lands in the running
  :class:`~repro.core.sweep.BusyIntervalCache` cost accumulator,
- :meth:`~SchedulerRuntime.advance` — the clock moves with no event
  (metrics sampling, heartbeats).

Time must be non-decreasing across calls, and the half-open boundary
convention of the batch engine applies: a departure at ``t`` delivered
before an arrival at ``t`` is the canonical order (what
:func:`~repro.core.events.event_stream` produces), so a job leaving at
``t`` never overlaps one arriving at ``t``.

A finished :class:`~repro.schedule.schedule.Schedule` can be emitted at any
point; still-open jobs are provisionally closed at the requested horizon.
Every accepted call is appended to an in-memory event log, which is what
:mod:`repro.service.checkpoint` records, snapshots and replays.

Admission control: ``submit`` consults a list of policies before the
scheduler sees the job; a policy returning a string rejects the job with
that reason (counted in metrics, absent from the schedule).  Policies are
given declaratively (``"fits-ladder"``, ``("max-active", 200)``) so that a
checkpoint can reconstruct them, or as arbitrary callables for in-process
use (such a runtime cannot be snapshotted).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from ..core.sweep import BusyIntervalCache
from ..core.tolerance import FINE_TOL
from ..jobs.job import Job
from ..machines.ladder import Ladder
from ..online.engine import JobView, OnlineScheduler
from ..online.dec_online import DecOnlineScheduler
from ..online.first_fit import FirstFitScheduler
from ..online.general_online import GeneralOnlineScheduler
from ..online.inc_online import IncOnlineScheduler
from ..schedule.schedule import MachineKey, Schedule

if TYPE_CHECKING:  # pragma: no cover
    from .metrics import MetricsRegistry

__all__ = [
    "Admission",
    "AdmissionError",
    "SCHEDULER_REGISTRY",
    "SchedulerRuntime",
    "make_scheduler",
    "max_active_policy",
    "size_fits_policy",
]


class AdmissionError(ValueError):
    """The event stream violated the runtime's ordering/identity contract
    (time running backwards, duplicate uid, departure of an unknown job)."""


@dataclass(frozen=True, slots=True)
class Admission:
    """Outcome of one ``submit`` call."""

    uid: int
    accepted: bool
    machine: MachineKey | None  # None iff rejected
    reason: str | None  # rejection reason iff rejected
    latency_s: float  # wall-clock time spent in the scheduler's decision


# ---------------------------------------------------------------------------
# scheduler + admission-policy registries (names are the wire/trace format)
# ---------------------------------------------------------------------------

SCHEDULER_REGISTRY: dict[str, Callable[[Ladder], object]] = {
    "dec": DecOnlineScheduler,
    "inc": IncOnlineScheduler,
    "general": GeneralOnlineScheduler,
    # First-Fit on the largest type: every admissible job fits it
    "first-fit": lambda ladder: FirstFitScheduler(ladder, ladder.m),
}


#: a policy inspects the arriving JobView and returns a rejection reason
#: (or ``None`` to admit)
AdmissionPolicy = Callable[[JobView, "SchedulerRuntime"], "str | None"]


def make_scheduler(name: str, ladder: Ladder) -> OnlineScheduler:
    """Instantiate a registered online scheduler by wire name."""
    try:
        factory = SCHEDULER_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULER_REGISTRY)}"
        ) from None
    return factory(ladder)


def size_fits_policy(view: JobView, runtime: "SchedulerRuntime") -> str | None:
    """Reject jobs larger than the biggest machine type."""
    g_max = runtime.ladder.capacity(runtime.ladder.m)
    if view.size > g_max * (1 + FINE_TOL):
        return f"size {view.size:g} exceeds largest capacity {g_max:g}"
    return None


def max_active_policy(limit: int) -> AdmissionPolicy:
    """Reject arrivals while ``limit`` jobs are already active."""

    def policy(view: JobView, runtime: "SchedulerRuntime") -> str | None:
        if runtime.n_active >= limit:
            return f"active-job limit {limit} reached"
        return None

    return policy


def _resolve_policy(spec: AdmissionPolicy | str | Sequence[object]) -> AdmissionPolicy:
    """Turn a declarative policy spec (or callable) into a callable."""
    if callable(spec):
        return spec
    if spec == "fits-ladder":
        return size_fits_policy
    if isinstance(spec, (list, tuple)) and len(spec) == 2 and spec[0] == "max-active":
        return max_active_policy(int(spec[1]))
    raise ValueError(f"unknown admission policy spec {spec!r}")


# ---------------------------------------------------------------------------
# the runtime
# ---------------------------------------------------------------------------

class SchedulerRuntime:
    """Incremental online scheduling over a live event stream."""

    __slots__ = (
        "scheduler",
        "metrics",
        "config",
        "clock",
        "_policies",
        "_open",
        "_closed",
        "_rejected",
        "_used_uids",
        "_next_uid",
        "_cache",
        "_machine_open",
        "_busy_by_type",
        "_log",
        "_log_base",
        "_placement_stats",
    )

    def __init__(
        self,
        scheduler: OnlineScheduler,
        *,
        metrics: "MetricsRegistry | None" = None,
        admission: Iterable[AdmissionPolicy | str | Sequence[object]] = (),
        config: Mapping[str, object] | None = None,
    ) -> None:
        from .metrics import MetricsRegistry  # local: keep import graph acyclic

        self.scheduler = scheduler
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: serializable description (scheduler name, ladder, admission) or
        #: None when constructed around a bare scheduler object
        self.config = dict(config) if config is not None else None
        self.clock = -math.inf
        self._policies = [_resolve_policy(p) for p in admission]
        # uid -> (size, arrival, name, MachineKey)
        self._open: dict[int, tuple[float, float, str, MachineKey]] = {}
        # uid -> (Job, MachineKey)
        self._closed: dict[int, tuple[Job, MachineKey]] = {}
        self._rejected: dict[int, str] = {}
        self._used_uids: set[int] = set()
        self._next_uid = 0
        self._cache = BusyIntervalCache()
        self._machine_open: dict[MachineKey, int] = {}
        self._busy_by_type: dict[int, int] = {}
        self._log: list[dict] = []
        # events dropped from memory by a state-snapshot restore: the runtime
        # then holds only the tail of its own history (the WAL holds the rest)
        self._log_base = 0
        # schedulers built on IndexedPool expose fleet-wide probe counters
        # through their FleetState; others (custom/test doubles) opt out
        self._placement_stats = getattr(
            getattr(scheduler, "state", None), "stats", None
        )

    @classmethod
    def create(
        cls,
        scheduler_name: str,
        ladder: Ladder,
        *,
        admission: Iterable[str | Sequence[object]] = (),
        metrics: "MetricsRegistry | None" = None,
    ) -> "SchedulerRuntime":
        """Build a runtime from wire names — the checkpointable constructor.

        ``admission`` must use declarative specs here (``"fits-ladder"`` or
        ``("max-active", n)``) so the resulting config round-trips through
        :func:`repro.service.checkpoint.snapshot`.
        """
        specs = list(admission)
        for spec in specs:
            if callable(spec):
                raise ValueError(
                    "SchedulerRuntime.create needs declarative admission specs; "
                    "pass callables to SchedulerRuntime() directly (not checkpointable)"
                )
        config = {
            "scheduler": scheduler_name,
            "ladder": [[t.capacity, t.rate] for t in ladder.types],
            "admission": [list(s) if isinstance(s, tuple) else s for s in specs],
        }
        return cls(
            make_scheduler(scheduler_name, ladder),
            metrics=metrics,
            admission=specs,
            config=config,
        )

    # -- introspection ------------------------------------------------------
    @property
    def ladder(self) -> Ladder:
        return self.scheduler.ladder

    @property
    def n_active(self) -> int:
        """Jobs submitted and not yet departed."""
        return len(self._open)

    @property
    def n_events(self) -> int:
        """Accepted stream calls so far (including any truncated history)."""
        return self._log_base + len(self._log)

    @property
    def events(self) -> tuple[dict, ...]:
        """The in-memory event log (inputs only; decisions are derived).

        After a state-snapshot restore this holds only events *since* the
        snapshot — check :attr:`history_truncated` before treating it as the
        full history (``record_trace``/``snapshot`` refuse in that case).
        """
        return tuple(self._log)

    @property
    def history_truncated(self) -> bool:
        """True when earlier events were dropped by a state-snapshot restore."""
        return self._log_base > 0

    def events_since(self, start: int) -> list[dict]:
        """Events with stream index ``>= start`` (no full-log copy).

        The WAL appender calls this per request, so it must be O(delta);
        ``start`` below :attr:`history_truncated`'s base is unrecoverable.
        """
        if start < self._log_base:
            raise ValueError(
                f"events before index {self._log_base} were truncated by a "
                f"state-snapshot restore (requested {start})"
            )
        return self._log[start - self._log_base:]

    def active_uids(self) -> list[int]:
        return sorted(self._open)

    def uid_inventory(self) -> dict:
        """The uid bookkeeping a routing front-end must mirror.

        A recovered runtime knows every uid it ever saw, but a freshly
        started router does not — it adopts this at attach time so
        duplicate refusal and depart routing survive a restart.
        """
        return {
            "clock": self.clock,
            "open": {uid: entry[1] for uid, entry in self._open.items()},
            "used": sorted(self._used_uids),
            "rejected": sorted(self._rejected),
        }

    def knows_uid(self, uid: int) -> bool:
        """True if a job with this uid was ever submitted (open, closed or
        rejected) — the server's duplicate-submit guard."""
        return int(uid) in self._used_uids

    def machine_of(self, uid: int) -> MachineKey:
        """Where a submitted (open or departed) job was placed."""
        if uid in self._open:
            return self._open[uid][3]
        if uid in self._closed:
            return self._closed[uid][1]
        raise AdmissionError(f"unknown or rejected job uid {uid}")

    def busy_machines_by_type(self) -> dict[int, int]:
        """Machines currently hosting at least one open job, per type."""
        return {i: n for i, n in sorted(self._busy_by_type.items()) if n > 0}

    # -- the streaming API --------------------------------------------------
    def submit(
        self,
        size: float,
        arrival: float,
        *,
        name: str | None = None,
        uid: int | None = None,
    ) -> Admission:
        """One job arrives.  Returns the admission decision."""
        arrival = float(arrival)
        if not math.isfinite(arrival):
            raise AdmissionError("arrival time must be finite")
        if arrival < self.clock:
            raise AdmissionError(
                f"time ran backwards: arrival {arrival:g} < clock {self.clock:g}"
            )
        if uid is None:
            while self._next_uid in self._used_uids:
                self._next_uid += 1
            uid = self._next_uid
        uid = int(uid)
        if uid in self._used_uids:
            raise AdmissionError(f"duplicate job uid {uid}")
        view = JobView(uid=uid, size=float(size), arrival=arrival,
                       name=name if name is not None else f"J{uid}")
        if view.size <= 0 or not math.isfinite(view.size):
            raise AdmissionError(f"job size must be positive and finite, got {size}")

        self._used_uids.add(uid)
        self.clock = arrival
        self._log.append(
            {"op": "submit", "t": arrival, "uid": uid, "size": view.size,
             "name": view.name}
        )
        self.metrics.counter("arrivals").inc()

        for policy in self._policies:
            reason = policy(view, self)
            if reason is not None:
                self._rejected[uid] = reason
                self.metrics.counter("rejections").inc()
                return Admission(uid=uid, accepted=False, machine=None,
                                 reason=reason, latency_s=0.0)

        # observability only: the latency histogram and probe counters never
        # feed scheduler decisions or checkpoint state, so replay stays
        # byte-identical.
        stats = self._placement_stats
        probes_before = stats.probes if stats is not None else 0
        t0 = time.perf_counter()  # bshm: ignore[BSHM004]
        key = self.scheduler.on_arrival(view)
        latency = time.perf_counter() - t0  # bshm: ignore[BSHM004]
        if not isinstance(key, MachineKey):
            raise TypeError("scheduler must return a MachineKey")
        if stats is not None:
            depth = stats.probes - probes_before
            self.metrics.counter("placement_probes").inc(depth)
            self.metrics.histogram("probe_depth").observe(depth)

        self._open[uid] = (view.size, arrival, view.name, key)
        n_on_machine = self._machine_open.get(key, 0) + 1
        self._machine_open[key] = n_on_machine
        if n_on_machine == 1:
            self._busy_by_type[key.type_index] = (
                self._busy_by_type.get(key.type_index, 0) + 1
            )
        self._sample_gauges()
        self.metrics.histogram("decision_latency_ms").observe(latency * 1e3)
        return Admission(uid=uid, accepted=True, machine=key, reason=None,
                        latency_s=latency)

    def depart(self, uid: int, at: float) -> None:
        """A job's departure is revealed; release capacity and book its cost."""
        at = float(at)
        uid = int(uid)
        if not math.isfinite(at):
            raise AdmissionError("departure time must be finite")
        if at < self.clock:
            raise AdmissionError(
                f"time ran backwards: departure {at:g} < clock {self.clock:g}"
            )
        if uid in self._rejected:
            # a rejected job never occupied capacity; its departure is a no-op
            self.clock = at
            self._log.append({"op": "depart", "t": at, "uid": uid})
            return
        try:
            size, arrival, name, key = self._open.pop(uid)
        except KeyError:
            raise AdmissionError(f"departure of unknown job uid {uid}") from None
        if not at > arrival:
            self._open[uid] = (size, arrival, name, key)
            raise AdmissionError(
                f"job {uid} cannot depart at {at:g} <= its arrival {arrival:g}"
            )
        self.clock = at
        self._log.append({"op": "depart", "t": at, "uid": uid})

        self.scheduler.on_departure(uid)
        job = Job(size, arrival, at, name=name, uid=uid)
        self._closed[uid] = (job, key)
        self._cache.add(key, arrival, at)
        n_on_machine = self._machine_open[key] - 1
        self._machine_open[key] = n_on_machine
        if n_on_machine == 0:
            self._busy_by_type[key.type_index] -= 1
        self.metrics.counter("departures").inc()
        self._sample_gauges()

    def advance(self, t: float) -> None:
        """Move the clock with no job event (heartbeat / sampling point)."""
        t = float(t)
        if not math.isfinite(t):
            raise AdmissionError("time must be finite")
        if t < self.clock:
            raise AdmissionError(
                f"time ran backwards: advance {t:g} < clock {self.clock:g}"
            )
        self.clock = t
        self._log.append({"op": "advance", "t": t})
        self._sample_gauges()

    # -- derived state ------------------------------------------------------
    def schedule(self, *, at: float | None = None) -> Schedule:
        """The schedule so far, as the batch world understands it.

        Departed jobs carry their true intervals.  Still-open jobs are
        provisionally closed at ``at`` (default: the current clock); open
        jobs that arrived exactly at ``at`` would have an empty interval
        and are omitted.
        """
        horizon = self.clock if at is None else float(at)
        assignment: dict[Job, MachineKey] = {
            job: key for job, key in self._closed.values()
        }
        for uid, (size, arrival, name, key) in self._open.items():
            if arrival < horizon:
                assignment[Job(size, arrival, horizon, name=name, uid=uid)] = key
        return Schedule(self.ladder, assignment)

    def cost(self, *, at: float | None = None) -> float:
        """Running busy cost: closed intervals from the accumulator cache,
        open jobs counted up to ``at`` (default: the current clock)."""
        horizon = self.clock if at is None else float(at)
        open_by_machine: dict[MachineKey, list[tuple[float, float]]] = {}
        for size, arrival, name, key in self._open.values():
            if arrival < horizon:
                open_by_machine.setdefault(key, []).append((arrival, horizon))
        total = 0.0
        # sorted: summation order (hence the exact float result) must not
        # depend on set/hash iteration order — checkpoints verify cost
        # across processes with PYTHONHASHSEED randomization
        keys = sorted(set(self._cache.machines()) | set(open_by_machine))
        for key in keys:
            busy = self._cache.busy_time_with(key, open_by_machine.get(key, ()))
            total += self.ladder.rate(key.type_index) * busy
        return total

    # -- internals ----------------------------------------------------------
    def _sample_gauges(self) -> None:
        self.metrics.gauge("active_jobs").set(len(self._open))
        self.metrics.gauge("busy_machines").set(
            sum(1 for n in self._machine_open.values() if n > 0)
        )
        for i, n in self._busy_by_type.items():
            self.metrics.gauge(f"busy_machines_type_{i}").set(n)

    def __repr__(self) -> str:
        return (
            f"SchedulerRuntime({type(self.scheduler).__name__}, "
            f"clock={self.clock:g}, active={len(self._open)}, "
            f"closed={len(self._closed)}, rejected={len(self._rejected)})"
        )
