"""End-to-end trace pipeline: CSV in, schedule + report out.

The operational loop a downstream user runs: export a job trace from their
cluster, describe their machine catalogue, and get back an assignment plus
a cost report.  Uses only file-based interfaces (the same ones behind the
``bshm schedule`` CLI), so it doubles as integration documentation.

Run: ``python examples/trace_pipeline.py``  (writes into ./_trace_demo/)
"""

from pathlib import Path

import numpy as np

from repro import (
    dec_offline,
    day_night_workload,
    ec2_like_ladder,
    normalize,
    read_jobs_csv,
    read_ladder_csv,
    write_jobs_csv,
    write_ladder_csv,
    write_schedule_csv,
)
from repro.analysis.report import schedule_report
from repro.schedule.validate import assert_feasible

workdir = Path("_trace_demo")
workdir.mkdir(exist_ok=True)

# --- 1. someone exports a trace and a catalogue to CSV -----------------------
rng = np.random.default_rng(99)
catalogue = ec2_like_ladder(4, price_exponent=0.8)
trace = day_night_workload(120, rng, max_size=catalogue.capacity(4) / 2)
write_jobs_csv(trace, workdir / "trace.csv")
write_ladder_csv(catalogue, workdir / "catalogue.csv")
print(f"wrote {workdir}/trace.csv ({len(trace)} jobs) and catalogue.csv")

# --- 2. the pipeline loads, normalizes, schedules, validates -----------------
jobs = read_jobs_csv(workdir / "trace.csv")
ladder = read_ladder_csv(workdir / "catalogue.csv")
norm = normalize(ladder)
print(f"catalogue regime: {ladder.regime.value}; normalized rates: "
      f"{[f'{r:g}' for r in norm.normalized.rates]}")

schedule = norm.realize_schedule(dec_offline(jobs, norm.normalized))
assert_feasible(schedule, jobs)

# --- 3. artifacts out ----------------------------------------------------------
write_schedule_csv(schedule, workdir / "assignment.csv")
(workdir / "report.md").write_text(
    schedule_report(schedule, jobs, title="Trace demo", algorithm="dec-offline (normalized)")
)
print(f"cost: {schedule.cost():.2f}")
print(f"artifacts: {workdir}/assignment.csv, {workdir}/report.md")
print()
print((workdir / "report.md").read_text().split("## Busiest")[0])
