"""Capacity planning: which machine catalogue should you buy into?

A provider-side view of BSHM: given a fixed workload, compare machine
catalogues with different pricing curvature (volume discounts vs premium
big boxes), inspect each catalogue's Section-V forest, and let the
general-case algorithm pick machine types.

Shows how the *regime* of a ladder (DEC / INC / GENERAL) changes both the
forest structure and where the scheduler puts jobs.

Run: ``python examples/capacity_planning.py``
"""

import numpy as np

from repro import (
    assert_feasible,
    ec2_like_ladder,
    general_offline,
    lower_bound,
    normalize,
    paper_fig2_ladder,
    uniform_workload,
)
from repro.analysis.tables import render_table
from repro.viz.forest_viz import render_forest

rng = np.random.default_rng(23)

catalogues = {
    "volume discount (g^0.8)": ec2_like_ladder(5, price_exponent=0.8),
    "linear pricing (g^1.0 - eps)": ec2_like_ladder(5, price_exponent=0.999),
    "big-box premium (g^1.2)": ec2_like_ladder(5, price_exponent=1.2),
    "mixed market (paper Fig. 2)": paper_fig2_ladder(),
}

# one fixed workload expressed in absolute vCPU sizes (fits every catalogue)
max_common = min(lad.capacity(lad.m) for lad in catalogues.values())
jobs = uniform_workload(250, rng, max_size=max_common, duration_range=(1.0, 12.0))
print(
    f"workload: {len(jobs)} jobs, sizes up to {max_common:g}, "
    f"peak demand {jobs.peak_demand():.1f}\n"
)

rows = []
for name, ladder in catalogues.items():
    norm = normalize(ladder)
    sched_norm = general_offline(jobs, norm.normalized)
    sched = norm.realize_schedule(sched_norm)
    assert_feasible(sched, jobs)
    lb = lower_bound(jobs, ladder).value
    used = {
        f"{ladder.capacity(i):g}": round(c, 1)
        for i, c in sched.cost_by_type().items()
        if c > 0
    }
    rows.append(
        {
            "catalogue": name,
            "regime": ladder.regime.value,
            "trees": len(ladder.forest().roots),
            "cost": round(sched.cost(), 1),
            "vs LB": round(sched.cost() / lb, 3),
            "spend by capacity": str(used),
        }
    )

print(render_table(rows, title="Same workload, four machine catalogues"))

print("\nforest of the mixed-market catalogue (paper Fig. 2 structure):")
print(render_forest(paper_fig2_ladder().forest()))

print("\nreading the table:")
print("- with volume discounts (DEC), spend concentrates on the biggest type;")
print("- with big-box premiums (INC), every size class pays its own way;")
print("- mixed markets split spend per forest tree.")
