"""Adversarial analysis: when does the online algorithm actually hurt?

Theorem 2 guarantees DEC-ONLINE is 32(mu+1)-competitive and the paper notes
this is asymptotically tight (no deterministic non-clairvoyant algorithm
beats mu).  This example makes both halves concrete:

1. runs the [11] adaptive adversary against DEC-ONLINE and shows the ratio
   *growing* with mu (the lower-bound shape),
2. runs the Theorem-2 certificate machinery on the adversarial runs,
   printing the whole inequality chain
   cost <= 8 * sum len(I'_{i,j}) r_i <= 32(mu+1) * LB,
3. shows the escape hatch: a clairvoyant scheduler on the same instances
   keeps a flat ratio.

Run: ``python examples/adversarial_analysis.py``
"""

from repro import (
    DecOnlineScheduler,
    DurationClassScheduler,
    assert_feasible,
    certify_dec_online,
    dec_ladder,
    lower_bound,
    run_clairvoyant,
    run_online,
)
from repro.analysis.tables import render_table
from repro.jobs.generators.adversary import batch_trap

ladder = dec_ladder(3)
print(f"ladder: {ladder}\n")

rows = []
for mu in (2.0, 4.0, 8.0, 16.0, 32.0, 64.0):
    jobs = batch_trap(DecOnlineScheduler, ladder, mu=mu)
    lb = lower_bound(jobs, ladder)
    online = run_online(jobs, DecOnlineScheduler(ladder))
    clair = run_clairvoyant(jobs, DurationClassScheduler(ladder))
    assert_feasible(online, jobs)
    assert_feasible(clair, jobs)
    cert = certify_dec_online(jobs, ladder, online, lb=lb)
    rows.append(
        {
            "mu": mu,
            "jobs": len(jobs),
            "non-clairvoyant": round(online.cost() / lb.value, 3),
            "clairvoyant": round(clair.cost() / lb.value, 3),
            "certified bound/LB": round(cert.certified_ratio, 1),
            "32(mu+1)": round(32 * (mu + 1), 0),
            "certified": cert.certified,
        }
    )

print(render_table(rows, title="The [11] adversary: ratio vs mu"))
print("""
reading the table:
- the non-clairvoyant column GROWS with mu: the adversary keeps one small
  job alive on every machine DEC-ONLINE opened, and the algorithm cannot
  consolidate them (jobs are pinned to their machines);
- the clairvoyant column stays flat: knowing departures up front, the
  duration-classified scheduler isolates the long survivors from the start;
- the certificate column is the bound produced by *executing Theorem 2's
  proof* on each run (build M(t), take interval families, check Lemma 3) —
  always above the measured cost and below the worst-case 32(mu+1) line.
""")
