"""Cloud right-sizing: which VM sizes should a workload rent, and when?

The paper's motivating scenario (Section I): a cloud user dispatches interval
jobs onto rented VMs billed per busy hour, choosing among EC2-style instance
sizes.  This example

1. builds an EC2-like ladder (1..16 vCPU, volume-discounted pricing) and
   normalizes it into the paper's power-of-2 form (Section II),
2. generates a 4-day diurnal workload with heavy-tailed job sizes,
3. compares the paper's GEN-OFFLINE/GEN-ONLINE against three practitioner
   baselines, pricing everything at the *original* rates,
4. prints the cost breakdown by VM size and a gantt of the busiest machines.

Run: ``python examples/cloud_rightsizing.py``
"""

import numpy as np

from repro import (
    CheapestFitGreedy,
    GeneralOnlineScheduler,
    LargestTypeFirstFit,
    OneJobPerMachine,
    assert_feasible,
    day_night_workload,
    ec2_like_ladder,
    general_offline,
    lower_bound,
    normalize,
    run_online,
)
from repro.analysis.metrics import compute_metrics
from repro.analysis.tables import render_table
from repro.viz.gantt import render_gantt

rng = np.random.default_rng(7)

# --- the VM catalogue --------------------------------------------------------
original = ec2_like_ladder(5, price_exponent=0.85)  # bulk discount pricing
norm = normalize(original)
print("VM catalogue (capacity = vCPUs, rate = $/busy-hour):")
for t in original.types:
    print(f"  type {t.index}: {t.capacity:>4g} vCPU @ {t.rate:6.3f}  (r/g={t.amortized_rate:.3f})")
print(f"regime: {original.regime.value}; normalized to {norm.normalized.m} power-of-2 types\n")

# --- the workload -------------------------------------------------------------
# mostly small jobs with a long tail, clear day/night swings and quiet
# nights: the regime where picking the right VM size actually matters
# (under saturating load, any strategy that fills big VMs is near-optimal)
jobs = day_night_workload(
    150, rng, period=24.0, days=4.0, peak_to_trough=8.0,
    mean_duration=2.0, max_size=original.capacity(5) / 2,
)
print(
    f"workload: {len(jobs)} jobs over 4 days, peak demand "
    f"{jobs.peak_demand():.1f} vCPU, mu={jobs.mu:.1f}"
)
lb = lower_bound(jobs, original).value
print(f"lower bound on any rental bill: {lb:.2f}\n")

# --- schedulers ----------------------------------------------------------------
def paper_offline(jobs_, _ladder):
    on_norm = general_offline(jobs_, norm.normalized)
    return norm.realize_schedule(on_norm)


def paper_online(jobs_, _ladder):
    on_norm = run_online(jobs_, GeneralOnlineScheduler(norm.normalized))
    return norm.realize_schedule(on_norm)


contenders = {
    "GEN-OFFLINE (paper)": paper_offline,
    "GEN-ONLINE (paper)": paper_online,
    "one VM per job": lambda j, l: run_online(j, OneJobPerMachine(l)),
    "biggest VMs only": lambda j, l: run_online(j, LargestTypeFirstFit(l)),
    "cheapest-fit greedy": lambda j, l: run_online(j, CheapestFitGreedy(l)),
}

rows = []
schedules = {}
for name, fn in contenders.items():
    sched = fn(jobs, original)
    assert_feasible(sched, jobs)
    metrics = compute_metrics(sched)
    schedules[name] = sched
    rows.append(
        {
            "strategy": name,
            "bill": round(sched.cost(), 2),
            "vs LB": round(sched.cost() / lb, 3),
            "VMs used": metrics.machines,
            "utilization": round(metrics.utilization, 3),
        }
    )
rows.sort(key=lambda r: r["bill"])
print(render_table(rows, title="4-day rental bill by strategy"))

# --- breakdown for the winner ---------------------------------------------------
winner = rows[0]["strategy"]
print(f"\ncost by VM size for '{winner}':")
best = schedules[winner]
for i, cost in best.cost_by_type().items():
    if cost > 0:
        print(f"  {original.capacity(i):>4g} vCPU: {cost:10.2f}")

print(f"\nbusiest machines ({winner}):")
print(render_gantt(best, max_machines=10))
