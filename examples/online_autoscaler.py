"""Non-clairvoyant autoscaling: scheduling a live job stream.

Simulates the online half of the paper: jobs arrive one by one, must be
placed immediately, and nobody knows when they will leave.  Shows

1. the DEC-ONLINE Group-A/Group-B mechanics in action (budgeted pools per
   machine type, overflow to larger types),
2. the machine count per type over time,
3. the μ-sensitivity of the competitive ratio (Theorem 2's shape): the same
   arrival pattern with more spread-out durations costs relatively more.

Run: ``python examples/online_autoscaler.py``
"""

import numpy as np

from repro import (
    DecOnlineScheduler,
    assert_feasible,
    bounded_mu_workload,
    dec_ladder,
    lower_bound,
    run_online,
)
from repro.analysis.metrics import busy_machine_profile
from repro.analysis.tables import render_table
from repro.viz.ascii_chart import render_profile

ladder = dec_ladder(3)  # capacities 1, 3, 9; rates 1, 2, 4
print(f"ladder: {ladder}\n")

# --- one detailed run ---------------------------------------------------------
rng = np.random.default_rng(11)
jobs = bounded_mu_workload(120, rng, mu=4.0, max_size=ladder.capacity(3))
scheduler = DecOnlineScheduler(ladder)
schedule = run_online(jobs, scheduler)
assert_feasible(schedule, jobs)
lb = lower_bound(jobs, ladder).value

print(f"stream of {len(jobs)} jobs (mu={jobs.mu:.2f}) scheduled online")
print(f"cost {schedule.cost():.2f} vs lower bound {lb:.2f} -> ratio {schedule.cost()/lb:.3f}")
print(f"theorem 2 guarantee: <= 32*(mu+1) = {32 * (jobs.mu + 1):.0f}\n")

print("final (group, type) pools that were opened:")
for (group, i), count in sorted(scheduler.busy_counts().items()):
    pool = scheduler.group_a[i] if group == "A" else scheduler.group_b[i]
    opened = len(pool.machines)
    if opened:
        print(
            f"  group {group}, type {i}: {opened} machines ever opened "
            f"(budget {'unbounded' if pool.budget is None else pool.budget})"
        )

print("\nbusy type-3 machines over time:")
print(render_profile(busy_machine_profile(schedule, type_index=3), width=68, height=8))

# --- mu sweep -------------------------------------------------------------------
print("\ncompetitive-ratio shape vs mu (same arrival pattern, wider durations):")
rows = []
for mu in (1.0, 2.0, 4.0, 8.0, 16.0):
    rng = np.random.default_rng(42)
    stream = bounded_mu_workload(150, rng, mu=mu, max_size=ladder.capacity(3))
    sched = run_online(stream, DecOnlineScheduler(ladder))
    assert_feasible(sched, stream)
    stream_lb = lower_bound(stream, ladder).value
    rows.append(
        {
            "mu": stream.mu,
            "cost": round(sched.cost(), 1),
            "LB": round(stream_lb, 1),
            "ratio": round(sched.cost() / stream_lb, 3),
            "bound 32(mu+1)": round(32 * (stream.mu + 1), 0),
        }
    )
print(render_table(rows))
print("measured ratios grow much slower than the worst-case line — the bound")
print("is adversarial, the workload is not.")
