"""Quickstart: schedule interval jobs on heterogeneous machines.

Covers the core public API in ~40 lines:

1. describe jobs (size, arrival, departure) and a machine ladder,
2. run the paper's offline approximation algorithm,
3. run the non-clairvoyant online algorithm on the same instance,
4. compare both against the Eq.-(1) lower bound.

Run: ``python examples/quickstart.py``
"""

from repro import (
    DecOnlineScheduler,
    Job,
    JobSet,
    Ladder,
    assert_feasible,
    dec_offline,
    lower_bound,
    run_online,
)

# --- 1. the instance -------------------------------------------------------
# Three machine types: capacities 1, 4, 16; busy-cost rates 1, 2, 4 per hour.
# Amortized cost per unit shrinks with size -> this is BSHM-DEC territory.
ladder = Ladder.from_pairs([(1.0, 1.0), (4.0, 2.0), (16.0, 4.0)])
print(f"machine ladder: {ladder}  (regime: {ladder.regime.value})")

jobs = JobSet(
    [
        Job(size=0.5, arrival=0.0, departure=6.0, name="web-1"),
        Job(size=0.5, arrival=1.0, departure=7.0, name="web-2"),
        Job(size=3.0, arrival=2.0, departure=5.0, name="batch"),
        Job(size=0.8, arrival=3.0, departure=9.0, name="cache"),
        Job(size=6.0, arrival=4.0, departure=8.0, name="training"),
        Job(size=0.4, arrival=7.5, departure=12.0, name="cron"),
    ]
)
print(f"instance: {len(jobs)} jobs, peak demand {jobs.peak_demand():g}, mu={jobs.mu:.2f}")

# --- 2. offline scheduling (all jobs known in advance) ----------------------
offline = dec_offline(jobs, ladder)
assert_feasible(offline, jobs)  # machine-checked capacity/coverage
print(f"\nDEC-OFFLINE cost: {offline.cost():.2f}")
for job, machine in sorted(offline.assignment.items(), key=lambda kv: kv[0].arrival):
    print(f"  {job.name:10s} size={job.size:<4g} -> {machine}")

# --- 3. online scheduling (jobs revealed at arrival, departures unknown) ----
online = run_online(jobs, DecOnlineScheduler(ladder))
assert_feasible(online, jobs)
print(f"\nDEC-ONLINE cost:  {online.cost():.2f}")

# --- 4. quality vs the lower bound ------------------------------------------
lb = lower_bound(jobs, ladder).value
print(f"\nlower bound on OPT: {lb:.2f}")
print(f"offline ratio <= {offline.cost() / lb:.3f}   (Theorem 1 guarantees <= 14)")
print(f"online  ratio <= {online.cost() / lb:.3f}   (Theorem 2 guarantees <= 32(mu+1))")
