"""Cross-cutting property-based invariants over the whole library.

These are the structural facts every component must preserve no matter the
instance: feasibility of every algorithm's output, the lower bound's
dominance, cost accounting consistency, placement contracts, and the
online/offline equivalence of cost computation.
"""

import pytest
from hypothesis import given

from tests.property.settings import tiered

from repro import (
    CheapestFitGreedy,
    DecOnlineScheduler,
    GeneralOnlineScheduler,
    IncOnlineScheduler,
    JobSet,
    LargestTypeFirstFit,
    OneJobPerMachine,
    dec_offline,
    general_offline,
    inc_offline,
    lower_bound,
    run_online,
)
from repro.schedule.validate import validate_schedule
from tests.conftest import (
    any_ladder_strategy,
    dec_ladder_strategy,
    inc_ladder_strategy,
    jobset_strategy,
)

# ci-tier baseline: 25 examples per invariant (quick/deep tiers rescale)
COMMON_SETTINGS = tiered(25)


@COMMON_SETTINGS
@given(jobset_strategy(max_jobs=20, max_size=8.0), any_ladder_strategy(max_m=5))
def test_every_universal_algorithm_is_feasible(jobs, ladder):
    """Algorithms applicable to ANY ladder must always emit feasible
    schedules (or raise before scheduling anything)."""
    if not ladder.fits(jobs.max_size):
        return
    candidates = [
        lambda: general_offline(jobs, ladder),
        lambda: run_online(jobs, GeneralOnlineScheduler(ladder)),
        lambda: run_online(jobs, OneJobPerMachine(ladder)),
        lambda: run_online(jobs, LargestTypeFirstFit(ladder)),
        lambda: run_online(jobs, CheapestFitGreedy(ladder)),
        lambda: dec_offline(jobs, ladder, require_regime=False),
        lambda: inc_offline(jobs, ladder, require_regime=False),
        lambda: run_online(jobs, DecOnlineScheduler(ladder)),
        lambda: run_online(jobs, IncOnlineScheduler(ladder)),
    ]
    for make in candidates:
        sched = make()
        report = validate_schedule(sched, jobs)
        assert report.ok, report.summary()


@COMMON_SETTINGS
@given(jobset_strategy(max_jobs=20, max_size=8.0), any_ladder_strategy(max_m=5))
def test_lower_bound_below_every_algorithm(jobs, ladder):
    if not ladder.fits(jobs.max_size):
        return
    lb = lower_bound(jobs, ladder).value
    for sched in (
        general_offline(jobs, ladder),
        run_online(jobs, GeneralOnlineScheduler(ladder)),
        run_online(jobs, OneJobPerMachine(ladder)),
    ):
        assert sched.cost() >= lb - 1e-6 * max(1.0, lb)


@COMMON_SETTINGS
@given(jobset_strategy(max_jobs=20, max_size=8.0), any_ladder_strategy(max_m=4))
def test_cost_decompositions_consistent(jobs, ladder):
    if not ladder.fits(jobs.max_size):
        return
    sched = general_offline(jobs, ladder)
    assert sum(sched.cost_by_type().values()) == pytest.approx(
        sched.cost(), rel=1e-9, abs=1e-9
    )
    assert sum(sched.machine_count_by_type().values()) == len(sched.machines())


@COMMON_SETTINGS
@given(jobset_strategy(max_jobs=20, max_size=8.0), any_ladder_strategy(max_m=4))
def test_cost_never_below_volume_over_best_amortized(jobs, ladder):
    """Physical sanity: you cannot pay less than volume x cheapest unit price
    ... unless capacity rounding helps you, so only check the weaker form:
    cost >= volume * min_i(r_i/g_i) is NOT generally true; instead check
    cost >= busy_span * r_1 (at least one machine of at least the cheapest
    rate is on whenever a job is active)."""
    if not ladder.fits(jobs.max_size):
        return
    sched = general_offline(jobs, ladder)
    assert sched.cost() >= jobs.busy_span().length * ladder.rate(1) - 1e-6


@COMMON_SETTINGS
@given(jobset_strategy(max_jobs=18, max_size=8.0), dec_ladder_strategy(max_m=4))
def test_dec_algorithms_place_within_fitting_types(jobs, ladder):
    if not ladder.fits(jobs.max_size):
        return
    for sched in (
        dec_offline(jobs, ladder),
        run_online(jobs, DecOnlineScheduler(ladder)),
    ):
        for job, key in sched.assignment.items():
            assert job.size <= ladder.capacity(key.type_index) + 1e-9


@COMMON_SETTINGS
@given(jobset_strategy(max_jobs=18, max_size=4.0), inc_ladder_strategy(max_m=4))
def test_inc_partition_is_strict(jobs, ladder):
    """INC algorithms never mix size classes on one machine."""
    if not ladder.fits(jobs.max_size):
        return
    for sched in (
        inc_offline(jobs, ladder),
        run_online(jobs, IncOnlineScheduler(ladder)),
    ):
        for key, members in sched.by_machine().items():
            classes = {j.size_class(ladder.capacities) for j in members}
            assert classes == {key.type_index}


@COMMON_SETTINGS
@given(jobset_strategy(max_jobs=15, max_size=8.0), any_ladder_strategy(max_m=4))
def test_online_schedulers_are_deterministic(jobs, ladder):
    if not ladder.fits(jobs.max_size):
        return
    a = run_online(jobs, GeneralOnlineScheduler(ladder))
    b = run_online(jobs, GeneralOnlineScheduler(ladder))
    assert {(j.uid, k) for j, k in a.assignment.items()} == {
        (j.uid, k) for j, k in b.assignment.items()
    }


@COMMON_SETTINGS
@given(jobset_strategy(max_jobs=12, max_size=8.0), any_ladder_strategy(max_m=4))
def test_scale_invariance_of_time(jobs, ladder):
    """Scaling all job times by a constant scales every cost by the same
    constant (busy-time objective is positively homogeneous in time)."""
    from repro import Job

    if not ladder.fits(jobs.max_size):
        return
    c = 3.0
    scaled = JobSet(
        Job(j.size, j.arrival * c, j.departure * c, uid=j.uid) for j in jobs
    )
    base = general_offline(jobs, ladder).cost()
    big = general_offline(scaled, ladder).cost()
    assert big == pytest.approx(c * base, rel=1e-6)
    lb_a = lower_bound(jobs, ladder).value
    lb_b = lower_bound(scaled, ladder).value
    assert lb_b == pytest.approx(c * lb_a, rel=1e-6)
