"""The columnar placement/peeling engine is gated on exact parity.

Three-way: the columnar kernels must reproduce the object path
(``GreedyDualPlacer`` / ``split_into_strips`` / ``two_color`` / the offline
peeling loops) decision-for-decision — bit-identical altitudes, identical
strip classification, identical colors, identical assignment dicts in the
same insertion order, identical costs — and both must match hand-computed
golden micro-cases.  Instances deliberately mix a continuous regime with an
integer-grid regime so coincident altitudes and bands that land exactly on
strip boundaries are drawn often, not once in a blue moon.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, strategies as st

from tests.property.settings import tiered

from repro import Job, JobSet, dec_ladder, inc_ladder, Ladder
from repro.offline.dec_offline import dec_offline
from repro.offline.dual_coloring import dual_coloring_assign
from repro.offline.general_offline import general_offline
from repro.offline.inc_offline import inc_offline
from repro.placement.columnar import (
    columnar_altitudes,
    columnar_overflow_mask,
    columnar_placement,
    columnar_strip_slices,
    columnar_strip_tops,
    columnar_two_color,
)
from repro.placement.chart import DemandChart
from repro.placement.greedy import place_jobs
from repro.placement.strips import band_strip_top, split_into_strips, two_color

GENERAL_LADDER = Ladder.from_pairs(
    [(1.0, 1.0), (2.0, 3.0), (4.0, 4.0), (8.0, 20.0), (16.0, 21.0)]
)


@st.composite
def instances(draw, max_size: float, max_jobs: int = 50):
    """A JobSet; half the draws live on an integer grid (coincident times,
    sizes that are exact strip-height multiples), half are continuous."""
    n = draw(st.integers(0, max_jobs))
    grid = draw(st.booleans())
    jobs = []
    for uid in range(n):
        if grid:
            a = float(draw(st.integers(0, 20)))
            d = float(draw(st.integers(1, 8)))
            s = float(
                draw(
                    st.sampled_from(
                        [0.5, 1.0, 2.0, max_size / 4, max_size / 2, max_size]
                    )
                )
            )
        else:
            a = draw(
                st.floats(0.0, 40.0, allow_nan=False, allow_infinity=False)
            )
            d = draw(
                st.floats(0.1, 15.0, allow_nan=False, allow_infinity=False)
            )
            s = draw(
                st.floats(0.05, max_size, allow_nan=False, allow_infinity=False)
            )
        jobs.append(Job(arrival=a, departure=a + d, size=s, uid=uid))
    return JobSet(jobs)


def _assert_engine_parity(schedule_fn, jobs, ladder, **kwargs):
    obj = schedule_fn(jobs, ladder, engine="object", **kwargs)
    col = schedule_fn(jobs, ladder, engine="columnar", **kwargs)
    assert obj.assignment == col.assignment
    assert list(obj.assignment) == list(col.assignment)  # insertion order
    assert obj.cost() == col.cost()  # bit-identical, not approx
    assert len(set(obj.assignment.values())) == len(set(col.assignment.values()))


# ---------------------------------------------------------------------------
# kernel-level parity: altitudes, overflow, strips, two-coloring
# ---------------------------------------------------------------------------


@tiered(100)
@given(instances(max_size=8.0))
def test_altitudes_parity(jobs):
    arrays = jobs.to_arrays()
    alts = columnar_altitudes(arrays.starts, arrays.ends, arrays.sizes)
    placement = place_jobs(jobs)
    assert alts.tolist() == [band.altitude for band in placement.bands]


@tiered(60)
@given(instances(max_size=8.0))
def test_overflow_parity(jobs):
    arrays = jobs.to_arrays()
    alts = columnar_altitudes(arrays.starts, arrays.ends, arrays.sizes)
    placement = place_jobs(jobs)
    mask = columnar_overflow_mask(
        arrays.starts, arrays.ends, arrays.sizes, alts, placement.chart.height
    )
    assert [job for job, over in zip(jobs, mask.tolist()) if over] == (
        placement.overflowed
    )


@tiered(60)
@given(
    instances(max_size=8.0),
    st.sampled_from([0.7, 1.0, 2.0, 4.0]),
)
def test_strip_classification_parity(jobs, height):
    placement = place_jobs(jobs)
    assignment = split_into_strips(placement, height)
    arrays = jobs.to_arrays()
    alts = columnar_altitudes(arrays.starts, arrays.ends, arrays.sizes)
    strip_index, boundary = columnar_strip_slices(
        alts, alts + arrays.sizes, height
    )
    for band, k, b in zip(placement.bands, strip_index.tolist(), boundary.tolist()):
        if b == 0:
            assert band in assignment.inside[k]
        else:
            assert band in assignment.crossing[b]
    tops = columnar_strip_tops(alts + arrays.sizes, height)
    assert int(tops.max(initial=0)) == assignment.strips_used()
    assert [band_strip_top(band, height) for band in placement.bands] == (
        tops.tolist()
    )


@tiered(60)
@given(instances(max_size=8.0), st.sampled_from([1.0, 2.0, 4.0]))
def test_two_color_parity(jobs, height):
    placement = place_jobs(jobs)
    assignment = split_into_strips(placement, height)
    for bands in assignment.crossing.values():
        ordered = sorted(bands, key=lambda b: (b.job.arrival, b.job.uid))
        want = two_color(bands)
        got = columnar_two_color(
            [b.job.arrival for b in ordered],
            [b.job.departure for b in ordered],
        )
        assert got == [want[b.job] for b in ordered]


@tiered(40)
@given(instances(max_size=8.0))
def test_columnar_placement_adapter_parity(jobs):
    obj = place_jobs(jobs)
    col = columnar_placement(jobs)
    assert [(b.job, b.altitude) for b in col.bands] == (
        [(b.job, b.altitude) for b in obj.bands]
    )
    assert col.overflowed == obj.overflowed


# ---------------------------------------------------------------------------
# full-pipeline parity: the offline peeling loops
# ---------------------------------------------------------------------------


@tiered(50)
@given(instances(max_size=81.0, max_jobs=60))
def test_dec_offline_engine_parity(jobs):
    _assert_engine_parity(dec_offline, jobs, dec_ladder(5))


@tiered(50)
@given(instances(max_size=5.0, max_jobs=60))
def test_inc_offline_engine_parity(jobs):
    _assert_engine_parity(inc_offline, jobs, inc_ladder(5))


@tiered(50)
@given(instances(max_size=16.0, max_jobs=60))
def test_general_offline_engine_parity(jobs):
    _assert_engine_parity(general_offline, jobs, GENERAL_LADDER)


@tiered(40)
@given(instances(max_size=8.0, max_jobs=60))
def test_dual_coloring_engine_parity(jobs):
    obj = dual_coloring_assign(
        jobs, capacity=8.0, type_index=3, tag_prefix=("p",), engine="object"
    )
    col = dual_coloring_assign(
        jobs, capacity=8.0, type_index=3, tag_prefix=("p",), engine="columnar"
    )
    assert obj == col
    assert list(obj) == list(col)


# ---------------------------------------------------------------------------
# golden micro-cases: hand-computed expectations pin BOTH engines
# ---------------------------------------------------------------------------


class TestGolden:
    def test_stacking_altitudes(self):
        """2-overlap is allowed: the second job shares [0, 1) with the first;
        the third finds that range at depth 2 (forbidden) and jumps above."""
        jobs = JobSet(
            [
                Job(arrival=0.0, departure=10.0, size=1.0, uid=0),
                Job(arrival=1.0, departure=9.0, size=1.0, uid=1),
                Job(arrival=2.0, departure=8.0, size=1.0, uid=2),
            ]
        )
        arrays = jobs.to_arrays()
        alts = columnar_altitudes(arrays.starts, arrays.ends, arrays.sizes)
        assert alts.tolist() == [0.0, 0.0, 1.0]
        assert [b.altitude for b in place_jobs(jobs).bands] == [0.0, 0.0, 1.0]

    def test_departure_reuse(self):
        """A departed band lowers the depth and reopens the bottom range."""
        jobs = JobSet(
            [
                Job(arrival=0.0, departure=2.0, size=1.0, uid=0),
                Job(arrival=0.5, departure=4.0, size=1.0, uid=1),
                Job(arrival=1.0, departure=4.0, size=1.0, uid=2),
                Job(arrival=2.0, departure=4.0, size=1.0, uid=3),
            ]
        )
        arrays = jobs.to_arrays()
        alts = columnar_altitudes(arrays.starts, arrays.ends, arrays.sizes)
        # uid 2 sees [0,1) at depth 2 and climbs; uid 3 arrives exactly when
        # uid 0 departs (half-open: the slot is free again) and drops back
        assert alts.tolist() == [0.0, 0.0, 1.0, 0.0]
        assert [b.altitude for b in place_jobs(jobs).bands] == alts.tolist()

    def test_coincident_arrivals_tie_break_by_uid(self):
        jobs = JobSet(
            [
                Job(arrival=0.0, departure=5.0, size=2.0, uid=2),
                Job(arrival=0.0, departure=5.0, size=2.0, uid=0),
                Job(arrival=0.0, departure=5.0, size=2.0, uid=1),
            ]
        )
        arrays = jobs.to_arrays()
        alts = columnar_altitudes(arrays.starts, arrays.ends, arrays.sizes)
        # canonical order is (arrival, uid): uids 0 and 1 share the bottom
        # range, uid 2 is pushed above the coincident pair
        assert alts.tolist() == [0.0, 0.0, 2.0]
        assert [b.altitude for b in place_jobs(jobs).bands] == alts.tolist()

    def test_exact_boundary_band_is_inside(self):
        """A band spanning exactly [h, 2h) touches boundaries 1 and 2 but
        crosses neither: it is fully inside strip 1."""
        alts = np.array([1.0])
        tops = np.array([2.0])
        strip_index, boundary = columnar_strip_slices(alts, tops, 1.0)
        assert strip_index.tolist() == [1]
        assert boundary.tolist() == [0]

    def test_boundary_crossing_charges_lowest(self):
        """A band [0.5, 3.5) crosses boundaries 1, 2, 3; charged to 1."""
        strip_index, boundary = columnar_strip_slices(
            np.array([0.5]), np.array([3.5]), 1.0
        )
        assert boundary.tolist() == [1]

    def test_two_color_golden(self):
        colors = columnar_two_color([0.0, 1.0, 2.0, 3.0], [2.0, 3.0, 4.0, 5.0])
        # chains: 0 -> free at 2 (reused), 1 -> free at 3 (reused)
        assert colors == [0, 1, 0, 1]

    def test_empty_and_single(self):
        assert columnar_altitudes(
            np.empty(0), np.empty(0), np.empty(0)
        ).tolist() == []
        one = JobSet([Job(arrival=0.0, departure=1.0, size=3.0, uid=0)])
        arrays = one.to_arrays()
        assert columnar_altitudes(
            arrays.starts, arrays.ends, arrays.sizes
        ).tolist() == [0.0]
        sched_obj = dec_offline(one, dec_ladder(3), engine="object")
        sched_col = dec_offline(one, dec_ladder(3), engine="columnar")
        assert sched_obj.assignment == sched_col.assignment
        empty = JobSet([])
        assert dec_offline(empty, dec_ladder(3), engine="columnar").assignment == {}


def test_engine_resolution_is_threshold_gated():
    """engine="auto" picks columnar above the PR-7 dispatch threshold and the
    object path below it; the outputs are interchangeable either way."""
    from repro.core.vectorized import dispatch_threshold
    from repro.offline.columnar_peel import resolve_engine

    with dispatch_threshold(10):
        assert resolve_engine("auto", 9) == "object"
        assert resolve_engine("auto", 10) == "columnar"
        assert resolve_engine("object", 10_000) == "object"
        assert resolve_engine("columnar", 1) == "columnar"


def test_forced_columnar_rejects_non_arrival_order():
    from repro.offline.columnar_peel import resolve_engine
    import pytest

    with pytest.raises(ValueError):
        resolve_engine("columnar", 100, placement_order="size")
