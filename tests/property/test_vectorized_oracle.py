"""Three-way differential tests: vectorized vs sweep vs ``*_reference``.

Every kernel in :mod:`repro.core.vectorized` is pinned against BOTH of the
older tiers on shared inputs: the sweep kernel (the mid-size fast path) and
the naive ``*_reference`` twin (the ground-truth oracle, BSHM003).  Exact
equality on integer inputs, 1e-9 tolerance on floats — the same contract
``tests/property/test_sweep_oracle.py`` enforces between the lower two
tiers, extended up one level.

The integer strategies draw coordinates from a tiny range on purpose: tied
event times are the interesting case (they exercise ``_stable_order``'s
tie-repair fallback and the half-open cancellation semantics), and small
ranges make ties near-certain.  Deterministic edge cases that Hypothesis
is unlikely to hit — empty batches, a single job, exactly coincident
endpoints, huge-magnitude time spans — get explicit tests at the bottom.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import (
    Job,
    busy_time_reference,
    busy_union_reference,
    demand_profile_reference,
    grouped_busy_time_reference,
    merged_events,
    nested_demand_reference,
    peak_load_reference,
    sweep_busy_time,
    sweep_busy_union,
    sweep_demand_profile,
    sweep_grouped_busy_time,
    sweep_nested_demand,
    sweep_peak_load,
    vec_busy_cost,
    vec_busy_time,
    vec_busy_union,
    vec_demand_profile,
    vec_event_steps,
    vec_grouped_busy_time,
    vec_nested_demand,
    vec_peak_load,
)
from tests.property.settings import tiered

# ci-tier baseline: ~200 examples per kernel triple
ORACLE = tiered(200)

TOL = 1e-9


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

@st.composite
def int_columns(draw, max_n: int = 25, max_weight: int = 9):
    """(starts, ends, weights) float64 columns with integer values."""
    n = draw(st.integers(1, max_n))
    starts = draw(st.lists(st.integers(0, 100), min_size=n, max_size=n))
    durations = draw(st.lists(st.integers(1, 40), min_size=n, max_size=n))
    weights = draw(st.lists(st.integers(1, max_weight), min_size=n, max_size=n))
    s = np.asarray(starts, dtype=np.float64)
    return s, s + np.asarray(durations, dtype=np.float64), np.asarray(
        weights, dtype=np.float64
    )


@st.composite
def float_columns(draw, max_n: int = 25):
    """(starts, ends, weights) columns with arbitrary float values."""
    n = draw(st.integers(1, max_n))
    f = st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False)
    d = st.floats(0.05, 40.0, allow_nan=False, allow_infinity=False)
    w = st.floats(0.05, 8.0, allow_nan=False, allow_infinity=False)
    s = np.asarray(draw(st.lists(f, min_size=n, max_size=n)))
    durations = np.asarray(draw(st.lists(d, min_size=n, max_size=n)))
    weights = np.asarray(draw(st.lists(w, min_size=n, max_size=n)))
    return s, s + durations, weights


@st.composite
def grouped_columns(draw, columns, max_groups: int = 5):
    s, e, _ = draw(columns)
    n_groups = draw(st.integers(1, max_groups))
    groups = draw(
        st.lists(st.integers(0, n_groups - 1), min_size=s.size, max_size=s.size)
    )
    return s, e, np.asarray(groups, dtype=np.int64), n_groups


@st.composite
def nested_batch(draw, max_n: int = 20, max_m: int = 4):
    """(jobs, capacities) with every size fitting the largest capacity."""
    m = draw(st.integers(1, max_m))
    caps = [float(2**i) for i in range(m)]
    n = draw(st.integers(1, max_n))
    starts = draw(st.lists(st.integers(0, 60), min_size=n, max_size=n))
    durations = draw(st.lists(st.integers(1, 30), min_size=n, max_size=n))
    sizes = draw(
        st.lists(
            st.floats(0.05, caps[-1], allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    jobs = [
        Job(size=z, arrival=float(a), departure=float(a + d))
        for a, d, z in zip(starts, durations, sizes)
    ]
    return jobs, caps


def _job_columns(jobs):
    s = np.asarray([j.arrival for j in jobs])
    e = np.asarray([j.departure for j in jobs])
    z = np.asarray([j.size for j in jobs])
    return s, e, z


def _assert_nested_equal(vec, sweep, ref, *, exact: bool) -> None:
    for other in (sweep, ref):
        assert np.array_equal(vec[0], other[0])
        assert np.array_equal(vec[1], other[1])
        if exact:
            assert np.array_equal(vec[2], other[2])
        else:
            np.testing.assert_allclose(vec[2], other[2], rtol=TOL, atol=TOL)


# ---------------------------------------------------------------------------
# event steps and demand profiles
# ---------------------------------------------------------------------------

class TestEventStepsOracle:
    @ORACLE
    @given(int_columns())
    def test_exact_on_integers(self, batch):
        s, e, w = batch
        vt, vc = vec_event_steps(s, e, w)
        st_, sc = merged_events(s, e, w)
        assert np.array_equal(vt, st_)
        assert np.array_equal(vc, sc)

    @ORACLE
    @given(float_columns())
    def test_tolerance_on_floats(self, batch):
        s, e, w = batch
        vt, vc = vec_event_steps(s, e, w)
        st_, sc = merged_events(s, e, w)
        assert np.array_equal(vt, st_)
        np.testing.assert_allclose(vc, sc, rtol=TOL, atol=TOL)


class TestDemandProfileOracle:
    @ORACLE
    @given(int_columns())
    def test_exact_on_integers(self, batch):
        s, e, w = batch
        pulses = list(zip(s.tolist(), e.tolist(), w.tolist()))
        vec = vec_demand_profile(s, e, w)
        assert vec == sweep_demand_profile(pulses)
        assert vec == demand_profile_reference(pulses)

    @ORACLE
    @given(float_columns())
    def test_pointwise_on_floats(self, batch):
        s, e, w = batch
        pulses = list(zip(s.tolist(), e.tolist(), w.tolist()))
        vec = vec_demand_profile(s, e, w)
        for other in (sweep_demand_profile(pulses), demand_profile_reference(pulses)):
            probes = np.unique(np.concatenate([vec.breaks, other.breaks]))
            mids = (probes[:-1] + probes[1:]) / 2.0
            for t in np.concatenate([probes, mids]):
                assert vec(float(t)) == pytest.approx(
                    other(float(t)), rel=TOL, abs=TOL
                )
            assert vec.integral() == pytest.approx(
                other.integral(), rel=TOL, abs=TOL
            )


# ---------------------------------------------------------------------------
# busy time / unions
# ---------------------------------------------------------------------------

class TestBusyTimeOracle:
    @ORACLE
    @given(int_columns())
    def test_exact_on_integers(self, batch):
        s, e, _ = batch
        vec = vec_busy_time(s, e)
        assert vec == sweep_busy_time(s, e)
        assert vec == busy_time_reference(s, e)

    @ORACLE
    @given(float_columns())
    def test_tolerance_on_floats(self, batch):
        s, e, _ = batch
        vec = vec_busy_time(s, e)
        assert vec == pytest.approx(sweep_busy_time(s, e), rel=TOL, abs=TOL)
        assert vec == pytest.approx(busy_time_reference(s, e), rel=TOL, abs=TOL)

    @ORACLE
    @given(int_columns())
    def test_union_structurally_exact(self, batch):
        s, e, _ = batch
        vec = vec_busy_union(s, e)
        assert vec == sweep_busy_union(s, e)
        assert vec == busy_union_reference(s, e)

    @ORACLE
    @given(float_columns())
    def test_union_exact_on_floats(self, batch):
        # endpoints pass through all three paths unchanged; only derived
        # *measures* can drift, and unions carry no arithmetic at all
        s, e, _ = batch
        vec = vec_busy_union(s, e)
        assert vec == sweep_busy_union(s, e)
        assert vec == busy_union_reference(s, e)


# ---------------------------------------------------------------------------
# peak load
# ---------------------------------------------------------------------------

class TestPeakLoadOracle:
    @ORACLE
    @given(int_columns())
    def test_exact_on_integers(self, batch):
        s, e, w = batch
        vec = vec_peak_load(s, e, w)
        assert vec == sweep_peak_load(s, e, w)
        assert vec == peak_load_reference(s, e, w)

    @ORACLE
    @given(float_columns())
    def test_tolerance_on_floats(self, batch):
        s, e, w = batch
        vec = vec_peak_load(s, e, w)
        assert vec == pytest.approx(sweep_peak_load(s, e, w), rel=TOL, abs=TOL)
        assert vec == pytest.approx(peak_load_reference(s, e, w), rel=TOL, abs=TOL)

    @ORACLE
    @given(int_columns(), st.floats(0.0, 2.0))
    def test_time_tol_path_matches_sweep(self, batch, tol):
        # the sliver-filtering branch has no naive reference; pin it to the
        # sweep kernel, whose time_tol semantics are the documented contract
        s, e, w = batch
        assert vec_peak_load(s, e, w, time_tol=tol) == sweep_peak_load(
            s, e, w, time_tol=tol
        )


# ---------------------------------------------------------------------------
# grouped busy time and the busy-cost contraction
# ---------------------------------------------------------------------------

class TestGroupedBusyTimeOracle:
    @ORACLE
    @given(grouped_columns(int_columns()))
    def test_exact_on_integers(self, batch):
        s, e, g, n_groups = batch
        vec = vec_grouped_busy_time(s, e, g, n_groups)
        assert np.array_equal(vec, sweep_grouped_busy_time(s, e, g, n_groups))
        assert np.array_equal(vec, grouped_busy_time_reference(s, e, g, n_groups))

    @ORACLE
    @given(grouped_columns(float_columns()))
    def test_tolerance_on_floats(self, batch):
        s, e, g, n_groups = batch
        vec = vec_grouped_busy_time(s, e, g, n_groups)
        np.testing.assert_allclose(
            vec, sweep_grouped_busy_time(s, e, g, n_groups), rtol=TOL, atol=TOL
        )
        np.testing.assert_allclose(
            vec, grouped_busy_time_reference(s, e, g, n_groups), rtol=TOL, atol=TOL
        )

    @ORACLE
    @given(grouped_columns(int_columns()))
    def test_busy_cost_is_the_rate_contraction(self, batch):
        s, e, g, n_groups = batch
        rates = np.arange(1.0, n_groups + 1.0)
        cost = vec_busy_cost(s, e, g, rates)
        ref = float(np.dot(grouped_busy_time_reference(s, e, g, n_groups), rates))
        assert cost == pytest.approx(ref, rel=TOL, abs=TOL)


# ---------------------------------------------------------------------------
# the nested lower-bound matrix
# ---------------------------------------------------------------------------

class TestNestedDemandOracle:
    @ORACLE
    @given(nested_batch())
    def test_matches_both_tiers(self, batch):
        jobs, caps = batch
        s, e, z = _job_columns(jobs)
        vec = vec_nested_demand(s, e, z, caps)
        _assert_nested_equal(
            vec,
            sweep_nested_demand(jobs, caps),
            nested_demand_reference(jobs, caps),
            exact=False,
        )


# ---------------------------------------------------------------------------
# deterministic edges Hypothesis is unlikely to produce
# ---------------------------------------------------------------------------

EMPTY = np.zeros(0)


class TestEdgeCases:
    def test_empty_batch(self):
        times, cover = vec_event_steps(EMPTY, EMPTY)
        assert np.array_equal(times, np.zeros(1)) and cover.size == 0
        assert vec_busy_time(EMPTY, EMPTY) == 0.0
        assert vec_busy_union(EMPTY, EMPTY).length == 0.0
        assert vec_peak_load(EMPTY, EMPTY, EMPTY) == 0.0
        assert np.array_equal(
            vec_grouped_busy_time(EMPTY, EMPTY, np.zeros(0, dtype=np.int64), 3),
            np.zeros(3),
        )
        assert vec_busy_cost(EMPTY, EMPTY, [], [2.0, 3.0]) == 0.0
        times, active, demand = vec_nested_demand(EMPTY, EMPTY, EMPTY, [1.0, 2.0])
        ref = sweep_nested_demand([], [1.0, 2.0])
        assert np.array_equal(times, ref[0])
        assert np.array_equal(active, ref[1])
        assert np.array_equal(demand, ref[2])
        assert vec_demand_profile(EMPTY, EMPTY, EMPTY).integral() == 0.0

    def test_single_job(self):
        s, e, w = np.array([2.0]), np.array([7.0]), np.array([1.5])
        assert vec_busy_time(s, e) == 5.0
        assert vec_peak_load(s, e, w) == 1.5
        assert vec_busy_union(s, e) == busy_union_reference(s, e)
        profile = vec_demand_profile(s, e, w)
        assert profile == demand_profile_reference([(2.0, 7.0, 1.5)])
        assert np.array_equal(
            vec_grouped_busy_time(s, e, np.array([1]), 3),
            np.array([0.0, 5.0, 0.0]),
        )
        job = Job(size=1.5, arrival=2.0, departure=7.0)
        _assert_nested_equal(
            vec_nested_demand(s, e, w, [1.0, 2.0]),
            sweep_nested_demand([job], [1.0, 2.0]),
            nested_demand_reference([job], [1.0, 2.0]),
            exact=True,
        )

    def test_coincident_endpoints_are_half_open(self):
        # back-to-back jobs: departure at t cancels against arrival at t,
        # so the peak never double-counts and the union has no seam
        s = np.array([0.0, 5.0, 5.0, 10.0])
        e = np.array([5.0, 10.0, 10.0, 15.0])
        w = np.array([2.0, 3.0, 1.0, 2.0])
        assert vec_busy_time(s, e) == 15.0
        assert vec_peak_load(s, e, w) == peak_load_reference(s, e, w) == 4.0
        assert vec_busy_union(s, e) == busy_union_reference(s, e)
        times, cover = vec_event_steps(s, e, w)
        st_, sc = merged_events(s, e, w)
        assert np.array_equal(times, st_) and np.array_equal(cover, sc)

    def test_identical_jobs_all_tied(self):
        # every event time tied: _stable_order's fallback path end to end
        s = np.full(8, 3.0)
        e = np.full(8, 9.0)
        w = np.full(8, 0.5)
        assert vec_busy_time(s, e) == 6.0
        assert vec_peak_load(s, e, w) == 4.0
        assert vec_demand_profile(s, e, w) == demand_profile_reference(
            list(zip(s, e, w))
        )

    def test_huge_span(self):
        # 1e12-scale coordinates next to unit-length intervals: exercises
        # magnitude-mixing in the cumsum and the grouped block offsets
        s = np.array([0.0, 1.0e12, 1.0e12 + 0.5, 2.0e12])
        e = np.array([1.0, 1.0e12 + 1.0, 1.0e12 + 1.5, 2.0e12 + 1.0])
        w = np.array([1.0, 2.0, 3.0, 4.0])
        assert vec_busy_time(s, e) == sweep_busy_time(s, e)
        assert vec_busy_time(s, e) == busy_time_reference(s, e)
        assert vec_peak_load(s, e, w) == peak_load_reference(s, e, w) == 5.0
        assert vec_busy_union(s, e) == busy_union_reference(s, e)
        g = np.array([0, 1, 1, 0], dtype=np.int64)
        assert np.array_equal(
            vec_grouped_busy_time(s, e, g, 2),
            grouped_busy_time_reference(s, e, g, 2),
        )

    def test_whole_horizon_job_over_huge_span(self):
        # one job covering the entire 2e12 horizon on top of slivers
        s = np.array([0.0, 1.0e12])
        e = np.array([2.0e12, 1.0e12 + 1.0])
        w = np.array([1.0, 1.0])
        assert vec_busy_time(s, e) == 2.0e12
        assert vec_peak_load(s, e, w) == 2.0
        assert vec_busy_union(s, e) == busy_union_reference(s, e)

    def test_rejects_malformed_batches(self):
        with pytest.raises(ValueError):
            vec_busy_time(np.array([0.0, 1.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            vec_peak_load(np.array([0.0]), np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            vec_grouped_busy_time(
                np.array([0.0]), np.array([1.0]), np.array([5]), 2
            )
        with pytest.raises(ValueError):
            vec_nested_demand(
                np.array([0.0]), np.array([1.0]), np.array([9.0]), [1.0, 2.0]
            )
