"""Differential tests: every sweep kernel against its naive ``*_reference``.

The sweep kernels in :mod:`repro.core.sweep` are the fast path for all cost
accounting; the ``*_reference`` twins are the retired naive implementations.
These property tests pin the two together: **exact** equality on integer
inputs (where float arithmetic is exact), 1e-9 tolerance on float inputs
(where only summation order differs).  ~200 Hypothesis examples per kernel.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import (
    Job,
    MachineKey,
    Schedule,
    busy_time_reference,
    busy_union_reference,
    dec_ladder,
    demand_profile_reference,
    grouped_busy_time_reference,
    nested_demand_reference,
    peak_load_reference,
    sum_pulses,
    sum_pulses_reference,
    sweep_busy_time,
    sweep_busy_union,
    sweep_demand_profile,
    sweep_grouped_busy_time,
    sweep_nested_demand,
    sweep_peak_load,
)
from tests.conftest import jobset_strategy

from tests.property.settings import tiered

# ci-tier baseline: ~200 examples per kernel pair
ORACLE = tiered(200)

TOL = 1e-9


# ---------------------------------------------------------------------------
# strategies: weighted interval batches, integer and float flavours
# ---------------------------------------------------------------------------

@st.composite
def int_intervals(draw, max_n: int = 25, max_weight: int = 9):
    """(starts, ends, weights) with integer coordinates — float-exact."""
    n = draw(st.integers(1, max_n))
    starts = draw(st.lists(st.integers(0, 100), min_size=n, max_size=n))
    durations = draw(st.lists(st.integers(1, 40), min_size=n, max_size=n))
    weights = draw(st.lists(st.integers(1, max_weight), min_size=n, max_size=n))
    ends = [a + d for a, d in zip(starts, durations)]
    return starts, ends, weights


@st.composite
def float_intervals(draw, max_n: int = 25):
    """(starts, ends, weights) with arbitrary float coordinates."""
    n = draw(st.integers(1, max_n))
    f = st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False)
    d = st.floats(0.05, 40.0, allow_nan=False, allow_infinity=False)
    w = st.floats(0.05, 8.0, allow_nan=False, allow_infinity=False)
    starts = draw(st.lists(f, min_size=n, max_size=n))
    durations = draw(st.lists(d, min_size=n, max_size=n))
    weights = draw(st.lists(w, min_size=n, max_size=n))
    ends = [a + dd for a, dd in zip(starts, durations)]
    return starts, ends, weights


def _profile_probes(*profiles):
    """Probe times covering every breakpoint and every segment midpoint."""
    breaks = np.unique(np.concatenate([p.breaks for p in profiles]))
    mids = (breaks[:-1] + breaks[1:]) / 2.0
    return np.concatenate([breaks, mids, breaks - 1e-3, breaks + 1e-3])


# ---------------------------------------------------------------------------
# demand profiles
# ---------------------------------------------------------------------------

class TestDemandProfileOracle:
    @ORACLE
    @given(int_intervals())
    def test_exact_on_integers(self, batch):
        starts, ends, weights = batch
        pulses = list(zip(starts, ends, weights))
        assert sweep_demand_profile(pulses) == demand_profile_reference(pulses)

    @ORACLE
    @given(float_intervals())
    def test_pointwise_on_floats(self, batch):
        starts, ends, weights = batch
        pulses = list(zip(starts, ends, weights))
        fast = sweep_demand_profile(pulses)
        ref = demand_profile_reference(pulses)
        for t in _profile_probes(fast, ref):
            assert fast(float(t)) == pytest.approx(ref(float(t)), abs=TOL, rel=TOL)
        assert fast.integral() == pytest.approx(ref.integral(), rel=TOL, abs=TOL)

    @ORACLE
    @given(int_intervals())
    def test_sum_pulses_dispatches_to_sweep(self, batch):
        starts, ends, weights = batch
        pulses = list(zip(starts, ends, weights))
        assert sum_pulses(pulses) == sum_pulses_reference(pulses)


# ---------------------------------------------------------------------------
# busy-interval unions
# ---------------------------------------------------------------------------

class TestBusyUnionOracle:
    @ORACLE
    @given(int_intervals())
    def test_union_exact_on_integers(self, batch):
        starts, ends, _ = batch
        assert sweep_busy_union(starts, ends) == busy_union_reference(starts, ends)

    @ORACLE
    @given(float_intervals())
    def test_union_exact_on_floats(self, batch):
        # endpoints pass through both paths unchanged, so even the float
        # case is structurally exact — only derived *measures* can drift
        starts, ends, _ = batch
        assert sweep_busy_union(starts, ends) == busy_union_reference(starts, ends)

    @ORACLE
    @given(int_intervals())
    def test_busy_time_exact_on_integers(self, batch):
        starts, ends, _ = batch
        assert sweep_busy_time(starts, ends) == busy_time_reference(starts, ends)

    @ORACLE
    @given(float_intervals())
    def test_busy_time_on_floats(self, batch):
        starts, ends, _ = batch
        assert sweep_busy_time(starts, ends) == pytest.approx(
            busy_time_reference(starts, ends), rel=TOL, abs=TOL
        )


# ---------------------------------------------------------------------------
# capacity checks
# ---------------------------------------------------------------------------

class TestPeakLoadOracle:
    @ORACLE
    @given(int_intervals())
    def test_exact_on_integers(self, batch):
        starts, ends, sizes = batch
        assert sweep_peak_load(starts, ends, sizes) == peak_load_reference(
            starts, ends, sizes
        )

    @ORACLE
    @given(float_intervals())
    def test_tolerance_on_floats(self, batch):
        starts, ends, sizes = batch
        assert sweep_peak_load(starts, ends, sizes) == pytest.approx(
            peak_load_reference(starts, ends, sizes), rel=TOL, abs=TOL
        )


# ---------------------------------------------------------------------------
# grouped busy time (the busy-cost integrator)
# ---------------------------------------------------------------------------

@st.composite
def grouped_batch(draw, intervals, max_groups: int = 5):
    starts, ends, _ = draw(intervals)
    n_groups = draw(st.integers(1, max_groups))
    groups = draw(
        st.lists(
            st.integers(0, n_groups - 1), min_size=len(starts), max_size=len(starts)
        )
    )
    return starts, ends, groups, n_groups


class TestGroupedBusyTimeOracle:
    @ORACLE
    @given(grouped_batch(int_intervals()))
    def test_exact_on_integers(self, batch):
        starts, ends, groups, n_groups = batch
        fast = sweep_grouped_busy_time(starts, ends, groups, n_groups)
        ref = grouped_busy_time_reference(starts, ends, groups, n_groups)
        assert np.array_equal(fast, ref)

    @ORACLE
    @given(grouped_batch(float_intervals()))
    def test_tolerance_on_floats(self, batch):
        starts, ends, groups, n_groups = batch
        fast = sweep_grouped_busy_time(starts, ends, groups, n_groups)
        ref = grouped_busy_time_reference(starts, ends, groups, n_groups)
        np.testing.assert_allclose(fast, ref, rtol=TOL, atol=TOL)


# ---------------------------------------------------------------------------
# nested demands (lower bound)
# ---------------------------------------------------------------------------

@st.composite
def capacities_strategy(draw, top: float = 8.0):
    """Strictly increasing capacities whose largest covers every job size."""
    lower = draw(
        st.lists(
            st.floats(0.1, top - 0.1, allow_nan=False, allow_infinity=False),
            max_size=4,
            unique=True,
        )
    )
    return sorted(lower) + [top]


class TestNestedDemandOracle:
    @ORACLE
    @given(jobset_strategy(max_jobs=20), capacities_strategy())
    def test_against_reference(self, jobs, capacities):
        t_fast, a_fast, d_fast = sweep_nested_demand(list(jobs), capacities)
        t_ref, a_ref, d_ref = nested_demand_reference(list(jobs), capacities)
        np.testing.assert_array_equal(t_fast, t_ref)
        np.testing.assert_array_equal(a_fast, a_ref)  # exact integer counts
        np.testing.assert_allclose(d_fast, d_ref, rtol=TOL, atol=TOL)

    @ORACLE
    @given(int_intervals(max_n=15))
    def test_exact_on_integer_jobs(self, batch):
        starts, ends, sizes = batch
        jobs = [
            Job(size=float(s), arrival=float(a), departure=float(b))
            for a, b, s in zip(starts, ends, sizes)
        ]
        caps = [2.0, 5.0, 9.0]
        t_fast, a_fast, d_fast = sweep_nested_demand(jobs, caps)
        t_ref, a_ref, d_ref = nested_demand_reference(jobs, caps)
        np.testing.assert_array_equal(t_fast, t_ref)
        np.testing.assert_array_equal(a_fast, a_ref)
        np.testing.assert_array_equal(d_fast, d_ref)


# ---------------------------------------------------------------------------
# end-to-end: schedule busy cost
# ---------------------------------------------------------------------------

class TestScheduleCostOracle:
    @ORACLE
    @given(
        jobset_strategy(max_jobs=20),
        st.lists(st.integers(0, 3), min_size=20, max_size=20),
    )
    def test_cost_matches_reference(self, jobs, tags):
        # every job fits the top type of dec_ladder(3) (capacity 9 >= 8)
        ladder = dec_ladder(3)
        sched = Schedule(
            ladder,
            {job: MachineKey(3, ("m", tag)) for job, tag in zip(jobs, tags)},
        )
        assert sched.cost() == pytest.approx(sched.cost_reference(), rel=TOL, abs=TOL)
