"""Property tests for the indexed machine pools under random traffic.

The pools are the load-bearing state machine of every online algorithm;
these tests drive them with hypothesis-generated admit/release traffic and
check the invariants the schedulers rely on:

- load never exceeds capacity,
- the concurrency budget is never exceeded,
- lowest-index preference: when a job is admitted to machine k, no machine
  with a smaller index could have accepted it at that moment,
- single-job pools never co-host.
"""

from hypothesis import given, strategies as st

from tests.property.settings import tiered

from repro.machines.fleet import IndexedPool

CAPACITY = 4.0


@st.composite
def traffic(draw):
    """A sequence of (kind, payload) events: admit(size) / release(nth)."""
    events = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("admit"), st.floats(0.1, CAPACITY)),
                st.tuples(st.just("release"), st.integers(0, 50)),
            ),
            max_size=60,
        )
    )
    return events


def _drive(pool: IndexedPool, events) -> list:
    """Replay traffic; returns (event, machine-or-None) decisions."""
    live: list[tuple[int, object]] = []  # (uid, machine)
    decisions = []
    uid = 0
    for kind, payload in events:
        if kind == "admit":
            uid += 1
            machine = pool.first_fit(uid, float(payload))
            if machine is not None:
                live.append((uid, machine))
            decisions.append((kind, payload, machine))
        else:
            if live:
                idx = int(payload) % len(live)
                gone_uid, machine = live.pop(idx)
                machine.release(gone_uid)
            decisions.append((kind, payload, None))
    return decisions


@tiered(60)
@given(traffic(), st.one_of(st.none(), st.integers(1, 5)))
def test_pool_capacity_and_budget(events, budget):
    pool = IndexedPool("A", 1, CAPACITY, budget=budget)
    _drive(pool, events)
    for machine in pool.machines:
        assert machine.load <= CAPACITY + 1e-9
    if budget is not None:
        assert pool.busy_count() <= budget


@tiered(60)
@given(traffic())
def test_pool_lowest_index_preference(events):
    pool = IndexedPool("A", 1, CAPACITY, budget=None)
    live: list[tuple[int, object]] = []
    uid = 0
    for kind, payload in events:
        if kind == "admit":
            uid += 1
            size = float(payload)
            # snapshot feasibility before the pool mutates
            feasible_before = [
                m.key.tag[1] for m in pool.machines if m.fits(size)
            ]
            machine = pool.first_fit(uid, size)
            assert machine is not None  # unbounded pool always places
            live.append((uid, machine))
            chosen = machine.key.tag[1]
            if feasible_before:
                assert chosen <= min(feasible_before)
        else:
            if live:
                idx = int(payload) % len(live)
                gone_uid, m = live.pop(idx)
                m.release(gone_uid)


@tiered(60)
@given(traffic())
def test_single_job_pool_never_cohosts(events):
    pool = IndexedPool("B", 1, CAPACITY, budget=None, single_job=True)
    _drive(pool, events)
    for machine in pool.machines:
        assert len(machine.resident) <= 1
