"""Tiered Hypothesis profiles for the property suites.

Three tiers, selected with the ``BSHM_HYPOTHESIS_PROFILE`` environment
variable (default ``ci``):

- ``quick`` — 0.2x examples; local edit-test loops.
- ``ci``    — 1x examples; the PR gate (same budget the suite always had).
- ``deep``  — 8x examples; the nightly soak (see ``.github/workflows/
  nightly.yml``).

Individual test modules weight their example budgets differently (a cheap
interval invariant affords many more examples than a full DEC-OFFLINE
parity run), so the tier is a *multiplier*, not a fixed count: decorate
with ``@tiered(base)`` where ``base`` is the ``ci``-tier example count.
Every tiered settings object has ``deadline=None`` — kernel timings vary
too much under CI load for per-example deadlines to be signal.

The module also registers the three tiers as named Hypothesis profiles and
loads the active one on import (``tests/conftest.py`` imports this module,
so plain ``@given`` tests inherit the tier's default budget too).
"""

from __future__ import annotations

import os

from hypothesis import settings

__all__ = ["ACTIVE_PROFILE", "PROFILE_SCALES", "tiered"]

#: example-count multiplier per tier, relative to the ``ci`` baseline
PROFILE_SCALES = {"quick": 0.2, "ci": 1.0, "deep": 8.0}

#: default example budget of a profile for tests that don't call tiered()
_BASE_EXAMPLES = 100

ACTIVE_PROFILE = os.environ.get("BSHM_HYPOTHESIS_PROFILE", "ci")
if ACTIVE_PROFILE not in PROFILE_SCALES:
    raise ValueError(
        f"BSHM_HYPOTHESIS_PROFILE={ACTIVE_PROFILE!r} is not one of "
        f"{sorted(PROFILE_SCALES)}"
    )


def _scaled(base: int, scale: float) -> int:
    """Example count for a tier; never below 5 so shrinking still works."""
    return max(5, round(base * scale))


def tiered(base_examples: int, **overrides) -> settings:
    """A ``settings`` object whose ``max_examples`` scales with the tier.

    ``base_examples`` is the count the test runs at the ``ci`` tier;
    ``quick``/``deep`` scale it by :data:`PROFILE_SCALES`.  Keyword
    overrides pass through to :class:`hypothesis.settings`.
    """
    return settings(
        max_examples=_scaled(base_examples, PROFILE_SCALES[ACTIVE_PROFILE]),
        deadline=None,
        **overrides,
    )


for _name, _scale in PROFILE_SCALES.items():
    settings.register_profile(
        _name,
        max_examples=_scaled(_BASE_EXAMPLES, _scale),
        deadline=None,
        print_blob=True,
    )
settings.load_profile(ACTIVE_PROFILE)
