"""The indexed placement engine is gated on exact parity with the scan.

``IndexedPool.first_fit`` (segment tree + free-slot heap) must reproduce the
``first_fit_reference`` linear scan decision-for-decision: same accept/reject
outcomes, same machine keys in the same order, bit-identical machine loads.
Random admit/release traffic covers mixed sizes, concurrency budgets,
size-limited (Group A) pools and single-job (Group B) pools; a scheduler-
level test replays whole DEC instances through both engines and compares
placement sequences and final schedule costs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, strategies as st

from tests.property.settings import tiered

from repro import dec_ladder, run_online, uniform_workload
from repro.machines.fleet import IndexedPool
from repro.online.dec_online import DecOnlineScheduler

CAPACITY = 4.0


@st.composite
def traffic(draw):
    """A sequence of (kind, payload) events: admit(size) / release(nth)."""
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("admit"), st.floats(0.05, CAPACITY * 1.25)),
                st.tuples(st.just("release"), st.integers(0, 60)),
            ),
            max_size=120,
        )
    )


def _drive(pool: IndexedPool, events, *, reference: bool) -> list:
    """Replay traffic through one engine; return the decision trace."""
    place = pool.first_fit_reference if reference else pool.first_fit
    live: list[tuple[int, object]] = []
    trace = []
    uid = 0
    for kind, payload in events:
        if kind == "admit":
            uid += 1
            machine = place(uid, float(payload))
            if machine is not None:
                live.append((uid, machine))
            trace.append(machine.key if machine is not None else None)
        else:
            if live:
                gone_uid, machine = live.pop(int(payload) % len(live))
                machine.release(gone_uid)
    return trace


def _pool_pair(**kwargs) -> tuple[IndexedPool, IndexedPool]:
    return (
        IndexedPool("P", 1, CAPACITY, **kwargs),
        IndexedPool("P", 1, CAPACITY, **kwargs),
    )


def _assert_parity(events, **pool_kwargs) -> None:
    indexed, scan = _pool_pair(**pool_kwargs)
    got = _drive(indexed, events, reference=False)
    want = _drive(scan, events, reference=True)
    assert got == want
    # state parity too: same machines, bit-identical loads
    assert len(indexed.machines) == len(scan.machines)
    for a, b in zip(indexed.machines, scan.machines):
        assert a.key == b.key
        assert a.load == b.load  # bit-identical, not approx
        assert sorted(a.resident.items()) == sorted(b.resident.items())
    assert indexed.busy_count() == scan.busy_count()


@tiered(120)
@given(traffic(), st.one_of(st.none(), st.integers(1, 5)))
def test_multi_job_pool_parity(events, budget):
    _assert_parity(events, budget=budget)


@tiered(120)
@given(traffic(), st.one_of(st.none(), st.integers(1, 4)))
def test_single_job_pool_parity(events, budget):
    _assert_parity(events, budget=budget, single_job=True)


@tiered(80)
@given(traffic())
def test_size_limited_pool_parity(events):
    _assert_parity(events, size_limit=CAPACITY / 2.0, budget=3)


class _ScanPool(IndexedPool):
    """IndexedPool forced onto the reference scan (test-only engine swap)."""

    __slots__ = ()

    def first_fit(self, uid, size):
        return self.first_fit_reference(uid, size)


@tiered(15)
@given(st.integers(0, 2**32 - 1), st.integers(60, 220))
def test_dec_scheduler_engine_parity(seed, n):
    """Whole DEC-ONLINE runs place identically under either engine."""
    import repro.online.dec_online as dec_mod

    ladder = dec_ladder(3)
    rng = np.random.default_rng(seed)
    jobs = uniform_workload(n, rng, max_size=ladder.capacity(3))

    fast = run_online(jobs, DecOnlineScheduler(ladder))
    original = dec_mod.IndexedPool
    dec_mod.IndexedPool = _ScanPool
    try:
        slow = run_online(jobs, DecOnlineScheduler(ladder))
    finally:
        dec_mod.IndexedPool = original

    fast_map = {job.uid: key for job, key in fast.assignment.items()}
    slow_map = {job.uid: key for job, key in slow.assignment.items()}
    assert fast_map == slow_map
    assert fast.cost() == slow.cost()  # bit-identical placements => costs
