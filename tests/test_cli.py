"""Tests for the ``bshm`` command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro import dec_ladder, uniform_workload
from repro.jobs.io import write_jobs_csv, write_ladder_csv


@pytest.fixture
def trace_files(tmp_path):
    rng = np.random.default_rng(2)
    ladder = dec_ladder(3)
    jobs = uniform_workload(20, rng, max_size=ladder.capacity(3))
    trace = tmp_path / "trace.csv"
    lad = tmp_path / "ladder.csv"
    write_jobs_csv(jobs, trace)
    write_ladder_csv(ladder, lad)
    return str(trace), str(lad)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E15" in out

    def test_run_quick(self, capsys):
        assert main(["run", "E9", "--scale", "quick"]) == 0
        assert "status: PASS" in capsys.readouterr().out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "E99"])

    def test_schedule_auto(self, trace_files, capsys, tmp_path):
        trace, ladder = trace_files
        out_csv = str(tmp_path / "assign.csv")
        assert main(["schedule", trace, "--ladder", ladder, "--output", out_csv]) == 0
        out = capsys.readouterr().out
        assert "dec-offline" in out  # auto picked the DEC algorithm
        assert "ratio" in out
        assert (tmp_path / "assign.csv").exists()

    def test_schedule_explicit_algorithm(self, trace_files, capsys):
        trace, ladder = trace_files
        assert main(["schedule", trace, "--ladder", ladder, "--algorithm", "gen-online"]) == 0
        assert "gen-online" in capsys.readouterr().out

    def test_schedule_unknown_algorithm(self, trace_files, capsys):
        trace, ladder = trace_files
        assert main(["schedule", trace, "--ladder", ladder, "--algorithm", "magic"]) == 2

    def test_generate_and_recommend(self, tmp_path, capsys):
        trace = str(tmp_path / "t.csv")
        lad = str(tmp_path / "l.csv")
        assert (
            main(
                [
                    "generate", "--workload", "poisson", "--n", "25",
                    "--out", trace, "--ladder", "dec", "--ladder-out", lad,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["recommend", trace, "--ladder", lad]) == 0
        out = capsys.readouterr().out
        assert "recommended types" in out

    def test_generate_unknown_workload(self, tmp_path):
        assert (
            main(["generate", "--workload", "nope", "--out", str(tmp_path / "x.csv")])
            == 2
        )

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "DEC-OFFLINE" in out
        assert "demand chart" in out


class TestCliPathValidation:
    """Bad paths exit with code 2 and a clear error — never a traceback."""

    def test_schedule_missing_trace(self, trace_files, capsys):
        _, ladder = trace_files
        assert main(["schedule", "/no/such/trace.csv", "--ladder", ladder]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "trace" in err

    def test_schedule_missing_ladder(self, trace_files, capsys):
        trace, _ = trace_files
        assert main(["schedule", trace, "--ladder", "/no/such/ladder.csv"]) == 2
        assert "ladder" in capsys.readouterr().err

    def test_schedule_unwritable_output(self, trace_files, capsys):
        trace, ladder = trace_files
        code = main(
            ["schedule", trace, "--ladder", ladder,
             "--output", "/no/such/dir/assign.csv"]
        )
        assert code == 2
        assert "directory" in capsys.readouterr().err

    def test_generate_unwritable_out(self, capsys):
        code = main(
            ["generate", "--workload", "poisson", "--n", "5",
             "--out", "/no/such/dir/t.csv"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_recommend_missing_trace(self, trace_files, capsys):
        _, ladder = trace_files
        assert main(["recommend", "/no/such/trace.csv", "--ladder", ladder]) == 2
        assert "error:" in capsys.readouterr().err

    def test_replay_missing_trace(self, capsys):
        assert main(["replay", "/no/such/trace.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCliReplay:
    def test_replay_roundtrip_with_verify(self, tmp_path, capsys):
        from repro.core.events import EventKind, event_stream
        from repro.service.checkpoint import write_trace
        from repro.service.runtime import SchedulerRuntime

        rng = np.random.default_rng(5)
        ladder = dec_ladder(3)
        jobs = uniform_workload(15, rng, max_size=ladder.capacity(3))
        rt = SchedulerRuntime.create("dec", ladder)
        for ev in event_stream(jobs):
            if ev.kind is EventKind.ARRIVE:
                rt.submit(ev.job.size, ev.job.arrival, name=ev.job.name, uid=ev.job.uid)
            else:
                rt.depart(ev.job.uid, ev.job.departure)
        trace = tmp_path / "run.jsonl"
        write_trace(rt, trace)

        ckpt = tmp_path / "ckpt.json"
        assert main(["replay", str(trace), "--verify", "--checkpoint", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "verify: batch run_online cost matches exactly" in out
        assert ckpt.exists()

    def test_replay_corrupt_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        assert main(["replay", str(bad)]) == 2
        assert "cannot replay" in capsys.readouterr().err


class TestCliLint:
    def test_lint_clean(self, trace_files, capsys):
        trace, ladder = trace_files
        assert main(["lint", trace, "--ladder", ladder]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and ladder in out

    def test_lint_without_ladder(self, trace_files, capsys):
        trace, _ = trace_files
        assert main(["lint", trace]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_warns_on_duplicates(self, tmp_path, capsys):
        from repro.jobs.io import write_jobs_csv
        from repro.jobs.jobset import Job, JobSet

        jobs = JobSet([Job(1.0, 0.0, 2.0), Job(1.0, 0.0, 2.0)])
        trace = tmp_path / "dupes.csv"
        write_jobs_csv(jobs, trace)
        assert main(["lint", str(trace)]) == 1
        out = capsys.readouterr().out
        assert "duplicates" in out and "1 warning(s)" in out

    def test_lint_missing_trace(self, capsys):
        assert main(["lint", "/no/such/trace.csv"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_lint_missing_ladder(self, trace_files, capsys):
        trace, _ = trace_files
        assert main(["lint", trace, "--ladder", "/no/such/ladder.csv"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCliCheck:
    def test_check_src_is_clean(self, capsys):
        import pathlib

        src = pathlib.Path(__file__).resolve().parents[1] / "src"
        assert main(["check", str(src)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_check_reports_findings(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(a, b):\n    return a.arrival <= b.departure\n")
        assert main(["check", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "BSHM001" in out and "1 finding(s)" in out

    def test_check_missing_path(self, capsys):
        assert main(["check", "/no/such/dir"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_check_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("BSHM001", "BSHM006", "BSHM008", "BSHM012"):
            assert rule_id in out

    def test_check_default_scope_covers_tests_and_benchmarks(
        self, tmp_path, monkeypatch, capsys
    ):
        for rel in ("src/repro/core/a.py", "tests/core/test_a.py", "benchmarks/bench_a.py"):
            p = tmp_path / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["check", "--no-cache"]) == 0
        assert "3 files clean" in capsys.readouterr().out

    def test_check_sarif_output(self, tmp_path, capsys):
        import json

        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(a, b):\n    return a.arrival <= b.departure\n")
        assert main(["check", "--no-cache", "--format", "sarif", str(bad)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "BSHM001"

    def test_check_json_output_to_file(self, tmp_path, capsys):
        import json

        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(a, b):\n    return a.arrival <= b.departure\n")
        out = tmp_path / "report.json"
        assert (
            main(
                ["check", "--no-cache", "--format", "json",
                 "--output", str(out), str(bad)]
            )
            == 1
        )
        doc = json.loads(out.read_text())
        assert [d["rule_id"] for d in doc["findings"]] == ["BSHM001"]

    def test_check_write_baseline_then_green(self, tmp_path, monkeypatch, capsys):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(a, b):\n    return a.arrival <= b.departure\n")
        monkeypatch.chdir(tmp_path)
        assert main(["check", "--no-cache", "--write-baseline"]) == 0
        assert "baseline with 1 finding(s)" in capsys.readouterr().out
        # the committed default baseline is picked up automatically
        assert main(["check", "--no-cache"]) == 0
        assert "baselined" in capsys.readouterr().out
        # opting out reinstates the failure
        assert main(["check", "--no-cache", "--no-baseline"]) == 1

    def test_check_cache_dir_round_trip(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(a, b):\n    return a.arrival <= b.departure\n")
        cache_dir = tmp_path / "cachehere"
        argv = ["check", "--cache-dir", str(cache_dir), str(bad)]
        assert main(argv) == 1
        assert (cache_dir / "cache.json").exists()
        assert main(argv) == 1  # warm run reports the same findings
        out = capsys.readouterr().out
        assert "BSHM001" in out

    def test_check_diff_bad_ref(self, tmp_path, monkeypatch, capsys):
        src = tmp_path / "src"
        src.mkdir()
        (src / "a.py").write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["check", "--no-cache", "--diff", "no-such-ref"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCliRecover:
    """``bshm recover`` over every storage layout: WAL dirs, sqlite stores,
    and the garbled variants that must exit 2 with a message, never a
    traceback."""

    @pytest.fixture
    def wal_dir(self, tmp_path):
        from repro import SchedulerRuntime
        from repro.core.events import EventKind, event_stream
        from repro.service.wal import WALWriter

        rng = np.random.default_rng(4)
        ladder = dec_ladder(3)
        jobs = uniform_workload(15, rng, max_size=ladder.capacity(3))
        rt = SchedulerRuntime.create("dec", ladder, admission=["fits-ladder"])
        wal = WALWriter(tmp_path / "wal", rt, fsync="always")
        for ev in event_stream(jobs):
            if ev.kind is EventKind.ARRIVE:
                rt.submit(ev.job.size, ev.job.arrival, uid=ev.job.uid)
            else:
                rt.depart(ev.job.uid, ev.job.departure)
            wal.append_new()
        wal.close()
        return tmp_path / "wal"

    @pytest.fixture
    def sqlite_store(self, tmp_path):
        from repro import SchedulerRuntime
        from repro.core.events import EventKind, event_stream
        from repro.service.storage import StoreWriter, open_store

        rng = np.random.default_rng(4)
        ladder = dec_ladder(3)
        jobs = uniform_workload(15, rng, max_size=ladder.capacity(3))
        rt = SchedulerRuntime.create("dec", ladder, admission=["fits-ladder"])
        store = open_store(f"sqlite:{tmp_path / 'events.db'}")
        writer = StoreWriter(store, rt, sync="always", compact_every=10)
        for ev in event_stream(jobs):
            if ev.kind is EventKind.ARRIVE:
                rt.submit(ev.job.size, ev.job.arrival, uid=ev.job.uid)
            else:
                rt.depart(ev.job.uid, ev.job.departure)
            writer.append_new()
        writer.close()
        return tmp_path / "events.db"

    def test_recover_wal_dir_with_progress(self, wal_dir, capsys):
        assert main(["recover", str(wal_dir)]) == 0
        out = capsys.readouterr().out
        assert "bshm recover: segment wal-" in out  # per-segment progress
        assert "assignment sha256:" in out

    def test_recover_sqlite_by_path_and_spec(self, sqlite_store, capsys):
        assert main(["recover", str(sqlite_store)]) == 0
        by_path = capsys.readouterr().out
        assert "snapshot@" in by_path and "assignment sha256:" in by_path
        assert main(["recover", f"sqlite:{sqlite_store}"]) == 0
        by_spec = capsys.readouterr().out
        assert by_spec == by_path  # both spellings recover identically

    def test_recover_unknown_path_exits_2(self, tmp_path, capsys):
        assert main(["recover", str(tmp_path / "missing")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "neither a WAL directory" in err

    def test_recover_garbled_dir_exits_2(self, tmp_path, capsys):
        (tmp_path / "stuff.txt").write_text("not a wal")
        assert main(["recover", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "no recoverable data" in err

    def test_recover_garbled_snapshot_exits_2_without_traceback(
        self, tmp_path, capsys
    ):
        # regression: valid-JSON-but-garbled snapshots raised CheckpointError
        # straight through main() as a traceback instead of a clean exit 2
        snap = tmp_path / "snapshot-0000000000000005.json"
        snap.write_text('{"kind": "bshm-state", "clock": "oops"}')
        assert main(["recover", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "error: cannot recover WAL" in err

    def test_recover_foreign_sqlite_file_exits_2(self, tmp_path, capsys):
        junk = tmp_path / "junk.db"
        junk.write_text("not a database")
        assert main(["recover", str(junk)]) == 2
        assert "error:" in capsys.readouterr().err


class TestCliServeFlags:
    """Flag validation for the sharded/durable serve front (no sockets)."""

    def test_wal_and_storage_are_mutually_exclusive(self, capsys):
        assert main(["serve", "--wal", "/tmp/w", "--storage", "memory"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_wal_with_workers_rejected(self, capsys):
        assert main(["serve", "--wal", "/tmp/w", "--workers", "2"]) == 2
        assert "unavailable with --workers" in capsys.readouterr().err

    def test_trace_out_with_workers_rejected(self, tmp_path, capsys):
        assert (
            main(
                ["serve", "--workers", "2", "--trace-out", str(tmp_path / "t")]
            )
            == 2
        )
        assert "--trace-out is unavailable" in capsys.readouterr().err

    def test_workers_must_be_positive(self, capsys):
        assert main(["serve", "--workers", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_serve_recovery_of_garbled_wal_exits_2(self, tmp_path, capsys):
        # regression: the serve-side recovery path leaked CheckpointError too
        wal = tmp_path / "wal"
        wal.mkdir()
        (wal / "snapshot-0000000000000005.json").write_text(
            '{"kind": "bshm-state", "clock": "oops"}'
        )
        assert main(["serve", "--wal", str(wal)]) == 2
        assert "error: cannot recover WAL" in capsys.readouterr().err

    def test_serve_garbled_storage_exits_2(self, tmp_path, capsys):
        junk = tmp_path / "junk.db"
        junk.write_text("not a database")
        assert main(["serve", "--storage", f"sqlite:{junk}"]) == 2
        assert "error: cannot open storage" in capsys.readouterr().err
