"""Tests for the ``bshm`` command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro import dec_ladder, uniform_workload
from repro.jobs.io import write_jobs_csv, write_ladder_csv


@pytest.fixture
def trace_files(tmp_path):
    rng = np.random.default_rng(2)
    ladder = dec_ladder(3)
    jobs = uniform_workload(20, rng, max_size=ladder.capacity(3))
    trace = tmp_path / "trace.csv"
    lad = tmp_path / "ladder.csv"
    write_jobs_csv(jobs, trace)
    write_ladder_csv(ladder, lad)
    return str(trace), str(lad)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E15" in out

    def test_run_quick(self, capsys):
        assert main(["run", "E9", "--scale", "quick"]) == 0
        assert "status: PASS" in capsys.readouterr().out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "E99"])

    def test_schedule_auto(self, trace_files, capsys, tmp_path):
        trace, ladder = trace_files
        out_csv = str(tmp_path / "assign.csv")
        assert main(["schedule", trace, "--ladder", ladder, "--output", out_csv]) == 0
        out = capsys.readouterr().out
        assert "dec-offline" in out  # auto picked the DEC algorithm
        assert "ratio" in out
        assert (tmp_path / "assign.csv").exists()

    def test_schedule_explicit_algorithm(self, trace_files, capsys):
        trace, ladder = trace_files
        assert main(["schedule", trace, "--ladder", ladder, "--algorithm", "gen-online"]) == 0
        assert "gen-online" in capsys.readouterr().out

    def test_schedule_unknown_algorithm(self, trace_files, capsys):
        trace, ladder = trace_files
        assert main(["schedule", trace, "--ladder", ladder, "--algorithm", "magic"]) == 2

    def test_generate_and_recommend(self, tmp_path, capsys):
        trace = str(tmp_path / "t.csv")
        lad = str(tmp_path / "l.csv")
        assert (
            main(
                [
                    "generate", "--workload", "poisson", "--n", "25",
                    "--out", trace, "--ladder", "dec", "--ladder-out", lad,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["recommend", trace, "--ladder", lad]) == 0
        out = capsys.readouterr().out
        assert "recommended types" in out

    def test_generate_unknown_workload(self, tmp_path):
        assert (
            main(["generate", "--workload", "nope", "--out", str(tmp_path / "x.csv")])
            == 2
        )

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "DEC-OFFLINE" in out
        assert "demand chart" in out
