"""Shared fixtures and hypothesis strategies for the BSHM test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

# importing registers the quick/ci/deep Hypothesis profiles and loads the
# one selected by BSHM_HYPOTHESIS_PROFILE (default: ci)
from tests.property.settings import ACTIVE_PROFILE as _HYPOTHESIS_PROFILE  # noqa: F401

from repro import Job, JobSet, Ladder, MachineType


# ---------------------------------------------------------------------------
# plain fixtures
# ---------------------------------------------------------------------------

@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def dec3():
    """A 3-type normal-form DEC ladder: capacities 1, 3, 9, rates 1, 2, 4."""
    from repro import dec_ladder

    return dec_ladder(3)


@pytest.fixture
def inc3():
    """A 3-type normal-form INC ladder: capacities 1, 1.5, 2.25, rates 1, 2, 4."""
    from repro import inc_ladder

    return inc_ladder(3)


@pytest.fixture
def small_jobs():
    """A tiny deterministic instance used across modules."""
    return JobSet(
        [
            Job(size=0.5, arrival=0.0, departure=4.0, name="a"),
            Job(size=0.8, arrival=1.0, departure=3.0, name="b"),
            Job(size=2.0, arrival=2.0, departure=6.0, name="c"),
            Job(size=0.3, arrival=5.0, departure=9.0, name="d"),
        ]
    )


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------

@st.composite
def job_strategy(draw, max_size: float = 8.0, horizon: float = 50.0):
    size = draw(st.floats(0.05, max_size, allow_nan=False, allow_infinity=False))
    arrival = draw(st.floats(0.0, horizon, allow_nan=False, allow_infinity=False))
    duration = draw(st.floats(0.1, 20.0, allow_nan=False, allow_infinity=False))
    return Job(size=size, arrival=arrival, departure=arrival + duration)


@st.composite
def jobset_strategy(draw, min_jobs: int = 1, max_jobs: int = 25, max_size: float = 8.0):
    jobs = draw(
        st.lists(job_strategy(max_size=max_size), min_size=min_jobs, max_size=max_jobs)
    )
    return JobSet(jobs)


@st.composite
def dec_ladder_strategy(draw, max_m: int = 4):
    """Normal-form DEC ladders: rates 2^i, capacity factor > 2."""
    m = draw(st.integers(1, max_m))
    factor = draw(st.floats(2.1, 4.0))
    return Ladder(MachineType(factor**i, 2.0**i) for i in range(m))


@st.composite
def inc_ladder_strategy(draw, max_m: int = 4):
    """Normal-form INC ladders: rates 2^i, capacity factor in (1, 2)."""
    m = draw(st.integers(1, max_m))
    factor = draw(st.floats(1.2, 1.9))
    return Ladder(MachineType(factor**i, 2.0**i) for i in range(m))


@st.composite
def any_ladder_strategy(draw, max_m: int = 5):
    """Arbitrary valid ladders (strictly increasing capacities and rates)."""
    m = draw(st.integers(1, max_m))
    cap = 1.0
    rate = 1.0
    types = []
    for _ in range(m):
        types.append(MachineType(cap, rate))
        cap *= draw(st.floats(1.1, 3.0))
        rate *= draw(st.floats(1.1, 3.0))
    return Ladder(types)
