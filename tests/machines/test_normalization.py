"""Unit tests for Section-II preprocessing (pruning + power-of-2 rounding)."""

import pytest
from hypothesis import given

from repro import (
    Job,
    JobSet,
    Ladder,
    MachineType,
    ec2_like_ladder,
    normalize,
    prune_dominated,
)
from repro.offline.general_offline import general_offline
from repro.schedule.validate import assert_feasible
from tests.conftest import any_ladder_strategy, jobset_strategy


class TestPruneDominated:
    def test_keeps_undominated(self):
        types = [MachineType(1, 1), MachineType(2, 2), MachineType(4, 3)]
        assert len(prune_dominated(types)) == 3

    def test_drops_same_capacity_higher_rate(self):
        types = [MachineType(1, 1), MachineType(1, 2)]
        kept = prune_dominated(types)
        assert len(kept) == 1
        assert kept[0].rate == 1

    def test_drops_bigger_cheaper_dominates(self):
        # (1, 5) dominated by (2, 3)
        types = [MachineType(1, 5), MachineType(2, 3)]
        kept = prune_dominated(types)
        assert len(kept) == 1
        assert kept[0].capacity == 2

    def test_result_is_valid_ladder(self):
        types = [
            MachineType(1, 4),
            MachineType(2, 3),
            MachineType(3, 3.5),
            MachineType(4, 10),
            MachineType(4, 8),
        ]
        Ladder(prune_dominated(types))  # must not raise


class TestNormalize:
    def test_rates_become_powers_of_two(self):
        lad = ec2_like_ladder(5, price_exponent=0.85)
        norm = normalize(lad)
        assert norm.normalized.is_power_of_two_rates()

    def test_already_normal_is_identity(self, dec3):
        norm = normalize(dec3)
        assert norm.normalized == dec3
        assert norm.to_original == (1, 2, 3)

    def test_duplicate_rounded_rates_keep_highest_capacity(self):
        # normalized rates 1.1 and 1.3 both round up to 2: the lower-capacity
        # duplicate (type 2) is deleted, type 3 survives
        lad = Ladder.from_pairs([(1.0, 1.0), (2.0, 1.1), (3.0, 1.3)])
        norm = normalize(lad)
        assert norm.normalized.m == 2
        assert norm.normalized.capacities == (1.0, 3.0)
        assert norm.normalized.rates == (1.0, 2.0)
        assert norm.to_original == (1, 3)

    def test_rounding_is_upward_bounded_by_two(self):
        lad = ec2_like_ladder(6, price_exponent=1.1)
        norm = normalize(lad)
        for i in range(1, norm.normalized.m + 1):
            orig_rate = norm.realize_rate(i)
            new_rate = norm.normalized.rate(i)
            assert orig_rate <= new_rate < 2 * orig_rate + 1e-12

    def test_realize_schedule_costs_less_and_stays_feasible(self):
        lad = ec2_like_ladder(4, price_exponent=0.8)
        norm = normalize(lad)
        jobs = JobSet(
            [Job(0.5, 0, 3), Job(3.0, 1, 4), Job(7.0, 2, 6), Job(1.5, 5, 9)]
        )
        sched_norm = general_offline(jobs, norm.normalized)
        sched_orig = norm.realize_schedule(sched_norm)
        assert_feasible(sched_orig, jobs)
        assert sched_orig.cost() <= sched_norm.cost() + 1e-9
        assert sched_norm.cost() <= 2 * sched_orig.cost() + 1e-9

    @given(any_ladder_strategy(max_m=5))
    def test_property_normalization_invariants(self, ladder):
        norm = normalize(ladder)
        nl = norm.normalized
        assert nl.is_power_of_two_rates()
        # mapping is strictly increasing and ends at the original top type
        assert list(norm.to_original) == sorted(set(norm.to_original))
        assert norm.to_original[-1] == ladder.m
        # every surviving type's rate is >= its original's and < 2x
        for i in range(1, nl.m + 1):
            assert norm.realize_rate(i) <= nl.rate(i) < 2 * norm.realize_rate(i) + 1e-9
        # consecutive normalized rates differ by a factor >= 2
        for i in range(1, nl.m):
            assert nl.rate(i + 1) / nl.rate(i) >= 2 - 1e-12
