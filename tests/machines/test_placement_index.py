"""Unit tests for the O(log n) placement index structures."""

import math

import pytest

from repro.machines.placement_index import (
    INFINITE_LOAD,
    FreeSlotHeap,
    MinLoadSegmentTree,
)


class TestMinLoadSegmentTree:
    def test_empty_tree_never_fits(self):
        tree = MinLoadSegmentTree()
        slot, probes = tree.leftmost_fit(0.1, 1.0 + 1e-9)
        assert slot is None
        assert probes == 1
        assert tree.min_load() == INFINITE_LOAD

    def test_leftmost_wins_over_better_fit(self):
        tree = MinLoadSegmentTree()
        for load in (0.9, 0.2, 0.0):
            tree.append(load)
        # size 0.1 fits all three; First-Fit takes slot 0, not the emptiest
        slot, _ = tree.leftmost_fit(0.1, 1.0 + 1e-9)
        assert slot == 0
        # size 0.5 skips slot 0 (0.9 + 0.5 > 1), lands on slot 1
        slot, _ = tree.leftmost_fit(0.5, 1.0 + 1e-9)
        assert slot == 1

    def test_set_updates_answers(self):
        tree = MinLoadSegmentTree()
        for load in (0.5, 0.5, 0.5):
            tree.append(load)
        assert tree.leftmost_fit(0.6, 1.0 + 1e-9)[0] is None
        tree.set(1, 0.1)
        assert tree.leftmost_fit(0.6, 1.0 + 1e-9)[0] == 1
        tree.set(1, INFINITE_LOAD)
        assert tree.leftmost_fit(0.6, 1.0 + 1e-9)[0] is None
        assert tree.get(0) == 0.5

    def test_growth_preserves_loads(self):
        tree = MinLoadSegmentTree()
        loads = [float(i % 7) / 10.0 for i in range(100)]
        for load in loads:
            tree.append(load)
        assert len(tree) == 100
        for slot, load in enumerate(loads):
            assert tree.get(slot) == load
        # leftmost with load 0.0 is slot 0 (0 % 7 == 0)
        assert tree.leftmost_fit(1.0, 1.0 + 1e-9)[0] == 0

    def test_probe_count_is_logarithmic(self):
        tree = MinLoadSegmentTree()
        for _ in range(1024):
            tree.append(0.0)
        _, probes = tree.leftmost_fit(0.5, 1.0 + 1e-9)
        assert probes <= 1 + math.ceil(math.log2(1024))

    def test_out_of_range_slots_raise(self):
        tree = MinLoadSegmentTree()
        tree.append(0.0)
        with pytest.raises(IndexError):
            tree.set(1, 0.5)
        with pytest.raises(IndexError):
            tree.get(-1)

    def test_matches_linear_scan_on_dense_updates(self):
        """Differential micro-oracle: tree vs scan over scripted updates."""
        tree = MinLoadSegmentTree()
        loads: list[float] = []
        cap_tol = 1.0 + 1e-9

        def scan(size: float):
            for i, load in enumerate(loads):
                if load + size <= cap_tol:
                    return i
            return None

        script = [0.3, 0.8, 0.05, 1.0, 0.55, 0.2, 0.95, 0.0]
        for load in script:
            tree.append(load)
            loads.append(load)
        for size in (0.01, 0.2, 0.5, 0.7, 0.96, 1.0, 2.0):
            assert tree.leftmost_fit(size, cap_tol)[0] == scan(size)
        for slot, new in ((1, 0.0), (0, 0.99), (7, INFINITE_LOAD), (3, 0.45)):
            tree.set(slot, new)
            loads[slot] = new
            for size in (0.01, 0.2, 0.5, 0.7, 0.96, 1.0, 2.0):
                assert tree.leftmost_fit(size, cap_tol)[0] == scan(size)


class TestFreeSlotHeap:
    def test_lowest_slot_first(self):
        heap = FreeSlotHeap()
        for slot in (5, 1, 3):
            heap.push(slot)
        assert heap.peek(lambda s: True)[0] == 1
        assert heap.pop() == 1
        assert heap.peek(lambda s: True)[0] == 3

    def test_lazy_invalidation_discards_stale_tops(self):
        heap = FreeSlotHeap()
        for slot in (0, 1, 2):
            heap.push(slot)
        free = {2}
        slot, probes = heap.peek(lambda s: s in free)
        assert slot == 2
        assert probes == 3  # inspected (and discarded) 0 and 1 on the way
        assert len(heap) == 1  # stale entries are gone for good

    def test_empty_heap(self):
        heap = FreeSlotHeap()
        assert heap.peek(lambda s: True) == (None, 0)
        assert len(heap) == 0
