"""Tests for catalogue subset recommendation."""

import pytest

from repro import Job, JobSet, dec_ladder, uniform_workload
from repro.machines.recommend import recommend_subset


class TestRecommend:
    def test_subset_must_fit_largest_job(self, rng):
        ladder = dec_ladder(3)  # capacities 1, 3, 9
        jobs = JobSet([Job(5.0, 0, 2)])
        rec = recommend_subset(jobs, ladder)
        assert 3 in rec.enabled_indices  # only type 3 fits the job
        for combo, _cost in rec.ranking:
            assert 3 in combo

    def test_tiny_long_job_prefers_small_type_only(self):
        ladder = dec_ladder(3)
        jobs = JobSet([Job(0.2, 0, 100)])
        rec = recommend_subset(jobs, ladder)
        # cheapest config rate for one tiny job is type 1 alone
        assert rec.enabled_indices == (1,)
        assert rec.cost == pytest.approx(100.0)

    def test_full_catalogue_never_worse_on_lower_bound(self, rng):
        """The Eq.-(1) LB is monotone: more types can only help the relaxed
        configuration, so the full catalogue is always among the best by LB."""
        ladder = dec_ladder(3)
        jobs = uniform_workload(40, rng, max_size=ladder.capacity(3))
        rec = recommend_subset(jobs, ladder)
        full = next(c for combo, c in rec.ranking if combo == (1, 2, 3))
        assert rec.cost <= full + 1e-9

    def test_max_types_cap(self, rng):
        ladder = dec_ladder(4)
        jobs = uniform_workload(30, rng, max_size=ladder.capacity(4))
        rec = recommend_subset(jobs, ladder, max_types=2)
        assert len(rec.enabled_indices) <= 2

    def test_schedule_estimate_runs(self, rng):
        ladder = dec_ladder(3)
        jobs = uniform_workload(25, rng, max_size=ladder.capacity(3))
        rec = recommend_subset(jobs, ladder, estimate="schedule")
        assert rec.cost > 0

    def test_schedule_estimate_can_prefer_fewer_types(self, rng):
        """With the real algorithms, dropping types sometimes wins — verify
        the search at least evaluates proper subsets competitively."""
        ladder = dec_ladder(3)
        jobs = uniform_workload(30, rng, max_size=ladder.capacity(3))
        rec = recommend_subset(jobs, ladder, estimate="schedule")
        evaluated_sizes = {len(combo) for combo, _ in rec.ranking}
        assert evaluated_sizes == {1, 2, 3}

    def test_unknown_estimate(self, rng, dec3):
        jobs = uniform_workload(5, rng, max_size=1.0)
        with pytest.raises(ValueError):
            recommend_subset(jobs, dec3, estimate="vibes")

    def test_too_many_types_rejected(self, rng):
        from repro import MachineType, Ladder

        big = Ladder(MachineType(2.0**i, 2.0**i * (i + 1)) for i in range(13))
        jobs = uniform_workload(5, rng, max_size=1.0)
        with pytest.raises(ValueError, match="12 types"):
            recommend_subset(jobs, big)
