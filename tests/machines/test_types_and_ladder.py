"""Unit tests for MachineType, Ladder, regime classification and the forest."""

import pytest
from hypothesis import given

from repro import Ladder, MachineType, Regime, dec_ladder, inc_ladder, paper_fig2_ladder
from tests.conftest import any_ladder_strategy


class TestMachineType:
    def test_basic(self):
        t = MachineType(4.0, 2.0, index=3)
        assert t.capacity == 4.0
        assert t.rate == 2.0
        assert t.amortized_rate == 0.5
        assert t.fits(4.0)
        assert not t.fits(4.1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            MachineType(0.0, 1.0)
        with pytest.raises(ValueError):
            MachineType(1.0, -1.0)

    def test_with_index(self):
        t = MachineType(1, 1).with_index(7)
        assert t.index == 7


class TestLadder:
    def test_reindexes_one_based(self):
        lad = Ladder.from_pairs([(4.0, 3.0), (1.0, 1.0)])  # unsorted input
        assert lad.type(1).capacity == 1.0
        assert lad.type(2).capacity == 4.0
        assert [t.index for t in lad] == [1, 2]

    def test_g0_is_zero(self, dec3):
        assert dec3.capacity(0) == 0.0

    def test_rejects_dominated(self):
        # same capacity twice
        with pytest.raises(ValueError):
            Ladder.from_pairs([(1.0, 1.0), (1.0, 2.0)])
        # bigger capacity but lower rate makes the smaller type dominated
        with pytest.raises(ValueError):
            Ladder.from_pairs([(1.0, 2.0), (2.0, 1.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Ladder([])

    def test_out_of_range_index(self, dec3):
        with pytest.raises(IndexError):
            dec3.type(0)
        with pytest.raises(IndexError):
            dec3.type(4)

    def test_smallest_fitting(self, dec3):
        # capacities 1, 3, 9
        assert dec3.smallest_fitting(0.5) == 1
        assert dec3.smallest_fitting(1.0) == 1
        assert dec3.smallest_fitting(2.0) == 2
        assert dec3.smallest_fitting(9.0) == 3
        with pytest.raises(ValueError):
            dec3.smallest_fitting(10.0)

    def test_regimes(self, dec3, inc3):
        assert dec3.regime is Regime.DEC
        assert inc3.regime is Regime.INC
        assert paper_fig2_ladder().regime is Regime.GENERAL

    def test_constant_amortized_is_both(self):
        lad = Ladder.from_pairs([(1, 1), (2, 2), (4, 4)])
        assert lad.is_dec and lad.is_inc
        assert lad.regime is Regime.DEC  # primary label

    def test_power_of_two_rates_detection(self, dec3):
        assert dec3.is_power_of_two_rates()
        lad = Ladder.from_pairs([(1, 1.0), (2, 3.0)])
        assert not lad.is_power_of_two_rates()

    def test_catalog_validity(self):
        assert dec_ladder(4).is_dec
        assert inc_ladder(4).is_inc
        with pytest.raises(ValueError):
            dec_ladder(3, cap_factor=2.0)
        with pytest.raises(ValueError):
            inc_ladder(3, cap_factor=2.0)


class TestForest:
    def test_dec_ladder_is_path(self, dec3):
        forest = dec3.forest()
        assert forest.roots == (3,)
        assert forest.parent[1] == 2
        assert forest.parent[2] == 3
        assert forest.postorder() == [1, 2, 3]

    def test_inc_ladder_is_all_roots(self, inc3):
        forest = inc3.forest()
        assert forest.roots == (1, 2, 3)
        assert all(forest.parent[i] is None for i in (1, 2, 3))

    def test_fig2_three_trees(self):
        forest = paper_fig2_ladder().forest()
        assert forest.roots == (3, 6, 8)
        assert sorted(forest.subtree(3)) == [1, 2, 3]
        assert sorted(forest.subtree(6)) == [4, 5, 6]
        assert sorted(forest.subtree(8)) == [7, 8]

    def test_postorder_children_before_parents(self):
        forest = paper_fig2_ladder().forest()
        order = forest.postorder()
        pos = {node: i for i, node in enumerate(order)}
        for child, parent in forest.parent.items():
            if parent is not None:
                assert pos[child] < pos[parent]

    def test_path_to_root(self):
        forest = paper_fig2_ladder().forest()
        assert forest.path_to_root(2) == [2, 3]
        assert forest.path_to_root(7) == [7, 8]
        assert forest.path_to_root(8) == [8]

    def test_processing_path_validates_class(self):
        forest = paper_fig2_ladder().forest()
        assert forest.processing_path(1) == [1, 3]
        with pytest.raises(ValueError):
            forest.processing_path(0)
        with pytest.raises(ValueError):
            forest.processing_path(9)

    @given(any_ladder_strategy(max_m=6))
    def test_property_forest_structure(self, ladder):
        forest = ladder.forest()
        # parents strictly above
        for i, p in forest.parent.items():
            if p is not None:
                assert p > i
        # every node's subtree is a consecutive range ending at the node
        for i in range(1, ladder.m + 1):
            lo, hi = forest.subtree_span(i)
            assert hi == i
            assert sorted(forest.subtree(i)) == list(range(lo, hi + 1))
        # postorder covers every node once
        assert sorted(forest.postorder()) == list(range(1, ladder.m + 1))
