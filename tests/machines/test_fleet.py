"""Unit tests for online machine state and indexed pools."""

import pytest

from repro.machines.fleet import FleetState, IndexedPool
from repro.machines.machine import OnlineMachine
from repro.schedule.schedule import MachineKey


class TestOnlineMachine:
    def test_admit_release(self):
        m = OnlineMachine(MachineKey(1, ("A", 1)), capacity=4.0)
        m.admit(1, 2.0)
        m.admit(2, 2.0)
        assert m.busy
        assert m.load == pytest.approx(4.0)
        assert not m.fits(0.1)
        m.release(1)
        assert m.fits(2.0)
        m.release(2)
        assert m.empty
        assert m.load == 0.0

    def test_overfill_rejected(self):
        m = OnlineMachine(MachineKey(1, ("A", 1)), capacity=1.0)
        m.admit(1, 0.7)
        with pytest.raises(ValueError):
            m.admit(2, 0.5)

    def test_double_admit_rejected(self):
        m = OnlineMachine(MachineKey(1, ("A", 1)), capacity=4.0)
        m.admit(1, 1.0)
        with pytest.raises(ValueError):
            m.admit(1, 1.0)

    def test_release_unknown_raises(self):
        m = OnlineMachine(MachineKey(1, ("A", 1)), capacity=4.0)
        with pytest.raises(KeyError):
            m.release(42)


class TestIndexedPool:
    def test_first_fit_prefers_lowest_index(self):
        pool = IndexedPool("A", 1, capacity=2.0, budget=None)
        m1 = pool.first_fit(1, 1.0)
        m2 = pool.first_fit(2, 1.5)  # doesn't fit m1 -> new machine
        m3 = pool.first_fit(3, 1.0)  # fits m1
        assert m1.key.tag == ("A", 1)
        assert m2.key.tag == ("A", 2)
        assert m3 is m1

    def test_size_limit(self):
        pool = IndexedPool("A", 1, capacity=4.0, size_limit=2.0, budget=None)
        assert pool.first_fit(1, 2.5) is None
        assert pool.first_fit(2, 2.0) is not None

    def test_budget_blocks_new_machines_only(self):
        pool = IndexedPool("A", 1, capacity=2.0, budget=1)
        m1 = pool.first_fit(1, 1.0)
        assert m1 is not None
        # budget reached: cannot open machine 2
        assert pool.first_fit(2, 2.0) is None
        # but the busy machine can still accept load
        m3 = pool.first_fit(3, 0.5)
        assert m3 is m1

    def test_budget_frees_on_departure(self):
        pool = IndexedPool("B", 2, capacity=1.0, budget=1, single_job=True)
        state = FleetState()
        m1 = pool.first_fit(1, 1.0)
        state.record(1, m1)
        assert pool.first_fit(2, 1.0) is None  # budget blocked
        state.depart(1)
        m2 = pool.first_fit(2, 1.0)
        assert m2 is m1  # lowest-indexed empty machine reused

    def test_single_job_pool_never_shares(self):
        pool = IndexedPool("B", 1, capacity=10.0, budget=None, single_job=True)
        m1 = pool.first_fit(1, 1.0)
        m2 = pool.first_fit(2, 1.0)
        assert m1 is not m2

    def test_busy_count(self):
        pool = IndexedPool("A", 1, capacity=1.0, budget=None)
        state = FleetState()
        for uid in range(3):
            state.record(uid, pool.first_fit(uid, 1.0))
        assert pool.busy_count() == 3
        state.depart(1)
        assert pool.busy_count() == 2


class TestPlacementStats:
    def test_probes_accumulate_across_shared_pools(self):
        state = FleetState()
        a = IndexedPool("A", 1, capacity=2.0, budget=None, stats=state.stats)
        b = IndexedPool("B", 1, capacity=2.0, budget=None, stats=state.stats)
        a.first_fit(1, 1.0)
        b.first_fit(2, 1.0)
        assert state.stats.decisions == 2
        assert a.stats is b.stats is state.stats

    def test_reference_counts_scanned_machines(self):
        pool = IndexedPool("A", 1, capacity=1.0, budget=None)
        for uid in range(4):
            pool.first_fit_reference(uid, 1.0)  # each opens a fresh machine
        before = pool.stats.probes
        pool.first_fit_reference(9, 1.0)
        # the fifth call scanned all four full machines before opening
        assert pool.stats.probes - before == 4

    def test_busy_count_live_under_direct_release(self):
        pool = IndexedPool("A", 1, capacity=1.0, budget=None)
        machines = [pool.first_fit(uid, 1.0) for uid in range(3)]
        assert pool.busy_count() == 3
        machines[1].release(1)  # bypasses FleetState on purpose
        assert pool.busy_count() == 2
        # the freed machine is found again via the free-slot heap
        assert pool.first_fit(7, 1.0) is machines[1]


class TestFleetState:
    def test_depart_unknown_raises(self):
        with pytest.raises(KeyError):
            FleetState().depart(3)
