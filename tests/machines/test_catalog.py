"""Tests for the ladder catalogue constructors."""

import numpy as np
import pytest

from repro import (
    Regime,
    dec_ladder,
    ec2_like_ladder,
    inc_ladder,
    paper_fig2_ladder,
    random_general_ladder,
    single_type_ladder,
)


class TestCatalog:
    def test_single_type(self):
        lad = single_type_ladder(capacity=4.0, rate=2.0)
        assert lad.m == 1
        assert lad.capacity(1) == 4.0
        assert lad.rate(1) == 2.0

    @pytest.mark.parametrize("m", [1, 2, 4, 6])
    def test_dec_ladder_properties(self, m):
        lad = dec_ladder(m)
        assert lad.m == m
        assert lad.is_dec
        assert lad.is_power_of_two_rates()
        # strictly DEC for m >= 2
        if m >= 2:
            rhos = [t.amortized_rate for t in lad.types]
            assert all(a > b for a, b in zip(rhos[:-1], rhos[1:]))

    @pytest.mark.parametrize("m", [1, 2, 4, 6])
    def test_inc_ladder_properties(self, m):
        lad = inc_ladder(m)
        assert lad.is_inc
        assert lad.is_power_of_two_rates()
        if m >= 2:
            rhos = [t.amortized_rate for t in lad.types]
            assert all(a < b for a, b in zip(rhos[:-1], rhos[1:]))

    def test_ec2_regimes(self):
        assert ec2_like_ladder(5, price_exponent=0.8).regime is Regime.DEC
        # price_exponent > 1: strictly increasing amortized rate
        assert ec2_like_ladder(5, price_exponent=1.2).is_inc

    def test_ec2_doubling_capacities(self):
        lad = ec2_like_ladder(4)
        assert lad.capacities == (1.0, 2.0, 4.0, 8.0)

    def test_fig2_regime_general(self):
        lad = paper_fig2_ladder()
        assert lad.m == 8
        assert lad.regime is Regime.GENERAL
        assert len(lad.forest().roots) == 3

    def test_random_general_valid_and_deterministic(self):
        a = random_general_ladder(6, np.random.default_rng(4))
        b = random_general_ladder(6, np.random.default_rng(4))
        assert a == b
        assert a.m == 6
        # strictly increasing capacities and rates guaranteed by Ladder
        caps = a.capacities
        assert all(x < y for x, y in zip(caps[:-1], caps[1:]))

    def test_random_general_spans_regimes(self):
        """Across seeds the generator should produce at least two regimes."""
        regimes = {
            random_general_ladder(5, np.random.default_rng(seed)).regime
            for seed in range(30)
        }
        assert len(regimes) >= 2
