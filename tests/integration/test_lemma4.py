"""Direct empirical validation of Lemma 4 (Section IV).

Lemma 4: at any time t, the *partitioned* machine configuration
``sum_i ceil(s(J_i, t) / g_i) * r_i`` costs at most ``9/4`` times the optimal
configuration ``sum_i w*(i, t) * r_i`` on BSHM-INC ladders.

This is the load-bearing inequality behind both INC algorithms; we check it
pointwise (per elementary segment) on randomized instances and ladders.
"""

import math

import pytest
from hypothesis import given, settings

from repro import JobSet, inc_ladder, lower_bound, uniform_workload
from tests.conftest import inc_ladder_strategy, jobset_strategy


def partitioned_rate(jobs: JobSet, t: float, ladder) -> float:
    total = 0.0
    for i, cls in enumerate(jobs.size_partition(ladder.capacities), start=1):
        demand = cls.demand_at(t)
        if demand > 1e-12:
            total += math.ceil(demand / ladder.capacity(i) - 1e-12) * ladder.rate(i)
    return total


class TestLemma4:
    def test_on_random_workloads(self, rng):
        ladder = inc_ladder(4)
        for _ in range(3):
            jobs = uniform_workload(60, rng, max_size=ladder.capacity(4))
            lb = lower_bound(jobs, ladder)
            for seg, opt_rate in zip(lb.segments, lb.rates):
                mid = (seg.left + seg.right) / 2
                assert partitioned_rate(jobs, mid, ladder) <= 2.25 * opt_rate + 1e-9

    @settings(deadline=None, max_examples=30)
    @given(jobset_strategy(max_jobs=15, max_size=4.0), inc_ladder_strategy(max_m=4))
    def test_property_lemma4(self, jobs, ladder):
        if not ladder.fits(jobs.max_size):
            return
        lb = lower_bound(jobs, ladder)
        for seg, opt_rate in zip(lb.segments, lb.rates):
            mid = (seg.left + seg.right) / 2
            assert partitioned_rate(jobs, mid, ladder) <= 2.25 * opt_rate + 1e-9

    def test_factor_can_exceed_one(self, rng):
        """The partition genuinely loses something: find an instant where the
        partitioned rate is strictly above the optimal configuration's."""
        ladder = inc_ladder(3)
        found_loss = False
        for trial in range(20):
            jobs = uniform_workload(30, rng, max_size=ladder.capacity(3))
            lb = lower_bound(jobs, ladder)
            for seg, opt_rate in zip(lb.segments, lb.rates):
                mid = (seg.left + seg.right) / 2
                if partitioned_rate(jobs, mid, ladder) > opt_rate + 1e-9:
                    found_loss = True
                    break
            if found_loss:
                break
        assert found_loss
