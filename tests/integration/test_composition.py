"""Cross-feature composition: the extensions work together.

Real usage chains features: generate → normalize → schedule (windowed) →
re-price (billing) → report → persist.  These tests run those chains end to
end, which catches interface drift that per-module tests cannot.
"""

import numpy as np
import pytest

from repro import (
    BillingModel,
    DecOnlineScheduler,
    JournalingScheduler,
    billed_cost,
    certify_dec_online,
    day_night_workload,
    dec_ladder,
    dec_offline,
    ec2_like_ladder,
    lower_bound,
    normalize,
    run_online,
    schedule_report,
    windowed_schedule,
)
from repro.schedule.validate import assert_feasible


@pytest.fixture
def rng():
    return np.random.default_rng(161803)


class TestPipelines:
    def test_normalize_window_bill_report(self, rng):
        """EC2 catalogue -> normalized windowed scheduling -> hourly invoice
        -> markdown report, all coherent."""
        catalogue = ec2_like_ladder(4, price_exponent=0.8)
        norm = normalize(catalogue)
        jobs = day_night_workload(80, rng, max_size=catalogue.capacity(4) / 2)

        sched_norm = windowed_schedule(jobs, norm.normalized, dec_offline, window=12.0)
        sched = norm.realize_schedule(sched_norm)
        assert_feasible(sched, jobs)

        fluid = sched.cost()
        hourly = billed_cost(sched, BillingModel(period=1.0))
        assert hourly >= fluid

        report = schedule_report(sched, jobs, algorithm="windowed+normalized")
        assert f"{fluid:.4f}" in report

    def test_journaled_online_run_is_certifiable(self, rng):
        """Wrapping DEC-ONLINE in a journal must not break the Theorem-2
        certificate (machine tags flow through unchanged)."""
        ladder = dec_ladder(3)
        jobs = day_night_workload(60, rng, max_size=ladder.capacity(3))
        wrapped = JournalingScheduler(DecOnlineScheduler(ladder))
        sched = run_online(jobs, wrapped)
        cert = certify_dec_online(jobs, ladder, sched)
        assert cert.lemma1_holds
        assert not cert.lemma3_violations
        assert len(wrapped.journal.decisions) == len(jobs)

    def test_certificate_across_ladder_widths(self, rng):
        """The Theorem-2 certificate machinery is m-agnostic."""
        for m in (2, 4):
            ladder = dec_ladder(m)
            jobs = day_night_workload(50, rng, max_size=ladder.capacity(m))
            sched = run_online(jobs, DecOnlineScheduler(ladder))
            cert = certify_dec_online(jobs, ladder, sched)
            assert cert.lemma1_holds
            assert not cert.lemma3_violations
            assert cert.actual_cost <= cert.certified_bound + 1e-6

    def test_experiment_persistence_roundtrip(self, tmp_path):
        """Save E21 artifacts and read the manifest back."""
        from repro.experiments import run_experiment
        from repro.experiments.persist import load_manifest, save_result

        result = run_experiment("E21", scale="quick")
        save_result(result, tmp_path)
        manifest = load_manifest(tmp_path, "E21")
        assert manifest["passed"]
        assert (tmp_path / "e21" / "rows.csv").read_text().startswith("parameter")
