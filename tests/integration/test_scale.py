"""Scale smoke: every scheduler stays correct and fast on a 2000-job trace."""

import time

import numpy as np
import pytest

from repro import (
    DecOnlineScheduler,
    GeneralOnlineScheduler,
    dec_ladder,
    dec_offline,
    inc_ladder,
    inc_offline,
    lower_bound,
    poisson_workload,
    run_online,
)
from repro.online.inc_online import IncOnlineScheduler
from repro.schedule.validate import assert_feasible


@pytest.fixture(scope="module")
def big_dec():
    ladder = dec_ladder(4)
    rng = np.random.default_rng(424242)
    return poisson_workload(2000, rng, max_size=ladder.capacity(4)), ladder


class TestScale:
    def test_offline_at_scale(self, big_dec):
        jobs, ladder = big_dec
        start = time.perf_counter()
        sched = dec_offline(jobs, ladder)
        elapsed = time.perf_counter() - start
        assert_feasible(sched, jobs)
        assert elapsed < 30.0  # generous CI margin; ~0.2 s typical
        lb = lower_bound(jobs, ladder).value
        assert sched.cost() <= 14 * lb

    def test_online_at_scale(self, big_dec):
        jobs, ladder = big_dec
        for scheduler in (DecOnlineScheduler(ladder), GeneralOnlineScheduler(ladder)):
            sched = run_online(jobs, scheduler)
            assert_feasible(sched, jobs)

    def test_inc_at_scale(self):
        ladder = inc_ladder(4)
        rng = np.random.default_rng(99)
        jobs = poisson_workload(2000, rng, max_size=ladder.capacity(4))
        for sched in (
            inc_offline(jobs, ladder),
            run_online(jobs, IncOnlineScheduler(ladder)),
        ):
            assert_feasible(sched, jobs)

    def test_lower_bound_at_scale(self, big_dec):
        jobs, ladder = big_dec
        start = time.perf_counter()
        lb = lower_bound(jobs, ladder)
        assert time.perf_counter() - start < 30.0
        assert lb.value > 0
        assert len(lb.segments) > 1000
