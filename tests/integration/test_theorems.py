"""Integration tests: every paper claim on moderately sized instances.

These run the full pipelines (generator → algorithm → validator → lower
bound) at a scale where the asymptotic behaviour is visible but tests stay
fast.
"""

import math

import numpy as np
import pytest

from repro import (
    CheapestFitGreedy,
    DecOnlineScheduler,
    GeneralOnlineScheduler,
    IncOnlineScheduler,
    LargestTypeFirstFit,
    OneJobPerMachine,
    bounded_mu_workload,
    day_night_workload,
    dec_ladder,
    dec_offline,
    general_offline,
    inc_ladder,
    inc_offline,
    lower_bound,
    paper_fig2_ladder,
    poisson_workload,
    run_online,
    uniform_workload,
)
from repro.schedule.validate import assert_feasible


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(20200518)  # IPDPS 2020 conference date


WORKLOAD_MAKERS = [
    ("uniform", lambda n, rng, gmax: uniform_workload(n, rng, max_size=gmax)),
    ("poisson", lambda n, rng, gmax: poisson_workload(n, rng, max_size=gmax)),
    ("day-night", lambda n, rng, gmax: day_night_workload(n, rng, max_size=gmax)),
]


class TestTheorem1:
    @pytest.mark.parametrize("wname,make", WORKLOAD_MAKERS)
    @pytest.mark.parametrize("m", [2, 4])
    def test_dec_offline_under_14(self, rng, wname, make, m):
        ladder = dec_ladder(m)
        jobs = make(150, rng, ladder.capacity(m))
        sched = dec_offline(jobs, ladder)
        assert_feasible(sched, jobs)
        lb = lower_bound(jobs, ladder).value
        assert sched.cost() <= 14.0 * lb


class TestTheorem2:
    @pytest.mark.parametrize("mu", [1.0, 4.0, 16.0])
    def test_dec_online_under_32_mu_plus_1(self, rng, mu):
        ladder = dec_ladder(3)
        jobs = bounded_mu_workload(150, rng, mu=mu, max_size=ladder.capacity(3))
        sched = run_online(jobs, DecOnlineScheduler(ladder))
        assert_feasible(sched, jobs)
        lb = lower_bound(jobs, ladder).value
        assert sched.cost() <= 32.0 * (jobs.mu + 1.0) * lb


class TestSectionIV:
    @pytest.mark.parametrize("wname,make", WORKLOAD_MAKERS)
    def test_inc_offline_under_9(self, rng, wname, make):
        ladder = inc_ladder(4)
        jobs = make(150, rng, ladder.capacity(4))
        sched = inc_offline(jobs, ladder)
        assert_feasible(sched, jobs)
        lb = lower_bound(jobs, ladder).value
        assert sched.cost() <= 9.0 * lb

    @pytest.mark.parametrize("mu", [1.0, 8.0])
    def test_inc_online_under_bound(self, rng, mu):
        ladder = inc_ladder(4)
        jobs = bounded_mu_workload(150, rng, mu=mu, max_size=ladder.capacity(4))
        sched = run_online(jobs, IncOnlineScheduler(ladder))
        assert_feasible(sched, jobs)
        lb = lower_bound(jobs, ladder).value
        assert sched.cost() <= (2.25 * jobs.mu + 6.75) * lb


class TestSectionV:
    def test_general_offline_sqrt_m_shape(self, rng):
        ladder = paper_fig2_ladder()
        jobs = uniform_workload(150, rng, max_size=ladder.capacity(8))
        sched = general_offline(jobs, ladder)
        assert_feasible(sched, jobs)
        lb = lower_bound(jobs, ladder).value
        assert sched.cost() <= 14.0 * math.sqrt(8) * lb

    def test_general_online_sqrt_m_mu_shape(self, rng):
        ladder = paper_fig2_ladder()
        jobs = bounded_mu_workload(150, rng, mu=4.0, max_size=ladder.capacity(8))
        sched = run_online(jobs, GeneralOnlineScheduler(ladder))
        assert_feasible(sched, jobs)
        lb = lower_bound(jobs, ladder).value
        assert sched.cost() <= 32.0 * math.sqrt(8) * (jobs.mu + 1.0) * lb


class TestCrossAlgorithm:
    def test_offline_usually_beats_naive_on_dec(self, rng):
        """The headline 'who wins': DEC-OFFLINE vs one-job-per-machine on a
        packable day-night workload over a DEC ladder."""
        ladder = dec_ladder(3)
        jobs = day_night_workload(200, rng, max_size=ladder.capacity(3) / 4)
        smart = dec_offline(jobs, ladder)
        naive = run_online(jobs, OneJobPerMachine(ladder))
        assert smart.cost() < naive.cost()

    def test_largest_type_wasteful_on_light_load(self, rng):
        ladder = dec_ladder(3)
        jobs = uniform_workload(40, rng, max_size=0.3, horizon=400.0)
        smart = dec_offline(jobs, ladder)
        big_only = run_online(jobs, LargestTypeFirstFit(ladder))
        assert smart.cost() < big_only.cost()

    def test_all_algorithms_above_lower_bound(self, rng):
        ladder = dec_ladder(3)
        jobs = uniform_workload(80, rng, max_size=ladder.capacity(3))
        lb = lower_bound(jobs, ladder).value
        for sched in (
            dec_offline(jobs, ladder),
            general_offline(jobs, ladder),
            run_online(jobs, DecOnlineScheduler(ladder)),
            run_online(jobs, GeneralOnlineScheduler(ladder)),
            run_online(jobs, OneJobPerMachine(ladder)),
            run_online(jobs, CheapestFitGreedy(ladder)),
        ):
            assert sched.cost() >= lb - 1e-6

    def test_online_never_beats_clairvoyant_oracle_small(self, rng):
        from repro import solve_optimal

        ladder = dec_ladder(3)
        jobs = uniform_workload(8, rng, max_size=ladder.capacity(3))
        opt = solve_optimal(jobs, ladder)
        onl = run_online(jobs, DecOnlineScheduler(ladder))
        assert onl.cost() >= opt.cost - 1e-6
