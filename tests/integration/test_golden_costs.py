"""Golden-cost regression tests for the headline experiments E1–E5.

``golden_e1e5.json`` pins the per-row cost, lower bound and ratio of every
(algorithm, workload, m) cell at quick scale, captured from the pre-sweep
seed implementation on the fixed :func:`repro.experiments.harness.rng_for`
seeds.  Any change to cost accounting, placement tie-breaking or generator
determinism shows up here as a drift from the recorded numbers.

Tolerances: the recorded values are already rounded (cost/LB to 3 decimals,
ratio to 4 — see ``AlgorithmRun.row``), so the comparison allows one unit in
the last recorded digit on top of genuine float noise.

Each experiment is replayed twice: once on the default dispatch (quick-scale
instances sit below :data:`repro.DEFAULT_VEC_THRESHOLD`, so this is the sweep
tier) and once under ``dispatch_threshold(0)``, which forces every batch
entry point onto the vectorized kernels *and* resolves the offline
``engine="auto"`` dispatch to the columnar peel engines.  Both replays must
land on the same recorded numbers — the tiers are interchangeable
implementations of one cost model, and the golden file pins them jointly.
"""

from __future__ import annotations

import importlib
import json
from contextlib import nullcontext
from pathlib import Path

import pytest

from repro import dispatch_threshold

GOLDEN = json.loads((Path(__file__).parent / "golden_e1e5.json").read_text())

MODULES = {
    "E1": "repro.experiments.e01_dec_offline",
    "E2": "repro.experiments.e02_dec_online",
    "E3": "repro.experiments.e03_inc_offline",
    "E4": "repro.experiments.e04_inc_online",
    "E5": "repro.experiments.e05_general",
}

COST_TOL = 2e-3  # recorded to 3 decimals
RATIO_TOL = 2e-4  # recorded to 4 decimals


@pytest.mark.parametrize("tier", ["default", "vectorized"])
@pytest.mark.parametrize("eid", sorted(GOLDEN))
def test_golden_costs(eid, tier):
    force_vec = dispatch_threshold(0) if tier == "vectorized" else nullcontext()
    with force_vec:
        result = importlib.import_module(MODULES[eid]).run(scale="quick")
    golden = GOLDEN[eid]
    assert result.passed == golden["passed"]
    assert len(result.rows) == len(golden["rows"])
    for row, want in zip(result.rows, golden["rows"]):
        cell = f"{eid}/{want['algorithm']}/{want['workload']}"
        assert row["algorithm"] == want["algorithm"], cell
        assert row["workload"] == want["workload"], cell
        assert row["cost"] == pytest.approx(want["cost"], abs=COST_TOL), cell
        assert row["LB"] == pytest.approx(want["LB"], abs=COST_TOL), cell
        assert row["ratio"] == pytest.approx(want["ratio"], abs=RATIO_TOL), cell


def test_golden_file_shape():
    """The committed golden file covers exactly E1–E5 with non-empty rows."""
    assert sorted(GOLDEN) == sorted(MODULES)
    for eid, golden in GOLDEN.items():
        assert golden["rows"], eid
        for row in golden["rows"]:
            assert {"algorithm", "workload", "cost", "LB", "ratio"} <= row.keys()
