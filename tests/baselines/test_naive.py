"""Unit tests for the baseline schedulers."""

import pytest
from hypothesis import given, settings

from repro import (
    CheapestFitGreedy,
    Job,
    JobSet,
    LargestTypeFirstFit,
    OneJobPerMachine,
    dec_ladder,
    lower_bound,
    run_online,
    uniform_workload,
)
from repro.schedule.validate import assert_feasible
from tests.conftest import dec_ladder_strategy, jobset_strategy


class TestOneJobPerMachine:
    def test_cost_is_sum_of_durations_times_fit_rate(self, dec3):
        jobs = JobSet([Job(0.5, 0, 4), Job(2.0, 0, 3)])
        sched = run_online(jobs, OneJobPerMachine(dec3))
        # 0.5 fits type 1 (rate 1): 4; 2.0 fits type 2 (rate 2): 6
        assert sched.cost() == pytest.approx(4.0 + 6.0)

    def test_every_job_alone(self, dec3, rng):
        jobs = uniform_workload(30, rng, max_size=dec3.capacity(3))
        sched = run_online(jobs, OneJobPerMachine(dec3))
        assert len(sched.machines()) == len(jobs)
        assert_feasible(sched, jobs)


class TestLargestTypeFirstFit:
    def test_only_top_type_used(self, dec3, rng):
        jobs = uniform_workload(30, rng, max_size=dec3.capacity(3))
        sched = run_online(jobs, LargestTypeFirstFit(dec3))
        assert_feasible(sched, jobs)
        assert all(k.type_index == dec3.m for k in sched.machines())

    def test_wasteful_on_tiny_load(self, dec3):
        # one tiny job pays the big machine's rate
        jobs = JobSet([Job(0.1, 0, 10)])
        sched = run_online(jobs, LargestTypeFirstFit(dec3))
        assert sched.cost() == pytest.approx(10.0 * dec3.rate(3))


class TestCheapestFitGreedy:
    def test_reuses_open_machine(self, dec3):
        a = Job(0.4, 0, 10, name="a")
        b = Job(0.4, 1, 9, name="b")
        sched = run_online(JobSet([a, b]), CheapestFitGreedy(dec3))
        assert sched.machine_of(a) == sched.machine_of(b)

    def test_opens_cheapest_fitting(self, dec3):
        jobs = JobSet([Job(2.0, 0, 5)])
        sched = run_online(jobs, CheapestFitGreedy(dec3))
        assert sched.machine_of(jobs.jobs[0]).type_index == 2


@settings(deadline=None, max_examples=25)
@given(jobset_strategy(max_jobs=20, max_size=8.0), dec_ladder_strategy(max_m=4))
def test_property_all_baselines_feasible(jobs, ladder):
    if not ladder.fits(jobs.max_size):
        return
    for factory in (OneJobPerMachine, LargestTypeFirstFit, CheapestFitGreedy):
        sched = run_online(jobs, factory(ladder))
        assert_feasible(sched, jobs)
        assert sched.cost() >= lower_bound(jobs, ladder).value - 1e-9
