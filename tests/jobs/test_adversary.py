"""Tests for the adaptive lower-bound adversary ([11])."""

import pytest

from repro import (
    DecOnlineScheduler,
    IncOnlineScheduler,
    dec_ladder,
    inc_ladder,
    lower_bound,
    run_online,
)
from repro.jobs.generators.adversary import batch_trap, ff_trap
from repro.schedule.validate import assert_feasible


class TestBatchTrap:
    def test_instance_shape(self):
        ladder = dec_ladder(3)
        jobs = batch_trap(DecOnlineScheduler, ladder, mu=8.0, jobs_per_machine=10)
        assert jobs.mu == pytest.approx(8.0)
        # all jobs arrive together
        assert len({j.arrival for j in jobs}) == 1
        # exactly two duration values: short and long
        assert len({round(j.duration, 9) for j in jobs}) == 2

    def test_one_survivor_per_machine(self):
        """The adversary keeps exactly as many long jobs as the probed
        scheduler opened machines."""
        ladder = dec_ladder(3)
        jobs = batch_trap(DecOnlineScheduler, ladder, mu=8.0)
        long_jobs = [j for j in jobs if j.duration > 1.5]
        # replaying the same deterministic scheduler opens the same machines
        sched = run_online(jobs, DecOnlineScheduler(ladder))
        machines_used = len(sched.machines())
        assert len(long_jobs) <= machines_used

    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            batch_trap(DecOnlineScheduler, dec_ladder(2), mu=0.5)

    def test_ratio_grows_with_mu(self):
        """The heart of the [11] reproduction: the measured ratio on the trap
        must grow as mu grows (no saturation)."""
        ladder = dec_ladder(3)
        ratios = []
        for mu in (2.0, 16.0, 64.0):
            jobs = batch_trap(DecOnlineScheduler, ladder, mu=mu)
            sched = run_online(jobs, DecOnlineScheduler(ladder))
            assert_feasible(sched, jobs)
            ratios.append(sched.cost() / lower_bound(jobs, ladder).value)
        assert ratios[1] > ratios[0]
        assert ratios[2] > ratios[1]
        assert ratios[2] > 2 * ratios[0]

    def test_works_against_inc_online_too(self):
        ladder = inc_ladder(3)
        jobs = batch_trap(IncOnlineScheduler, ladder, mu=8.0)
        sched = run_online(jobs, IncOnlineScheduler(ladder))
        assert_feasible(sched, jobs)


class TestFfTrap:
    def test_multiple_batches_disjoint_in_time(self):
        ladder = dec_ladder(3)
        jobs = ff_trap(DecOnlineScheduler, ladder, batches=3, mu=4.0)
        starts = sorted({j.arrival for j in jobs})
        assert len(starts) == 3
        # batches spaced beyond the long tail
        for a, b in zip(starts[:-1], starts[1:]):
            assert b - a > 4.0

    def test_overall_mu_preserved(self):
        ladder = dec_ladder(3)
        jobs = ff_trap(DecOnlineScheduler, ladder, batches=2, mu=8.0)
        assert jobs.mu == pytest.approx(8.0)
