"""Unit tests for JobSet aggregate queries."""

import pytest
from hypothesis import given

from repro import Interval, Job, JobSet
from tests.conftest import jobset_strategy


class TestBasics:
    def test_sorted_by_arrival(self):
        a = Job(1, 5, 6)
        b = Job(1, 1, 9)
        js = JobSet([a, b])
        assert js.jobs[0] is b

    def test_duplicate_uid_rejected(self):
        with pytest.raises(ValueError):
            JobSet([Job(1, 0, 1, uid=3), Job(2, 1, 2, uid=3)])

    def test_lookup_and_contains(self, small_jobs):
        first = small_jobs.jobs[0]
        assert small_jobs[first.uid] is first
        assert first in small_jobs

    def test_empty(self):
        js = JobSet()
        assert js.empty
        assert js.mu == 1.0
        assert js.peak_demand() == 0.0
        assert js.busy_span().empty


class TestAggregates:
    def test_demand_at(self, small_jobs):
        # at t=2.5: a(0.5), b(0.8), c(2.0) active
        assert small_jobs.demand_at(2.5) == pytest.approx(3.3)
        assert small_jobs.demand_at(7.0) == pytest.approx(0.3)
        assert small_jobs.demand_at(100.0) == 0.0

    def test_demand_profile_matches_pointwise(self, small_jobs):
        profile = small_jobs.demand_profile()
        for t in (0.0, 0.5, 1.5, 2.5, 4.5, 5.5, 8.9, 9.0):
            assert float(profile(t)) == pytest.approx(small_jobs.demand_at(t))

    def test_active_at(self, small_jobs):
        active = small_jobs.active_at(2.5)
        assert {j.name for j in active} == {"a", "b", "c"}

    def test_at_least_class(self, small_jobs):
        caps = (1.0, 3.0)
        # class >= 2 means size > 1.0: only job c (2.0)
        js = small_jobs.at_least_class(2, caps)
        assert {j.name for j in js} == {"c"}
        assert small_jobs.at_least_class(1, caps) == small_jobs

    def test_size_partition(self, small_jobs):
        parts = small_jobs.size_partition((1.0, 3.0))
        assert {j.name for j in parts[0]} == {"a", "b", "d"}
        assert {j.name for j in parts[1]} == {"c"}

    def test_size_partition_rejects_oversize(self):
        js = JobSet([Job(5.0, 0, 1)])
        with pytest.raises(ValueError):
            js.size_partition((1.0, 3.0))

    def test_busy_span(self, small_jobs):
        assert small_jobs.busy_span() == __import__(
            "repro"
        ).IntervalSet([Interval(0.0, 9.0)])

    def test_mu(self):
        js = JobSet([Job(1, 0, 2), Job(1, 0, 8)])  # durations 2 and 8
        assert js.mu == 4.0

    def test_total_volume(self, small_jobs):
        expected = 0.5 * 4 + 0.8 * 2 + 2.0 * 4 + 0.3 * 4
        assert small_jobs.total_volume() == pytest.approx(expected)

    def test_peak_demand(self, small_jobs):
        assert small_jobs.peak_demand() == pytest.approx(3.3)


class TestTransforms:
    def test_minus(self, small_jobs):
        sub = small_jobs.filter(lambda j: j.name in ("a", "c"))
        rest = small_jobs.minus(sub)
        assert {j.name for j in rest} == {"b", "d"}

    def test_union_disjoint(self):
        a = JobSet([Job(1, 0, 1)])
        b = JobSet([Job(1, 2, 3)])
        assert len(a.union(b)) == 2

    def test_union_same_job_ok(self):
        j = Job(1, 0, 1)
        assert len(JobSet([j]).union(JobSet([j]))) == 1

    def test_union_uid_clash_rejected(self):
        a = JobSet([Job(1, 0, 1, uid=9)])
        b = JobSet([Job(2, 0, 1, uid=9)])
        with pytest.raises(ValueError):
            a.union(b)


@given(jobset_strategy(max_jobs=20))
def test_property_partition_is_exact_cover(jobs):
    caps = (2.0, 4.0, 8.0)
    parts = jobs.size_partition(caps)
    assert sum(len(p) for p in parts) == len(jobs)
    seen = set()
    for i, part in enumerate(parts, start=1):
        for job in part:
            assert job.uid not in seen
            seen.add(job.uid)
            lo = caps[i - 2] if i >= 2 else 0.0
            assert lo < job.size <= caps[i - 1]


@given(jobset_strategy(max_jobs=20))
def test_property_profile_integral_is_volume(jobs):
    assert jobs.demand_profile().integral() == pytest.approx(
        jobs.total_volume(), rel=1e-6, abs=1e-9
    )
