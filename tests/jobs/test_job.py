"""Unit tests for the Job model."""

import pytest

from repro import Interval, Job


class TestJobConstruction:
    def test_basic(self):
        j = Job(size=2.5, arrival=1.0, departure=4.0, name="x")
        assert j.size == 2.5
        assert j.interval == Interval(1.0, 4.0)
        assert j.duration == 3.0
        assert j.name == "x"

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Job(size=0.0, arrival=0, departure=1)
        with pytest.raises(ValueError):
            Job(size=-1.0, arrival=0, departure=1)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Job(size=1, arrival=5, departure=5)
        with pytest.raises(ValueError):
            Job(size=1, arrival=5, departure=3)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            Job(size=float("inf"), arrival=0, departure=1)
        with pytest.raises(ValueError):
            Job(size=1, arrival=0, departure=float("inf"))

    def test_auto_uid_unique(self):
        a, b = Job(1, 0, 1), Job(1, 0, 1)
        assert a.uid != b.uid
        assert a != b

    def test_explicit_uid_and_default_name(self):
        j = Job(1, 0, 1, uid=777)
        assert j.uid == 777
        assert j.name == "J777"

    def test_immutable(self):
        j = Job(1, 0, 1)
        with pytest.raises(AttributeError):
            j.size = 2.0  # bshm: ignore[BSHM005]  (asserting frozenness)


class TestJobQueries:
    def test_active_at_half_open(self):
        j = Job(1, 2.0, 5.0)
        assert j.active_at(2.0)
        assert j.active_at(4.999)
        assert not j.active_at(5.0)
        assert not j.active_at(1.999)

    def test_size_class_boundaries(self):
        caps = (1.0, 3.0, 9.0)
        # class i: size in (g_{i-1}, g_i]
        assert Job(1.0, 0, 1).size_class(caps) == 1  # exactly g_1 -> class 1
        assert Job(1.0001, 0, 1).size_class(caps) == 2
        assert Job(3.0, 0, 1).size_class(caps) == 2
        assert Job(9.0, 0, 1).size_class(caps) == 3
        assert Job(0.1, 0, 1).size_class(caps) == 1

    def test_size_class_too_big(self):
        with pytest.raises(ValueError):
            Job(10.0, 0, 1).size_class((1.0, 3.0, 9.0))

    def test_equality_by_uid(self):
        j = Job(1, 0, 1, uid=5)
        k = Job(9, 7, 8, uid=5)  # same uid, different payload
        assert j == k
        assert hash(j) == hash(k)
