"""Seed determinism of every job-generator family.

The golden-cost regressions and the experiment harness rely on one property:
feeding the same seed to a generator twice yields the *same* workload.  Jobs
carry process-global uids, so equality is checked on the observable
attributes ``(size, arrival, departure, name)`` — uid offsets may differ
between runs but the generated content must not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    adversarial_staircase,
    bounded_mu_workload,
    bursty_workload,
    day_night_workload,
    flash_crowd_workload,
    mmpp_workload,
    poisson_workload,
    sawtooth_workload,
    uniform_workload,
)
from repro.experiments.harness import rng_for

SEED = 20200518  # IPDPS 2020 :)

RANDOM_FAMILIES = {
    "uniform": lambda rng: uniform_workload(40, rng),
    "poisson": lambda rng: poisson_workload(40, rng),
    "bounded_mu": lambda rng: bounded_mu_workload(40, rng, mu=4.0),
    "day_night": lambda rng: day_night_workload(40, rng),
    "bursty": lambda rng: bursty_workload(40, rng),
    "mmpp": lambda rng: mmpp_workload(40, rng),
    "flash_crowd": lambda rng: flash_crowd_workload(40, rng),
}


def fingerprint(jobs):
    """Order-stable observable content of a JobSet (uids excluded)."""
    return [(j.size, j.arrival, j.departure, j.name) for j in jobs]


@pytest.mark.parametrize("family", sorted(RANDOM_FAMILIES))
def test_same_seed_same_jobs(family):
    make = RANDOM_FAMILIES[family]
    first = make(np.random.default_rng(SEED))
    second = make(np.random.default_rng(SEED))
    assert fingerprint(first) == fingerprint(second)


@pytest.mark.parametrize("family", sorted(RANDOM_FAMILIES))
def test_different_seed_different_jobs(family):
    make = RANDOM_FAMILIES[family]
    first = make(np.random.default_rng(SEED))
    second = make(np.random.default_rng(SEED + 1))
    assert fingerprint(first) != fingerprint(second)


def test_deterministic_families_need_no_seed():
    assert fingerprint(adversarial_staircase(6)) == fingerprint(
        adversarial_staircase(6)
    )
    assert fingerprint(sawtooth_workload(4, 5)) == fingerprint(
        sawtooth_workload(4, 5)
    )


def test_rng_for_is_reproducible():
    # the harness seed-derivation behind every golden number
    a = rng_for("E1", salt=203).uniform(size=8)
    b = rng_for("E1", salt=203).uniform(size=8)
    assert np.array_equal(a, b)
    c = rng_for("E2", salt=203).uniform(size=8)
    assert not np.array_equal(a, c)
