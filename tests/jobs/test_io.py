"""Tests for trace/ladder/schedule I/O."""

import numpy as np
import pytest

from repro import dec_ladder, dec_offline, uniform_workload
from repro.jobs.io import (
    read_instance_json,
    read_jobs_csv,
    read_ladder_csv,
    write_instance_json,
    write_jobs_csv,
    write_ladder_csv,
    write_schedule_csv,
)


@pytest.fixture
def jobs(rng):
    return uniform_workload(25, rng, max_size=9.0)


class TestJobsCsv:
    def test_roundtrip(self, tmp_path, jobs):
        path = tmp_path / "trace.csv"
        write_jobs_csv(jobs, path)
        loaded = read_jobs_csv(path)
        assert len(loaded) == len(jobs)
        original = sorted((j.size, j.arrival, j.departure, j.name) for j in jobs)
        restored = sorted((j.size, j.arrival, j.departure, j.name) for j in loaded)
        assert original == restored

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="columns"):
            read_jobs_csv(path)

    def test_bad_row_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("size,arrival,departure\n1.0,0.0,oops\n")
        with pytest.raises(ValueError, match=":2:"):
            read_jobs_csv(path)

    def test_invalid_job_caught(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("size,arrival,departure\n1.0,5.0,3.0\n")  # departs before arrival
        with pytest.raises(ValueError):
            read_jobs_csv(path)


class TestLadderCsv:
    def test_roundtrip(self, tmp_path, dec3):
        path = tmp_path / "ladder.csv"
        write_ladder_csv(dec3, path)
        loaded = read_ladder_csv(path)
        assert loaded == dec3

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y\n1,2\n")
        with pytest.raises(ValueError, match="capacity,rate"):
            read_ladder_csv(path)


class TestScheduleCsv:
    def test_write(self, tmp_path, jobs, dec3):
        sched = dec_offline(jobs, dec3)
        path = tmp_path / "out.csv"
        write_schedule_csv(sched, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "job,size,arrival,departure,type,machine"
        assert len(lines) == len(jobs) + 1


class TestInstanceJson:
    def test_roundtrip(self, tmp_path, jobs, dec3):
        path = tmp_path / "instance.json"
        write_instance_json(jobs, dec3, path)
        loaded_jobs, loaded_ladder = read_instance_json(path)
        assert loaded_ladder == dec3
        assert len(loaded_jobs) == len(jobs)
        assert sorted(j.size for j in loaded_jobs) == sorted(j.size for j in jobs)
