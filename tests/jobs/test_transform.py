"""Tests for instance transformations."""

import pytest
from hypothesis import given, settings

from repro import Interval, Job, JobSet, dec_ladder, general_offline, lower_bound
from repro.jobs.transform import (
    clip_to_window,
    concatenate,
    crop,
    scale_sizes,
    scale_time,
    shift_time,
)
from tests.conftest import jobset_strategy


class TestAffineTime:
    def test_shift_preserves_durations(self, small_jobs):
        shifted = shift_time(small_jobs, 10.0)
        assert [j.duration for j in shifted] == [j.duration for j in small_jobs]
        assert shifted.jobs[0].arrival == small_jobs.jobs[0].arrival + 10.0

    def test_shift_cost_invariant(self, small_jobs, dec3):
        base = general_offline(small_jobs, dec3).cost()
        moved = general_offline(shift_time(small_jobs, 100.0), dec3).cost()
        assert moved == pytest.approx(base, rel=1e-9)

    def test_scale_time_scales_cost(self, small_jobs, dec3):
        base = general_offline(small_jobs, dec3).cost()
        scaled = general_offline(scale_time(small_jobs, 2.5), dec3).cost()
        assert scaled == pytest.approx(2.5 * base, rel=1e-6)

    def test_scale_time_invalid(self, small_jobs):
        with pytest.raises(ValueError):
            scale_time(small_jobs, 0.0)

    def test_scale_about_origin(self):
        jobs = JobSet([Job(1, 10, 12)])
        scaled = scale_time(jobs, 2.0, origin=10.0)
        assert scaled.jobs[0].arrival == 10.0
        assert scaled.jobs[0].departure == 14.0


class TestSizeScale:
    def test_scale_sizes_with_scaled_ladder_is_invariant(self, small_jobs):
        from repro import Ladder, MachineType

        base_ladder = dec_ladder(3)
        big_ladder = Ladder(
            MachineType(t.capacity * 7.0, t.rate) for t in base_ladder.types
        )
        a = general_offline(small_jobs, base_ladder).cost()
        b = general_offline(scale_sizes(small_jobs, 7.0), big_ladder).cost()
        assert a == pytest.approx(b, rel=1e-9)

    def test_invalid(self, small_jobs):
        with pytest.raises(ValueError):
            scale_sizes(small_jobs, -1.0)


class TestWindows:
    def test_crop_keeps_only_contained(self, small_jobs):
        # window [0, 5): jobs a [0,4) and b [1,3) are inside; c,d are not
        window = Interval(0.0, 5.0)
        kept = crop(small_jobs, window)
        assert {j.name for j in kept} == {"a", "b"}

    def test_clip_truncates(self, small_jobs):
        window = Interval(0.0, 5.0)
        clipped = clip_to_window(small_jobs, window)
        # c [2,6) clipped to [2,5); d [5,9) dropped (empty intersection)
        assert {j.name for j in clipped} == {"a", "b", "c"}
        c = next(j for j in clipped if j.name == "c")
        assert c.departure == 5.0

    def test_clip_drops_disjoint(self):
        jobs = JobSet([Job(1, 10, 20)])
        assert clip_to_window(jobs, Interval(0, 5)).empty


class TestConcatenate:
    def test_instances_disjoint_in_time(self, small_jobs):
        merged = concatenate([small_jobs, small_jobs], gap=2.0)
        assert len(merged) == 2 * len(small_jobs)
        span = merged.busy_span()
        # two busy blocks separated by the gap
        assert len(span) == 2
        assert span.intervals[1].left - span.intervals[0].right == pytest.approx(2.0)

    def test_cost_additive(self, small_jobs, dec3):
        one = general_offline(small_jobs, dec3).cost()
        two = general_offline(concatenate([small_jobs, small_jobs]), dec3).cost()
        assert two == pytest.approx(2 * one, rel=1e-6)

    def test_skips_empty(self, small_jobs):
        merged = concatenate([JobSet(), small_jobs])
        assert len(merged) == len(small_jobs)


@settings(deadline=None, max_examples=25)
@given(jobset_strategy(max_jobs=12, max_size=8.0))
def test_property_lb_equivariance(jobs):
    """LB(shift) == LB and LB(scale c) == c * LB."""
    ladder = dec_ladder(3)
    base = lower_bound(jobs, ladder).value
    assert lower_bound(shift_time(jobs, 42.0), ladder).value == pytest.approx(
        base, rel=1e-9, abs=1e-12
    )
    assert lower_bound(scale_time(jobs, 3.0), ladder).value == pytest.approx(
        3 * base, rel=1e-6, abs=1e-12
    )
