"""Tests for the advanced workload generators."""

import numpy as np
import pytest

from repro.jobs.generators.advanced import (
    flash_crowd_workload,
    mmpp_workload,
    replay_arrays,
    sawtooth_workload,
)


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestMmpp:
    def test_shape(self, rng):
        jobs = mmpp_workload(100, rng, max_size=2.0)
        assert len(jobs) == 100
        assert jobs.max_size <= 2.0

    def test_burstier_than_poisson(self, rng):
        """MMPP inter-arrival CV^2 should exceed 1 (Poisson's value)."""
        jobs = mmpp_workload(
            2000, rng, quiet_rate=0.2, busy_rate=20.0, switch_rate=0.05
        )
        arrivals = np.sort([j.arrival for j in jobs])
        gaps = np.diff(arrivals)
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.5

    def test_deterministic(self):
        a = mmpp_workload(50, np.random.default_rng(1))
        b = mmpp_workload(50, np.random.default_rng(1))
        assert [j.arrival for j in a] == [j.arrival for j in b]


class TestFlashCrowd:
    def test_crowd_concentrated(self, rng):
        jobs = flash_crowd_workload(
            300, rng, horizon=100.0, crowd_fraction=0.5, crowd_center=50.0,
            crowd_width=2.0,
        )
        crowd = [j for j in jobs if j.name.startswith("crowd")]
        assert len(crowd) == 150
        assert all(abs(j.arrival - 50.0) < 10.0 for j in crowd)

    def test_crowd_jobs_small_and_short(self, rng):
        jobs = flash_crowd_workload(200, rng, max_size=4.0)
        crowd = [j for j in jobs if j.name.startswith("crowd")]
        base = [j for j in jobs if j.name.startswith("base")]
        assert np.mean([j.size for j in crowd]) < np.mean([j.size for j in base])
        assert np.mean([j.duration for j in crowd]) < np.mean(
            [j.duration for j in base]
        )


class TestSawtooth:
    def test_structure(self):
        jobs = sawtooth_workload(3, 5, tooth_period=10.0, job_duration=3.0)
        assert len(jobs) == 15
        # all jobs of tooth 0 are gone before tooth 1's last job arrives
        tooth0 = [j for j in jobs if j.name.startswith("T0")]
        assert max(j.departure for j in tooth0) <= 10.0 + 3.0

    def test_demand_cliffs(self):
        jobs = sawtooth_workload(2, 8, tooth_period=10.0, job_duration=3.0)
        profile = jobs.demand_profile()
        assert profile.max() >= 2 * 0.5  # at least some stacking


class TestReplayArrays:
    def test_roundtrip(self):
        sizes = np.array([1.0, 2.0])
        arrivals = np.array([0.0, 1.0])
        departures = np.array([5.0, 4.0])
        jobs = replay_arrays(sizes, arrivals, departures, name_prefix="t")
        assert len(jobs) == 2
        assert jobs.jobs[0].name == "t0"

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            replay_arrays(np.ones(2), np.zeros(3), np.ones(3))
