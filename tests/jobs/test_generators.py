"""Unit tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro import (
    adversarial_staircase,
    bounded_mu_workload,
    bursty_workload,
    day_night_workload,
    poisson_workload,
    uniform_workload,
)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


ALL_GENERATORS = [
    lambda n, rng: uniform_workload(n, rng, max_size=4.0),
    lambda n, rng: poisson_workload(n, rng, max_size=4.0),
    lambda n, rng: bounded_mu_workload(n, rng, mu=4.0, max_size=4.0),
    lambda n, rng: day_night_workload(n, rng, max_size=4.0),
    lambda n, rng: bursty_workload(n, rng, max_size=4.0),
]


@pytest.mark.parametrize("make", ALL_GENERATORS)
def test_generators_produce_valid_jobsets(make, rng):
    jobs = make(50, rng)
    assert len(jobs) == 50
    for job in jobs:
        assert job.size > 0
        assert job.arrival < job.departure


@pytest.mark.parametrize("make", ALL_GENERATORS)
def test_generators_respect_max_size(make, rng):
    jobs = make(200, rng)
    assert jobs.max_size <= 4.0 + 1e-12


@pytest.mark.parametrize("make", ALL_GENERATORS)
def test_generators_deterministic_under_seed(make):
    a = make(30, np.random.default_rng(7))
    b = make(30, np.random.default_rng(7))
    assert [(j.size, j.arrival, j.departure) for j in a] == [
        (j.size, j.arrival, j.departure) for j in b
    ]


class TestBoundedMu:
    def test_mu_respected(self, rng):
        jobs = bounded_mu_workload(300, rng, mu=4.0)
        assert jobs.mu <= 4.0 + 1e-9

    def test_mu_one_means_uniform_durations(self, rng):
        jobs = bounded_mu_workload(50, rng, mu=1.0)
        durations = {round(j.duration, 9) for j in jobs}
        assert len(durations) == 1

    def test_invalid_mu(self, rng):
        with pytest.raises(ValueError):
            bounded_mu_workload(10, rng, mu=0.5)


class TestDayNight:
    def test_peak_hours_busier_than_trough(self, rng):
        jobs = day_night_workload(3000, rng, period=24.0, days=10.0, peak_to_trough=6.0)
        # intensity peaks where sin = 1 (t = 6 mod 24), troughs at t = 18 mod 24
        peak_count = sum(1 for j in jobs if (j.arrival % 24.0) // 3 == 2)  # [6, 9)
        trough_count = sum(1 for j in jobs if (j.arrival % 24.0) // 3 == 6)  # [18, 21)
        assert peak_count > 2 * trough_count

    def test_horizon(self, rng):
        jobs = day_night_workload(100, rng, period=24.0, days=2.0)
        assert all(0 <= j.arrival <= 48.0 for j in jobs)


class TestBursty:
    def test_arrivals_clustered(self, rng):
        jobs = bursty_workload(200, rng, bursts=3, horizon=100.0, burst_width=1.0)
        arrivals = sorted(j.arrival for j in jobs)
        # 200 arrivals within 3 bursts of width 1 => span of arrivals tiny
        # compared to horizon when grouped; at least verify few distinct
        # 2-unit buckets are occupied
        buckets = {int(a // 2.0) for a in arrivals}
        assert len(buckets) <= 6


class TestStaircase:
    def test_structure(self):
        jobs = adversarial_staircase(8, max_size=4.0)
        assert len(jobs) == 8
        arrivals = [j.arrival for j in jobs.jobs]
        assert arrivals == sorted(arrivals)
        # departures strictly staggered: one job drains at a time
        departures = sorted(j.departure for j in jobs)
        assert len(set(departures)) == 8

    def test_mu_grows_with_levels(self):
        small = adversarial_staircase(4)
        large = adversarial_staircase(32)
        assert large.mu > small.mu
