"""Tests for instance linting."""

from repro import Job, JobSet, dec_ladder, lint_instance


class TestLint:
    def test_clean_instance(self, small_jobs, dec3):
        assert lint_instance(small_jobs, dec3) == []

    def test_empty(self):
        assert lint_instance(JobSet()) == ["instance is empty"]

    def test_extreme_duration_spread(self):
        jobs = JobSet([Job(1, 0, 1e-7), Job(1, 0, 10)])
        warnings = lint_instance(jobs)
        assert any("time units" in w for w in warnings)

    def test_large_mu(self):
        jobs = JobSet([Job(1, 0, 0.01), Job(1, 0, 500)])
        warnings = lint_instance(jobs)
        assert any("mu" in w for w in warnings)

    def test_duplicates(self):
        jobs = JobSet([Job(1.0, 0.0, 2.0), Job(1.0, 0.0, 2.0), Job(2.0, 1.0, 3.0)])
        warnings = lint_instance(jobs)
        assert any("duplicates" in w for w in warnings)

    def test_oversize_vs_ladder(self, dec3):
        jobs = JobSet([Job(100.0, 0, 1)])
        warnings = lint_instance(jobs, dec3)
        assert any("exceed the largest capacity" in w for w in warnings)

    def test_unit_mismatch(self, dec3):
        jobs = JobSet([Job(1e-6, 0, 1, name=str(i), uid=9000 + i) for i in range(10)])
        warnings = lint_instance(jobs, dec3)
        assert any("unit mismatch" in w for w in warnings)
