"""Every experiment runs at quick scale, produces rows, and passes."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, run_experiment


@pytest.mark.parametrize("eid", sorted(ALL_EXPERIMENTS))
def test_experiment_quick_pass(eid):
    result = run_experiment(eid, scale="quick")
    assert result.passed, result.render()
    assert result.rows
    assert result.table
    assert result.experiment_id == eid


def test_unknown_experiment():
    with pytest.raises(KeyError):
        run_experiment("E99")


def test_case_insensitive_lookup():
    result = run_experiment("e9", scale="quick")
    assert result.experiment_id == "E9"


def test_render_contains_status():
    result = run_experiment("E9", scale="quick")
    assert "status: PASS" in result.render()


def test_invalid_scale():
    with pytest.raises(ValueError):
        run_experiment("E1", scale="huge")


def test_experiments_deterministic():
    a = run_experiment("E1", scale="quick")
    b = run_experiment("E1", scale="quick")
    # drop the timing column before comparing
    strip = lambda rows: [  # noqa: E731
        {k: v for k, v in row.items() if k != "sec"} for row in rows
    ]
    assert strip(a.rows) == strip(b.rows)
