"""Tests for experiment persistence."""

import json

from repro.experiments import run_experiment
from repro.experiments.persist import load_manifest, save_result


class TestPersist:
    def test_save_result_writes_artifacts(self, tmp_path):
        result = run_experiment("E9", scale="quick")
        base = save_result(result, tmp_path)
        assert (base / "rows.csv").exists()
        assert (base / "table.txt").exists()
        assert (base / "manifest.json").exists()
        assert (base / "fig2-forest.txt").exists()

    def test_manifest_content(self, tmp_path):
        result = run_experiment("E9", scale="quick")
        save_result(result, tmp_path)
        manifest = load_manifest(tmp_path, "E9")
        assert manifest["experiment_id"] == "E9"
        assert manifest["passed"] is True
        assert manifest["n_rows"] == 3

    def test_rows_csv_deterministic(self, tmp_path):
        r1 = run_experiment("E9", scale="quick")
        r2 = run_experiment("E9", scale="quick")
        d1 = save_result(r1, tmp_path / "a")
        d2 = save_result(r2, tmp_path / "b")
        assert (d1 / "rows.csv").read_text() == (d2 / "rows.csv").read_text()
