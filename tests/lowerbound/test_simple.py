"""The Eq.-(1) bound dominates the classic simple bounds."""

import pytest
from hypothesis import given, settings

from repro import Job, JobSet, dec_ladder, lower_bound
from repro.lowerbound.simple import all_bounds, span_bound, volume_bound
from tests.conftest import any_ladder_strategy, jobset_strategy


class TestSimpleBounds:
    def test_span_bound_single_job(self, dec3):
        jobs = JobSet([Job(0.5, 0, 4)])
        assert span_bound(jobs, dec3) == pytest.approx(4.0)

    def test_span_bound_ignores_gaps(self, dec3):
        jobs = JobSet([Job(0.5, 0, 1), Job(0.5, 5, 6)])
        assert span_bound(jobs, dec3) == pytest.approx(2.0)

    def test_volume_bound_uses_class_restriction(self, dec3):
        # size 5 must run on type 3 (capacity 9, amortized 4/9)
        jobs = JobSet([Job(5.0, 0, 2)])
        assert volume_bound(jobs, dec3) == pytest.approx(5.0 * 2 * 4 / 9)

    def test_volume_bound_picks_best_higher_type(self, dec3):
        # in DEC, the top type has the best amortized rate for every class
        jobs = JobSet([Job(0.5, 0, 2)])
        top_amortized = dec3.type(3).amortized_rate
        assert volume_bound(jobs, dec3) == pytest.approx(0.5 * 2 * top_amortized)

    def test_all_bounds_keys(self, dec3, small_jobs):
        bounds = all_bounds(small_jobs, dec3)
        assert set(bounds) == {"span", "volume", "eq1"}

    @settings(deadline=None, max_examples=40)
    @given(jobset_strategy(max_jobs=20, max_size=8.0), any_ladder_strategy(max_m=4))
    def test_property_eq1_dominates(self, jobs, ladder):
        if not ladder.fits(jobs.max_size):
            return
        eq1 = lower_bound(jobs, ladder).value
        assert eq1 >= span_bound(jobs, ladder) - 1e-6 * max(1.0, eq1)
        assert eq1 >= volume_bound(jobs, ladder) - 1e-6 * max(1.0, eq1)
