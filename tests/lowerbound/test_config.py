"""Unit tests for the optimal-machine-configuration solver.

The DP is cross-checked against a scipy MILP formulation of the same
integer program on randomized demand vectors.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import optimize

from repro import ConfigSolver, Ladder, optimal_config
from tests.conftest import any_ladder_strategy


def milp_config_rate(demands, ladder) -> float:
    """Reference solution of min sum w_i r_i s.t. nested suffix capacity."""
    m = ladder.m
    c = np.array(ladder.rates)
    rows, lower = [], []
    for i in range(1, m + 1):
        row = np.zeros(m)
        for j in range(i, m + 1):
            row[j - 1] = ladder.capacity(j)
        rows.append(row)
        lower.append(demands[i - 1])
    constraints = optimize.LinearConstraint(np.array(rows), np.array(lower), np.inf)
    res = optimize.milp(
        c=c,
        constraints=constraints,
        integrality=np.ones(m),
        bounds=optimize.Bounds(0, np.inf),
    )
    assert res.success
    return float(res.fun)


class TestOptimalConfig:
    def test_zero_demand(self, dec3):
        cfg = optimal_config((0.0, 0.0, 0.0), dec3)
        assert cfg.rate == 0.0
        assert cfg.counts == (0, 0, 0)

    def test_single_small_job_uses_cheapest_cover(self, dec3):
        # capacities 1,3,9 rates 1,2,4; one job of size 0.5
        cfg = optimal_config((0.5, 0.0, 0.0), dec3)
        assert cfg.rate == 1.0
        assert cfg.counts == (1, 0, 0)

    def test_large_demand_prefers_big_machine_in_dec(self, dec3):
        # total demand 9 of small jobs: 9 type-1 machines cost 9;
        # 3 type-2 cost 6; 1 type-3 costs 4
        cfg = optimal_config((9.0, 0.0, 0.0), dec3)
        assert cfg.rate == 4.0
        assert cfg.counts == (0, 0, 1)

    def test_nested_constraint_forces_big_machine(self, dec3):
        # a single job of size 5 must be on type 3 (capacity 9)
        cfg = optimal_config((5.0, 5.0, 5.0), dec3)
        assert cfg.counts[2] >= 1
        assert cfg.rate == 4.0

    def test_big_machine_covers_lower_demands_too(self, dec3):
        # D = (9.5, 5, 5): one type-3 machine covers class>=3 demand (5)
        # and gives 9 units toward D_1 = 9.5; remaining 0.5 -> one type-1
        cfg = optimal_config((9.5, 5.0, 5.0), dec3)
        assert cfg.rate == pytest.approx(5.0)  # 4 + 1

    def test_inc_prefers_small_machines(self, inc3):
        # capacities 1, 1.5, 2.25, rates 1, 2, 4; demand 2 of small jobs:
        # two type-1 machines (cost 2) beat one type-2 (cost 2, capacity 1.5
        # insufficient) and one type-3 (cost 4)
        cfg = optimal_config((2.0, 0.0, 0.0), inc3)
        assert cfg.rate == 2.0
        assert cfg.counts == (2, 0, 0)

    def test_rejects_increasing_demands(self, dec3):
        with pytest.raises(ValueError):
            optimal_config((1.0, 2.0, 0.0), dec3)

    def test_rejects_wrong_length(self, dec3):
        with pytest.raises(ValueError):
            optimal_config((1.0,), dec3)

    def test_solver_cache_consistency(self, dec3):
        solver = ConfigSolver(dec3)
        a = solver.solve((4.0, 2.0, 0.0))
        b = solver.solve((4.0, 2.0, 0.0))
        assert a is b  # cached

    def test_counts_satisfy_constraints(self, dec3):
        demands = (7.3, 4.1, 2.0)
        cfg = optimal_config(demands, dec3)
        for i in range(1, 4):
            suffix = sum(
                cfg.counts[j - 1] * dec3.capacity(j) for j in range(i, 4)
            )
            assert suffix >= demands[i - 1] - 1e-9


@settings(deadline=None, max_examples=60)
@given(
    any_ladder_strategy(max_m=4),
    st.lists(st.floats(0.0, 30.0), min_size=4, max_size=4),
)
def test_property_dp_matches_milp(ladder, raw):
    # build a non-increasing demand vector of the right length; clamp values
    # below HiGHS's feasibility tolerance (the DP would rightly buy a machine
    # for a 1e-7 demand while the MILP's tolerance rounds it away)
    vals = sorted((0.0 if v < 1e-6 else float(v) for v in raw), reverse=True)[: ladder.m]
    while len(vals) < ladder.m:
        vals.append(0.0)
    demands = tuple(vals)
    cfg = optimal_config(demands, ladder)
    ref = milp_config_rate(demands, ladder)
    assert cfg.rate == pytest.approx(ref, rel=1e-9, abs=1e-9)


@settings(deadline=None, max_examples=40)
@given(
    any_ladder_strategy(max_m=4),
    st.lists(st.floats(0.0, 20.0), min_size=4, max_size=4),
)
def test_property_counts_feasible_and_priced_right(ladder, raw):
    vals = sorted((0.0 if v < 1e-6 else float(v) for v in raw), reverse=True)[: ladder.m]
    while len(vals) < ladder.m:
        vals.append(0.0)
    demands = tuple(vals)
    cfg = optimal_config(demands, ladder)
    assert cfg.rate == pytest.approx(
        sum(w * r for w, r in zip(cfg.counts, ladder.rates)), rel=1e-12
    )
    for i in range(1, ladder.m + 1):
        suffix = sum(cfg.counts[j - 1] * ladder.capacity(j) for j in range(i, ladder.m + 1))
        assert suffix >= demands[i - 1] - 1e-9
