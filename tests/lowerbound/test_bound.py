"""Unit tests for the Eq.-(1) integral lower bound."""

import pytest
from hypothesis import given, settings

from repro import (
    Job,
    JobSet,
    MachineKey,
    Schedule,
    dec_ladder,
    lower_bound,
    solve_optimal,
)
from tests.conftest import dec_ladder_strategy, jobset_strategy


class TestLowerBound:
    def test_empty_instance(self, dec3):
        res = lower_bound(JobSet(), dec3)
        assert res.value == 0.0
        assert res.segments == ()

    def test_single_job_exact(self, dec3):
        # one job of size 0.5 for 4 time units: LB = 4 * r_1 = 4
        jobs = JobSet([Job(0.5, 0, 4)])
        assert lower_bound(jobs, dec3).value == pytest.approx(4.0)

    def test_large_job_charged_at_required_type(self, dec3):
        # size 5 requires type 3 (capacity 9, rate 4): LB = 4 * duration
        jobs = JobSet([Job(5.0, 0, 2)])
        assert lower_bound(jobs, dec3).value == pytest.approx(8.0)

    def test_profiles_and_interval_families(self, dec3):
        jobs = JobSet([Job(5.0, 0, 2), Job(5.0, 1, 3)])
        res = lower_bound(jobs, dec3)
        profile = res.count_profile(3)
        assert float(profile(1.5)) == 2.0  # both jobs need type 3 together
        fam = res.interval_family(3, 2)
        assert fam.contains(1.5)
        assert not fam.contains(0.5)
        assert res.max_count(3) == 2

    def test_rate_profile_integrates_to_value(self, dec3, small_jobs):
        res = lower_bound(small_jobs, dec3)
        assert res.rate_profile().integral() == pytest.approx(res.value, rel=1e-9)

    def test_gap_in_time_not_charged(self, dec3):
        jobs = JobSet([Job(0.5, 0, 1), Job(0.5, 10, 11)])
        assert lower_bound(jobs, dec3).value == pytest.approx(2.0)


class TestLowerBoundIsALowerBound:
    @settings(deadline=None, max_examples=25)
    @given(jobset_strategy(max_jobs=6, max_size=4.0))
    def test_property_lb_below_milp_optimum(self, jobs):
        ladder = dec_ladder(3)  # capacities 1, 3, 9 fit sizes <= 4... need 9 >= 4 OK
        lb = lower_bound(jobs, ladder).value
        opt = solve_optimal(jobs, ladder).cost
        assert lb <= opt + 1e-6 * max(1.0, opt)

    @settings(deadline=None, max_examples=25)
    @given(jobset_strategy(max_jobs=10, max_size=8.0), dec_ladder_strategy(max_m=3))
    def test_property_lb_below_any_feasible_schedule(self, jobs, ladder):
        if not ladder.fits(jobs.max_size):
            return
        # the trivially feasible schedule: one top-type machine per job
        sched = Schedule(
            ladder,
            {j: MachineKey(ladder.m, ("solo", k)) for k, j in enumerate(jobs)},
        )
        assert lower_bound(jobs, ladder).value <= sched.cost() + 1e-9
