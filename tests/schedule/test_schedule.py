"""Unit tests for Schedule cost accounting."""

import pytest

from repro import Job, JobSet, MachineKey, Schedule, dec_ladder


@pytest.fixture
def two_jobs():
    return [
        Job(0.5, 0.0, 4.0, name="a"),
        Job(0.5, 2.0, 6.0, name="b"),
    ]


class TestCost:
    def test_single_machine_busy_union(self, dec3, two_jobs):
        key = MachineKey(1, ("m", 0))
        sched = Schedule(dec3, {two_jobs[0]: key, two_jobs[1]: key})
        # busy = union [0,6) length 6, rate 1
        assert sched.cost() == pytest.approx(6.0)

    def test_two_machines_sum(self, dec3, two_jobs):
        sched = Schedule(
            dec3,
            {
                two_jobs[0]: MachineKey(1, ("m", 0)),
                two_jobs[1]: MachineKey(2, ("m", 1)),
            },
        )
        # machine 1: 4 * r1(1); machine 2: 4 * r2(2)
        assert sched.cost() == pytest.approx(4.0 + 8.0)

    def test_disjoint_busy_periods_on_one_machine(self, dec3):
        a = Job(0.5, 0, 1, name="a")
        b = Job(0.5, 5, 7, name="b")
        key = MachineKey(1, ("m", 0))
        sched = Schedule(dec3, {a: key, b: key})
        assert sched.cost() == pytest.approx(3.0)  # 1 + 2, idle gap unpaid

    def test_cost_by_type(self, dec3, two_jobs):
        sched = Schedule(
            dec3,
            {
                two_jobs[0]: MachineKey(1, ("m", 0)),
                two_jobs[1]: MachineKey(3, ("m", 1)),
            },
        )
        by_type = sched.cost_by_type()
        assert by_type[1] == pytest.approx(4.0)
        assert by_type[2] == 0.0
        assert by_type[3] == pytest.approx(16.0)
        assert sum(by_type.values()) == pytest.approx(sched.cost())

    def test_machine_count_by_type(self, dec3, two_jobs):
        sched = Schedule(
            dec3,
            {
                two_jobs[0]: MachineKey(1, ("m", 0)),
                two_jobs[1]: MachineKey(1, ("m", 1)),
            },
        )
        assert sched.machine_count_by_type() == {1: 2, 2: 0, 3: 0}


class TestStructure:
    def test_invalid_type_index_rejected(self, dec3, two_jobs):
        with pytest.raises(ValueError):
            Schedule(dec3, {two_jobs[0]: MachineKey(9, ("m", 0))})

    def test_jobs_on_and_machine_of(self, dec3, two_jobs):
        key = MachineKey(2, ("x",))
        sched = Schedule(dec3, {two_jobs[0]: key, two_jobs[1]: key})
        assert sched.machine_of(two_jobs[0]) == key
        assert len(sched.jobs_on(key)) == 2
        assert sched.machines() == [key]

    def test_merge_disjoint(self, dec3, two_jobs):
        s1 = Schedule(dec3, {two_jobs[0]: MachineKey(1, ("m", 0))})
        s2 = Schedule(dec3, {two_jobs[1]: MachineKey(1, ("m", 1))})
        merged = s1.merge(s2)
        assert len(merged) == 2

    def test_merge_duplicate_job_rejected(self, dec3, two_jobs):
        s1 = Schedule(dec3, {two_jobs[0]: MachineKey(1, ("m", 0))})
        s2 = Schedule(dec3, {two_jobs[0]: MachineKey(1, ("m", 1))})
        with pytest.raises(ValueError):
            s1.merge(s2)

    def test_merge_different_ladder_rejected(self, dec3, two_jobs):
        other = dec_ladder(2)
        s1 = Schedule(dec3, {two_jobs[0]: MachineKey(1, ("m", 0))})
        s2 = Schedule(other, {two_jobs[1]: MachineKey(1, ("m", 1))})
        with pytest.raises(ValueError):
            s1.merge(s2)

    def test_empty_schedule(self, dec3):
        sched = Schedule(dec3, {})
        assert sched.cost() == 0.0
        assert sched.machines() == []
