"""Unit tests for the feasibility checker."""

import pytest

from repro import (
    FeasibilityError,
    Job,
    JobSet,
    MachineKey,
    Schedule,
    assert_feasible,
    validate_schedule,
)


@pytest.fixture
def jobs3():
    return JobSet(
        [
            Job(0.6, 0, 4, name="a"),
            Job(0.6, 1, 5, name="b"),
            Job(0.6, 2, 6, name="c"),
        ]
    )


class TestValidate:
    def test_feasible(self, dec3, jobs3):
        a, b, c = jobs3.jobs
        sched = Schedule(
            dec3,
            {
                a: MachineKey(1, ("m", 0)),
                b: MachineKey(1, ("m", 1)),
                c: MachineKey(2, ("m", 2)),
            },
        )
        report = validate_schedule(sched, jobs3)
        assert report.ok
        assert report.summary() == "feasible"
        assert_feasible(sched, jobs3)  # no raise

    def test_missing_job(self, dec3, jobs3):
        a, b, _ = jobs3.jobs
        sched = Schedule(
            dec3, {a: MachineKey(1, ("m", 0)), b: MachineKey(1, ("m", 1))}
        )
        report = validate_schedule(sched, jobs3)
        assert not report.ok
        assert len(report.missing_jobs) == 1
        with pytest.raises(FeasibilityError, match="unscheduled"):
            assert_feasible(sched, jobs3)

    def test_extra_job(self, dec3, jobs3):
        stranger = Job(0.1, 0, 1, name="z")
        mapping = {j: MachineKey(2, ("m", i)) for i, j in enumerate(jobs3)}
        mapping[stranger] = MachineKey(1, ("m", 99))
        report = validate_schedule(Schedule(dec3, mapping), jobs3)
        assert not report.ok
        assert len(report.extra_jobs) == 1

    def test_oversize_job(self, dec3):
        big = Job(5.0, 0, 2, name="big")  # type 1 capacity is 1
        inst = JobSet([big])
        sched = Schedule(dec3, {big: MachineKey(1, ("m", 0))})
        report = validate_schedule(sched, inst)
        assert not report.ok
        assert report.oversize_jobs
        assert report.overloaded  # peak also exceeds capacity

    def test_concurrent_overload(self, dec3, jobs3):
        # all three 0.6-jobs on one capacity-1 machine: peak 1.8 > 1
        key = MachineKey(1, ("m", 0))
        sched = Schedule(dec3, {j: key for j in jobs3})
        report = validate_schedule(sched, jobs3)
        assert not report.ok
        assert report.overloaded
        assert not report.oversize_jobs  # each job alone fits

    def test_sequential_reuse_not_overload(self, dec3):
        a = Job(0.9, 0, 2, name="a")
        b = Job(0.9, 2, 4, name="b")  # arrives exactly when a departs
        inst = JobSet([a, b])
        key = MachineKey(1, ("m", 0))
        report = validate_schedule(Schedule(dec3, {a: key, b: key}), inst)
        assert report.ok

    def test_summary_mentions_each_failure(self, dec3, jobs3):
        key = MachineKey(1, ("m", 0))
        sched = Schedule(dec3, {j: key for j in list(jobs3)[:2]})
        report = validate_schedule(sched, jobs3)
        text = report.summary()
        assert "unscheduled" in text
        assert "overloaded" in text


class TestHandoffBoundary:
    """Half-open boundary semantics: a job departing at ``t`` and a job
    arriving at the same ``t`` share the machine sequentially — the capacity
    check must never count them as concurrent (regression tests for the
    double-count bug the sweep refactor fixed)."""

    def test_full_capacity_chain_at_exact_times(self, dec3):
        # three capacity-filling jobs chained back to back on one machine
        chain = [Job(1.0, float(k), float(k + 1), name=f"c{k}") for k in range(3)]
        inst = JobSet(chain)
        key = MachineKey(1, ("m", 0))
        report = validate_schedule(Schedule(dec3, {j: key for j in chain}), inst)
        assert report.ok, report.summary()

    def test_float_noise_handoff_is_not_overload(self, dec3):
        # 0.1 + 0.2 lands one ulp above 0.3: the departure/arrival pair is
        # mathematically simultaneous but spans a 4e-17 phantom sliver where
        # both loads would double-count without the time tolerance
        a = Job(0.9, 0.0, 0.1 + 0.2, name="a")
        b = Job(0.9, 0.3, 1.0, name="b")
        assert a.departure > b.arrival  # the sliver is real in float
        inst = JobSet([a, b])
        key = MachineKey(1, ("m", 0))
        report = validate_schedule(Schedule(dec3, {a: key, b: key}), inst)
        assert report.ok, report.summary()

    def test_real_overlap_still_reported(self, dec3):
        # an overlap wider than the tolerance must still fail
        a = Job(0.9, 0.0, 0.31, name="a")
        b = Job(0.9, 0.3, 1.0, name="b")
        inst = JobSet([a, b])
        key = MachineKey(1, ("m", 0))
        report = validate_schedule(Schedule(dec3, {a: key, b: key}), inst)
        assert not report.ok
        assert report.overloaded

    def test_arrival_exactly_at_departure_many_jobs(self, dec3):
        # k jobs handing off at the same instant across two machines stays
        # feasible even when every job individually fills its machine
        jobs = [Job(1.0, 0.0, 2.0, name="x"), Job(1.0, 2.0, 4.0, name="y"),
                Job(1.0, 2.0, 3.0, name="z")]
        inst = JobSet(jobs)
        k0, k1 = MachineKey(1, ("m", 0)), MachineKey(1, ("m", 1))
        sched = Schedule(dec3, {jobs[0]: k0, jobs[1]: k0, jobs[2]: k1})
        report = validate_schedule(sched, inst)
        assert report.ok, report.summary()
