"""Tests for billing models."""

import pytest
from hypothesis import given, settings

from repro import Job, JobSet, MachineKey, Schedule, dec_ladder, general_offline
from repro.schedule.billing import FLUID, BillingModel, billed_cost, billing_overhead
from tests.conftest import jobset_strategy


class TestBillingModel:
    def test_fluid_is_identity(self):
        assert FLUID.billed_duration(3.7) == 3.7
        assert FLUID.describe() == "fluid"

    def test_rounding_up(self):
        hourly = BillingModel(period=1.0)
        assert hourly.billed_duration(0.1) == 1.0
        assert hourly.billed_duration(1.0) == 1.0
        assert hourly.billed_duration(1.01) == 2.0

    def test_minimum(self):
        model = BillingModel(minimum=5.0)
        assert model.billed_duration(1.0) == 5.0
        assert model.billed_duration(7.0) == 7.0

    def test_zero_length_free(self):
        assert BillingModel(period=1.0, minimum=2.0).billed_duration(0.0) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            BillingModel(period=-1.0)

    def test_describe(self):
        assert "per-1" in BillingModel(period=1.0).describe()
        assert "min 2" in BillingModel(minimum=2.0).describe()


class TestBilledCost:
    def test_fluid_matches_schedule_cost(self, dec3, small_jobs):
        sched = general_offline(small_jobs, dec3)
        assert billed_cost(sched, FLUID) == pytest.approx(sched.cost())

    def test_each_busy_period_billed_separately(self, dec3):
        # one machine, two busy periods of 0.4 each -> hourly bills 2 periods
        a = Job(0.5, 0.0, 0.4, name="a")
        b = Job(0.5, 5.0, 5.4, name="b")
        key = MachineKey(1, ("m", 0))
        sched = Schedule(dec3, {a: key, b: key})
        hourly = BillingModel(period=1.0)
        assert billed_cost(sched, hourly) == pytest.approx(2.0)  # 2 x 1h x rate 1

    def test_merged_busy_period_billed_once(self, dec3):
        a = Job(0.5, 0.0, 0.4, name="a")
        b = Job(0.4, 0.3, 0.9, name="b")  # overlaps a: one busy period [0, 0.9)
        key = MachineKey(1, ("m", 0))
        sched = Schedule(dec3, {a: key, b: key})
        assert billed_cost(sched, BillingModel(period=1.0)) == pytest.approx(1.0)

    def test_overhead_one_for_empty(self, dec3):
        sched = Schedule(dec3, {})
        assert billing_overhead(sched, BillingModel(period=1.0)) == 1.0

    @settings(deadline=None, max_examples=25)
    @given(jobset_strategy(max_jobs=15, max_size=8.0))
    def test_property_billed_at_least_fluid(self, jobs):
        ladder = dec_ladder(3)
        sched = general_offline(jobs, ladder)
        for period in (0.25, 1.0, 5.0):
            assert billed_cost(sched, BillingModel(period=period)) >= sched.cost() - 1e-9

    @settings(deadline=None, max_examples=20)
    @given(jobset_strategy(max_jobs=15, max_size=8.0))
    def test_property_overhead_bounded_by_period_ratio(self, jobs):
        """billed period <= length + period, so overhead <= 1 + period/min_len."""
        ladder = dec_ladder(3)
        sched = general_offline(jobs, ladder)
        period = 0.5
        groups = sched.by_machine()
        min_busy = min(
            (p.length for key in groups for p in sched.busy_set(key, groups)),
            default=1.0,
        )
        overhead = billing_overhead(sched, BillingModel(period=period))
        assert overhead <= 1.0 + period / min_busy + 1e-9
