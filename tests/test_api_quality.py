"""Meta-tests: public-API hygiene.

Every public symbol exported from ``repro`` must have a docstring; every
``__all__`` entry must resolve; the version is a sane semver string.
These are the checks that keep a library adoptable.
"""

import inspect
import re

import repro


class TestApiQuality:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing symbol {name}"

    def test_every_public_callable_has_docstring(self):
        missing = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    missing.append(name)
        assert not missing, f"public symbols without docstrings: {missing}"

    def test_public_classes_expose_documented_methods(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if not inspect.isclass(obj):
                continue
            for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
                if meth_name.startswith("_"):
                    continue
                if meth.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited
                if not (meth.__doc__ and meth.__doc__.strip()):
                    undocumented.append(f"{name}.{meth_name}")
        # allow a small budget for trivial dunder-adjacent helpers
        assert len(undocumented) <= 10, f"undocumented methods: {undocumented}"

    def test_version_is_semver(self):
        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)

    def test_every_module_has_docstring(self):
        import pathlib

        root = pathlib.Path(repro.__file__).parent
        missing = []
        for path in root.rglob("*.py"):
            text = path.read_text()
            stripped = text.lstrip()
            if not stripped:  # empty __init__ stubs are fine
                continue
            if not (stripped.startswith('"""') or stripped.startswith("'''")):
                missing.append(str(path.relative_to(root)))
        assert not missing, f"modules without docstrings: {missing}"
