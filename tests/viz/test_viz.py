"""Unit tests for the ASCII visualizations."""

from repro import (
    Job,
    JobSet,
    dec_offline,
    paper_fig2_ladder,
    place_jobs,
    pulse,
)
from repro.viz.ascii_chart import render_placement, render_profile
from repro.viz.forest_viz import render_forest
from repro.viz.gantt import render_gantt


class TestAsciiChart:
    def test_render_placement_shows_all_jobs(self, small_jobs):
        art = render_placement(place_jobs(small_jobs), width=40, height=10)
        assert "peak demand" in art
        # letters A..D for 4 jobs
        for ch in "ABCD":
            assert ch in art

    def test_render_placement_empty(self):
        art = render_placement(place_jobs(JobSet()))
        assert "empty" in art

    def test_strip_lines_drawn(self, small_jobs):
        art = render_placement(place_jobs(small_jobs), strip_height=1.0, height=12)
        assert "-" in art

    def test_render_profile(self):
        art = render_profile(pulse(0, 10, 3.0), width=20, height=6)
        assert "#" in art

    def test_render_profile_zero(self):
        from repro import StepFunction

        assert "zero" in render_profile(StepFunction.zero())


class TestForestViz:
    def test_fig2_render(self):
        art = render_forest(paper_fig2_ladder().forest())
        assert "3 trees" in art
        assert "tree rooted at 3" in art
        assert "r/g=" in art


class TestGantt:
    def test_gantt_rows_per_machine(self, dec3, small_jobs):
        sched = dec_offline(small_jobs, dec3)
        art = render_gantt(sched)
        assert "total cost" in art
        assert art.count("busy=") == len(sched.machines())

    def test_gantt_truncation(self, dec3, rng):
        from repro import uniform_workload
        from repro.baselines.naive import OneJobPerMachine
        from repro import run_online

        jobs = uniform_workload(60, rng, max_size=dec3.capacity(3))
        sched = run_online(jobs, OneJobPerMachine(dec3))
        art = render_gantt(sched, max_machines=5)
        assert "more machines" in art

    def test_gantt_empty(self, dec3):
        from repro.schedule.schedule import Schedule

        assert "empty" in render_gantt(Schedule(dec3, {}))
