"""Tests for SVG export."""

import xml.etree.ElementTree as ET

from repro import JobSet, dec_offline, place_jobs
from repro.viz.svg import gantt_svg, placement_svg


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg.split("?>", 1)[1])


class TestPlacementSvg:
    def test_well_formed_xml(self, small_jobs):
        svg = placement_svg(place_jobs(small_jobs))
        root = _parse(svg)
        assert root.tag.endswith("svg")

    def test_one_rect_per_job_plus_background(self, small_jobs):
        svg = placement_svg(place_jobs(small_jobs))
        root = _parse(svg)
        rects = [el for el in root.iter() if el.tag.endswith("rect")]
        assert len(rects) == len(small_jobs) + 1  # + background

    def test_titles_carry_job_names(self, small_jobs):
        svg = placement_svg(place_jobs(small_jobs))
        for job in small_jobs:
            assert job.name in svg

    def test_strip_lines(self, small_jobs):
        svg = placement_svg(place_jobs(small_jobs), strip_height=1.0)
        root = _parse(svg)
        lines = [el for el in root.iter() if el.tag.endswith("line")]
        assert lines

    def test_empty_placement(self):
        svg = placement_svg(place_jobs(JobSet()))
        assert _parse(svg) is not None


class TestGanttSvg:
    def test_lane_per_machine(self, dec3, small_jobs):
        sched = dec_offline(small_jobs, dec3)
        svg = gantt_svg(sched)
        root = _parse(svg)
        texts = [el for el in root.iter() if el.tag.endswith("text")]
        assert len(texts) == len(sched.machines())

    def test_rect_per_job(self, dec3, small_jobs):
        sched = dec_offline(small_jobs, dec3)
        root = _parse(gantt_svg(sched))
        rects = [el for el in root.iter() if el.tag.endswith("rect")]
        assert len(rects) == len(small_jobs) + 1  # + background

    def test_empty_schedule(self, dec3):
        from repro.schedule.schedule import Schedule

        svg = gantt_svg(Schedule(dec3, {}))
        assert _parse(svg) is not None
